//! Resilience demo: page rankers crash mid-deployment, their groups (and
//! all ranking state) migrate to the nodes that become responsible, and
//! the system re-converges — the "self-organized, resilient" property the
//! paper's introduction claims for structured P2P substrates.
//!
//! Run with: `cargo run --release --example churn_recovery`

use dpr::core::{try_run_over_network, NetRunConfig};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::partition::Strategy;

fn main() {
    let graph =
        edu_domain(&EduDomainConfig { n_pages: 8_000, n_sites: 40, ..EduDomainConfig::default() });
    println!(
        "ranking {} pages over 32 rankers on a Pastry overlay; nodes 5, 11 and 19 will crash",
        graph.n_pages()
    );

    let res = try_run_over_network(
        &graph,
        NetRunConfig {
            k: 32,
            n_nodes: 32,
            strategy: Strategy::HashBySite,
            t_end: 400.0,
            sample_every: 4.0,
            departures: vec![(120.0, 5), (200.0, 11), (280.0, 19)],
            ..NetRunConfig::default()
        },
    )
    .expect("Pastry supports the scheduled churn");

    println!("\n   t     relative error");
    for &(t, v) in res.rel_err.points() {
        let marker = match t as u64 {
            120 | 200 | 280 => "  <- node crash",
            _ => "",
        };
        if (t as u64).is_multiple_of(20) || !marker.is_empty() {
            println!("{t:>5.0}   {:>12.6}%{marker}", v * 100.0);
        }
    }
    println!(
        "\nfinal relative error: {:.6}% after 3 crashes ({} messages total)",
        res.final_rel_err * 100.0,
        res.counters.data_messages
    );
    assert!(res.final_rel_err < 1e-3);
    println!(
        "OK: every crash shows as an error spike that drains away — state rebuilt from peers' Y."
    );
}
