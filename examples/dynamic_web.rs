//! Continuous ranking of a changing web — the operational reality behind
//! §4.1's re-crawl discussion and §4.3's dynamic-graph caveat.
//!
//! A deployment alternates crawl refreshes with ranking epochs: each epoch
//! warm-starts from the previous ranks, so only the drift needs to be
//! re-converged. The example reports, per epoch, how far the old ranks had
//! drifted from the new fixed point and how quickly the warm-started run
//! closed the gap.
//!
//! Run with: `cargo run --release --example dynamic_web`

use dpr::core::{open_pagerank, run_distributed, DistributedRunConfig, RankConfig};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::graph::refresh::recrawl;
use dpr::linalg::vec_ops::relative_error;
use dpr::partition::Strategy;

fn main() {
    let mut graph =
        edu_domain(&EduDomainConfig { n_pages: 10_000, n_sites: 50, ..EduDomainConfig::default() });
    let cfg = |warm: Option<Vec<f64>>| DistributedRunConfig {
        k: 50,
        strategy: Strategy::HashBySite,
        t1: 0.5,
        t2: 3.0,
        send_success_prob: 0.9,
        t_end: 80.0,
        sample_every: 1.0,
        warm_start: warm,
        ..DistributedRunConfig::default()
    };

    println!("epoch  pages   changed  drift-at-start  t@0.1%   final-err");
    let mut ranks: Option<Vec<f64>> = None;
    for epoch in 0..5 {
        // Refresh the crawl (except the very first epoch).
        let changed = if epoch == 0 {
            0
        } else {
            let (g2, report) = recrawl(&graph, 0.15, 0.03, 1000 + epoch);
            graph = g2;
            report.changed_pages.len() + report.new_pages.len()
        };

        // Drift: how wrong the carried-over ranks are for the new graph.
        let star = open_pagerank(&graph, &RankConfig::default()).ranks;
        let drift = match &ranks {
            None => 1.0,
            Some(r) => {
                let mut padded = r.clone();
                padded.resize(graph.n_pages(), 0.0);
                relative_error(&padded, &star)
            }
        };

        let warm = ranks.map(|mut r| {
            r.resize(graph.n_pages(), 0.0);
            r
        });
        let res = run_distributed(&graph, cfg(warm));
        println!(
            "{epoch:>5} {:>6} {:>9} {:>14.3}% {:>8} {:>10.5}%",
            graph.n_pages(),
            changed,
            drift * 100.0,
            res.rel_err.first_time_below(1e-3).map_or("-".into(), |t| format!("{t:.0}")),
            res.final_rel_err * 100.0
        );
        assert!(res.final_rel_err < 1e-3, "epoch {epoch} failed to converge");
        ranks = Some(res.final_ranks);
    }
    println!("\nOK: ranking tracked 5 crawl epochs; warm starts keep per-epoch drift small.");
}
