//! Quickstart: rank a small two-site web distributedly and check the result
//! against centralized PageRank.
//!
//! Run with: `cargo run --release --example quickstart`

use dpr::core::metrics::top_k;
use dpr::core::{open_pagerank, run_distributed, DistributedRunConfig, RankConfig};
use dpr::graph::generators::toy;

fn main() {
    // A miniature web: two densely linked sites with one bridge link in
    // each direction.
    let graph = toy::two_cliques(5);
    println!(
        "graph: {} pages on {} sites, {} links",
        graph.n_pages(),
        graph.n_sites(),
        graph.n_internal_links()
    );

    // Centralized reference (CPR).
    let reference = open_pagerank(&graph, &RankConfig::default());
    println!("centralized PageRank converged in {} iterations", reference.iterations);

    // Distributed run: 2 page rankers, asynchronous, 30% message loss.
    let result = run_distributed(
        &graph,
        DistributedRunConfig {
            k: 2,
            send_success_prob: 0.7,
            t1: 0.0,
            t2: 6.0,
            t_end: 200.0,
            ..DistributedRunConfig::default()
        },
    );

    println!(
        "distributed PageRank: relative error {:.6}% after simulated time {:.0} \
         ({} messages, {} dropped)",
        result.final_rel_err * 100.0,
        200.0,
        result.sim_stats.sends_attempted,
        result.sim_stats.sends_dropped,
    );

    println!("\ntop pages (distributed | centralized):");
    let dist_top = top_k(&result.final_ranks, 3);
    let cent_top = top_k(&reference.ranks, 3);
    for (d, c) in dist_top.iter().zip(&cent_top) {
        println!(
            "  {:<40} {:.4} | {:<40} {:.4}",
            graph.url_of(*d),
            result.final_ranks[*d as usize],
            graph.url_of(*c),
            reference.ranks[*c as usize]
        );
    }

    assert!(result.final_rel_err < 1e-4, "distributed ranking failed to converge");
    println!("\nOK: distributed ranks converged to the centralized fixed point.");
}
