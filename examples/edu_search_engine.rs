//! The paper's motivating scenario: a distributed search engine ranking an
//! edu-domain crawl across cooperating page rankers.
//!
//! Generates a synthetic stand-in for the Google programming-contest
//! dataset (100 edu sites, heavy-tailed link structure, half the links
//! leaving the crawl), partitions it by site hash (§4.1), runs DPR1 over
//! asynchronous lossy rankers, and then answers "what are the most
//! important pages?" three ways: distributed PageRank, HITS authorities,
//! and PageRank personalized to one site.
//!
//! Run with: `cargo run --release --example edu_search_engine`

use dpr::core::hits::{hits, HitsConfig};
use dpr::core::metrics::{sampled_order_agreement, top_k, top_k_overlap};
use dpr::core::personalized::{personalized_pagerank, site_biased_e};
use dpr::core::{query_cost, run_distributed, DistributedRunConfig, RankConfig};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::graph::GraphStats;
use dpr::partition::Strategy;
use dpr::transport::codec;

fn main() {
    let cfg = EduDomainConfig { n_pages: 30_000, n_sites: 100, ..EduDomainConfig::default() };
    let graph = edu_domain(&cfg);
    println!("=== crawl statistics ===\n{}\n", GraphStats::compute(&graph));

    // Distributed ranking over 100 page rankers with 30% message loss.
    println!("=== distributed ranking (DPR1, K=100, p=0.7) ===");
    let result = run_distributed(
        &graph,
        DistributedRunConfig {
            k: 100,
            strategy: Strategy::HashBySite,
            send_success_prob: 0.7,
            t1: 0.0,
            t2: 6.0,
            t_end: 120.0,
            ..DistributedRunConfig::default()
        },
    );
    println!(
        "converged to {:.4}% relative error vs centralized ({} active rankers, {} msgs, {} dropped)",
        result.final_rel_err * 100.0,
        result.active_groups,
        result.sim_stats.sends_attempted,
        result.sim_stats.sends_dropped
    );
    println!(
        "rank ordering agreement with centralized: {:.2}% (sampled pairs), top-20 overlap {:.0}%",
        100.0 * sampled_order_agreement(&result.final_ranks, &result.reference_ranks, 20_000, 1),
        100.0 * top_k_overlap(&result.final_ranks, &result.reference_ranks, 20)
    );

    println!("\ntop 5 pages by distributed PageRank:");
    for p in top_k(&result.final_ranks, 5) {
        println!("  {:>8.3}  {}", result.final_ranks[p as usize], graph.url_of(p));
    }

    // Why ranking must live *with* the pages: a scatter-gather top-20
    // query moves 100 small responses (priced from the same
    // `dpr-transport::codec` record sizes as §4.5 rank-update traffic),
    // versus centralizing every rank on a coordinator first.
    let cost = query_cost(100, 20);
    let centralize = (graph.n_pages() * codec::ID_RECORD_BYTES) as f64;
    println!(
        "\nscatter-gather top-20 query: {:.1} KB on the wire ({:.1} KB with id-form records); \
         centralizing all {} ranks first would move {:.0} KB per refresh",
        cost.uncompressed as f64 / 1e3,
        cost.compressed as f64 / 1e3,
        graph.n_pages(),
        centralize / 1e3
    );

    // HITS baseline on the same crawl.
    println!("\n=== HITS authorities (centralized baseline) ===");
    let h = hits(&graph, &HitsConfig::default());
    for p in top_k(&h.authorities, 5) {
        println!("  {:>8.5}  {}", h.authorities[p as usize], graph.url_of(p));
    }
    println!(
        "PageRank/HITS top-20 overlap: {:.0}%",
        100.0 * top_k_overlap(&result.final_ranks, &h.authorities, 20)
    );

    // Personalized view: what matters to site 3's community?
    println!("\n=== PageRank personalized to {} ===", graph.site_name(3));
    let personal =
        personalized_pagerank(&graph, RankConfig::default(), site_biased_e(&graph, 3, 0.05, 3.0));
    for p in top_k(&personal.ranks, 5) {
        println!("  {:>8.3}  {}", personal.ranks[p as usize], graph.url_of(p));
    }
    let boosted = top_k(&personal.ranks, 20).iter().filter(|&&p| graph.site(p) == 3).count();
    println!("pages from the preferred site in the personalized top-20: {boosted}/20");

    assert!(result.final_rel_err < 0.01, "distributed ranking did not converge");
}
