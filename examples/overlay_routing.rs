//! Structured-overlay tour: build Pastry and Chord networks, route lookups,
//! and push one round of rank updates through both transmission schemes,
//! reproducing the §4.4 message-count argument on live data structures.
//!
//! Run with: `cargo run --release --example overlay_routing`

use dpr::overlay::id::key_from_u64;
use dpr::overlay::{avg_route_hops, ChordNetwork, Overlay, PastryNetwork};
use dpr::transport::codec::PaperSizeModel;
use dpr::transport::{analytic, direct, indirect, Batch, Outgoing, RankUpdate};

fn main() {
    let n = 500;
    println!("building Pastry and Chord overlays with {n} nodes each …");
    let pastry = PastryNetwork::with_nodes(n, 0xA11CE);
    let chord = ChordNetwork::with_nodes(n, 0xB0B);

    // --- Lookup behaviour. -------------------------------------------------
    for (name, net) in [("pastry", &pastry as &dyn Overlay), ("chord", &chord as &dyn Overlay)] {
        let stats = avg_route_hops(net, 2_000, 42);
        println!(
            "\n{name}: mean {:.2} hops (max {}), {:.1} neighbors/node",
            stats.mean,
            stats.max,
            net.mean_neighbors()
        );
        print!("  hop histogram: ");
        for (h, count) in stats.histogram.iter().enumerate() {
            print!("{h}:{count} ");
        }
        println!();
    }

    // One concrete lookup with its full path.
    let key = key_from_u64(0xFEED);
    let path = pastry.route(7, key);
    println!(
        "\nexample Pastry lookup from node 7: {} hops to the responsible node {:?}",
        path.len(),
        path.last()
    );

    // --- One rank-exchange round, both schemes. ----------------------------
    println!("\npushing an all-to-all rank exchange round through the overlay …");
    let traffic: Vec<Outgoing> = (0..n)
        .map(|s| Outgoing {
            sender: s,
            batches: (0..n as u64)
                .map(|g| Batch {
                    dest_key: key_from_u64(g),
                    updates: vec![RankUpdate {
                        from_page: s as u32,
                        to_page: g as u32,
                        score: 0.1,
                    }],
                })
                .collect(),
        })
        .collect();
    let d = direct::simulate(&pastry, &traffic, &PaperSizeModel);
    let i = indirect::simulate(&pastry, &traffic, &PaperSizeModel);
    println!("  direct:   {d}");
    println!("  indirect: {}", i.stats);

    let h = avg_route_hops(&pastry, 1_000, 1).mean;
    let g = pastry.mean_neighbors();
    println!("\n§4.4 closed forms at N = {n} (h = {h:.2}, g = {g:.1}):");
    println!(
        "  S_dt = (h+1)N² = {:.0}   vs measured {}",
        analytic::s_direct(h, n as f64),
        d.messages
    );
    println!(
        "  S_it = gN      = {:.0}   vs measured {}",
        analytic::s_indirect(g, n as f64),
        i.stats.messages
    );
    assert!(i.stats.messages < d.messages);
    println!("\nOK: indirect transmission needs O(gN) messages, direct O((h+1)N²).");
}
