//! Capacity planning with the §4.5 model: how often can a P2P page-ranking
//! deployment iterate, and what does each node need?
//!
//! Reproduces the paper's Table 1 and then answers planning questions the
//! paper's model supports but never tabulated (e.g. "what bisection share
//! would hourly iterations need?").
//!
//! Run with: `cargo run --release --example capacity_planning`

use dpr::model::{pastry_hops, render_table1, table1, CapacityModel};

fn main() {
    println!("=== Table 1 (paper constants: W = 3G pages, l = 100 B, 100 MB/s usable) ===\n");
    println!("{}", render_table1(&table1()));

    let model = CapacityModel::default();

    // Planning question 1: hourly iterations at 1000 rankers.
    let h = pastry_hops(1_000);
    let needed = model.bisection_needed_for_interval(h, 3_600.0);
    println!(
        "To iterate hourly at 1000 rankers, page ranking would need {:.0} MB/s of \
         bisection bandwidth ({:.1}x the paper's 1% allowance).",
        needed / 1e6,
        needed / model.usable_bisection_bytes_per_sec
    );

    // Planning question 2: what a 10x bigger web does.
    let big = CapacityModel { total_pages: 3.0e10, ..CapacityModel::default() };
    println!(
        "A 30-billion-page web pushes the minimal interval at 1000 rankers to {:.1} hours.",
        big.min_iteration_interval(h) / 3_600.0
    );

    // Planning question 3: per-node uplink needed for DSL-era nodes.
    let row = model.row(10_000);
    println!(
        "At 10,000 rankers each node needs only {:.1} KB/s of bottleneck bandwidth — \
         the paper's point that node uplinks are not the constraint, the backbone is.",
        row.min_bottleneck_bytes_per_sec / 1e3
    );

    // Planning question 4: effect of compression (the §4.5 future-work
    // lever, implemented in dpr-transport): delta+varint batches cut the
    // ~100-byte record to ~10 bytes.
    let compressed = CapacityModel { link_record_bytes: 10.0, ..CapacityModel::default() };
    println!(
        "With 10x record compression the 1000-ranker interval drops from {:.0}s to {:.0}s.",
        model.min_iteration_interval(h),
        compressed.min_iteration_interval(h)
    );
}
