//! Bit-determinism contract of the worker-pool compute runtime: the same
//! chunked arithmetic runs whatever the worker count, so every pooled
//! result must equal its sequential counterpart down to the last bit —
//! for the kernels (covered by unit tests in `dpr-linalg`), for the full
//! open PageRank solve, and for the threaded BSP runner.

use dpr::core::{open_pagerank_with_pool, run_threaded, RankConfig, ThreadedRunConfig};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::linalg::Pool;
use dpr::partition::Strategy;

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: rank {i} differs ({x:e} vs {y:e})");
    }
}

/// The headline guarantee: `open_pagerank` over the pool produces the same
/// bits as the sequential solve at 1, 2 and 8 workers on a web-like graph.
#[test]
fn open_pagerank_is_bit_identical_at_every_worker_count() {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 30_000, n_sites: 60, ..EduDomainConfig::default() });
    let cfg = RankConfig::default();
    let reference = open_pagerank_with_pool(&g, &cfg, &Pool::sequential());
    assert!(reference.converged, "reference solve must converge");

    for workers in [1usize, 2, 8] {
        let pooled = open_pagerank_with_pool(&g, &cfg, &Pool::with_workers(workers));
        assert_eq!(pooled.iterations, reference.iterations, "{workers} workers");
        assert_bits_equal(
            &pooled.ranks,
            &reference.ranks,
            &format!("open_pagerank with {workers} workers"),
        );
    }
}

/// The threaded BSP runner already spreads groups over `k` OS threads; the
/// solver pool it hands each ranker must not change the arithmetic either.
#[test]
fn run_threaded_is_bit_identical_with_and_without_solver_pool() {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 4_000, n_sites: 20, ..EduDomainConfig::default() });
    let base =
        ThreadedRunConfig { k: 4, strategy: Strategy::HashBySite, ..ThreadedRunConfig::default() };

    let sequential = run_threaded(&g, &base);
    for workers in [1usize, 2, 8] {
        let pooled = run_threaded(
            &g,
            &ThreadedRunConfig { solver_pool: Pool::with_workers(workers), ..base.clone() },
        );
        assert_eq!(pooled.rounds, sequential.rounds, "{workers} workers");
        assert_bits_equal(
            &pooled.final_ranks,
            &sequential.final_ranks,
            &format!("run_threaded with {workers}-worker solver pool"),
        );
    }
}

/// A shared global pool is reused across back-to-back solves without
/// contaminating results (the pool holds no per-solve state).
#[test]
fn pool_reuse_across_solves_is_stable() {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 20_000, n_sites: 40, ..EduDomainConfig::default() });
    let cfg = RankConfig::default();
    let pool = Pool::with_workers(4);
    let first = open_pagerank_with_pool(&g, &cfg, &pool);
    let second = open_pagerank_with_pool(&g, &cfg, &pool);
    assert_bits_equal(&first.ranks, &second.ranks, "repeated solve on one pool");
}
