//! Bit-determinism contract of the worker-pool compute runtime: the same
//! chunked arithmetic runs whatever the worker count, so every pooled
//! result must equal its sequential counterpart down to the last bit —
//! for the kernels (covered by unit tests in `dpr-linalg`), for the full
//! open PageRank solve, for the threaded BSP runner, and for the batched
//! netrun engine under randomized fault plans.

use dpr::core::{
    open_pagerank_with_pool, run_threaded, try_run_over_network, NetRunConfig, RankConfig,
    Reliability, ThreadedRunConfig,
};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::graph::generators::toy;
use dpr::linalg::Pool;
use dpr::partition::Strategy;
use dpr::sim::{FaultPlan, Jitter};
use proptest::prelude::*;

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: rank {i} differs ({x:e} vs {y:e})");
    }
}

/// The headline guarantee: `open_pagerank` over the pool produces the same
/// bits as the sequential solve at 1, 2 and 8 workers on a web-like graph.
#[test]
fn open_pagerank_is_bit_identical_at_every_worker_count() {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 30_000, n_sites: 60, ..EduDomainConfig::default() });
    let cfg = RankConfig::default();
    let reference = open_pagerank_with_pool(&g, &cfg, &Pool::sequential());
    assert!(reference.converged, "reference solve must converge");

    for workers in [1usize, 2, 8] {
        let pooled = open_pagerank_with_pool(&g, &cfg, &Pool::with_workers(workers));
        assert_eq!(pooled.iterations, reference.iterations, "{workers} workers");
        assert_bits_equal(
            &pooled.ranks,
            &reference.ranks,
            &format!("open_pagerank with {workers} workers"),
        );
    }
}

/// The threaded BSP runner already spreads groups over `k` OS threads; the
/// solver pool it hands each ranker must not change the arithmetic either.
#[test]
fn run_threaded_is_bit_identical_with_and_without_solver_pool() {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 4_000, n_sites: 20, ..EduDomainConfig::default() });
    let base =
        ThreadedRunConfig { k: 4, strategy: Strategy::HashBySite, ..ThreadedRunConfig::default() };

    let sequential = run_threaded(&g, &base);
    for workers in [1usize, 2, 8] {
        let pooled = run_threaded(
            &g,
            &ThreadedRunConfig { solver_pool: Pool::with_workers(workers), ..base.clone() },
        );
        assert_eq!(pooled.rounds, sequential.rounds, "{workers} workers");
        assert_bits_equal(
            &pooled.final_ranks,
            &sequential.final_ranks,
            &format!("run_threaded with {workers}-worker solver pool"),
        );
    }
}

/// A shared global pool is reused across back-to-back solves without
/// contaminating results (the pool holds no per-solve state).
#[test]
fn pool_reuse_across_solves_is_stable() {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 20_000, n_sites: 40, ..EduDomainConfig::default() });
    let cfg = RankConfig::default();
    let pool = Pool::with_workers(4);
    let first = open_pagerank_with_pool(&g, &cfg, &pool);
    let second = open_pagerank_with_pool(&g, &cfg, &pool);
    assert_bits_equal(&first.ranks, &second.ranks, "repeated solve on one pool");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The batched netrun engine under adversarial weather: a randomized
    /// fault plan (loss, jitter, a straggler, optionally the ack/retry
    /// protocol) must produce the same `NetRunResult` — rank bits, engine
    /// stats, protocol counters per node, error trajectory — whether node
    /// solves run inline or fanned out over 2 or 8 pool workers.
    #[test]
    fn batched_netrun_is_bit_identical_under_random_fault_plans(
        seed in any::<u64>(),
        p in 0.5f64..=1.0,
        jitter_max in 0.0f64..=0.05,
        straggler_factor in 1.0f64..=3.0,
        reliable in any::<bool>(),
    ) {
        let g = toy::two_cliques(4);
        let plan = FaultPlan::new()
            .with_latency(0.01)
            .with_default_success(p)
            .with_jitter(Jitter::Uniform { max: jitter_max })
            .with_straggler(1, straggler_factor, 2.0);
        let base = NetRunConfig {
            k: 8,
            n_nodes: 8,
            strategy: Strategy::HashByUrl,
            t_end: 60.0,
            seed,
            faults: Some(plan),
            reliability: reliable.then(Reliability::default),
            ..NetRunConfig::default()
        };
        let run = |workers: usize| {
            try_run_over_network(
                &g,
                NetRunConfig { engine_workers: workers, ..base.clone() },
            )
            .expect("no churn scheduled")
        };
        let sequential = run(1);
        let seq_bits: Vec<u64> = sequential.final_ranks.iter().map(|x| x.to_bits()).collect();
        for workers in [2usize, 8] {
            let batched = run(workers);
            let bits: Vec<u64> = batched.final_ranks.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(&bits, &seq_bits, "rank bits diverged at {} workers", workers);
            prop_assert_eq!(&batched.sim_stats, &sequential.sim_stats);
            prop_assert_eq!(&batched.counters, &sequential.counters);
            prop_assert_eq!(&batched.per_node, &sequential.per_node);
            prop_assert_eq!(batched.rel_err.points(), sequential.rel_err.points());
        }
    }
}
