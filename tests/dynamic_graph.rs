//! The paper's dynamic-graph scenario (§4.3): Theorems 4.1/4.2 assume a
//! static link graph, but the authors "believe the two algorithms DO
//! converge" under change. These tests exercise exactly that: the crawl is
//! refreshed mid-deployment (links rewired, new pages appear), ranking
//! continues warm-started from the previous fixed point, and must converge
//! to the *new* fixed point — faster than a cold start.

use dpr::core::{open_pagerank, run_distributed, DistributedRunConfig, RankConfig};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::graph::refresh::recrawl;
use dpr::linalg::vec_ops::relative_error;
use dpr::partition::Strategy;

fn crawl() -> dpr::graph::WebGraph {
    edu_domain(&EduDomainConfig { n_pages: 3_000, n_sites: 25, ..EduDomainConfig::default() })
}

fn cfg() -> DistributedRunConfig {
    DistributedRunConfig {
        k: 16,
        strategy: Strategy::HashBySite,
        t1: 0.5,
        t2: 2.0,
        t_end: 200.0,
        sample_every: 2.0,
        ..DistributedRunConfig::default()
    }
}

#[test]
fn ranking_tracks_a_refreshed_crawl() {
    let g1 = crawl();
    let first = run_distributed(&g1, cfg());
    assert!(first.final_rel_err < 1e-4);

    // 30% of pages change their links, 10% new pages appear.
    let (g2, report) = recrawl(&g1, 0.3, 0.1, 99);
    assert!(!report.changed_pages.is_empty());
    assert!(!report.new_pages.is_empty());

    // The old ranks are now wrong for the new graph…
    let new_star = open_pagerank(&g2, &RankConfig::default()).ranks;
    let stale_err = relative_error(
        &first
            .final_ranks
            .iter()
            .copied()
            .chain(std::iter::repeat(0.0))
            .take(g2.n_pages())
            .collect::<Vec<_>>(),
        &new_star,
    );
    assert!(stale_err > 1e-3, "recrawl changed too little to be a test: {stale_err}");

    // …but a warm-started second deployment converges to the new fixed
    // point.
    let mut warm = first.final_ranks.clone();
    warm.resize(g2.n_pages(), 0.0);
    let second = run_distributed(&g2, DistributedRunConfig { warm_start: Some(warm), ..cfg() });
    assert!(second.final_rel_err < 1e-4, "rel err {}", second.final_rel_err);
}

#[test]
fn warm_start_converges_faster_than_cold() {
    let g1 = crawl();
    let first = run_distributed(&g1, cfg());
    let (g2, _) = recrawl(&g1, 0.15, 0.05, 7);
    let mut warm = first.final_ranks.clone();
    warm.resize(g2.n_pages(), 0.0);

    let threshold = 1e-3;
    let cold = run_distributed(&g2, DistributedRunConfig { seed: 5, ..cfg() });
    let warm_run =
        run_distributed(&g2, DistributedRunConfig { seed: 5, warm_start: Some(warm), ..cfg() });
    let t_cold = cold.rel_err.first_time_below(threshold).expect("cold converges");
    let t_warm = warm_run.rel_err.first_time_below(threshold).expect("warm converges");
    assert!(t_warm <= t_cold, "warm start ({t_warm}) should not be slower than cold ({t_cold})");
    // With only 15% churn the warm start should land close immediately.
    assert!(warm_run.rel_err.points()[0].1 < cold.rel_err.points()[0].1);
}

#[test]
fn dpr2_also_tracks_graph_changes() {
    let g1 = crawl();
    let first = run_distributed(&g1, cfg());
    let (g2, _) = recrawl(&g1, 0.25, 0.0, 21);
    let second = run_distributed(
        &g2,
        DistributedRunConfig {
            variant: dpr::core::DprVariant::Dpr2,
            warm_start: Some(first.final_ranks.clone()),
            t_end: 400.0,
            ..cfg()
        },
    );
    assert!(second.final_rel_err < 1e-4, "rel err {}", second.final_rel_err);
}
