//! The serving-store contract: epoch-versioned [`RankStore`] answers are
//! bit-identical to one-shot scatter-gather queries against the live
//! `RankerNode`s at the same epoch — including while the engine keeps
//! committing and readers race publication — and old views stay frozen.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dpr::core::dpr::{assemble_global, DprVariant};
use dpr::core::group::GroupContext;
use dpr::core::netrun::{try_run_over_network_with_store, NetRunConfig};
use dpr::core::query::{distributed_top_k, local_top_k, site_totals};
use dpr::core::store::GroupPublish;
use dpr::core::{metrics, RankConfig, RankStore, RankerNode};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::graph::{PageId, WebGraph};
use dpr::partition::{Partition, Strategy};
use dpr::sim::{SimConfig, Simulation};

fn build_sim(seed: u64) -> (WebGraph, Simulation<RankerNode>) {
    let g = edu_domain(&EduDomainConfig::small());
    let p = Partition::build(&g, &Strategy::HashBySite, 8, 0);
    let nodes: Vec<RankerNode> = GroupContext::build_all(&g, &p, &RankConfig::default())
        .into_iter()
        .map(|c| RankerNode::new(c, DprVariant::Dpr1, 1.0))
        .collect();
    let sim = Simulation::new(nodes, SimConfig { seed, ..SimConfig::default() });
    (g, sim)
}

fn site_map(g: &WebGraph) -> Vec<u32> {
    (0..g.n_pages() as u32).map(|p| g.site(p)).collect()
}

fn assert_hits_bits_equal(a: &[dpr::core::Hit], b: &[dpr::core::Hit], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.page, y.page, "{what}: page mismatch");
        assert_eq!(x.rank.to_bits(), y.rank.to_bits(), "{what}: rank bits differ on {}", x.page);
    }
}

/// The acceptance test: at every publication epoch the store's top-k,
/// candidate top-k, point lookups and site aggregates are bit-identical
/// to querying the live rankers directly — while a reader thread hammers
/// the store concurrently with the engine's commits.
#[test]
fn store_matches_live_rankers_at_every_epoch_under_concurrent_reads() {
    let (g, mut sim) = build_sim(3);
    let site_of = site_map(&g);
    let n_sites = g.n_sites();
    let store = Arc::new(RankStore::new(16).with_sites(site_of.clone(), n_sites));

    // A reader racing the publisher: every view it snaps must be
    // internally consistent (each top hit agrees with a point lookup on
    // the same view) and versions must be monotone.
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let reader = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let reads = Arc::clone(&reads);
        std::thread::spawn(move || {
            let mut last_version = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let v = store.view();
                assert!(v.version() >= last_version, "view versions went backwards");
                last_version = v.version();
                for h in v.top_k(8) {
                    let l = v.lookup(h.page).expect("top hit must be owned");
                    assert_eq!(
                        l.rank.to_bits(),
                        h.rank.to_bits(),
                        "torn view: top-k and lookup disagree"
                    );
                }
                reads.fetch_add(1, Ordering::Relaxed);
            }
        })
    };

    let candidates: Vec<PageId> = (0..60).chain([7, 7, 13]).collect();
    let mut distinct_rankings = 0usize;
    let mut last_top: Option<Vec<dpr::core::Hit>> = None;
    for slice in 1..=12 {
        sim.run_until(f64::from(slice) * 10.0);
        store.publish_rankers(sim.actors());
        let v = store.view();

        // Bit-identity against the live nodes at this exact epoch.
        let live = distributed_top_k(sim.actors(), 10, None);
        assert_hits_bits_equal(&v.top_k(10), &live, "global top-k");
        let live_c = distributed_top_k(sim.actors(), 5, Some(&candidates));
        assert_hits_bits_equal(&v.top_k_candidates(5, &candidates), &live_c, "candidate top-k");
        let global = assemble_global(sim.actors(), g.n_pages());
        for p in [0u32, 7, 131, 999, g.n_pages() as u32 - 1] {
            let l = v.lookup(p).expect("every page is owned");
            assert_eq!(l.rank.to_bits(), global[p as usize].to_bits(), "point lookup page {p}");
        }
        let live_sites = site_totals(sim.actors(), &site_of, n_sites);
        let stored_sites = v.site_totals().expect("store built with site info");
        assert_eq!(stored_sites.len(), live_sites.len());
        for (s, (a, b)) in stored_sites.iter().zip(&live_sites).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "site {s} aggregate bits differ");
        }

        if last_top.as_ref() != Some(&live) {
            distinct_rankings += 1;
        }
        last_top = Some(live);
    }

    stop.store(true, Ordering::Relaxed);
    reader.join().expect("reader thread panicked");
    assert!(reads.load(Ordering::Relaxed) > 0, "reader never got a view in");
    assert!(
        distinct_rankings > 1,
        "the ranking never moved across epochs — the test exercised nothing"
    );
    assert!(store.view().version() > 1, "store must have republished across epochs");
}

/// A pinned mid-run view keeps serving its own (unconverged) epoch
/// bit-for-bit after later publishes; the store's current view moves on.
#[test]
fn mid_run_snapshot_stays_frozen_while_store_advances() {
    let (g, mut sim) = build_sim(3);
    let store = RankStore::new(16);

    sim.run_until(6.0); // far from converged
    store.publish_rankers(sim.actors());
    let mid = store.view();
    let mid_top = mid.top_k(10);
    let mid_live = distributed_top_k(sim.actors(), 10, None);
    assert_hits_bits_equal(&mid_top, &mid_live, "mid-run top-k");
    let mid_epochs: Vec<Option<u64>> = (0..8).map(|gid| mid.group_epoch(gid)).collect();

    sim.run_until(120.0);
    store.publish_rankers(sim.actors());
    let fin = store.view();
    let fin_live = distributed_top_k(sim.actors(), 10, None);
    assert_hits_bits_equal(&fin.top_k(10), &fin_live, "final top-k");

    // The pinned view is untouched: same answers, same epochs.
    assert_hits_bits_equal(&mid.top_k(10), &mid_top, "pinned view must not change");
    for (gid, e) in mid_epochs.iter().enumerate() {
        assert_eq!(mid.group_epoch(gid as u32), *e, "pinned epoch of group {gid}");
    }
    // And the two epochs genuinely differ: rank bits moved between t=6
    // and convergence, and every group's epoch advanced.
    let global = assemble_global(sim.actors(), g.n_pages());
    assert!(
        mid_top.iter().any(|h| h.rank.to_bits() != global[h.page as usize].to_bits()),
        "mid-run snapshot should not already hold the converged bits"
    );
    for gid in 0..8u32 {
        assert!(
            fin.group_epoch(gid).unwrap() > mid.group_epoch(gid).unwrap(),
            "group {gid} epoch must advance"
        );
    }
}

/// Edge cases, each checked against the scatter-gather reference:
/// `k == 0`, candidates nobody owns, duplicates, and `k` beyond the page
/// count (the store's beyond-cap fallback path).
#[test]
fn query_edge_cases_match_scatter_gather() {
    let (g, mut sim) = build_sim(5);
    sim.run_until(80.0);
    let store = RankStore::new(8);
    store.publish_rankers(sim.actors());
    let v = store.view();
    let nodes = sim.actors();

    // k == 0.
    assert!(v.top_k(0).is_empty());
    assert!(distributed_top_k(nodes, 0, None).is_empty());
    assert!(v.top_k_candidates(0, &[1, 2, 3]).is_empty());
    assert!(local_top_k(&nodes[0], 0, None).is_empty());

    // All candidates unowned (beyond the page space).
    let ghosts: Vec<PageId> = (0..10).map(|i| g.n_pages() as u32 + i).collect();
    assert!(v.top_k_candidates(5, &ghosts).is_empty());
    assert!(distributed_top_k(nodes, 5, Some(&ghosts)).is_empty());
    assert!(v.lookup(ghosts[0]).is_none());

    // Mixed owned/unowned with duplicates still agrees bit-for-bit.
    let mixed: Vec<PageId> = vec![5, 5, g.n_pages() as u32 + 1, 17, 5, 17];
    assert_hits_bits_equal(
        &v.top_k_candidates(10, &mixed),
        &distributed_top_k(nodes, 10, Some(&mixed)),
        "mixed candidates",
    );

    // k far beyond the page count and the store's topk cap: the fallback
    // merge returns every page, same order, same bits.
    let all_store = v.top_k(g.n_pages() + 50);
    let all_live = distributed_top_k(nodes, g.n_pages() + 50, None);
    assert_eq!(all_store.len(), g.n_pages());
    assert_hits_bits_equal(&all_store, &all_live, "full-ranking fallback");
}

/// Readers racing a publisher that alternates between two whole-system
/// states never observe a torn view: every view is entirely state A or
/// entirely state B, versions are monotone, and the pinned-epoch contract
/// holds under real thread interleavings.
#[test]
fn store_reads_race_epoch_publication() {
    // Two groups, two states with distinguishable exact bit patterns.
    const A0: [f64; 2] = [1.0, 2.0];
    const A1: [f64; 1] = [3.0];
    const B0: [f64; 2] = [5.0, 0.5];
    const B1: [f64; 1] = [0.25];
    let store = Arc::new(RankStore::new(4));
    store.publish([
        GroupPublish { group: 0, epoch: 0, pages: &[0, 1], ranks: &A0 },
        GroupPublish { group: 1, epoch: 0, pages: &[2], ranks: &A1 },
    ]);

    const ROUNDS: u64 = 400;
    // On a single-core host the writer can finish all its publishes
    // before any reader is scheduled, so it yields until some reader has
    // snapped a view of the current epoch (bounded, in case the readers
    // already exited) — forcing genuine interleaving.
    let reads = Arc::new(AtomicU64::new(0));
    let writer = {
        let store = Arc::clone(&store);
        let reads = Arc::clone(&reads);
        std::thread::spawn(move || {
            for epoch in 1..=ROUNDS {
                let (r0, r1): (&[f64], &[f64]) =
                    if epoch % 2 == 0 { (&A0, &A1) } else { (&B0, &B1) };
                assert!(store.publish([
                    GroupPublish { group: 0, epoch, pages: &[0, 1], ranks: r0 },
                    GroupPublish { group: 1, epoch, pages: &[2], ranks: r1 },
                ]));
                let before = reads.load(Ordering::Relaxed);
                for _ in 0..10_000 {
                    if reads.load(Ordering::Relaxed) != before {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        })
    };

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let store = Arc::clone(&store);
            let reads = Arc::clone(&reads);
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                let mut saw_both = [false; 2];
                loop {
                    let v = store.view();
                    reads.fetch_add(1, Ordering::Relaxed);
                    assert!(v.version() >= last_version, "versions must be monotone per reader");
                    last_version = v.version();
                    let p0 = v.lookup(0).unwrap();
                    let p2 = v.lookup(2).unwrap();
                    // Whole-batch atomicity: group 0's state implies
                    // group 1's, and both carry the same epoch.
                    if p0.rank.to_bits() == A0[0].to_bits() {
                        assert_eq!(p2.rank.to_bits(), A1[0].to_bits(), "torn A/B view");
                        saw_both[0] = true;
                    } else {
                        assert_eq!(p0.rank.to_bits(), B0[0].to_bits());
                        assert_eq!(p2.rank.to_bits(), B1[0].to_bits(), "torn B/A view");
                        saw_both[1] = true;
                    }
                    assert_eq!(p0.epoch, p2.epoch, "groups from different publishes");
                    // The precomputed top-k belongs to the same state.
                    let top = v.top_k(1)[0];
                    let want = if p0.rank.to_bits() == A0[0].to_bits() {
                        A1[0] // state A: page 2 at 3.0 wins
                    } else {
                        B0[0] // state B: page 0 at 5.0 wins
                    };
                    assert_eq!(top.rank.to_bits(), want.to_bits(), "top-k from a different state");
                    if v.version() >= ROUNDS {
                        break saw_both;
                    }
                }
            })
        })
        .collect();

    writer.join().expect("writer panicked");
    let mut union = [false; 2];
    for r in readers {
        let saw = r.join().expect("reader panicked");
        union[0] |= saw[0];
        union[1] |= saw[1];
    }
    assert!(
        union[0] && union[1],
        "readers never observed both states ({union:?}) — the race never happened"
    );
    assert_eq!(store.view().version(), 1 + ROUNDS);
}

/// The netrun publication hook: the engine publishes after every sample
/// slice, the final view equals `final_ranks` bit-for-bit, and attaching
/// a store does not perturb the run.
#[test]
fn netrun_publishes_epoch_snapshots_bit_neutrally() {
    let g = edu_domain(&EduDomainConfig::small());
    let cfg = NetRunConfig {
        k: 8,
        n_nodes: 8,
        t_end: 60.0,
        sample_every: 5.0,
        ..NetRunConfig::default()
    };
    let store = RankStore::new(10).with_sites(site_map(&g), g.n_sites());
    let with_store =
        try_run_over_network_with_store(&g, cfg.clone(), Some(&store)).expect("run failed");
    let without = try_run_over_network_with_store(&g, cfg, None).expect("run failed");

    // Bit-neutral: publication is observation only.
    assert_eq!(with_store.final_ranks.len(), without.final_ranks.len());
    for (a, b) in with_store.final_ranks.iter().zip(&without.final_ranks) {
        assert_eq!(a.to_bits(), b.to_bits(), "attaching a store changed the run");
    }
    assert_eq!(with_store.counters, without.counters);

    // The final view is the final ranking, exactly.
    let v = store.view();
    assert!(v.version() >= 2, "multiple slices must have published");
    let want: Vec<u32> = metrics::top_k(&with_store.final_ranks, 10);
    let got = v.top_k(10);
    assert_eq!(got.iter().map(|h| h.page).collect::<Vec<_>>(), want);
    for h in &got {
        assert_eq!(h.rank.to_bits(), with_store.final_ranks[h.page as usize].to_bits());
    }
    assert_eq!(v.n_pages(), g.n_pages());
    let totals = v.site_totals().expect("sites configured");
    let direct: f64 = with_store.final_ranks.iter().sum();
    assert!((totals.iter().sum::<f64>() - direct).abs() <= 1e-9 * direct.max(1.0));
    let stats = store.stats();
    assert!(stats.publishes >= 2, "stats: {stats:?}");
}
