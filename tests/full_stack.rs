//! The deepest integration path in the repository: a hidden web is crawled
//! by cooperating agents, the dataset is partitioned by site, ranking runs
//! with `Y` exchanged *through a live Pastry overlay*, a ranker crashes and
//! recovers, and the converged state answers top-k queries — every crate in
//! one scenario.

use dpr::core::metrics::top_k;
use dpr::core::{open_pagerank, try_run_over_network, NetRunConfig, RankConfig, Transmission};
use dpr::crawl::crawler::parallel_crawl;
use dpr::crawl::{crawl_to_graph, CrawlBudget, HiddenWeb, HiddenWebConfig, Mode};
use dpr::linalg::vec_ops::relative_error;
use dpr::partition::Strategy;

#[test]
fn crawl_rank_over_overlay_crash_and_query() {
    // 1. Crawl.
    let web = HiddenWeb::new(HiddenWebConfig {
        total_pages: 12_000,
        n_sites: 24,
        ..HiddenWebConfig::default()
    });
    let crawl = parallel_crawl(&web, 4, Mode::Exchange, CrawlBudget { max_pages: 1_500 });
    let g = crawl_to_graph(&web, &crawl.fetched);
    assert!(g.n_external_links() > 0, "partial crawl must leak links");

    // 2. Rank over a live overlay with a mid-run crash.
    let res = try_run_over_network(
        &g,
        NetRunConfig {
            k: 24,
            n_nodes: 24,
            transmission: Transmission::Indirect,
            strategy: Strategy::HashBySite,
            t_end: 400.0,
            sample_every: 2.0,
            departures: vec![(150.0, 2)],
            ..NetRunConfig::default()
        },
    )
    .expect("config schedules no unsupported churn");
    assert!(res.final_rel_err < 1e-3, "rel err {}", res.final_rel_err);

    // 3. The overlay-routed result matches plain centralized ranking.
    let star = open_pagerank(&g, &RankConfig::default()).ranks;
    assert!(relative_error(&res.final_ranks, &star) < 1e-3);

    // 4. Query the converged state: distributed and centralized top-10
    //    agree.
    let got = top_k(&res.final_ranks, 10);
    let want = top_k(&star, 10);
    let overlap = got.iter().filter(|p| want.contains(p)).count();
    assert!(overlap >= 9, "top-10 overlap only {overlap}");

    // 5. And the winners are real crawled pages with URLs.
    for &p in &got[..3] {
        assert!(g.url_of(p).starts_with("http://"));
    }
}
