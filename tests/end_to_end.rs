//! End-to-end integration: graph generation → partitioning → group build →
//! asynchronous simulation → convergence against the centralized baseline,
//! across datasets, strategies, variants and failure levels.

use dpr::core::metrics::{sampled_order_agreement, top_k_overlap};
use dpr::core::{open_pagerank, run_distributed, DistributedRunConfig, DprVariant, RankConfig};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::graph::generators::{random, toy};
use dpr::partition::Strategy;

fn small_edu() -> dpr::graph::WebGraph {
    edu_domain(&EduDomainConfig { n_pages: 4_000, n_sites: 25, ..EduDomainConfig::default() })
}

fn base_cfg() -> DistributedRunConfig {
    DistributedRunConfig {
        k: 16,
        strategy: Strategy::HashBySite,
        t1: 0.5,
        t2: 3.0,
        t_end: 250.0,
        sample_every: 2.5,
        ..DistributedRunConfig::default()
    }
}

#[test]
fn dpr1_matches_cpr_on_edu_graph() {
    let g = small_edu();
    let res = run_distributed(&g, base_cfg());
    assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
    // The rankings agree, not just the error norm.
    assert!(sampled_order_agreement(&res.final_ranks, &res.reference_ranks, 20_000, 7) > 0.999);
    assert_eq!(top_k_overlap(&res.final_ranks, &res.reference_ranks, 50), 1.0);
}

#[test]
fn dpr2_matches_cpr_on_edu_graph() {
    let g = small_edu();
    let res = run_distributed(
        &g,
        DistributedRunConfig { variant: DprVariant::Dpr2, t_end: 400.0, ..base_cfg() },
    );
    assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
}

#[test]
fn all_strategies_converge_to_the_same_ranks() {
    let g = small_edu();
    let star = open_pagerank(&g, &RankConfig::default()).ranks;
    for strategy in [Strategy::Random { seed: 5 }, Strategy::HashByUrl, Strategy::HashBySite] {
        let res = run_distributed(&g, DistributedRunConfig { strategy, ..base_cfg() });
        let err = dpr::linalg::vec_ops::relative_error(&res.final_ranks, &star);
        assert!(err < 1e-4, "{} strategy rel err {err}", strategy.name());
    }
}

#[test]
fn convergence_survives_heavy_message_loss() {
    let g = small_edu();
    let res = run_distributed(
        &g,
        DistributedRunConfig { send_success_prob: 0.3, t_end: 600.0, ..base_cfg() },
    );
    assert!(res.final_rel_err < 1e-3, "rel err {} at p = 0.3", res.final_rel_err);
    let drop_rate =
        res.sim_stats.sends_dropped as f64 / res.sim_stats.sends_attempted.max(1) as f64;
    assert!((0.6..0.8).contains(&drop_rate), "drop rate {drop_rate} should be ~0.7");
}

#[test]
fn k_exceeding_page_count_works() {
    // More rankers than pages: most groups empty, system still converges.
    let g = toy::two_cliques(3);
    let res = run_distributed(
        &g,
        DistributedRunConfig { k: 64, strategy: Strategy::HashByUrl, ..base_cfg() },
    );
    assert!(res.final_rel_err < 1e-4);
    assert!(res.active_groups <= g.n_pages());
}

#[test]
fn single_ranker_degenerates_to_cpr() {
    let g = small_edu();
    let res = run_distributed(&g, DistributedRunConfig { k: 1, ..base_cfg() });
    assert!(res.final_rel_err < 1e-6, "K=1 must match CPR almost exactly");
    assert_eq!(res.active_groups, 1);
    assert_eq!(res.sim_stats.sends_attempted, 0, "one group has nobody to talk to");
}

#[test]
fn random_graph_without_site_structure_converges() {
    let g = random::erdos_renyi(2_000, 10, 8.0, 3);
    let res =
        run_distributed(&g, DistributedRunConfig { strategy: Strategy::HashByUrl, ..base_cfg() });
    assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
}

#[test]
fn copy_model_graph_with_hubs_converges() {
    let g = random::copy_model(2_000, 10, 8, 0.8, 9);
    let res = run_distributed(&g, base_cfg());
    assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
}

#[test]
fn deterministic_runs_per_seed() {
    let g = toy::two_cliques(4);
    let run = || run_distributed(&g, DistributedRunConfig { seed: 77, ..base_cfg() });
    let a = run();
    let b = run();
    assert_eq!(a.final_ranks, b.final_ranks);
    assert_eq!(a.sim_stats, b.sim_stats);
    assert_eq!(a.rel_err.points(), b.rel_err.points());
}

#[test]
fn reference_is_reproducible_from_result() {
    // The result carries its own reference; recomputing CPR must agree.
    let g = small_edu();
    let res = run_distributed(&g, base_cfg());
    let star = open_pagerank(&g, &RankConfig::default()).ranks;
    assert_eq!(res.reference_ranks, star);
}
