//! Property-based verification of the dirty-row external-contribution
//! cache: across random update arrival patterns (set vs merge, arbitrary
//! sources, arbitrary row subsets, interleaved refreshes) the cached
//! [`AfferentState`] must materialize an `X` vector that is **bit-for-bit**
//! identical to the full-rebuild baseline — floating-point addition is not
//! associative, so this only holds because both modes sum each row's
//! contributions from scratch in ascending source order.

use dpr::core::AfferentState;
use proptest::prelude::*;

fn bits(x: &[f64]) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Random op sequences, including the zero-update extreme (a refresh
    /// before anything arrived, and ops whose entry set filters to empty).
    #[test]
    fn dirty_row_cache_matches_full_rebuild_bit_for_bit(
        n in 1usize..40,
        ops in prop::collection::vec(
            (
                0u32..8,                                              // source group
                any::<bool>(),                                        // merge vs set
                any::<bool>(),                                        // refresh afterwards?
                prop::collection::vec((0u32..40, -1.0f64..1.0), 0..=40),
            ),
            0..60,
        ),
    ) {
        let mut cached = AfferentState::new(n);
        let mut full = AfferentState::new_full_rebuild(n);
        // Zero-update extreme: refreshing before any arrival is a no-op.
        prop_assert_eq!(bits(cached.refresh()), bits(full.refresh()));
        for (src, is_merge, refresh_after, mut raw) in ops {
            // Sort and deduplicate by row, keeping only rows the group owns
            // — ascending unique local indices, what `localize` guarantees
            // in production.
            raw.sort_by_key(|&(li, _)| li);
            raw.dedup_by_key(|&mut (li, _)| li);
            let entries: Vec<(u32, f64)> =
                raw.into_iter().filter(|&(li, _)| (li as usize) < n).collect();
            if is_merge {
                cached.merge(src, &entries);
                full.merge(src, &entries);
            } else {
                cached.set(src, entries.clone());
                full.set(src, entries);
            }
            if refresh_after {
                prop_assert_eq!(bits(cached.refresh()), bits(full.refresh()));
            }
        }
        prop_assert_eq!(bits(cached.refresh()), bits(full.refresh()));
        prop_assert_eq!(cached.n_sources(), full.n_sources());
        // The cache must never do *more* row work than the full rebuild.
        prop_assert!(cached.rows_recomputed() <= full.rows_recomputed());
    }
}

/// The all-updated extreme: when every source re-publishes every row each
/// round, the cache has nothing to skip — it must degrade gracefully to
/// exactly the full rebuild's work and bits.
#[test]
fn all_rows_updated_every_round_still_bit_identical() {
    let n = 16usize;
    let mut cached = AfferentState::new(n);
    let mut full = AfferentState::new_full_rebuild(n);
    for round in 0..20u32 {
        for src in 0..4u32 {
            let entries: Vec<(u32, f64)> =
                (0..n as u32).map(|li| (li, f64::from(round * 31 + src * 7 + li) * 0.01)).collect();
            cached.set(src, entries.clone());
            full.set(src, entries);
        }
        assert_eq!(bits(cached.refresh()), bits(full.refresh()), "round {round}");
    }
    // Every row was stale at every refresh: identical work on both sides.
    assert_eq!(cached.rows_recomputed(), full.rows_recomputed());
}

/// A replaced source whose new `Y` no longer touches a row must retract its
/// old contribution from that row (the regression the inverted index could
/// get wrong silently).
#[test]
fn replacement_retracts_abandoned_rows() {
    let mut cached = AfferentState::new(4);
    let mut full = AfferentState::new_full_rebuild(4);
    for st in [&mut cached, &mut full] {
        st.set(0, vec![(0, 1.0), (2, 2.0)]);
        st.set(1, vec![(2, 0.5)]);
        st.refresh();
        // Source 0 re-publishes without row 2: row 2 must fall back to
        // source 1's contribution alone.
        st.set(0, vec![(0, 3.0), (1, 0.25)]);
    }
    assert_eq!(cached.refresh(), &[3.0, 0.25, 0.5, 0.0]);
    assert_eq!(bits(cached.refresh()), bits(full.refresh()));
    // Rows 0/1/2 went stale; row 3 was never touched.
    assert!(cached.rows_recomputed() < full.rows_recomputed());
}
