//! Reduced-scale versions of the paper's figures as regression tests: the
//! *shapes* the paper reports must hold on every commit, not only when the
//! full experiment binaries are run by hand.

use dpr::core::centralized::open_pagerank_iterations_to;
use dpr::core::{run_distributed, DistributedRunConfig, DprVariant, RankConfig};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::model::table1;
use dpr::partition::{Partition, PartitionMetrics, Strategy};

fn graph() -> dpr::graph::WebGraph {
    edu_domain(&EduDomainConfig { n_pages: 5_000, n_sites: 40, ..EduDomainConfig::default() })
}

fn fig_cfg(p: f64, t1: f64, t2: f64) -> DistributedRunConfig {
    DistributedRunConfig {
        k: 40,
        strategy: Strategy::HashBySite,
        t1,
        t2,
        send_success_prob: p,
        t_end: 120.0,
        sample_every: 2.0,
        seed: 11,
        ..DistributedRunConfig::default()
    }
}

/// FIG6 shape: all three settings converge; the reliable/fast setting (A)
/// reaches the threshold no later than the lossy/slow one (C).
#[test]
fn fig6_shape_reliable_beats_lossy_slow() {
    let g = graph();
    let a = run_distributed(&g, fig_cfg(1.0, 0.0, 6.0));
    let c = run_distributed(&g, fig_cfg(0.7, 0.0, 15.0));
    assert!(a.final_rel_err < 1e-3);
    assert!(c.final_rel_err < 1e-2);
    let ta = a.rel_err.first_time_below(0.01).expect("A must reach 1%");
    let tc = c.rel_err.first_time_below(0.01).expect("C must reach 1%");
    assert!(ta <= tc, "A at {ta} should beat C at {tc}");
    // And errors decrease overall.
    let pts = a.rel_err.points();
    assert!(pts.first().unwrap().1 > 10.0 * pts.last().unwrap().1.max(1e-12));
}

/// FIG7 shape: DPR1's average-rank sequence is monotone and converges to a
/// leakage-determined value well below E = 1.
#[test]
fn fig7_shape_monotone_rank_below_one() {
    let g = graph();
    let res = run_distributed(
        &g,
        DistributedRunConfig { track_theorems: true, ..fig_cfg(0.7, 0.0, 6.0) },
    );
    assert!(res.avg_rank.is_monotone_nondecreasing(1e-9));
    let last = res.avg_rank.last_value().unwrap();
    assert!((0.1..0.6).contains(&last), "converged avg rank {last}");
    let (monotone, bounded) = res.theorems_held.unwrap();
    assert!(monotone && bounded);
}

/// FIG8 shape: DPR1 needs fewer outer iterations than DPR2, and K has
/// limited effect on DPR1.
#[test]
fn fig8_shape_dpr1_beats_dpr2_and_k_is_flat() {
    let g = graph();
    let run = |k: usize, variant: DprVariant| {
        run_distributed(
            &g,
            DistributedRunConfig {
                k,
                variant,
                t1: 15.0,
                t2: 15.0,
                t_end: 1_200.0,
                sample_every: 1.0,
                ..fig_cfg(1.0, 15.0, 15.0)
            },
        )
        .mean_outer_iters_at_threshold
        .expect("must converge")
    };
    let dpr1_k10 = run(10, DprVariant::Dpr1);
    let dpr1_k80 = run(80, DprVariant::Dpr1);
    let dpr2_k10 = run(10, DprVariant::Dpr2);
    assert!(
        dpr1_k10 < dpr2_k10,
        "DPR1 ({dpr1_k10}) must converge in fewer outer iterations than DPR2 ({dpr2_k10})"
    );
    let ratio = dpr1_k10.max(dpr1_k80) / dpr1_k10.min(dpr1_k80);
    assert!(ratio < 3.0, "K changed DPR1 iterations by {ratio}x");
    // CPR is in the same ballpark as DPR2-style stepping.
    let cpr = open_pagerank_iterations_to(&g, &RankConfig::default(), 1e-4);
    assert!((5..=60).contains(&cpr), "CPR iterations {cpr} out of expected band");
}

/// TAB1 shape: the paper's published numbers come out of the model.
#[test]
fn table1_shape() {
    let rows = table1();
    assert_eq!(rows.len(), 3);
    assert!((rows[0].min_iteration_interval_secs - 7_500.0).abs() < 1.0);
    // Interval grows with N (more hops) while per-node bandwidth falls.
    assert!(rows[0].min_iteration_interval_secs < rows[2].min_iteration_interval_secs);
    assert!(rows[0].min_bottleneck_bytes_per_sec > rows[2].min_bottleneck_bytes_per_sec);
}

/// ABL-PARTITION shape: hash-by-site cuts several times fewer links than
/// the page-granularity strategies on a site-structured crawl.
#[test]
fn partition_ablation_shape() {
    let g = graph();
    let k = 32;
    let cut =
        |s: Strategy| PartitionMetrics::compute(&g, &Partition::build(&g, &s, k, 0)).cut_fraction;
    let site = cut(Strategy::HashBySite);
    let url = cut(Strategy::HashByUrl);
    let rnd = cut(Strategy::Random { seed: 2 });
    assert!(site * 3.0 < url, "site {site} vs url {url}");
    assert!(site * 3.0 < rnd, "site {site} vs random {rnd}");
}
