//! The complete production pipeline of the paper's Fig 1, end to end:
//! hidden web `W` → parallel crawl → crawled dataset `C` → site partition
//! into groups `G` → distributed ranking → agreement with centralized
//! ranks. Nothing in this test is configured to match — every statistic is
//! *measured* along the way.

use dpr::core::{run_distributed, DistributedRunConfig};
use dpr::crawl::crawler::parallel_crawl;
use dpr::crawl::{crawl_bfs, crawl_to_graph, CrawlBudget, HiddenWeb, HiddenWebConfig, Mode};
use dpr::graph::GraphStats;
use dpr::partition::{Partition, PartitionMetrics, Strategy};

fn hidden_web() -> HiddenWeb {
    HiddenWeb::new(HiddenWebConfig {
        total_pages: 30_000,
        n_sites: 40,
        ..HiddenWebConfig::default()
    })
}

#[test]
fn crawl_then_rank_end_to_end() {
    let web = hidden_web();
    // Crawl a third of the web with 4 exchange-mode agents.
    let crawl = parallel_crawl(&web, 4, Mode::Exchange, CrawlBudget { max_pages: 2_500 });
    let g = crawl_to_graph(&web, &crawl.fetched);
    let stats = GraphStats::compute(&g);

    // The crawled dataset shows the paper's dataset shape, measured.
    assert!(stats.internal_fraction < 0.95, "partial crawl must leak");
    assert!(stats.intra_site_fraction > 0.8, "locality must survive");

    // Partition by site and rank distributedly.
    let res = run_distributed(
        &g,
        DistributedRunConfig {
            k: 20,
            strategy: Strategy::HashBySite,
            t1: 0.5,
            t2: 2.0,
            send_success_prob: 0.8,
            t_end: 200.0,
            sample_every: 2.0,
            ..DistributedRunConfig::default()
        },
    );
    assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);

    // Leakage pushes the average rank below the rank source.
    let avg = res.avg_rank.last_value().unwrap();
    assert!(avg < 1.0, "avg rank {avg} should reflect leakage");
}

#[test]
fn exchange_crawl_produces_lower_cut_partitions_than_random_pages() {
    // The crawl's site structure is what makes §4.1's recommendation
    // matter: site-hash partitioning of the *crawled* graph must beat
    // URL-hash by a wide margin.
    let web = hidden_web();
    let crawl = crawl_bfs(&web, CrawlBudget { max_pages: 6_000 });
    let g = crawl_to_graph(&web, &crawl.fetched);
    let k = 16;
    let site = PartitionMetrics::compute(&g, &Partition::build(&g, &Strategy::HashBySite, k, 0));
    let url = PartitionMetrics::compute(&g, &Partition::build(&g, &Strategy::HashByUrl, k, 0));
    assert!(
        site.cut_fraction * 2.0 < url.cut_fraction,
        "site {} vs url {}",
        site.cut_fraction,
        url.cut_fraction
    );
}

#[test]
fn mode_tradeoffs_match_the_cited_paper() {
    // [16]'s qualitative table: firewall loses coverage, cross-over wastes
    // fetches, exchange pays communication — and nothing else.
    let web = hidden_web();
    let budget = CrawlBudget { max_pages: usize::MAX };
    let firewall = parallel_crawl(&web, 5, Mode::Firewall, budget);
    let crossover = parallel_crawl(&web, 5, Mode::CrossOver, budget);
    let exchange = parallel_crawl(&web, 5, Mode::Exchange, budget);

    assert!(firewall.fetched.len() < exchange.fetched.len());
    assert_eq!(firewall.outcome.urls_exchanged, 0);
    assert_eq!(firewall.outcome.overlap, 0);

    assert_eq!(crossover.fetched.len(), exchange.fetched.len());
    assert!(crossover.outcome.overlap > 0);
    assert_eq!(crossover.outcome.urls_exchanged, 0);

    assert_eq!(exchange.outcome.overlap, 0);
    assert!(exchange.outcome.urls_exchanged > 0);
}

#[test]
fn recrawling_the_same_web_is_partition_stable() {
    // Two crawls of the same hidden web at different budgets: every page
    // in both crawls keeps its ranker under hash-by-site (§4.1's re-crawl
    // requirement), even though its dense id differs between datasets.
    let web = hidden_web();
    let crawl1 = crawl_bfs(&web, CrawlBudget { max_pages: 2_000 });
    let crawl2 = crawl_bfs(&web, CrawlBudget { max_pages: 4_000 });
    let g1 = crawl_to_graph(&web, &crawl1.fetched);
    let g2 = crawl_to_graph(&web, &crawl2.fetched);
    let k = 12;
    let s = Strategy::HashBySite;
    let p1 = Partition::build(&g1, &s, k, 0);
    let p2 = Partition::build(&g2, &s, k, 1);
    // Match pages across crawls by hidden-web id.
    let dense2: std::collections::HashMap<u64, u32> =
        crawl2.fetched.iter().enumerate().map(|(i, &wp)| (wp, i as u32)).collect();
    for (i1, &wp) in crawl1.fetched.iter().enumerate() {
        let i2 = dense2[&wp]; // budget 4000 ⊇ budget 2000 under BFS order
        assert_eq!(
            p1.group_of(i1 as u32),
            p2.group_of(i2),
            "page {wp} moved rankers between crawls"
        );
    }
}
