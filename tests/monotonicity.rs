//! Property-based verification of the paper's theory across random
//! configurations: Theorems 4.1/4.2 (DPR1 monotone, bounded), the appendix
//! lemmas, and convergence of the open-system solver — driven by proptest.

use dpr::core::{run_distributed, DistributedRunConfig, DprVariant};
use dpr::graph::generators::random;
use dpr::linalg::{theory, TripletMatrix};
use dpr::partition::Strategy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Theorems 4.1 & 4.2 on random graphs, K, loss rates and schedules:
    /// every node's rank sequence is monotone non-decreasing and bounded by
    /// the centralized fixed point.
    #[test]
    fn dpr1_rank_sequences_monotone_and_bounded(
        n in 20usize..200,
        k in 2usize..12,
        p in 0.3f64..=1.0,
        t2 in 1.0f64..8.0,
        seed in 0u64..1000,
    ) {
        let g = random::erdos_renyi(n, 4, 5.0, seed);
        let res = run_distributed(&g, DistributedRunConfig {
            k,
            variant: DprVariant::Dpr1,
            strategy: Strategy::HashByUrl,
            t1: 0.0,
            t2,
            send_success_prob: p,
            seed,
            t_end: 60.0,
            sample_every: 5.0,
            track_theorems: true,
            ..DistributedRunConfig::default()
        });
        let (monotone, bounded) = res.theorems_held.unwrap();
        prop_assert!(monotone, "Theorem 4.1 violated (n={n}, k={k}, p={p})");
        prop_assert!(bounded, "Theorem 4.2 violated (n={n}, k={k}, p={p})");
        // The global average-rank series inherits monotonicity.
        prop_assert!(res.avg_rank.is_monotone_nondecreasing(1e-9));
    }

    /// Same properties for DPR2 (which requires R0 = 0 — our default).
    #[test]
    fn dpr2_rank_sequences_monotone_and_bounded(
        n in 20usize..150,
        k in 2usize..8,
        seed in 0u64..1000,
    ) {
        let g = random::copy_model(n, 4, 5, 0.6, seed);
        let res = run_distributed(&g, DistributedRunConfig {
            k,
            variant: DprVariant::Dpr2,
            strategy: Strategy::HashByUrl,
            t1: 0.5,
            t2: 2.0,
            seed,
            t_end: 80.0,
            sample_every: 5.0,
            track_theorems: true,
            ..DistributedRunConfig::default()
        });
        let (monotone, bounded) = res.theorems_held.unwrap();
        prop_assert!(monotone);
        prop_assert!(bounded);
    }

    /// Appendix Lemma 1: non-negative fixed points of random contractions.
    #[test]
    fn lemma1_nonneg_fixed_point(
        dim in 1usize..30,
        entries in prop::collection::vec((0usize..30, 0usize..30, 0.0f64..0.2), 0..60),
        f_scale in 0.0f64..10.0,
        seed in 0u64..100,
    ) {
        let mut t = TripletMatrix::new(dim, dim);
        for (r, c, v) in entries {
            if r < dim && c < dim {
                t.push(r, c, v / dim as f64); // keep ||A||inf < 1
            }
        }
        let a = t.to_csr();
        prop_assume!(a.inf_norm() < 1.0);
        let f: Vec<f64> = (0..dim).map(|i| f_scale * ((i as u64 ^ seed) % 7) as f64 / 7.0).collect();
        prop_assert!(theory::check_lemma1_nonneg_fixed_point(&a, &f, 1e-9));
    }

    /// Appendix Lemma 2: the fixed point is monotone in f.
    #[test]
    fn lemma2_monotone_in_f(
        dim in 1usize..25,
        entries in prop::collection::vec((0usize..25, 0usize..25, 0.0f64..0.15), 0..50),
        bump in prop::collection::vec(0.0f64..3.0, 1..25),
    ) {
        let mut t = TripletMatrix::new(dim, dim);
        for (r, c, v) in entries {
            if r < dim && c < dim {
                t.push(r, c, v / dim as f64);
            }
        }
        let a = t.to_csr();
        prop_assume!(a.inf_norm() < 1.0);
        let f2: Vec<f64> = (0..dim).map(|i| i as f64 * 0.1).collect();
        let f1: Vec<f64> =
            f2.iter().enumerate().map(|(i, v)| v + bump.get(i % bump.len()).copied().unwrap_or(0.0)).collect();
        prop_assert!(theory::check_lemma2_monotone_in_f(&a, &f1, &f2, 1e-9));
    }

    /// Theorem 3.3's stopping rule: wherever the solver reports
    /// convergence, the true error is within the certified bound.
    #[test]
    fn contraction_error_bound_sound(
        dim in 2usize..20,
        density in 1usize..5,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(dim, dim);
        for r in 0..dim {
            for _ in 0..density {
                let c = rng.gen_range(0..dim);
                t.push(r, c, rng.gen_range(0.0..0.8 / density as f64));
            }
        }
        let a = t.to_csr();
        prop_assume!(a.inf_norm() < 1.0);
        let f: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();

        // Loose solve, then tight solve as "truth".
        let solver = dpr::linalg::FixedPointSolver { tolerance: 1e-4, max_iters: 10_000, ..Default::default() };
        let mut x = vec![0.0; dim];
        let report = solver.solve(&a, &f, &mut x);
        prop_assert!(report.converged);
        let mut x_star = vec![0.0; dim];
        dpr::linalg::FixedPointSolver::new(1e-14).solve(&a, &f, &mut x_star);
        let true_err = dpr::linalg::vec_ops::l1_diff(&x, &x_star);
        let bound = report.error_bound.expect("contraction certified");
        prop_assert!(true_err <= bound + 1e-9, "true {true_err} > bound {bound}");
    }
}
