//! Whole-system fault-injection tests: the ack/retry/dedup protocol
//! rescuing convergence under heavy loss, Chord surviving node crashes,
//! a network partition healing, bounded retry budgets on a dead network,
//! and bit-exact replay of faulty runs.

use dpr::core::{
    try_run_over_network, NetRunConfig, NetRunResult, OverlayKind, Reliability, Transmission,
};
use dpr::graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr::graph::generators::toy;
use dpr::partition::Strategy;
use dpr::sim::{FaultPlan, Jitter};
use proptest::prelude::*;

/// Every config in this file schedules churn its overlay supports, so a
/// `ChurnUnsupported` error would be a test bug — unwrap it once here.
fn run_over_network(g: &dpr::graph::WebGraph, cfg: NetRunConfig) -> NetRunResult {
    try_run_over_network(g, cfg).expect("test configs use supported churn schedules")
}

/// The headline robustness claim: at 50% per-hop loss the reliable
/// protocol reaches the paper's 0.1% error threshold within a horizon
/// where silent loss does not. Loss compounds per routed hop here, so a
/// 96-node overlay makes the unreliable path lose most packages end to
/// end — yet acks + retransmits recover them.
#[test]
fn retries_beat_silent_loss_within_the_same_horizon() {
    let g = edu_domain(&EduDomainConfig { n_pages: 2_000, n_sites: 20, ..Default::default() });
    let base = NetRunConfig {
        k: 32,
        n_nodes: 96,
        transmission: Transmission::Indirect,
        strategy: Strategy::HashByUrl,
        t_end: 80.0,
        faults: Some(FaultPlan::new().with_latency(0.01).with_default_success(0.5)),
        ..NetRunConfig::default()
    };
    let silent = run_over_network(&g, base.clone());
    let reliable =
        run_over_network(&g, NetRunConfig { reliability: Some(Reliability::default()), ..base });

    assert!(
        reliable.final_rel_err < 1e-3,
        "reliable delivery should reach 0.1%: rel err {}",
        reliable.final_rel_err
    );
    assert!(reliable.rel_err.first_time_below(1e-3).is_some());
    assert!(
        silent.final_rel_err > 1e-3,
        "silent loss should still be above 0.1% at the same horizon: rel err {}",
        silent.final_rel_err
    );
    assert!(silent.rel_err.first_time_below(1e-3).is_none());
    // The win is bought with real retransmissions, and the loss is real.
    assert!(reliable.counters.retries > 0);
    assert!(reliable.counters.duplicates_suppressed > 0);
    assert!(silent.sim_stats.sends_dropped > 0);
}

/// Chord nodes crash mid-run (state lost, groups migrate to the clockwise
/// successor) and ranking still re-converges — the churn path that used
/// to panic with "Chord departures unsupported".
#[test]
fn chord_crashes_reconverge_below_threshold() {
    let g = toy::two_cliques(6);
    let res = run_over_network(
        &g,
        NetRunConfig {
            k: 24,
            n_nodes: 24,
            overlay: OverlayKind::Chord,
            strategy: Strategy::HashByUrl,
            t_end: 400.0,
            departures: vec![(60.0, 2), (90.0, 5)],
            ..NetRunConfig::default()
        },
    );
    assert!(res.final_rel_err < 1e-3, "rel err {}", res.final_rel_err);
}

/// A partition splits the overlay in half early in the run, then heals;
/// cross-cell Y-traffic is blocked during the window and ranking
/// re-converges afterwards.
#[test]
fn partition_then_heal_reconverges() {
    let g = toy::two_cliques(6);
    let side_a: Vec<usize> = (0..12).collect();
    let res = run_over_network(
        &g,
        NetRunConfig {
            k: 24,
            n_nodes: 24,
            strategy: Strategy::HashByUrl,
            t_end: 400.0,
            sample_every: 1.0,
            faults: Some(FaultPlan::new().with_latency(0.01).with_partition(10.0, 60.0, &side_a)),
            ..NetRunConfig::default()
        },
    );
    assert!(res.sim_stats.partition_dropped > 0, "the partition must drop traffic");
    let during = res.rel_err.value_at(59.0).expect("sampled during the window");
    assert!(during > 1e-3, "cross-cell rank cannot settle while partitioned: rel err {during}");
    assert!(
        res.final_rel_err < 1e-3,
        "must re-converge after healing: rel err {}",
        res.final_rel_err
    );
}

/// The fault-recovery scenarios replay bit-identically on the legacy
/// `BinaryHeap` + full-rebuild engine and the slab scheduler + dirty-row
/// cache: same ranks, same engine statistics, through Chord crashes with
/// state-loss migration and a partition window.
#[test]
fn legacy_and_slab_engines_agree_under_recovery_scenarios() {
    use dpr::sim::SchedulerKind;
    let g = toy::two_cliques(6);
    let side_a: Vec<usize> = (0..12).collect();
    let scenarios = [
        NetRunConfig {
            k: 24,
            n_nodes: 24,
            overlay: OverlayKind::Chord,
            strategy: Strategy::HashByUrl,
            t_end: 400.0,
            departures: vec![(60.0, 2), (90.0, 5)],
            ..NetRunConfig::default()
        },
        NetRunConfig {
            k: 24,
            n_nodes: 24,
            strategy: Strategy::HashByUrl,
            t_end: 400.0,
            faults: Some(FaultPlan::new().with_latency(0.01).with_partition(10.0, 60.0, &side_a)),
            ..NetRunConfig::default()
        },
    ];
    for cfg in scenarios {
        let new = run_over_network(&g, cfg.clone());
        let old = run_over_network(
            &g,
            NetRunConfig { scheduler: SchedulerKind::BinaryHeap, ext_cache: false, ..cfg },
        );
        let new_bits: Vec<u64> = new.final_ranks.iter().map(|x| x.to_bits()).collect();
        let old_bits: Vec<u64> = old.final_ranks.iter().map(|x| x.to_bits()).collect();
        assert_eq!(new_bits, old_bits, "ranks diverged between engines");
        assert_eq!(new.sim_stats, old.sim_stats);
    }
}

/// On a network that drops everything, the retry budget is bounded: every
/// package is retransmitted at most `max_retries` times, then abandoned.
/// The run terminating at all is the termination half of the claim.
#[test]
fn dead_network_exhausts_bounded_retry_budgets() {
    let g = toy::two_cliques(4);
    let rel = Reliability { ack_timeout: 0.5, max_retries: 3, backoff: 2.0 };
    let res = run_over_network(
        &g,
        NetRunConfig {
            k: 8,
            n_nodes: 8,
            strategy: Strategy::HashByUrl,
            t_end: 60.0,
            faults: Some(FaultPlan::new().with_latency(0.01).with_default_success(0.0)),
            reliability: Some(rel),
            ..NetRunConfig::default()
        },
    );
    assert_eq!(res.counters.acks, 0, "nothing arrives, so nothing is acked");
    assert!(res.counters.retry_exhausted > 0, "budgets must actually run out");
    assert!(
        res.counters.gave_up >= res.counters.retry_exhausted,
        "every abandoned package carries at least one update: {} parts for {} packages",
        res.counters.gave_up,
        res.counters.retry_exhausted
    );
    assert!(res.counters.retries > 0);
    let originals = res.counters.data_messages - res.counters.retries;
    assert!(
        res.counters.retries <= originals * u64::from(rel.max_retries),
        "retries {} exceed budget for {} originals",
        res.counters.retries,
        originals
    );
}

/// The README's fault-injection quickstart, kept honest.
#[test]
fn readme_fault_snippet_holds() {
    let graph = toy::two_cliques(5);
    let result = run_over_network(
        &graph,
        NetRunConfig {
            k: 8,
            n_nodes: 8,
            t_end: 400.0,
            faults: Some(FaultPlan::new().with_default_success(0.7).with_partition(
                10.0,
                60.0,
                &[0, 1, 2, 3],
            )),
            reliability: Some(Reliability::default()),
            ..NetRunConfig::default()
        },
    );
    assert!(result.final_rel_err < 1e-3, "rel err {}", result.final_rel_err);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Replay determinism of the full network stack: the same seed and the
    /// same fault plan — loss, jitter, a straggler, a crash window — yield
    /// bit-identical final ranks, engine stats and protocol counters.
    #[test]
    fn same_seed_and_plan_replay_bit_identically(
        seed in any::<u64>(),
        p in 0.3f64..=1.0,
        reliable in any::<bool>(),
    ) {
        let g = toy::two_cliques(4);
        let plan = FaultPlan::new()
            .with_latency(0.01)
            .with_default_success(p)
            .with_jitter(Jitter::Uniform { max: 0.05 })
            .with_straggler(1, 2.0, 2.0)
            .with_crash(2, 20.0, 30.0);
        let cfg = NetRunConfig {
            k: 8,
            n_nodes: 8,
            strategy: Strategy::HashByUrl,
            t_end: 60.0,
            seed,
            faults: Some(plan),
            reliability: reliable.then(Reliability::default),
            ..NetRunConfig::default()
        };
        let a = run_over_network(&g, cfg.clone());
        let b = run_over_network(&g, cfg);
        prop_assert_eq!(a.final_ranks, b.final_ranks);
        prop_assert_eq!(a.sim_stats, b.sim_stats);
        prop_assert_eq!(a.counters, b.counters);
        prop_assert_eq!(a.rel_err.points(), b.rel_err.points());
    }
}
