//! Integration of the transport layer with both overlays: delivery
//! correctness, cost-model agreement, and the compression codec driven
//! through the same pipeline — plus proptest coverage of routing and the
//! wire codecs.

use dpr::overlay::id::key_from_u64;
use dpr::overlay::{ChordNetwork, Overlay, PastryNetwork};
use dpr::transport::codec::{decode_update, encode_update, PaperSizeModel};
use dpr::transport::compress::{decode_batch, encode_batch, CompressConfig};
use dpr::transport::{analytic, direct, indirect, Batch, Outgoing, RankUpdate};
use proptest::prelude::*;

fn all_to_all(n: usize) -> Vec<Outgoing> {
    (0..n)
        .map(|s| Outgoing {
            sender: s,
            batches: (0..n as u64)
                .map(|g| Batch {
                    dest_key: key_from_u64(g),
                    updates: vec![RankUpdate {
                        from_page: s as u32,
                        to_page: g as u32,
                        score: 0.25,
                    }],
                })
                .collect(),
        })
        .collect()
}

#[test]
fn indirect_delivery_correct_on_both_overlays() {
    let n = 80;
    let traffic = all_to_all(n);
    let pastry = PastryNetwork::with_nodes(n, 1);
    let chord = ChordNetwork::with_nodes(n, 2);
    for net in [&pastry as &dyn Overlay, &chord as &dyn Overlay] {
        let out = indirect::simulate(net, &traffic, &PaperSizeModel);
        assert_eq!(out.stats.delivered_updates, (n * n) as u64);
        for (node, batches) in out.delivered.iter().enumerate() {
            for b in batches {
                assert_eq!(net.responsible(b.dest_key), node);
            }
        }
    }
}

#[test]
fn direct_and_indirect_deliver_identical_payloads() {
    let n = 60;
    let traffic = all_to_all(n);
    let net = PastryNetwork::with_nodes(n, 3);
    let d = direct::simulate(&net, &traffic, &PaperSizeModel);
    let i = indirect::simulate(&net, &traffic, &PaperSizeModel);
    assert_eq!(d.delivered_updates, i.stats.delivered_updates);
}

#[test]
fn measured_costs_track_closed_forms() {
    let n = 150;
    let traffic = all_to_all(n);
    let net = PastryNetwork::with_nodes(n, 5);
    let d = direct::simulate(&net, &traffic, &PaperSizeModel);
    let i = indirect::simulate(&net, &traffic, &PaperSizeModel).stats;
    let h = dpr::overlay::avg_route_hops(&net, 2_000, 1).mean;
    let g = net.mean_neighbors();
    // Within 25% of the analytic predictions (they are first-order models).
    let s_dt = analytic::s_direct(h, n as f64);
    let s_it = analytic::s_indirect(g, n as f64);
    assert!((d.messages as f64 / s_dt - 1.0).abs() < 0.25, "{} vs {s_dt}", d.messages);
    assert!(i.messages as f64 <= s_it * 1.25, "{} vs {s_it}", i.messages);
}

#[test]
fn chord_needs_more_hops_than_pastry_at_same_scale() {
    let n = 2_000;
    let p = dpr::overlay::avg_route_hops(&PastryNetwork::with_nodes(n, 7), 1_000, 1).mean;
    let c = dpr::overlay::avg_route_hops(&ChordNetwork::with_nodes(n, 7), 1_000, 1).mean;
    assert!(c > p, "chord {c} should exceed pastry {p} (base 2 vs base 16 routing)");
}

#[test]
fn compressed_batches_survive_indirect_transport() {
    // Compress -> ship through the overlay -> decode: scores must survive
    // at f32 precision end to end.
    let n = 40;
    let net = PastryNetwork::with_nodes(n, 9);
    let updates: Vec<RankUpdate> = (0..500)
        .map(|i| RankUpdate { from_page: i * 3 % 97, to_page: i % 31, score: f64::from(i) * 1e-3 })
        .collect();
    let key = key_from_u64(7);
    let encoded = encode_batch(&updates, &CompressConfig::default());
    let traffic = vec![Outgoing {
        sender: 0,
        batches: vec![Batch { dest_key: key, updates: updates.clone() }],
    }];
    let out = indirect::simulate(&net, &traffic, &PaperSizeModel);
    let dest = net.responsible(key);
    let delivered = &out.delivered[dest][0].updates;
    let decoded = decode_batch(&encoded).unwrap();
    assert_eq!(delivered.len(), decoded.len());
    let sum_d: f64 = delivered.iter().map(|u| u.score).sum();
    let sum_c: f64 = decoded.iter().map(|u| u.score).sum();
    assert!((sum_d - sum_c).abs() < 1e-3);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Routing invariant: from any source, any key reaches the globally
    /// responsible node on both overlays, within a logarithmic-ish bound.
    #[test]
    fn routing_always_reaches_responsible(
        n in 2usize..300,
        seed in 0u64..100,
        keys in prop::collection::vec(any::<u64>(), 1..20),
        src_pick in any::<u64>(),
    ) {
        let pastry = PastryNetwork::with_nodes(n, seed);
        let chord = ChordNetwork::with_nodes(n, seed ^ 0xFF);
        let src = (src_pick % n as u64) as usize;
        for k in keys {
            let key = key_from_u64(k);
            for net in [&pastry as &dyn Overlay, &chord as &dyn Overlay] {
                let resp = net.responsible(key);
                let path = net.route(src, key);
                prop_assert_eq!(path.last().copied().unwrap_or(src), resp);
                prop_assert!(path.len() <= 3 * (n.ilog2() as usize + 4));
            }
        }
    }

    /// Wire codec round-trip for arbitrary URLs and scores.
    #[test]
    fn url_codec_roundtrip(
        from in "[a-z0-9./:?=_-]{1,120}",
        to in "[a-z0-9./:?=_-]{1,120}",
        score in prop::num::f64::NORMAL,
    ) {
        let u = RankUpdate { from_page: 0, to_page: 1, score };
        let enc = encode_update(&u, &from, &to);
        let (f, t, s) = decode_update(&enc).unwrap();
        prop_assert_eq!(f, from);
        prop_assert_eq!(t, to);
        prop_assert_eq!(s.to_bits(), score.to_bits());
    }

    /// Compression round-trip preserves id pairs exactly and scores to f32.
    #[test]
    fn compression_roundtrip(
        mut updates in prop::collection::vec(
            (0u32..100_000, 0u32..100_000, -1.0f64..1.0),
            0..200
        )
    ) {
        let batch: Vec<RankUpdate> = updates
            .drain(..)
            .map(|(f, t, s)| RankUpdate { from_page: f, to_page: t, score: s })
            .collect();
        let enc = encode_batch(&batch, &CompressConfig::default());
        let dec = decode_batch(&enc).unwrap();
        prop_assert_eq!(dec.len(), batch.len());
        let mut want: Vec<(u32, u32)> =
            batch.iter().map(|u| (u.to_page, u.from_page)).collect();
        want.sort_unstable();
        let mut got: Vec<(u32, u32)> = dec.iter().map(|u| (u.to_page, u.from_page)).collect();
        got.sort_unstable();
        prop_assert_eq!(got, want);
        // Scores round-trip at f32 precision: total mass must agree with
        // the f32-rounded originals.
        let want_sum: f64 = batch.iter().map(|u| f64::from(u.score as f32)).sum();
        let got_sum: f64 = dec.iter().map(|u| u.score).sum();
        prop_assert!((want_sum - got_sum).abs() < 1e-6 * (1.0 + want_sum.abs()));
    }
}
