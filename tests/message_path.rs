//! Whole-system guarantees for the message-path fast paths: §4.4 update
//! coalescing and the overlay route cache may change *cost* (messages,
//! bytes) but never *results*. Final ranks must be bit-identical with the
//! optimizations on vs off — under clean reliable delivery and under the
//! fault plans (loss, partition, crash windows) — and the route cache must
//! leave every observable counter untouched even through churn.

use dpr::core::{try_run_over_network, NetRunConfig, NetRunResult, Reliability, Transmission};
use dpr::graph::generators::toy;
use dpr::graph::WebGraph;
use dpr::partition::Strategy;
use dpr::sim::{FaultPlan, SchedulerKind};

fn run_over_network(g: &WebGraph, cfg: NetRunConfig) -> NetRunResult {
    try_run_over_network(g, cfg).expect("test configs use supported churn schedules")
}

fn base(t_end: f64) -> NetRunConfig {
    NetRunConfig {
        k: 24,
        n_nodes: 24,
        transmission: Transmission::Indirect,
        strategy: Strategy::HashByUrl,
        reliability: Some(Reliability::default()),
        t_end,
        ..NetRunConfig::default()
    }
}

fn rank_bits(r: &NetRunResult) -> Vec<u64> {
    r.final_ranks.iter().map(|x| x.to_bits()).collect()
}

/// Runs the same config with coalescing on and off and requires the final
/// ranks to agree to the last bit. Message/byte counters may differ (that
/// is the point of coalescing), so they are asserted directionally, not
/// for equality.
fn assert_coalescing_bit_identical(g: &WebGraph, cfg: NetRunConfig) {
    let on = run_over_network(g, NetRunConfig { coalesce: true, ..cfg.clone() });
    let off = run_over_network(g, NetRunConfig { coalesce: false, ..cfg });
    assert!(on.final_rel_err < 1e-3, "coalesced run must converge: {}", on.final_rel_err);
    assert_eq!(rank_bits(&on), rank_bits(&off), "coalescing must be bit-neutral on final ranks");
    assert!(on.counters.coalesced_parts > 0, "the schedule must actually exercise coalescing");
    assert_eq!(off.counters.coalesced_parts, 0);
    assert!(on.counters.bytes < off.counters.bytes, "coalescing must pay for itself in bytes");
    assert!(on.counters.data_messages <= off.counters.data_messages);
}

#[test]
fn coalescing_bit_identical_under_reliable_delivery() {
    assert_coalescing_bit_identical(&toy::two_cliques(6), base(300.0));
}

#[test]
fn coalescing_bit_identical_under_loss() {
    // Per-hop loss consumes one RNG draw per send, and coalescing changes
    // the send count, so the two trajectories diverge mid-run — they must
    // still stall at the same fixed point of the (deterministic) rank map.
    // That takes a longer horizon than the other plans: the trajectories
    // approach the f64 fixed point from different directions and only
    // become bit-identical once both have *exactly* stalled (t_end 500
    // still shows ~100-ULP residue; 2000 is comfortably past stall).
    let cfg = NetRunConfig {
        faults: Some(FaultPlan::new().with_latency(0.01).with_default_success(0.7)),
        ..base(2000.0)
    };
    assert_coalescing_bit_identical(&toy::two_cliques(6), cfg);
}

#[test]
fn coalescing_bit_identical_under_partition() {
    let cfg = NetRunConfig {
        faults: Some(FaultPlan::new().with_latency(0.01).with_partition(40.0, 80.0, &[0, 1, 2, 3])),
        ..base(500.0)
    };
    assert_coalescing_bit_identical(&toy::two_cliques(6), cfg);
}

#[test]
fn coalescing_bit_identical_under_crash_windows() {
    let cfg = NetRunConfig {
        faults: Some(
            FaultPlan::new()
                .with_latency(0.01)
                .with_crash(2, 50.0, 90.0)
                .with_crash(7, 120.0, 150.0),
        ),
        ..base(500.0)
    };
    assert_coalescing_bit_identical(&toy::two_cliques(6), cfg);
}

/// The route cache is pure memoization: with churn, loss, and reliable
/// delivery all active, switching it off must change *nothing* observable
/// — ranks, §4.5 counters, and engine statistics all identical — while the
/// cached run really does serve lookups from cache and flush it on churn.
#[test]
fn route_cache_invisible_under_churn_and_faults() {
    let g = toy::two_cliques(6);
    let cfg = NetRunConfig {
        departures: vec![(60.0, 3), (110.0, 9)],
        faults: Some(FaultPlan::new().with_latency(0.01).with_default_success(0.8)),
        ..base(400.0)
    };
    let cached = run_over_network(&g, NetRunConfig { route_cache: true, ..cfg.clone() });
    let fresh = run_over_network(&g, NetRunConfig { route_cache: false, ..cfg });
    assert_eq!(rank_bits(&cached), rank_bits(&fresh));
    assert_eq!(cached.counters, fresh.counters);
    assert_eq!(cached.per_node, fresh.per_node);
    assert_eq!(cached.sim_stats, fresh.sim_stats);
    assert!(cached.final_rel_err < 1e-3, "rel err {}", cached.final_rel_err);
    assert!(cached.route_cache.hits > 0, "the cached run must actually hit");
    assert!(cached.route_cache.invalidations >= 2, "each departure must flush the cache");
    assert_eq!(fresh.route_cache.hits, 0);
    assert_eq!(
        cached.route_cache.hits + cached.route_cache.misses,
        fresh.route_cache.misses,
        "both modes must observe the same lookup stream"
    );
}

/// The slab scheduler and the dirty-row external-contribution cache are
/// pure performance work: on the same churn + loss + reliable-delivery
/// scenario, every combination of {slab, heap} × {cached, full-rebuild}
/// must produce bit-identical ranks, engine statistics, and network
/// counters — while the cached runs really do skip most row recomputation.
#[test]
fn scheduler_and_ext_cache_invisible_under_churn_and_faults() {
    let g = toy::two_cliques(6);
    let cfg = NetRunConfig {
        departures: vec![(60.0, 3), (110.0, 9)],
        faults: Some(FaultPlan::new().with_latency(0.01).with_default_success(0.8)),
        ..base(400.0)
    };
    let reference = run_over_network(
        &g,
        NetRunConfig { scheduler: SchedulerKind::BinaryHeap, ext_cache: false, ..cfg.clone() },
    );
    let mut cached_rows = None;
    for scheduler in [SchedulerKind::Slab, SchedulerKind::BinaryHeap] {
        for ext_cache in [true, false] {
            let run = run_over_network(&g, NetRunConfig { scheduler, ext_cache, ..cfg.clone() });
            assert_eq!(
                rank_bits(&run),
                rank_bits(&reference),
                "ranks diverged under {scheduler:?}/ext_cache={ext_cache}"
            );
            assert_eq!(run.sim_stats, reference.sim_stats);
            // Every counter except the row-recomputation observability one
            // must match the legacy engine exactly.
            let mut c = run.counters;
            c.rows_recomputed = reference.counters.rows_recomputed;
            assert_eq!(c, reference.counters);
            if ext_cache {
                assert!(
                    run.counters.rows_recomputed < reference.counters.rows_recomputed,
                    "dirty-row cache recomputed {} rows, full rebuild {}",
                    run.counters.rows_recomputed,
                    reference.counters.rows_recomputed
                );
                cached_rows.get_or_insert(run.counters.rows_recomputed);
                assert_eq!(cached_rows, Some(run.counters.rows_recomputed));
            }
        }
    }
    assert!(reference.final_rel_err < 1e-3);
}

/// Fire-and-forget packages must move through the receive path without a
/// single payload copy — the counter this guards is the alloc-regression
/// canary for the zero-copy `Arc` transport.
#[test]
fn fire_and_forget_receive_path_never_copies_payloads() {
    let g = toy::two_cliques(6);
    let fire_and_forget = NetRunConfig { reliability: None, ..base(300.0) };
    let run = run_over_network(&g, fire_and_forget);
    assert!(run.counters.data_messages > 0);
    assert_eq!(
        run.counters.payload_clones, 0,
        "receive path cloned {} payloads under fire-and-forget",
        run.counters.payload_clones
    );
    // Reliable delivery keeps the payload in the sender's retransmit queue,
    // so the receiver's `Arc` is still shared — the counter must see it.
    let reliable = run_over_network(&g, base(300.0));
    assert!(reliable.counters.payload_clones > 0, "reliability must exercise the clone fallback");
}
