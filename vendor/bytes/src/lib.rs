//! Offline stand-in for the `bytes` crate: `Buf` for reading big-endian
//! scalars from byte slices, `BufMut` for appending them, and the
//! `Bytes`/`BytesMut` owned buffer pair. All multi-byte accessors are
//! big-endian, matching the upstream crate's `get_*`/`put_*` defaults.

use std::ops::Deref;

/// Read cursor over a byte source. Implemented for `&[u8]`, where reads
/// advance the slice itself (as upstream does).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write cursor that appends big-endian scalars. Implemented for
/// `BytesMut` and `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer; freeze into an immutable [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { inner: std::sync::Arc::from(self.inner.into_boxed_slice()) }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

/// Cheaply clonable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: std::sync::Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { inner: std::sync::Arc::from([]) }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { inner: std::sync::Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: std::sync::Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_f32(1.5);
        buf.put_f64(-2.25);
        buf.put_slice(b"xy");

        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 1);
    }
}
