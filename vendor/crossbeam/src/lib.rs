//! Offline stand-in for `crossbeam`, covering the `channel` module's
//! unbounded MPMC-ish channel with the subset this workspace uses
//! (clonable senders, per-thread receivers, `send`/`recv`/`try_recv`).
//! Backed by `std::sync::mpsc`, which supports exactly that pattern.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    // std's mpsc Sender derives Clone only via #[derive] on the wrapper.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }

        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        handle.join().unwrap();
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
