//! Offline stand-in for `serde`. Serialization is modelled as conversion
//! into a JSON-like [`Value`] tree (re-exported by the vendored
//! `serde_json` as its `Value`); the `Serialize` derive macro comes from
//! the vendored `serde_derive`.

// Lets the derive-generated `serde::...` paths resolve when the derive
// is used inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::Serialize;

/// JSON-shaped data tree produced by [`Serialize`]. The vendored
/// `serde_json` re-exports this as `serde_json::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are carried as f64 plus a flag recording whether the
    /// source was an integer, so integers print without a trailing `.0`.
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// JSON number: integer-ness is preserved for faithful formatting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if *v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_values() {
        assert_eq!(1u64.to_json_value(), Value::Number(Number::UInt(1)));
        assert_eq!((-3i32).to_json_value(), Value::Number(Number::Int(-3)));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("x".to_json_value(), Value::String("x".into()));
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1.0f64, 2.0f64)];
        match v.to_json_value() {
            Value::Array(items) => match &items[0] {
                Value::Array(pair) => assert_eq!(pair.len(), 2),
                other => panic!("expected inner array, got {other:?}"),
            },
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn derive_produces_object() {
        #[derive(Serialize)]
        struct Demo<'a> {
            name: &'a str,
            points: Vec<(f64, f64)>,
            count: u64,
        }
        let d = Demo { name: "s", points: vec![(0.0, 1.0)], count: 3 };
        match d.to_json_value() {
            Value::Object(fields) => {
                assert_eq!(fields.len(), 3);
                assert_eq!(fields[0].0, "name");
                assert_eq!(fields[2], ("count".to_string(), Value::Number(Number::UInt(3))));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
