//! Offline stand-in for `criterion`. The macro and builder surface is
//! preserved, but "benchmarking" executes each body a handful of times
//! and prints a coarse wall-clock number — enough for the benches to
//! compile and run as smoke tests without the real statistics engine.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Measurement iterations per bench body; deliberately tiny.
const RUNS: u32 = 3;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let mut bencher = Bencher { _private: () };
        let start = Instant::now();
        for _ in 0..RUNS {
            f(&mut bencher, input);
        }
        report(&label, start.elapsed());
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher { _private: () };
    let start = Instant::now();
    for _ in 0..RUNS {
        f(&mut bencher);
    }
    report(label, start.elapsed());
}

fn report(label: &str, elapsed: std::time::Duration) {
    eprintln!(
        "bench {label}: {:.3} ms/iter (vendored smoke run)",
        elapsed.as_secs_f64() * 1e3 / f64::from(RUNS)
    );
}

pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(f(setup()));
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier shown for one bench within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| n * n);
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7));
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
