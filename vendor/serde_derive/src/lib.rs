//! Offline stand-in for `serde_derive`: a `#[derive(Serialize)]` that
//! handles named-field structs (with optional lifetime/type parameters),
//! which is every derive site in this workspace. Implemented directly on
//! `proc_macro` tokens — no syn/quote — by emitting the impl as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    match &tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        other => panic!("Serialize derive supports structs only, found {other:?}"),
    }
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => panic!("expected struct name, found {other:?}"),
    };

    // Optional generics: capture raw parameter tokens between < and >.
    let mut generic_params: Vec<String> = Vec::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut current = String::new();
        while depth > 0 {
            let tt = tokens.get(i).expect("unbalanced generics");
            i += 1;
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    current.push('<');
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth > 0 {
                        current.push('>');
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    generic_params.push(current.trim().to_string());
                    current = String::new();
                }
                other => {
                    current.push_str(&other.to_string());
                    // Keep lifetimes glued to their tick; everything else
                    // can be space-separated safely.
                    if !matches!(other, TokenTree::Punct(p) if p.as_char() == '\'') {
                        current.push(' ');
                    }
                }
            }
        }
        if !current.trim().is_empty() {
            generic_params.push(current.trim().to_string());
        }
    }

    // Find the brace-delimited field body (skipping any where clause).
    let body = tokens[i..]
        .iter()
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("Serialize derive supports named-field structs only ({name})"));

    let fields = parse_field_names(body);

    // impl side keeps full parameter declarations (incl. bounds); the type
    // side uses only the parameter names.
    let impl_generics = if generic_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", generic_params.join(", "))
    };
    let ty_generics = if generic_params.is_empty() {
        String::new()
    } else {
        let names: Vec<String> = generic_params
            .iter()
            .map(|p| p.split(':').next().unwrap_or(p).trim().to_string())
            .collect();
        format!("<{}>", names.join(", "))
    };

    let mut pushes = String::new();
    for f in &fields {
        pushes.push_str(&format!(
            "fields.push((\"{f}\".to_string(), serde::Serialize::to_json_value(&self.{f})));\n"
        ));
    }

    let output = format!(
        "impl{impl_generics} serde::Serialize for {name}{ty_generics} {{\n\
             fn to_json_value(&self) -> serde::Value {{\n\
                 let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(fields)\n\
             }}\n\
         }}"
    );
    output.parse().expect("generated Serialize impl parses")
}

/// Advances past leading `#[...]` attributes and `pub`/`pub(...)`
/// visibility tokens.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

/// Extracts field names from the brace body of a named-field struct.
fn parse_field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected ':' after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Skip the type: consume until a comma at zero angle-bracket depth.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}
