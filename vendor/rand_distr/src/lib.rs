//! Offline stand-in for `rand_distr`: the `Distribution` trait plus the
//! `Exp` and `Poisson` distributions used by this workspace.

use rand::{Rng, RngCore};

pub use rand::distributions::Distribution;

/// Error type returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp rate must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u avoids ln(0) since u ∈ [0, 1).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Poisson distribution with the given mean. Samples are returned as `f64`
/// to match the upstream crate's API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    pub fn new(mean: f64) -> Result<Self, ParamError> {
        if mean > 0.0 && mean.is_finite() {
            Ok(Poisson { mean })
        } else {
            Err(ParamError("Poisson mean must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean < 30.0 {
            // Knuth's product-of-uniforms method for small means.
            let limit = (-self.mean).exp();
            let mut count = 0u64;
            let mut product: f64 = rng.gen();
            while product > limit {
                count += 1;
                product *= rng.gen::<f64>();
            }
            count as f64
        } else {
            // Normal approximation with continuity correction for large
            // means; adequate for synthetic-graph generation.
            let (u1, u2): (f64, f64) = (rng.gen(), rng.gen());
            let z = (-2.0 * (1.0 - u1).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.mean + self.mean.sqrt() * z + 0.5).floor().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = SmallRng::seed_from_u64(11);
        let d = Exp::new(2.0).unwrap();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn poisson_mean_matches_parameter() {
        let mut rng = SmallRng::seed_from_u64(13);
        let d = Poisson::new(4.0).unwrap();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean} far from 4.0");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
    }
}
