//! Offline stand-in for the `rand` crate, implementing exactly the API
//! subset this workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`,
//! and the `Rng` extension methods `gen`, `gen_bool`, `gen_range`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a different
//! stream than upstream `rand`'s SmallRng, but the workspace only relies
//! on determinism per seed, never on specific values.

/// Core RNG interface: a source of uniformly distributed `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable construction. Only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's full output
/// (the `rng.gen::<T>()` surface). Floats sample the unit interval `[0, 1)`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer/float types that support uniform sampling from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as $wide, hi as $wide);
                let span = if inclusive {
                    (hi_w.wrapping_sub(lo_w) as u128).wrapping_add(1)
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                    hi_w.wrapping_sub(lo_w) as u128
                };
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return <$t>::sample_standard(rng);
                }
                let value = u128::sample_standard(rng) % span;
                (lo_w.wrapping_add(value as $wide)) as $t
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let unit = <$t>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_from(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_from(rng, lo, hi, true)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_range(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; splitmix64 cannot emit
            // four consecutive zeros, so this is unreachable in practice.
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Compatibility alias module mirroring `rand::distributions::Distribution`
/// for downstream crates (`rand_distr` re-exports this trait).
pub mod distributions {
    use super::RngCore;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

pub use rngs::SmallRng as DefaultSmallRng;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&z));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
    }
}
