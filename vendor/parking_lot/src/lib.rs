//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//! Mirrors the panic-free guard API (`lock`/`read`/`write` return guards
//! directly); a poisoned std lock becomes a panic, which matches
//! parking_lot's behavior closely enough for this workspace (a poisoned
//! lock means a worker already panicked).

use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("mutex poisoned")
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
