//! Offline stand-in for `proptest`. Keeps the macro and strategy surface
//! this workspace uses (`proptest!`, `prop_assert*`, `prop_assume!`,
//! `prop_oneof!`, `Strategy`/`prop_map`/`prop_flat_map`, `Just`, `any`,
//! `prop::collection::vec`, `prop::option::of`, `prop::num::f64::NORMAL`,
//! regex-string
//! strategies) but runs plain random sampling with a per-test
//! deterministic seed and no shrinking: a failing case panics with the
//! sampled inputs' Debug rendering where available.

pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG driving all strategies.
    pub type TestRng = rand::rngs::SmallRng;

    /// Deterministic per-test RNG: seeded from an FNV-1a hash of the
    /// fully qualified test name so runs are reproducible.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Subset of upstream's config: only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Accepted for source compatibility with upstream; this stub
        /// never shrinks, so the bound is ignored.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }

    /// Why a single sampled case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject(String),
        /// A `prop_assert*` failed; the test fails.
        Fail(String),
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Equal-weight union over boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    pub fn union<T>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let pick = rng.gen_range(0..self.arms.len());
            self.arms[pick].sample(rng)
        }
    }

    /// Regex-subset string strategy: a `&str` literal is itself a strategy
    /// generating matching strings. Supports literal characters, `[...]`
    /// classes with ranges, and the quantifiers `{n}`, `{m,n}`, `?`, `+`,
    /// `*` — the subset this workspace's patterns use.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                i += 1;
                let mut class = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // Range like a-z (a '-' before ']' is a literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (c as u32, chars[i + 2] as u32);
                        assert!(lo <= hi, "bad class range in pattern {pattern}");
                        for code in lo..=hi {
                            class.push(char::from_u32(code).unwrap());
                        }
                        i += 3;
                    } else {
                        class.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern}");
                i += 1; // closing ']'
                class
            } else {
                let c = if chars[i] == '\\' {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };

            // Optional quantifier.
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| p + i)
                            .unwrap_or_else(|| panic!("unterminated quantifier in {pattern}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((a, b)) => (
                                a.trim().parse().expect("quantifier lower bound"),
                                b.trim().parse().expect("quantifier upper bound"),
                            ),
                            None => {
                                let n: usize = body.trim().parse().expect("quantifier count");
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };

            let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            for _ in 0..count {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )*};
    }
    impl_arbitrary_via_standard!(
        u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool
    );

    pub struct Any<T>(PhantomData<fn() -> T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Length bound for collection strategies (inclusive bounds).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy over `Option<T>`: `None` half the time, `Some` of the
    /// delegate's value otherwise, mirroring `proptest::option::of`'s
    /// default probability.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen::<bool>() {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy over normal (finite, non-subnormal, non-zero) f64
        /// values of either sign, mirroring `prop::num::f64::NORMAL`.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;

            fn sample(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let candidate = f64::from_bits(rng.gen::<u64>());
                    if candidate.is_normal() {
                        return candidate;
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror so `prop::collection::vec` etc. resolve after a
    /// glob import of the prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions whose arguments are sampled from
/// strategies. No shrinking: the first failing sample panics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(20).max(1000);
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name),
                    accepted,
                    cfg.cases,
                );
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        continue;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            accepted,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Equal-weight choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$(::std::boxed::Box::new($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A,
        B(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(
            (a, b) in (1usize..5, 0.0f64..1.0),
            n in 2u32..9,
            x in any::<u64>(),
        ) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!((2..9).contains(&n));
            let _ = x;
        }

        #[test]
        fn vec_and_flat_map(
            xs in (1usize..6).prop_flat_map(|n| prop::collection::vec(0usize..10, n)),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn oneof_and_assume(pick in prop_oneof![
            Just(Pick::A),
            any::<u64>().prop_map(Pick::B),
        ]) {
            prop_assume!(matches!(pick, Pick::A | Pick::B(_)));
            match pick {
                Pick::A => {}
                Pick::B(_) => {}
            }
        }

        #[test]
        fn string_pattern(s in "[a-z0-9._-]{1,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 20);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || ".-_".contains(c)));
        }

        #[test]
        fn normal_floats(x in prop::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("fixed-name");
        let mut b = crate::test_runner::rng_for("fixed-name");
        for _ in 0..50 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}
