//! Offline stand-in for `serde_json`, layered over the vendored `serde`'s
//! [`Value`] tree: `to_value`, `to_string_pretty`, `to_string`, and a
//! `json!` macro covering literals, arrays and string-keyed objects.

pub use serde::{Number, Value};

/// Error type for API parity; the vendored serializer is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Pretty JSON text: two-space indent, `"key": value` separators —
/// matching upstream serde_json's pretty formatter.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        Value::Array(_) => out.push_str("[]"),
        Value::Object(_) => out.push_str("{}"),
        other => write_compact(other, out),
    }
}

/// Minimal `json!`: null / bool / array / object with literal keys /
/// arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => {
        $crate::to_value($other).expect("json! value is serializable")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_upstream_shape() {
        let v = json!({"ok": true, "n": 3});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"ok\": true"), "got: {text}");
        assert!(text.contains("\"n\": 3"), "got: {text}");
        assert!(text.starts_with("{\n"), "got: {text}");
    }

    #[test]
    fn compact_roundtrip_shapes() {
        let v = Value::Array(vec![json!(null), json!(1.5), json!("a\"b")]);
        assert_eq!(to_string(&v).unwrap(), r#"[null,1.5,"a\"b"]"#);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&7u64).unwrap(), "7");
        assert_eq!(to_string(&7.0f64).unwrap(), "7.0");
    }
}
