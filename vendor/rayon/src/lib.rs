//! Offline stand-in for `rayon`. The parallel-iterator entry points are
//! provided with the same names but execute sequentially via std
//! iterators — callers keep identical semantics and determinism, at
//! single-thread speed. Suitable as a hermetic build fallback; swap back
//! to real rayon when a registry is available.

pub mod prelude {
    /// `par_iter`/`par_chunks_mut` surface for slices and vectors. The
    /// returned iterators are ordinary std iterators, so every adapter
    /// (`map`, `zip`, `enumerate`, `sum`, `for_each`, ...) is available.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T, S: AsRef<[T]> + ?Sized> ParallelSlice<T> for S {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.as_ref().iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.as_ref().chunks(chunk_size)
        }
    }

    impl<T, S: AsMut<[T]> + ?Sized> ParallelSliceMut<T> for S {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.as_mut().iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.as_mut().chunks_mut(chunk_size)
        }
    }

    /// `into_par_iter` maps straight onto `IntoIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}
}

/// Number of worker threads real rayon would use; the sequential
/// fallback reports the machine's parallelism so chunk-size heuristics
/// stay sensible.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1.0f64, -2.0, 3.0];
        let total: f64 = v.par_iter().map(|x: &f64| x.abs()).sum();
        assert_eq!(total, 6.0);
    }

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(ci, chunk)| {
            for x in chunk {
                *x = ci;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }
}
