//! Property tests for the linear-algebra substrate: CSR operations are
//! checked against naive dense references on arbitrary matrices.

use dpr_linalg::{Csr, FixedPointSolver, TripletMatrix};
use proptest::prelude::*;

/// Arbitrary small sparse matrix as (rows, cols, entries).
fn arb_matrix() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(r, c)| {
        let entries = prop::collection::vec((0..r, 0..c, -2.0f64..2.0), 0..40);
        (Just(r), Just(c), entries)
    })
}

fn dense_of(r: usize, c: usize, entries: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
    let mut d = vec![vec![0.0; c]; r];
    for &(i, j, v) in entries {
        d[i][j] += v;
    }
    d
}

fn csr_of(r: usize, c: usize, entries: &[(usize, usize, f64)]) -> Csr {
    let mut t = TripletMatrix::new(r, c);
    for &(i, j, v) in entries {
        t.push(i, j, v);
    }
    t.to_csr()
}

proptest! {
    #[test]
    fn spmv_matches_dense((r, c, entries) in arb_matrix(), xs in prop::collection::vec(-3.0f64..3.0, 1..12)) {
        let dense = dense_of(r, c, &entries);
        let m = csr_of(r, c, &entries);
        let x: Vec<f64> = (0..c).map(|j| xs[j % xs.len()]).collect();
        let mut y = vec![0.0; r];
        m.mul_vec(&x, &mut y);
        for i in 0..r {
            let want: f64 = (0..c).map(|j| dense[i][j] * x[j]).sum();
            prop_assert!((y[i] - want).abs() < 1e-9, "row {i}: {} vs {want}", y[i]);
        }
        // Parallel kernel agrees bit-for-bit at this size (it falls back to
        // sequential under the threshold, but the contract is agreement).
        let mut y2 = vec![0.0; r];
        m.mul_vec_par(&x, &mut y2);
        prop_assert_eq!(y, y2);
    }

    #[test]
    fn transpose_involution((r, c, entries) in arb_matrix()) {
        let m = csr_of(r, c, &entries);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_norms((r, c, entries) in arb_matrix()) {
        let m = csr_of(r, c, &entries);
        let t = m.transpose();
        prop_assert!((m.inf_norm() - t.one_norm()).abs() < 1e-12);
        prop_assert!((m.one_norm() - t.inf_norm()).abs() < 1e-12);
    }

    #[test]
    fn get_matches_dense((r, c, entries) in arb_matrix()) {
        let dense = dense_of(r, c, &entries);
        let m = csr_of(r, c, &entries);
        for (i, row) in dense.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                prop_assert!((m.get(i, j) - want).abs() < 1e-12);
            }
        }
    }

    /// On scaled-down (certified contraction) matrices the solver must
    /// converge and satisfy the fixed-point equation.
    #[test]
    fn solver_reaches_a_true_fixed_point(
        (n, _, entries) in (2usize..10, Just(0usize), prop::collection::vec((0usize..10, 0usize..10, 0.0f64..0.5), 0..30)),
        f in prop::collection::vec(0.0f64..2.0, 2..10),
    ) {
        let n = n.min(f.len());
        let mut t = TripletMatrix::new(n, n);
        for &(i, j, v) in &entries {
            if i < n && j < n {
                t.push(i, j, v / 10.0); // keep well inside contraction
            }
        }
        let a = t.to_csr();
        prop_assume!(a.inf_norm() < 0.9);
        let f = &f[..n];
        let mut x = vec![0.0; n];
        let report = FixedPointSolver::new(1e-12).solve(&a, f, &mut x);
        prop_assert!(report.converged);
        // Residual check: x ≈ Ax + f.
        let mut ax = vec![0.0; n];
        a.mul_vec(&x, &mut ax);
        for i in 0..n {
            prop_assert!((x[i] - (ax[i] + f[i])).abs() < 1e-9);
        }
    }
}
