//! Executable forms of the paper's convergence theory (§3 and the appendix).
//!
//! * **Theorem 3.1** — `x = Ax + f` converges for any start iff `ρ(A) < 1`.
//! * **Theorem 3.2** — `ρ(A) ≤ ‖A‖` for any matrix norm, so `‖A‖∞ < 1` is a
//!   sufficient, cheaply-checkable convergence certificate.
//! * **Theorem 3.3** — `‖x* − x_m‖ ≤ ‖A‖/(1 − ‖A‖)·‖x_m − x_{m−1}‖`, which
//!   justifies terminating on the successive difference.
//! * **Appendix Lemma 1** — `A ≥ 0`, `f ≥ 0`, `‖A‖∞ < 1` ⇒ the fixed point
//!   is non-negative.
//! * **Appendix Lemma 2** — under the same premises, `f₁ ≥ f₂ ⇒ r₁ ≥ r₂`
//!   (the fixed point is monotone in the inhomogeneous term). This is the
//!   engine behind Theorems 4.1/4.2 (DPR1 monotonicity and boundedness).
//!
//! The lemmas are provided as runtime *checks* over computed fixed points;
//! the property-test suite drives them with random contractions.

use crate::csr::Csr;
use crate::solver::FixedPointSolver;
use crate::vec_ops;

/// Theorem 3.2 as a certificate: a cheap upper bound on `ρ(A)`.
///
/// Returns `min(‖A‖∞, ‖A‖₁)` — both are valid norms, so both bound the
/// spectral radius and the tighter one is still a bound.
#[must_use]
pub fn spectral_radius_upper_bound(a: &Csr) -> f64 {
    a.inf_norm().min(a.one_norm())
}

/// Whether the iteration `x ← Ax + f` is *certified* convergent by
/// Theorem 3.2 (i.e. some computed norm of `A` is `< 1`). A `false` result
/// does not prove divergence — `ρ(A) < 1 ≤ ‖A‖` is possible — it only means
/// the cheap certificate failed.
#[must_use]
pub fn is_certified_contraction(a: &Csr) -> bool {
    spectral_radius_upper_bound(a) < 1.0
}

/// Theorem 3.3: given `q = ‖A‖ < 1` and the successive difference
/// `δ = ‖x_m − x_{m−1}‖`, the true error satisfies
/// `‖x* − x_m‖ ≤ q/(1−q)·δ`. Returns `None` when `q ≥ 1`.
#[must_use]
pub fn contraction_error_bound(norm: f64, delta: f64) -> Option<f64> {
    if norm < 1.0 {
        Some(norm / (1.0 - norm) * delta)
    } else {
        None
    }
}

/// How many iterations Theorem 3.3 predicts are needed to shrink an initial
/// error of `initial_err` below `target_err` under contraction factor `q`:
/// the smallest `m` with `qᵐ·initial_err ≤ target_err`.
///
/// Returns `None` when `q ≥ 1` (no a-priori guarantee).
#[must_use]
pub fn iterations_to_tolerance(q: f64, initial_err: f64, target_err: f64) -> Option<usize> {
    if !(0.0..1.0).contains(&q) {
        return None;
    }
    if initial_err <= target_err {
        return Some(0);
    }
    if q == 0.0 {
        return Some(1);
    }
    let m = ((target_err / initial_err).ln() / q.ln()).ceil();
    Some(m.max(0.0) as usize)
}

/// Appendix Lemma 1 as a runtime check: solves `r = Ar + f` and verifies
/// `r ≥ 0` (up to `-tol` float jitter). Panics on dimension mismatch.
///
/// Premises (`A ≥ 0`, `f ≥ 0`, `‖A‖∞ < 1`) are asserted; the return value is
/// the lemma's conclusion evaluated on the computed fixed point.
#[must_use]
pub fn check_lemma1_nonneg_fixed_point(a: &Csr, f: &[f64], tol: f64) -> bool {
    assert!(a.is_nonneg(), "Lemma 1 premise: A >= 0");
    assert!(vec_ops::is_nonneg(f), "Lemma 1 premise: f >= 0");
    assert!(a.inf_norm() < 1.0, "Lemma 1 premise: ||A||_inf < 1");
    let mut r = vec![0.0; f.len()];
    FixedPointSolver::new(tol * 1e-3).solve(a, f, &mut r);
    r.iter().all(|v| *v >= -tol)
}

/// Appendix Lemma 2 as a runtime check: solves both systems and verifies
/// `f₁ ≥ f₂ ⇒ r₁ ≥ r₂` element-wise (up to `tol`).
#[must_use]
pub fn check_lemma2_monotone_in_f(a: &Csr, f1: &[f64], f2: &[f64], tol: f64) -> bool {
    assert!(a.is_nonneg(), "Lemma 2 premise: A >= 0");
    assert!(a.inf_norm() < 1.0, "Lemma 2 premise: ||A||_inf < 1");
    assert!(vec_ops::ge_elementwise(f1, f2), "Lemma 2 premise: f1 >= f2 element-wise");
    let solver = FixedPointSolver::new(tol * 1e-3);
    let mut r1 = vec![0.0; f1.len()];
    let mut r2 = vec![0.0; f2.len()];
    solver.solve(a, f1, &mut r1);
    solver.solve(a, f2, &mut r2);
    vec_ops::ge_elementwise_tol(&r1, &r2, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn contraction() -> Csr {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 1, 0.4);
        t.push(1, 2, 0.3);
        t.push(2, 0, 0.5);
        t.push(2, 2, 0.2);
        t.to_csr()
    }

    #[test]
    fn certificate_on_contraction() {
        let a = contraction();
        assert!(is_certified_contraction(&a));
        assert!(spectral_radius_upper_bound(&a) < 1.0);
    }

    #[test]
    fn certificate_rejects_expanding_matrix() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.5);
        t.push(1, 1, 1.5);
        assert!(!is_certified_contraction(&t.to_csr()));
    }

    #[test]
    fn tighter_norm_is_used() {
        // ||A||_inf = 2.0 but ||A||_1 = 0.9: column norm certifies.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 0.9);
        t.push(0, 1, 0.9);
        let a = t.to_csr();
        assert_eq!(a.inf_norm(), 1.8);
        assert_eq!(a.one_norm(), 0.9);
        assert!(is_certified_contraction(&a));
    }

    #[test]
    fn error_bound_none_at_or_above_one() {
        assert!(contraction_error_bound(1.0, 0.5).is_none());
        assert!(contraction_error_bound(1.7, 0.5).is_none());
        let b = contraction_error_bound(0.5, 0.1).unwrap();
        assert!((b - 0.1).abs() < 1e-12);
    }

    #[test]
    fn iterations_to_tolerance_basics() {
        assert_eq!(iterations_to_tolerance(0.5, 1.0, 1.0), Some(0));
        assert_eq!(iterations_to_tolerance(0.0, 1.0, 0.5), Some(1));
        // 0.5^4 = 0.0625 <= 0.1 but 0.5^3 = 0.125 > 0.1
        assert_eq!(iterations_to_tolerance(0.5, 1.0, 0.1), Some(4));
        assert_eq!(iterations_to_tolerance(1.0, 1.0, 0.1), None);
    }

    #[test]
    fn lemma1_holds_on_contraction() {
        let a = contraction();
        assert!(check_lemma1_nonneg_fixed_point(&a, &[1.0, 0.5, 0.0], 1e-9));
    }

    #[test]
    fn lemma2_holds_on_contraction() {
        let a = contraction();
        assert!(check_lemma2_monotone_in_f(&a, &[1.0, 1.0, 1.0], &[0.5, 1.0, 0.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "Lemma 2 premise: f1 >= f2")]
    fn lemma2_rejects_bad_premise() {
        let a = contraction();
        let _ = check_lemma2_monotone_in_f(&a, &[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], 1e-9);
    }
}
