//! Gauss–Seidel iteration for `x = A·x + f`.
//!
//! The paper's convergence theory (§3) comes from Axelsson's *Iterative
//! Solution Methods* \[7\], which treats the whole family of splitting
//! methods. The Jacobi-style sweep in [`FixedPointSolver`](crate::solver)
//! matches what a *distributed* ranker must do — it only has last
//! iteration's values of remote pages — but a *centralized* ranker is free
//! to use within-sweep updates: Gauss–Seidel consumes `x_j^{(k+1)}` for
//! `j` already updated in the current sweep, and for non-negative
//! contractions converges at least as fast as Jacobi (often ~2× on link
//! graphs). This module provides it as the centralized ablation; the gap
//! between the two is precisely the price of distribution paid per
//! iteration.

use crate::csr::Csr;
use crate::solver::SolveReport;
use crate::theory;
use crate::vec_ops;

/// Configuration for Gauss–Seidel / SOR sweeps.
#[derive(Debug, Clone, Copy)]
pub struct GaussSeidelSolver {
    /// Stop when `‖xᵢ₊₁ − xᵢ‖₁ ≤ tolerance` (sweep-to-sweep difference).
    pub tolerance: f64,
    /// Hard sweep cap.
    pub max_iters: usize,
    /// Relaxation factor ω: 1.0 = plain Gauss–Seidel; `1 < ω < 2`
    /// over-relaxes (SOR), which can further shrink the spectral radius on
    /// smoothly converging systems; `0 < ω < 1` under-relaxes (damping for
    /// oscillatory components).
    pub omega: f64,
}

impl Default for GaussSeidelSolver {
    fn default() -> Self {
        Self { tolerance: 1e-10, max_iters: 10_000, omega: 1.0 }
    }
}

impl GaussSeidelSolver {
    /// Creates a solver with the given tolerance.
    #[must_use]
    pub fn new(tolerance: f64) -> Self {
        Self { tolerance, ..Self::default() }
    }

    /// Solves `x = A·x + f` in place with forward Gauss–Seidel sweeps.
    ///
    /// Handles diagonal entries exactly: row `i` reads
    /// `x_i = Σ_{j<i} a_ij·x_j^{new} + a_ii·x_i + Σ_{j>i} a_ij·x_j^{old} + f_i`,
    /// solved for `x_i` as `x_i = (rhs_without_diag + f_i) / (1 − a_ii)`
    /// (requires `|a_ii| < 1`, implied by the contraction premise).
    ///
    /// # Panics
    /// If dimensions are inconsistent or some `a_ii ≥ 1`.
    pub fn solve(&self, a: &Csr, f: &[f64], x: &mut [f64]) -> SolveReport {
        let n = a.n_rows();
        assert_eq!(a.n_cols(), n, "Gauss–Seidel needs a square matrix");
        assert_eq!(f.len(), n);
        assert_eq!(x.len(), n);
        assert!(
            self.omega > 0.0 && self.omega < 2.0,
            "SOR requires 0 < omega < 2, got {}",
            self.omega
        );

        let mut iters = 0usize;
        let mut delta = f64::INFINITY;
        while iters < self.max_iters {
            delta = 0.0;
            for i in 0..n {
                let mut acc = f[i];
                let mut diag = 0.0;
                for (j, v) in a.row(i) {
                    if j == i {
                        diag += v;
                    } else {
                        acc += v * x[j];
                    }
                }
                assert!(diag < 1.0 - 1e-12, "diagonal entry {diag} breaks the GS update");
                let gs = acc / (1.0 - diag);
                let new = (1.0 - self.omega) * x[i] + self.omega * gs;
                delta += (new - x[i]).abs();
                x[i] = new;
            }
            iters += 1;
            if delta <= self.tolerance {
                break;
            }
        }
        SolveReport {
            iterations: iters,
            final_delta: delta,
            converged: delta <= self.tolerance,
            error_bound: theory::contraction_error_bound(a.inf_norm().min(a.one_norm()), delta),
        }
    }
}

/// Iteration counts of Jacobi vs Gauss–Seidel on the same system (for the
/// ablation bench). Asserts both reached the same fixed point.
#[must_use]
pub fn sweep_comparison(a: &Csr, f: &[f64], tolerance: f64) -> (usize, usize) {
    let mut xj = vec![0.0; f.len()];
    let j = crate::solver::FixedPointSolver { tolerance, max_iters: 100_000, ..Default::default() }
        .solve(a, f, &mut xj);
    let mut xg = vec![0.0; f.len()];
    let g = GaussSeidelSolver { tolerance, max_iters: 100_000, ..GaussSeidelSolver::default() }
        .solve(a, f, &mut xg);
    debug_assert!(vec_ops::l1_diff(&xj, &xg) < tolerance * 1e3, "Jacobi and Gauss–Seidel disagree");
    (j.iterations, g.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn chain_system(n: usize, w: f64) -> (Csr, Vec<f64>) {
        // x_i = w·x_{i-1} + 1 — strongly sequential, the GS best case.
        let mut t = TripletMatrix::new(n, n);
        for i in 1..n {
            t.push(i, i - 1, w);
        }
        (t.to_csr(), vec![1.0; n])
    }

    #[test]
    fn converges_to_the_jacobi_fixed_point() {
        let (a, f) = chain_system(12, 0.9);
        let mut xg = vec![0.0; 12];
        let report = GaussSeidelSolver::new(1e-12).solve(&a, &f, &mut xg);
        assert!(report.converged);
        let mut xj = vec![0.0; 12];
        crate::solver::FixedPointSolver::new(1e-12).solve(&a, &f, &mut xj);
        for (g, j) in xg.iter().zip(&xj) {
            assert!((g - j).abs() < 1e-8, "{g} vs {j}");
        }
    }

    #[test]
    fn sequential_chain_solved_in_one_sweep() {
        // Forward GS propagates the whole chain in a single sweep; Jacobi
        // needs ~n sweeps.
        let (a, f) = chain_system(30, 0.9);
        let (jacobi, gs) = sweep_comparison(&a, &f, 1e-10);
        assert!(gs <= 2, "GS took {gs} sweeps on a forward chain");
        assert!(jacobi > 10 * gs, "jacobi {jacobi} vs gs {gs}");
    }

    #[test]
    fn handles_diagonal_entries() {
        // x0 = 0.5·x0 + 1 ⇒ x0 = 2.
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, 0.5);
        let a = t.to_csr();
        let mut x = vec![0.0];
        let report = GaussSeidelSolver::new(1e-12).solve(&a, &[1.0], &mut x);
        assert!(report.converged);
        assert!((x[0] - 2.0).abs() < 1e-10);
        // And in a single sweep — the diagonal is solved exactly.
        assert!(report.iterations <= 2);
    }

    #[test]
    #[should_panic(expected = "diagonal entry")]
    fn rejects_unit_diagonal() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, 1.0);
        let a = t.to_csr();
        let mut x = vec![0.0];
        let _ = GaussSeidelSolver::default().solve(&a, &[1.0], &mut x);
    }

    #[test]
    fn never_slower_than_jacobi_on_nonneg_systems() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(3..20);
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                for _ in 0..3 {
                    let j = rng.gen_range(0..n);
                    t.push(i, j, rng.gen_range(0.0..0.25));
                }
            }
            let a = t.to_csr();
            if a.inf_norm() >= 1.0 {
                continue;
            }
            let f: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            let (jacobi, gs) = sweep_comparison(&a, &f, 1e-10);
            assert!(gs <= jacobi, "GS {gs} slower than Jacobi {jacobi}");
        }
    }

    #[test]
    fn empty_system() {
        let a = Csr::zero(0, 0);
        let mut x: Vec<f64> = vec![];
        assert!(GaussSeidelSolver::default().solve(&a, &[], &mut x).converged);
    }

    #[test]
    fn sor_omega_one_equals_gauss_seidel() {
        let (a, f) = chain_system(10, 0.8);
        let mut x1 = vec![0.0; 10];
        let mut x2 = vec![0.0; 10];
        GaussSeidelSolver::new(1e-12).solve(&a, &f, &mut x1);
        GaussSeidelSolver { omega: 1.0, ..GaussSeidelSolver::new(1e-12) }.solve(&a, &f, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn over_relaxation_converges_to_the_same_point() {
        // A lower-triangular system: SOR's iteration matrix has spectral
        // radius |1 − ω|, so any 0 < ω < 2 converges and we can exercise
        // both under- and over-relaxation. (On matrices with complex
        // eigenvalues aggressive ω may diverge — ω is a tunable, not a
        // default, for exactly that reason.)
        let mut t = TripletMatrix::new(6, 6);
        for i in 1..6 {
            t.push(i, i - 1, 0.45);
            t.push(i, i, 0.3);
        }
        let a = t.to_csr();
        let f = vec![1.0; 6];
        let mut plain = vec![0.0; 6];
        GaussSeidelSolver::new(1e-12).solve(&a, &f, &mut plain);
        // Mild relaxation either side of 1; aggressive omega can diverge
        // when the iteration matrix has complex eigenvalues, which is why
        // omega stays a tunable rather than a default.
        for omega in [0.5, 1.1, 1.25] {
            let mut x = vec![0.0; 6];
            let r =
                GaussSeidelSolver { omega, ..GaussSeidelSolver::new(1e-12) }.solve(&a, &f, &mut x);
            assert!(r.converged, "omega {omega} failed to converge");
            assert!(vec_ops::l1_diff(&x, &plain) < 1e-8, "omega {omega} wrong fixed point");
        }
    }

    #[test]
    #[should_panic(expected = "SOR requires")]
    fn omega_out_of_range_rejected() {
        let (a, f) = chain_system(3, 0.5);
        let mut x = vec![0.0; 3];
        let _ =
            GaussSeidelSolver { omega: 2.5, ..GaussSeidelSolver::default() }.solve(&a, &f, &mut x);
    }
}
