//! Dense-vector kernels used by every iteration loop in the repository.
//!
//! All functions operate on `&[f64]` slices so callers can use plain `Vec`s,
//! borrowed buffers, or sub-slices of larger workspaces without conversion.
//! Length mismatches are programming errors and panic via `debug_assert!` in
//! debug builds (the hot paths must not pay for checks in release builds).
//!
//! # Chunked reductions and bit-determinism
//!
//! The reductions ([`l1_norm`], [`l1_diff`], [`sum`], and their `_pool`
//! variants) all accumulate over **fixed chunks of [`REDUCE_CHUNK`]
//! elements** and then fold the per-chunk partials in chunk order.
//! Floating-point addition is not associative, so this fixed association is
//! what makes the sequential and pooled paths return *bit-identical*
//! results at every worker count: the pool only changes which thread
//! computes a chunk, never which elements a chunk contains or the order
//! partials combine in.

use crate::pool::{Pool, SharedSlice};

/// Fixed reduction-chunk width. Independent of worker count by design —
/// see the module docs; changing this value changes low-order bits of
/// every reduction (it re-associates the sums), so treat it as part of the
/// numeric contract.
const REDUCE_CHUNK: usize = 4096;

/// Minimum vector length before the pooled reductions fan out. Below this,
/// the broadcast handoff costs more than the arithmetic it distributes.
const PAR_THRESHOLD: usize = 1 << 14;

/// Chunk-ordered fold shared by the sequential reductions: applies
/// `partial` to each fixed chunk and sums the partials left to right.
#[inline]
fn chunked_reduce(len: usize, partial: impl Fn(usize, usize) -> f64) -> f64 {
    let mut acc = 0.0;
    let mut lo = 0;
    while lo < len {
        let hi = (lo + REDUCE_CHUNK).min(len);
        acc += partial(lo, hi);
        lo = hi;
    }
    acc
}

/// Pooled counterpart of [`chunked_reduce`]: per-chunk partials land in a
/// chunk-indexed scratch vector (each slot written by exactly one worker),
/// then fold in chunk order on the calling thread — the identical
/// association as the sequential path, hence bit-identical results.
fn chunked_reduce_pool(
    len: usize,
    pool: &Pool,
    partial: impl Fn(usize, usize) -> f64 + Sync,
) -> f64 {
    let n_chunks = len.div_ceil(REDUCE_CHUNK);
    let mut partials = vec![0.0_f64; n_chunks];
    let out = SharedSlice::new(&mut partials);
    pool.for_each_chunk(n_chunks, |c| {
        let lo = c * REDUCE_CHUNK;
        let hi = (lo + REDUCE_CHUNK).min(len);
        // SAFETY: chunk `c` writes only slot `c`.
        unsafe { out.slice_mut(c, 1)[0] = partial(lo, hi) };
    });
    partials.iter().sum()
}

/// The L1 norm `‖x‖₁ = Σ |xᵢ|`.
///
/// This is the norm the paper uses throughout (`D = ‖Rᵢ‖₁ − ‖Rᵢ₊₁‖₁`,
/// `δ = ‖Rᵢ₊₁ − Rᵢ‖₁`).
#[must_use]
pub fn l1_norm(x: &[f64]) -> f64 {
    // `+ 0.0` normalizes the signed zero: std's float `Sum` identity is
    // -0.0, and a negative-zero "norm" breaks bit-level max tricks
    // downstream (−0.0's bit pattern exceeds every positive float's).
    chunked_reduce(x.len(), |lo, hi| x[lo..hi].iter().map(|v| v.abs()).sum()) + 0.0
}

/// [`l1_norm`] with the chunk partials computed on `pool`'s workers.
/// Bit-identical to the sequential version at every worker count.
#[must_use]
pub fn l1_norm_pool(x: &[f64], pool: &Pool) -> f64 {
    if !pool.is_parallel() || x.len() < PAR_THRESHOLD {
        return l1_norm(x);
    }
    chunked_reduce_pool(x.len(), pool, |lo, hi| x[lo..hi].iter().map(|v| v.abs()).sum()) + 0.0
}

/// The L∞ norm `‖x‖∞ = max |xᵢ|`; zero for the empty vector.
#[must_use]
pub fn linf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// The L1 distance `‖x − y‖₁` without materialising the difference vector.
#[must_use]
pub fn l1_diff(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // `+ 0.0`: see `l1_norm` — keeps the empty diff at +0.0, not -0.0.
    chunked_reduce(x.len(), |lo, hi| {
        x[lo..hi].iter().zip(&y[lo..hi]).map(|(a, b)| (a - b).abs()).sum()
    }) + 0.0
}

/// [`l1_diff`] with the chunk partials computed on `pool`'s workers.
/// Bit-identical to the sequential version at every worker count.
#[must_use]
pub fn l1_diff_pool(x: &[f64], y: &[f64], pool: &Pool) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    if !pool.is_parallel() || x.len() < PAR_THRESHOLD {
        return l1_diff(x, y);
    }
    chunked_reduce_pool(x.len(), pool, |lo, hi| {
        x[lo..hi].iter().zip(&y[lo..hi]).map(|(a, b)| (a - b).abs()).sum()
    }) + 0.0
}

/// The L∞ distance `‖x − y‖∞`.
#[must_use]
pub fn linf_diff(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

/// Sum of all elements (signed, unlike [`l1_norm`]).
#[must_use]
pub fn sum(x: &[f64]) -> f64 {
    chunked_reduce(x.len(), |lo, hi| x[lo..hi].iter().sum())
}

/// [`sum`] with the chunk partials computed on `pool`'s workers.
/// Bit-identical to the sequential version at every worker count.
#[must_use]
pub fn sum_pool(x: &[f64], pool: &Pool) -> f64 {
    if !pool.is_parallel() || x.len() < PAR_THRESHOLD {
        return sum(x);
    }
    chunked_reduce_pool(x.len(), pool, |lo, hi| x[lo..hi].iter().sum())
}

/// Arithmetic mean; zero for the empty vector.
#[must_use]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// `y ← y + a·x` (the classic axpy kernel).
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Adds the scalar `a` to every element (used for the uniform `βE` term).
pub fn add_scalar(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi += a;
    }
}

/// Element-wise product `out ← a ⊙ b`, clearing and refilling `out` (the
/// implicit-value SpMV's pre-scale pass `ws[u] = scale[u]·x[u]`).
/// Element-wise, so chunking cannot affect bits.
pub fn hadamard_into(a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&ai, &bi)| ai * bi));
}

/// Element-wise `x ≥ y` (the partial order `r₁ ≥ r₂` of the appendix).
#[must_use]
pub fn ge_elementwise(x: &[f64], y: &[f64]) -> bool {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).all(|(a, b)| a >= b)
}

/// Element-wise `x ≥ y − tol`, tolerating floating-point jitter when
/// asserting the monotonicity of Theorem 4.1 on computed sequences.
#[must_use]
pub fn ge_elementwise_tol(x: &[f64], y: &[f64], tol: f64) -> bool {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).all(|(a, b)| *a >= *b - tol)
}

/// `x ≥ 0` element-wise (appendix Lemma 1 precondition / conclusion).
#[must_use]
pub fn is_nonneg(x: &[f64]) -> bool {
    x.iter().all(|v| *v >= 0.0)
}

/// Relative error `‖x − x*‖₁ / ‖x*‖₁`, the paper's §5 metric for the
/// distance between distributed and centralized ranks.
///
/// Returns `f64::INFINITY` when `‖x*‖₁ = 0` and `x ≠ x*`, and `0.0` when
/// both are zero.
#[must_use]
pub fn relative_error(x: &[f64], x_star: &[f64]) -> f64 {
    relative_error_pool(x, x_star, &Pool::sequential())
}

/// [`relative_error`] with both reductions computed on `pool`'s workers.
/// Bit-identical to the sequential version at every worker count.
#[must_use]
pub fn relative_error_pool(x: &[f64], x_star: &[f64], pool: &Pool) -> f64 {
    let denom = l1_norm_pool(x_star, pool);
    let num = l1_diff_pool(x, x_star, pool);
    if denom == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_norm_basic() {
        assert_eq!(l1_norm(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(l1_norm(&[]), 0.0);
        // Empty norms must be POSITIVE zero (std's float Sum identity is
        // -0.0; a sign bit here poisons bit-level comparisons).
        assert_eq!(l1_norm(&[]).to_bits(), 0u64);
        assert_eq!(l1_diff(&[], &[]).to_bits(), 0u64);
    }

    #[test]
    fn l1_norm_parallel_path_matches_sequential() {
        let big: Vec<f64> = (0..(PAR_THRESHOLD + 17)).map(|i| (i as f64) * 0.5 - 100.0).collect();
        let seq: f64 = big.iter().map(|v| v.abs()).sum();
        assert!((l1_norm(&big) - seq).abs() < 1e-6);
    }

    #[test]
    fn pooled_reductions_are_bit_identical_to_sequential() {
        // Irrational-ish values so any re-association would show up in the
        // low bits.
        let x: Vec<f64> =
            (0..(3 * PAR_THRESHOLD + 1234)).map(|i| ((i as f64) * 0.7371).sin() / 3.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 1.0001 + 1e-7).collect();
        for workers in [2, 3, 8] {
            let pool = Pool::with_workers(workers);
            assert_eq!(l1_norm(&x).to_bits(), l1_norm_pool(&x, &pool).to_bits());
            assert_eq!(l1_diff(&x, &y).to_bits(), l1_diff_pool(&x, &y, &pool).to_bits());
            assert_eq!(sum(&x).to_bits(), sum_pool(&x, &pool).to_bits());
            assert_eq!(
                relative_error(&x, &y).to_bits(),
                relative_error_pool(&x, &y, &pool).to_bits()
            );
        }
    }

    #[test]
    fn linf_norm_basic() {
        assert_eq!(linf_norm(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn l1_diff_basic() {
        assert_eq!(l1_diff(&[1.0, 2.0], &[0.0, 4.0]), 3.0);
    }

    #[test]
    fn linf_diff_basic() {
        assert_eq!(linf_diff(&[1.0, 2.0], &[0.0, 4.0]), 2.0);
    }

    #[test]
    fn sum_and_mean() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_and_add_scalar() {
        let mut x = vec![1.0, -2.0];
        scale(3.0, &mut x);
        assert_eq!(x, vec![3.0, -6.0]);
        add_scalar(1.0, &mut x);
        assert_eq!(x, vec![4.0, -5.0]);
    }

    #[test]
    fn elementwise_order() {
        assert!(ge_elementwise(&[1.0, 2.0], &[1.0, 1.5]));
        assert!(!ge_elementwise(&[1.0, 1.0], &[1.0, 1.5]));
        assert!(ge_elementwise_tol(&[1.0, 1.0], &[1.0, 1.0 + 1e-13], 1e-12));
    }

    #[test]
    fn hadamard_into_refills_and_matches() {
        let mut out = vec![99.0; 7];
        hadamard_into(&[2.0, -3.0, 0.5], &[4.0, 1.0, 8.0], &mut out);
        assert_eq!(out, vec![8.0, -3.0, 4.0]);
        hadamard_into(&[], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn nonneg_check() {
        assert!(is_nonneg(&[0.0, 1.0]));
        assert!(!is_nonneg(&[0.0, -1e-9]));
    }

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        assert!((relative_error(&[1.1, 1.0], &[1.0, 1.0]) - 0.05).abs() < 1e-12);
        assert_eq!(relative_error(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_error(&[1.0], &[0.0]), f64::INFINITY);
    }
}
