//! Dense-vector kernels used by every iteration loop in the repository.
//!
//! All functions operate on `&[f64]` slices so callers can use plain `Vec`s,
//! borrowed buffers, or sub-slices of larger workspaces without conversion.
//! Length mismatches are programming errors and panic via `debug_assert!` in
//! debug builds (the hot paths must not pay for checks in release builds).

use rayon::prelude::*;

/// Minimum vector length before the parallel kernels split work across the
/// Rayon pool. Below this, thread coordination costs more than it saves.
const PAR_THRESHOLD: usize = 1 << 14;

/// The L1 norm `‖x‖₁ = Σ |xᵢ|`.
///
/// This is the norm the paper uses throughout (`D = ‖Rᵢ‖₁ − ‖Rᵢ₊₁‖₁`,
/// `δ = ‖Rᵢ₊₁ − Rᵢ‖₁`).
#[must_use]
pub fn l1_norm(x: &[f64]) -> f64 {
    // `+ 0.0` normalizes the signed zero: std's float `Sum` identity is
    // -0.0, and a negative-zero "norm" breaks bit-level max tricks
    // downstream (−0.0's bit pattern exceeds every positive float's).
    if x.len() >= PAR_THRESHOLD {
        x.par_iter().map(|v| v.abs()).sum::<f64>() + 0.0
    } else {
        x.iter().map(|v| v.abs()).sum::<f64>() + 0.0
    }
}

/// The L∞ norm `‖x‖∞ = max |xᵢ|`; zero for the empty vector.
#[must_use]
pub fn linf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// The L1 distance `‖x − y‖₁` without materialising the difference vector.
#[must_use]
pub fn l1_diff(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    // `+ 0.0`: see `l1_norm` — keeps the empty diff at +0.0, not -0.0.
    if x.len() >= PAR_THRESHOLD {
        x.par_iter().zip(y.par_iter()).map(|(a, b)| (a - b).abs()).sum::<f64>() + 0.0
    } else {
        x.iter().zip(y.iter()).map(|(a, b)| (a - b).abs()).sum::<f64>() + 0.0
    }
}

/// The L∞ distance `‖x − y‖∞`.
#[must_use]
pub fn linf_diff(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

/// Sum of all elements (signed, unlike [`l1_norm`]).
#[must_use]
pub fn sum(x: &[f64]) -> f64 {
    if x.len() >= PAR_THRESHOLD {
        x.par_iter().sum()
    } else {
        x.iter().sum()
    }
}

/// Arithmetic mean; zero for the empty vector.
#[must_use]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// `y ← y + a·x` (the classic axpy kernel).
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Adds the scalar `a` to every element (used for the uniform `βE` term).
pub fn add_scalar(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi += a;
    }
}

/// Element-wise `x ≥ y` (the partial order `r₁ ≥ r₂` of the appendix).
#[must_use]
pub fn ge_elementwise(x: &[f64], y: &[f64]) -> bool {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).all(|(a, b)| a >= b)
}

/// Element-wise `x ≥ y − tol`, tolerating floating-point jitter when
/// asserting the monotonicity of Theorem 4.1 on computed sequences.
#[must_use]
pub fn ge_elementwise_tol(x: &[f64], y: &[f64], tol: f64) -> bool {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).all(|(a, b)| *a >= *b - tol)
}

/// `x ≥ 0` element-wise (appendix Lemma 1 precondition / conclusion).
#[must_use]
pub fn is_nonneg(x: &[f64]) -> bool {
    x.iter().all(|v| *v >= 0.0)
}

/// Relative error `‖x − x*‖₁ / ‖x*‖₁`, the paper's §5 metric for the
/// distance between distributed and centralized ranks.
///
/// Returns `f64::INFINITY` when `‖x*‖₁ = 0` and `x ≠ x*`, and `0.0` when
/// both are zero.
#[must_use]
pub fn relative_error(x: &[f64], x_star: &[f64]) -> f64 {
    let denom = l1_norm(x_star);
    let num = l1_diff(x, x_star);
    if denom == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_norm_basic() {
        assert_eq!(l1_norm(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(l1_norm(&[]), 0.0);
        // Empty norms must be POSITIVE zero (std's float Sum identity is
        // -0.0; a sign bit here poisons bit-level comparisons).
        assert_eq!(l1_norm(&[]).to_bits(), 0u64);
        assert_eq!(l1_diff(&[], &[]).to_bits(), 0u64);
    }

    #[test]
    fn l1_norm_parallel_path_matches_sequential() {
        let big: Vec<f64> = (0..(PAR_THRESHOLD + 17)).map(|i| (i as f64) * 0.5 - 100.0).collect();
        let seq: f64 = big.iter().map(|v| v.abs()).sum();
        assert!((l1_norm(&big) - seq).abs() < 1e-6);
    }

    #[test]
    fn linf_norm_basic() {
        assert_eq!(linf_norm(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn l1_diff_basic() {
        assert_eq!(l1_diff(&[1.0, 2.0], &[0.0, 4.0]), 3.0);
    }

    #[test]
    fn linf_diff_basic() {
        assert_eq!(linf_diff(&[1.0, 2.0], &[0.0, 4.0]), 2.0);
    }

    #[test]
    fn sum_and_mean() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_and_add_scalar() {
        let mut x = vec![1.0, -2.0];
        scale(3.0, &mut x);
        assert_eq!(x, vec![3.0, -6.0]);
        add_scalar(1.0, &mut x);
        assert_eq!(x, vec![4.0, -5.0]);
    }

    #[test]
    fn elementwise_order() {
        assert!(ge_elementwise(&[1.0, 2.0], &[1.0, 1.5]));
        assert!(!ge_elementwise(&[1.0, 1.0], &[1.0, 1.5]));
        assert!(ge_elementwise_tol(&[1.0, 1.0], &[1.0, 1.0 + 1e-13], 1e-12));
    }

    #[test]
    fn nonneg_check() {
        assert!(is_nonneg(&[0.0, 1.0]));
        assert!(!is_nonneg(&[0.0, -1e-9]));
    }

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        assert!((relative_error(&[1.1, 1.0], &[1.0, 1.0]) - 0.05).abs() < 1e-12);
        assert_eq!(relative_error(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_error(&[1.0], &[0.0]), f64::INFINITY);
    }
}
