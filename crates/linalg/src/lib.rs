//! Sparse linear-algebra substrate for distributed page ranking.
//!
//! The PageRank family of algorithms reduces to fixed-point iteration on a
//! sparse linear system `x = Ax + f` where `A` is a (sub-stochastic) link
//! matrix. This crate provides the pieces the paper's algorithms are built
//! from:
//!
//! * [`Csr`] — compressed sparse row matrices with sequential and
//!   pool-parallel matrix–vector products (see [`pool`]),
//! * [`vec_ops`] — the dense-vector kernels (norms, axpy, differences) used
//!   by every iteration loop,
//! * [`solver`] — the Jacobi-style fixed-point solver of Algorithm 2
//!   (`GroupPageRank`), with termination based on the `‖x_m − x_{m−1}‖`
//!   criterion that Theorem 3.3 justifies,
//! * [`theory`] — executable forms of Theorems 3.1–3.3 and the appendix
//!   lemmas (spectral-radius bounds, contraction error bounds,
//!   non-negativity and monotonicity of the fixed point),
//! * [`pool`] — the scoped worker pool behind every parallel kernel:
//!   real OS threads, spawned once and reused across solves, with a fixed
//!   chunking discipline that keeps pooled results bit-identical to the
//!   sequential ones at every worker count.
//!
//! # Example
//!
//! ```
//! use dpr_linalg::{FixedPointSolver, TripletMatrix};
//!
//! // x = [[0.5, 0], [0.25, 0.25]]·x + [1, 1]  ⇒  x* = [2, 2]
//! let mut t = TripletMatrix::new(2, 2);
//! t.push(0, 0, 0.5);
//! t.push(1, 0, 0.25);
//! t.push(1, 1, 0.25);
//! let a = t.to_csr();
//!
//! let mut x = vec![0.0, 0.0];
//! let report = FixedPointSolver::new(1e-12).solve(&a, &[1.0, 1.0], &mut x);
//! assert!(report.converged);
//! assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 2.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod accel;
pub mod csr;
pub mod gauss_seidel;
pub mod pool;
pub mod solver;
pub mod theory;
pub mod triplet;
pub mod vec_ops;

pub use accel::AitkenSolver;
pub use csr::{column_scale, Csr, CsrImplicit, RowPtr, SpMatVec};
pub use gauss_seidel::GaussSeidelSolver;
pub use pool::Pool;
pub use solver::{FixedPointSolver, SolveReport};
pub use triplet::TripletMatrix;
