//! Fixed-point solver for `x = A·x + f`.
//!
//! This is the computational heart of Algorithm 2 (`GroupPageRank`): each
//! page group repeatedly applies `R ← A·R + (βE + X)` until the successive
//! difference `‖Rᵢ₊₁ − Rᵢ‖₁` drops below a tolerance. Theorem 3.1 guarantees
//! convergence whenever `ρ(A) < 1`, Theorem 3.2 reduces that to the checkable
//! `‖A‖∞ < 1`, and Theorem 3.3 turns the successive difference into a bound
//! on the true error — which is why the stopping rule is sound.

use crate::csr::SpMatVec;
use crate::pool::Pool;
use crate::theory;
use crate::vec_ops;

/// Configuration for the Jacobi-style fixed-point iteration.
#[derive(Debug, Clone)]
pub struct FixedPointSolver {
    /// Stop when `‖xᵢ₊₁ − xᵢ‖₁ ≤ tolerance`.
    pub tolerance: f64,
    /// Hard iteration cap (guards against a caller passing `‖A‖∞ ≥ 1`).
    pub max_iters: usize,
    /// Worker pool for the SpMV and reduction kernels. The kernels use
    /// fixed chunk boundaries, so the solve is bit-identical at every
    /// worker count — the pool only changes wall-clock time.
    pub pool: Pool,
}

impl Default for FixedPointSolver {
    fn default() -> Self {
        Self { tolerance: 1e-10, max_iters: 10_000, pool: Pool::sequential() }
    }
}

/// Outcome of a fixed-point solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveReport {
    /// Number of `x ← Ax + f` applications performed.
    pub iterations: usize,
    /// Final successive difference `‖xᵢ₊₁ − xᵢ‖₁`.
    pub final_delta: f64,
    /// Whether `final_delta ≤ tolerance` was reached within `max_iters`.
    pub converged: bool,
    /// Theorem 3.3 upper bound on `‖x* − x_m‖` from the final delta, or
    /// `None` when `‖A‖∞ ≥ 1` (bound inapplicable).
    pub error_bound: Option<f64>,
}

impl FixedPointSolver {
    /// Creates a solver with the given tolerance and default limits.
    #[must_use]
    pub fn new(tolerance: f64) -> Self {
        Self { tolerance, ..Self::default() }
    }

    /// Returns the solver with its kernels routed through `pool`.
    #[must_use]
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Solves `x = A·x + f` in place, starting from the current contents of
    /// `x`. `scratch` must be the same length as `x` and is used as the
    /// double buffer; `ws` is the matrix layout's multiply workspace (an
    /// implicit-value matrix pre-scales into it; the explicit layout leaves
    /// it untouched). Callers in hot loops reuse both across solves to
    /// avoid reallocation.
    ///
    /// Generic over [`SpMatVec`] so the same iteration drives the explicit
    /// [`crate::Csr`] and the bandwidth-lean [`crate::CsrImplicit`].
    ///
    /// # Panics
    /// If dimensions are inconsistent.
    pub fn solve_with_scratch<M: SpMatVec>(
        &self,
        a: &M,
        f: &[f64],
        x: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
        ws: &mut Vec<f64>,
    ) -> SolveReport {
        let n = a.n_rows();
        assert_eq!(a.n_cols(), n, "fixed-point iteration needs a square matrix");
        assert_eq!(f.len(), n);
        assert_eq!(x.len(), n);
        scratch.resize(n, 0.0);

        // Any matrix norm certifies the contraction (Thm 3.2); take the
        // tighter of the two cheap ones — ranking matrices in pull
        // orientation are bounded in the column norm, not the row norm.
        let norm = a.contraction_norm();
        let mut delta = f64::INFINITY;
        let mut iters = 0;
        while iters < self.max_iters {
            // scratch ← A·x + f
            a.mul_into(x, scratch, ws, &self.pool);
            for (s, fi) in scratch.iter_mut().zip(f.iter()) {
                *s += fi;
            }
            iters += 1;
            delta = vec_ops::l1_diff_pool(scratch, x, &self.pool);
            std::mem::swap(x, scratch);
            if delta <= self.tolerance {
                break;
            }
        }
        SolveReport {
            iterations: iters,
            final_delta: delta,
            converged: delta <= self.tolerance,
            error_bound: theory::contraction_error_bound(norm, delta),
        }
    }

    /// Convenience wrapper around [`Self::solve_with_scratch`] that allocates
    /// its own scratch and workspace buffers.
    pub fn solve<M: SpMatVec>(&self, a: &M, f: &[f64], x: &mut Vec<f64>) -> SolveReport {
        let mut scratch = vec![0.0; x.len()];
        let mut ws = Vec::new();
        self.solve_with_scratch(a, f, x, &mut scratch, &mut ws)
    }

    /// Performs exactly `steps` applications of `x ← A·x + f` (the DPR2 node
    /// body does a single step per outer loop), returning the last successive
    /// difference.
    pub fn step<M: SpMatVec>(&self, a: &M, f: &[f64], x: &mut Vec<f64>, steps: usize) -> f64 {
        let mut scratch = vec![0.0; x.len()];
        let mut ws = Vec::new();
        self.step_with_scratch(a, f, x, steps, &mut scratch, &mut ws)
    }

    /// [`Self::step`] with caller-provided double and workspace buffers, so
    /// per-wake hot loops (one step per think time, thousands of think
    /// times per run) never reallocate. The scratch contents are irrelevant
    /// on entry — the SpMV overwrites every element.
    pub fn step_with_scratch<M: SpMatVec>(
        &self,
        a: &M,
        f: &[f64],
        x: &mut Vec<f64>,
        steps: usize,
        scratch: &mut Vec<f64>,
        ws: &mut Vec<f64>,
    ) -> f64 {
        let n = a.n_rows();
        assert_eq!(a.n_cols(), n);
        assert_eq!(f.len(), n);
        assert_eq!(x.len(), n);
        scratch.resize(n, 0.0);
        let mut delta = 0.0;
        for _ in 0..steps {
            a.mul_into(x, scratch, ws, &self.pool);
            for (s, fi) in scratch.iter_mut().zip(f.iter()) {
                *s += fi;
            }
            delta = vec_ops::l1_diff_pool(scratch, x, &self.pool);
            std::mem::swap(x, scratch);
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{column_scale, Csr, CsrImplicit};
    use crate::triplet::TripletMatrix;

    /// 2×2 contraction with known fixed point:
    /// x = [[0.5, 0], [0.25, 0.25]]·x + [1, 1] ⇒ x* = [2, 2].
    fn small_system() -> (Csr, Vec<f64>, Vec<f64>) {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 0.5);
        t.push(1, 0, 0.25);
        t.push(1, 1, 0.25);
        (t.to_csr(), vec![1.0, 1.0], vec![2.0, 2.0])
    }

    #[test]
    fn converges_to_fixed_point() {
        let (a, f, expect) = small_system();
        let mut x = vec![0.0, 0.0];
        let report = FixedPointSolver::new(1e-12).solve(&a, &f, &mut x);
        assert!(report.converged);
        assert!((x[0] - expect[0]).abs() < 1e-10);
        assert!((x[1] - expect[1]).abs() < 1e-10);
    }

    #[test]
    fn error_bound_is_valid() {
        let (a, f, expect) = small_system();
        let mut x = vec![0.0, 0.0];
        let solver = FixedPointSolver { tolerance: 1e-6, max_iters: 50, ..Default::default() };
        let report = solver.solve(&a, &f, &mut x);
        let true_err = vec_ops::l1_diff(&x, &expect);
        let bound = report.error_bound.expect("norm < 1 so bound applies");
        assert!(
            true_err <= bound + 1e-12,
            "Thm 3.3 violated: true error {true_err} > bound {bound}"
        );
    }

    #[test]
    fn warm_start_converges_faster() {
        let (a, f, expect) = small_system();
        let solver = FixedPointSolver::new(1e-12);
        let mut cold = vec![0.0, 0.0];
        let cold_report = solver.solve(&a, &f, &mut cold);
        let mut warm = expect.clone();
        let warm_report = solver.solve(&a, &f, &mut warm);
        assert!(warm_report.iterations < cold_report.iterations);
    }

    #[test]
    fn max_iters_respected_for_non_contraction() {
        // A = [[1.0]] is not a contraction; x = x + 1 diverges.
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, 1.0);
        let a = t.to_csr();
        let solver = FixedPointSolver { tolerance: 1e-12, max_iters: 17, ..Default::default() };
        let mut x = vec![0.0];
        let report = solver.solve(&a, &[1.0], &mut x);
        assert_eq!(report.iterations, 17);
        assert!(!report.converged);
        assert!(report.error_bound.is_none());
    }

    #[test]
    fn single_step_matches_manual() {
        let (a, f, _) = small_system();
        let solver = FixedPointSolver::default();
        let mut x = vec![4.0, 0.0];
        solver.step(&a, &f, &mut x, 1);
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn pooled_solver_is_bit_identical_to_sequential() {
        let (a, f, _) = small_system();
        let mut x1 = vec![0.0, 0.0];
        FixedPointSolver::new(1e-12).solve(&a, &f, &mut x1);
        for workers in [2, 8] {
            let mut x2 = vec![0.0, 0.0];
            FixedPointSolver::new(1e-12)
                .with_pool(Pool::with_workers(workers))
                .solve(&a, &f, &mut x2);
            assert_eq!(x1, x2, "pooled solve diverged at {workers} workers");
        }
    }

    #[test]
    fn zero_dimensional_system() {
        let a = Csr::zero(0, 0);
        let mut x: Vec<f64> = vec![];
        let report = FixedPointSolver::default().solve(&a, &[], &mut x);
        assert!(report.converged);
    }

    #[test]
    fn implicit_solve_is_bit_identical_to_explicit_twin() {
        // A 4-page ranking system: 0 → {1, 2}, 1 → {2, 3}, 2 → {0}, 3
        // dangling. Solving through the implicit layout must reproduce the
        // explicit twin's iterates bit for bit, including the error bound.
        let degrees = [2u32, 2, 1, 0];
        let m = CsrImplicit::from_raw_parts(
            4,
            4,
            vec![0, 1, 2, 4, 5],
            vec![2, 0, 0, 1, 1],
            column_scale(0.85, &degrees),
        );
        let twin = m.to_explicit();
        let f = vec![0.15 / 4.0; 4];
        let solver = FixedPointSolver::new(1e-12);
        let mut x_i = vec![0.25; 4];
        let mut x_e = vec![0.25; 4];
        let r_i = solver.solve(&m, &f, &mut x_i);
        let r_e = solver.solve(&twin, &f, &mut x_e);
        assert!(r_i.converged && r_e.converged);
        assert_eq!(r_i.iterations, r_e.iterations);
        assert_eq!(r_i.final_delta.to_bits(), r_e.final_delta.to_bits());
        assert!(x_i.iter().zip(&x_e).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
