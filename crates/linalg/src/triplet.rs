//! Coordinate-format (triplet) matrix builder.
//!
//! Link matrices are assembled edge-by-edge while scanning a web graph; the
//! triplet form accepts entries in any order (including duplicates, which
//! are summed) and converts to [`Csr`] once construction is
//! complete.

use crate::csr::Csr;

/// A sparse matrix under construction, stored as `(row, col, value)` entries.
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `n_rows × n_cols` builder.
    #[must_use]
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self { n_rows, n_cols, entries: Vec::new() }
    }

    /// Creates a builder with pre-reserved capacity for `nnz` entries.
    #[must_use]
    pub fn with_capacity(n_rows: usize, n_cols: usize, nnz: usize) -> Self {
        Self { n_rows, n_cols, entries: Vec::with_capacity(nnz) }
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of entries pushed so far (duplicates counted separately).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`. Duplicate coordinates are summed when
    /// converting to CSR.
    ///
    /// # Panics
    /// If the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n_rows, "row {row} out of bounds ({})", self.n_rows);
        assert!(col < self.n_cols, "col {col} out of bounds ({})", self.n_cols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Converts to CSR, summing duplicate coordinates and dropping explicit
    /// zeros that result from cancellation.
    #[must_use]
    pub fn to_csr(&self) -> Csr {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0u64; self.n_rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());

        let mut i = 0;
        while i < entries.len() {
            let (r, c, mut v) = entries[i];
            let mut j = i + 1;
            while j < entries.len() && entries[j].0 == r && entries[j].1 == c {
                v += entries[j].2;
                j += 1;
            }
            i = j;
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
                row_ptr[r as usize + 1] += 1;
            }
        }
        for r in 0..self.n_rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Csr::from_raw_parts(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder() {
        let t = TripletMatrix::new(3, 3);
        assert!(t.is_empty());
        let m = t.to_csr();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 5.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 5.0);
    }

    #[test]
    fn cancellation_drops_entry() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, 1.5);
        t.push(0, 0, -1.5);
        assert_eq!(t.to_csr().nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "row 2 out of bounds")]
    fn out_of_bounds_row_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn unordered_insertion() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(2, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        let m = t.to_csr();
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(0, 0), 0.0);
    }
}
