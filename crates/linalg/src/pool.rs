//! A real, hermetic worker pool for the compute kernels.
//!
//! Every "parallel" kernel in this crate used to route through the vendored
//! `rayon` stand-in, which executes sequentially — parallel numbers were a
//! fiction. This module replaces it with an actual pool of OS threads built
//! on `std` alone: workers are spawned **once** and reused across solves
//! (a PageRank solve calls the SpMV kernel thousands of times; per-call
//! thread spawning would dominate), and work is handed to them as borrowed
//! closures with a completion latch, so no per-call allocation of the
//! user's data is needed.
//!
//! # Determinism contract
//!
//! Every kernel built on this pool partitions its work into **fixed-size
//! chunks whose boundaries do not depend on the worker count**, and
//! combines per-chunk results in chunk order on the calling thread.
//! Floating-point addition is not associative, so this is what makes the
//! results *bit-identical* across `Pool::sequential()`,
//! `Pool::with_workers(2)`, `Pool::with_workers(8)`, … — only the chunk
//! schedule varies, never the arithmetic. The whole repository's
//! reproducibility story (the simulator's replay guarantee, the
//! `threaded` module's bit-deterministic runs) extends through these
//! kernels unchanged.
//!
//! # Safety model
//!
//! [`WorkerPool::broadcast`] sends a type-erased pointer to a caller-owned
//! `Fn(usize) + Sync` closure to every worker and then blocks on a latch
//! until all workers have finished running it. The borrow therefore
//! strictly outlives every use, which is the same argument that makes
//! `std::thread::scope` sound — the scope here is the `broadcast` call
//! itself. Worker panics are caught, recorded on the latch, and re-raised
//! on the calling thread so a poisoned computation cannot be mistaken for
//! a finished one.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Countdown latch: `broadcast` waits until every worker checked in. The
/// first worker panic's payload is kept and re-raised on the calling
/// thread, so a caller sees the *original* panic message (an engine
/// running heterogeneous per-node tasks surfaces "node 7's solve failed",
/// not a generic pool assertion).
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new(n: usize) -> Self {
        Self { remaining: Mutex::new(n), all_done: Condvar::new(), panic_payload: Mutex::new(None) }
    }

    fn count_down(&self, panicked: Option<Box<dyn Any + Send>>) {
        if let Some(payload) = panicked {
            let mut slot = self.panic_payload.lock().unwrap();
            // Keep the first payload; later panics of the same broadcast
            // are duplicates of the same failed fan-out.
            slot.get_or_insert(payload);
        }
        let mut rem = self.remaining.lock().unwrap();
        *rem -= 1;
        if *rem == 0 {
            self.all_done.notify_all();
        }
    }

    /// Blocks until all workers counted down; returns the first panic
    /// payload, if any worker panicked.
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut rem = self.remaining.lock().unwrap();
        while *rem > 0 {
            rem = self.all_done.wait(rem).unwrap();
        }
        drop(rem);
        self.panic_payload.lock().unwrap().take()
    }
}

/// One broadcast unit: a type-erased `&F where F: Fn(usize) + Sync`.
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    latch: Arc<Latch>,
}

// SAFETY: `data` points at a closure that `broadcast` proved `Sync`, and
// `broadcast` blocks on the latch until every worker is done with it, so
// the pointee outlives all uses on the worker threads.
unsafe impl Send for Job {}

enum Msg {
    Run(Job),
    Exit,
}

/// A fixed set of long-lived worker threads. Create once, reuse across
/// solves; dropped pools shut their workers down cleanly.
pub struct WorkerPool {
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes broadcasts: one fan-out owns the workers at a time.
    submit: Mutex<()>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least 1).
    fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let (tx, rx) = channel::<Msg>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("dpr-pool-{idx}"))
                .spawn(move || {
                    while let Ok(Msg::Run(job)) = rx.recv() {
                        // SAFETY: upheld by the `Job` contract above.
                        let outcome =
                            catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, idx) }));
                        job.latch.count_down(outcome.err());
                    }
                })
                .expect("spawn pool worker");
            handles.push(handle);
        }
        Self { senders, handles, submit: Mutex::new(()) }
    }

    /// Number of worker threads.
    fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Runs `f(worker_index)` on every worker concurrently and blocks until
    /// all invocations return.
    ///
    /// # Panics
    /// Re-raises the first worker panic with its **original payload**, so a
    /// heterogeneous batch (different task per worker) reports which task
    /// actually failed rather than a generic pool assertion.
    fn broadcast<F: Fn(usize) + Sync>(&self, f: &F) {
        unsafe fn call_erased<F: Fn(usize)>(data: *const (), idx: usize) {
            // SAFETY: `data` was produced from `&F` below and is still live
            // (broadcast blocks on the latch before returning).
            unsafe { (*data.cast::<F>())(idx) }
        }
        // Tolerate poison: a previous broadcast that propagated a worker
        // panic poisons this mutex while the pool itself is still healthy.
        let _serial = self.submit.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let latch = Arc::new(Latch::new(self.senders.len()));
        for tx in &self.senders {
            let job = Job {
                data: std::ptr::from_ref(f).cast(),
                call: call_erased::<F>,
                latch: Arc::clone(&latch),
            };
            tx.send(Msg::Run(job)).expect("pool worker alive");
        }
        if let Some(payload) = latch.wait() {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Exit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A cheap, cloneable handle to a worker pool — or to no pool at all.
///
/// `Pool::sequential()` is the zero-cost degenerate case: every kernel runs
/// inline on the calling thread (but still over the same fixed chunk
/// boundaries, so results match the pooled path bit for bit). Solvers store
/// a `Pool` where they used to carry a dead `parallel: bool`.
#[derive(Clone, Default)]
pub struct Pool {
    inner: Option<Arc<WorkerPool>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("workers", &self.workers()).finish()
    }
}

impl Pool {
    /// No worker threads; kernels run inline.
    #[must_use]
    pub fn sequential() -> Self {
        Self { inner: None }
    }

    /// A pool with `workers` threads; `workers <= 1` degenerates to
    /// [`Pool::sequential`] (a one-worker pool would only add handoff
    /// latency over inline execution).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        if workers <= 1 {
            Self::sequential()
        } else {
            Self { inner: Some(Arc::new(WorkerPool::new(workers))) }
        }
    }

    /// The machine's usable hardware parallelism: `available_parallelism()`
    /// with a fallback of 1 when the host cannot report it. Benchmarks
    /// record this next to their timings — `BENCH_parallel.json` was
    /// recorded on a `host_threads() == 1` machine, where speedup ≈ 1× *by
    /// construction* (every pool degenerates to sequential), so its numbers
    /// certify determinism, not scaling.
    #[must_use]
    pub fn host_threads() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// The process-wide shared pool, clamped to [`Pool::host_threads`] and
    /// spawned lazily on first use. On a single-core host this is
    /// [`Pool::sequential`] — claiming parallelism there would be the very
    /// lie this module exists to remove.
    #[must_use]
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::with_workers(Pool::host_threads()))
    }

    /// Number of concurrent workers this handle provides (1 when
    /// sequential).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.as_ref().map_or(1, |p| p.workers())
    }

    /// Whether kernels handed this pool actually run on multiple threads.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f(worker_index)` once per worker (once, inline, when
    /// sequential), returning after all invocations complete.
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: F) {
        match &self.inner {
            Some(p) => p.broadcast(&f),
            None => f(0),
        }
    }

    /// Executes `work(chunk_index)` for every `chunk_index in 0..n_chunks`,
    /// distributing chunks over the workers through a shared atomic queue.
    /// Chunks are claimed dynamically (load balancing), which is safe for
    /// determinism precisely because chunk *boundaries* are fixed by the
    /// caller — only the assignment of chunks to threads varies.
    pub fn for_each_chunk<F: Fn(usize) + Sync>(&self, n_chunks: usize, work: F) {
        match &self.inner {
            None => {
                for c in 0..n_chunks {
                    work(c);
                }
            }
            Some(p) => {
                let next = AtomicUsize::new(0);
                p.broadcast(&|_worker| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    work(c);
                });
            }
        }
    }
}

/// A `&mut [T]` that can be carved into disjoint sub-slices from multiple
/// worker threads. The caller promises disjointness; the type only carries
/// the pointer across the `Sync` boundary.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access is only possible through `slice_mut`, whose contract
// requires callers to hand out disjoint ranges; `T: Send` makes moving the
// elements' ownership across threads sound.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for disjoint multi-threaded writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: std::marker::PhantomData }
    }

    /// Total length of the underlying slice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrows `[start, start + len)` mutably.
    ///
    /// # Safety
    /// Concurrent calls must cover pairwise-disjoint ranges, and
    /// `start + len <= self.len()` must hold.
    #[must_use]
    // The `&self -> &mut` shape is this type's whole purpose: each worker
    // derives its own disjoint `&mut` view through a shared reference. The
    // safety contract above is what makes that sound.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        // SAFETY: in-bounds per the caller contract; disjointness makes the
        // aliasing sound.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = Pool::sequential();
        assert_eq!(pool.workers(), 1);
        assert!(!pool.is_parallel());
        let hits = AtomicUsize::new(0);
        pool.broadcast(|i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn with_one_worker_is_sequential() {
        assert!(!Pool::with_workers(0).is_parallel());
        assert!(!Pool::with_workers(1).is_parallel());
        assert!(Pool::with_workers(2).is_parallel());
    }

    #[test]
    fn broadcast_reaches_every_worker() {
        let pool = Pool::with_workers(4);
        let seen = Mutex::new(vec![false; 4]);
        pool.broadcast(|i| {
            seen.lock().unwrap()[i] = true;
        });
        assert!(seen.into_inner().unwrap().iter().all(|&s| s));
    }

    #[test]
    fn for_each_chunk_covers_all_chunks_exactly_once() {
        let pool = Pool::with_workers(3);
        let n = 1000;
        let mut out = vec![0u8; n];
        let shared = SharedSlice::new(&mut out);
        pool.for_each_chunk(n, |c| {
            // SAFETY: chunk c touches only index c.
            unsafe { shared.slice_mut(c, 1)[0] += 1 };
        });
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn pool_is_reusable_across_many_calls() {
        let pool = Pool::with_workers(2);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = Pool::with_workers(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|i| assert!(i != 0, "injected failure"));
        }));
        assert!(result.is_err());
        // The pool survives a panicked broadcast and keeps working.
        let ok = AtomicUsize::new(0);
        pool.broadcast(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn worker_panic_keeps_its_original_payload() {
        let pool = Pool::with_workers(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|i| {
                if i == 1 {
                    panic!("solve failed on node 7");
                }
            });
        }));
        let payload = result.expect_err("broadcast must propagate the panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload should be a string");
        assert_eq!(msg, "solve failed on node 7");
    }

    #[test]
    fn heterogeneous_chunk_panic_propagates_once_and_pool_survives() {
        // One chunk out of many panics mid-batch: the panic must surface
        // exactly once on the caller, the latch must not deadlock, and the
        // remaining chunks must still all have run (other workers drain the
        // queue) so the pool is reusable with no poisoned state.
        let pool = Pool::with_workers(3);
        let n = 64;
        let done = (0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_chunk(n, |c| {
                if c == 17 {
                    panic!("chunk 17 is poisoned");
                }
                done[c].fetch_add(1, Ordering::Relaxed);
            });
        }));
        let payload = result.expect_err("chunk panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("chunk 17 is poisoned"));
        for (c, d) in done.iter().enumerate() {
            let hits = d.load(Ordering::Relaxed);
            if c == 17 {
                assert_eq!(hits, 0);
            } else {
                assert_eq!(hits, 1, "chunk {c} ran {hits} times");
            }
        }
        // No poisoned reuse: the same pool keeps serving fresh batches.
        let ok = AtomicUsize::new(0);
        pool.for_each_chunk(10, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Pool::global();
        let b = Pool::global();
        assert_eq!(a.workers(), b.workers());
    }
}
