//! Compressed sparse row (CSR) matrices.
//!
//! The web link matrix is enormous and extremely sparse (the paper's dataset
//! has 1M pages and 15M links, i.e. ~15 non-zeros per row), so CSR is the
//! natural layout: one contiguous array of column indices and one of values,
//! indexed per row through `row_ptr`. All PageRank variants in this
//! repository iterate `R ← A·R + f`, which is a single sparse
//! matrix–vector product (SpMV) per step.
//!
//! # Two layouts
//!
//! [`Csr`] stores an explicit `f64` per non-zero (12+ bytes/nnz streamed).
//! The ranking matrices have a special structure: every stored value is
//! `α / d(u)`, a function of the *column* alone. [`CsrImplicit`] exploits
//! that by dropping the values array entirely and keeping one `scale[u]`
//! per column; each solve step pre-scales the input once
//! (`ws[u] = scale[u] · x[u]`) and the inner loop becomes a pure
//! `u32`-index gather-sum (≤ 8 bytes/nnz). Each product is computed exactly
//! once from the same two operands and the per-row addition order is
//! unchanged, so the implicit kernel is **bit-identical by construction**
//! to the explicit kernel over the same entries — see
//! `implicit_matches_explicit_bitwise` in the tests for the proptest.

use crate::pool::{Pool, SharedSlice};

/// Row count above which the pooled SpMV kernels split across the worker
/// pool even when the matrix is sparse.
const PAR_ROWS_THRESHOLD: usize = 1 << 12;

/// Non-zero count above which the pooled SpMV kernels split across the
/// worker pool regardless of row count. Group matrices in a netrun are
/// short (a few thousand rows) but carry tens of thousands of non-zeros;
/// gating on rows alone left them sequential.
const PAR_NNZ_THRESHOLD: usize = 1 << 14;

/// Upper bound on rows per chunk for the pooled SpMV (the old fixed width).
const MAX_CHUNK_ROWS: usize = 1024;

/// Target non-zeros per chunk for the pooled SpMV. The chunk plan aims for
/// this many entries per work item so that short-but-dense matrices still
/// produce enough chunks to feed every worker.
const TARGET_CHUNK_NNZ: usize = 4096;

/// Fixed element-chunk width for the pooled pre-scale pass of
/// [`CsrImplicit`]. The pass is element-wise (no reduction), so chunking
/// cannot change any result bit; the width only balances handoff overhead.
const PRESCALE_CHUNK: usize = 4096;

/// Rows per chunk for the pooled SpMV, as a pure function of the matrix
/// shape `(n_rows, nnz)` — **never** of the worker count, which is what
/// keeps chunk boundaries (and therefore results) identical across pools.
///
/// The plan targets [`TARGET_CHUNK_NNZ`] non-zeros per chunk at the
/// matrix's average degree, clamped to `[1, MAX_CHUNK_ROWS]`. A 1.5k-row /
/// 22k-nnz group matrix used to yield 2 chunks of 1024 rows (starving all
/// but two workers); under this plan it yields ~6.
#[must_use]
pub(crate) fn spmv_chunk_rows(n_rows: usize, nnz: usize) -> usize {
    if n_rows == 0 {
        return 1;
    }
    // rows/chunk ≈ TARGET / avg_degree = TARGET · n_rows / nnz.
    (TARGET_CHUNK_NNZ.saturating_mul(n_rows) / nnz.max(1)).clamp(1, MAX_CHUNK_ROWS)
}

/// Whether a matrix of this shape is worth fanning out on `pool`.
#[inline]
fn spmv_parallel(pool: &Pool, n_rows: usize, nnz: usize) -> bool {
    pool.is_parallel() && (n_rows >= PAR_ROWS_THRESHOLD || nnz >= PAR_NNZ_THRESHOLD)
}

/// Validates the raw arrays shared by both CSR layouts.
///
/// # Panics
/// On any structural inconsistency; each check has its own message so
/// callers (and should_panic tests) can tell them apart.
fn validate_raw_parts(n_rows: usize, n_cols: usize, row_ptr: &[u64], col_idx: &[u32], nnz: usize) {
    assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr must have n_rows + 1 entries");
    assert_eq!(*row_ptr.last().unwrap_or(&0) as usize, nnz, "row_ptr must end at nnz");
    // Every interior pointer must stay inside the entry arrays. Checked
    // explicitly (not just via monotonicity + the last-entry check) so an
    // out-of-bounds interior pointer gets its own message instead of
    // masquerading as a "non-decreasing" violation.
    assert!(row_ptr.iter().all(|&p| p as usize <= nnz), "row_ptr entry exceeds nnz");
    assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr must be non-decreasing");
    assert!(col_idx.iter().all(|&c| (c as usize) < n_cols), "column index out of range");
}

/// Per-column scale factors `α / d(u)` for the implicit-value layout.
///
/// Zero out-degree (dangling) columns get a scale of exactly `0.0` — never
/// `inf` or `NaN` — so a dangling page contributes nothing through the
/// gather, matching the paper's treatment of dangling rank mass.
#[must_use]
pub fn column_scale(alpha: f64, degrees: &[u32]) -> Vec<f64> {
    degrees.iter().map(|&d| if d == 0 { 0.0 } else { alpha / f64::from(d) }).collect()
}

/// Row-pointer array for either CSR layout, auto-narrowed to `u32` when
/// the entry count permits. Narrowing halves the pointer traffic of the
/// SpMV inner loop; the `u64` form remains for ≥ 4G-entry matrices and for
/// benchmarking the wide layout explicitly.
#[derive(Debug, Clone, PartialEq)]
pub enum RowPtr {
    /// Narrow pointers — valid whenever `nnz < u32::MAX`.
    U32(Vec<u32>),
    /// Wide pointers.
    U64(Vec<u64>),
}

impl RowPtr {
    /// Narrows a wide pointer array when every entry fits in `u32`.
    #[must_use]
    fn from_wide(row_ptr: Vec<u64>) -> Self {
        match row_ptr.last() {
            Some(&last) if last < u64::from(u32::MAX) => {
                RowPtr::U32(row_ptr.into_iter().map(|p| p as u32).collect())
            }
            _ => RowPtr::U64(row_ptr),
        }
    }

    /// Whether the narrow (`u32`) representation is in use.
    #[must_use]
    pub fn is_narrow(&self) -> bool {
        matches!(self, RowPtr::U32(_))
    }

    /// The `[start, end)` entry range of row `r`.
    #[inline]
    #[must_use]
    fn bounds(&self, r: usize) -> (usize, usize) {
        match self {
            RowPtr::U32(p) => (p[r] as usize, p[r + 1] as usize),
            RowPtr::U64(p) => (p[r] as usize, p[r + 1] as usize),
        }
    }

    /// Heap bytes held by the pointer array.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            RowPtr::U32(p) => p.len() * 4,
            RowPtr::U64(p) => p.len() * 8,
        }
    }

    /// The pointer array widened back to `u64`.
    #[must_use]
    fn to_wide(&self) -> Vec<u64> {
        match self {
            RowPtr::U32(p) => p.iter().map(|&v| u64::from(v)).collect(),
            RowPtr::U64(p) => p.clone(),
        }
    }
}

/// A sparse matrix layout the fixed-point solvers can drive. Implemented by
/// the explicit-value [`Csr`] and the bandwidth-lean [`CsrImplicit`]; the
/// solvers are generic over this trait so netruns can pick the layout
/// without duplicating iteration logic.
pub trait SpMatVec {
    /// Number of rows.
    fn n_rows(&self) -> usize;
    /// Number of columns.
    fn n_cols(&self) -> usize;
    /// Number of stored entries.
    fn nnz(&self) -> usize;
    /// `y ← A·x` on `pool`, bit-identical at every worker count. `ws` is a
    /// reusable workspace; layouts that need none leave it untouched.
    fn mul_into(&self, x: &[f64], y: &mut [f64], ws: &mut Vec<f64>, pool: &Pool);
    /// The contraction bound `min(‖A‖∞, ‖A‖₁)` used for solver error
    /// bounds (Theorem 3.2: any norm bounds the spectral radius).
    fn contraction_norm(&self) -> f64;
}

/// An immutable sparse matrix in compressed sparse row format.
///
/// Rows correspond to *destination* pages and columns to *source* pages in
/// the "pull" orientation used by the ranking code: entry `(v, u)` holds
/// `α / d(u)` when there is a hyperlink `u → v`, so that
/// `R'(v) = Σ_u A[v,u]·R(u)` is one rank-propagation step.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes the entries of row `r`.
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from its raw arrays.
    ///
    /// # Panics
    /// If the arrays are structurally inconsistent (wrong `row_ptr` length,
    /// non-monotonic or out-of-bounds `row_ptr`, mismatched
    /// `col_idx`/`values` lengths, or a column index out of range).
    #[must_use]
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(col_idx.len(), values.len(), "col_idx and values must match");
        validate_raw_parts(n_rows, n_cols, &row_ptr, &col_idx, col_idx.len());
        Self { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// An `n × n` matrix with no stored entries.
    #[must_use]
    pub fn zero(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Heap bytes held by the matrix arrays (`row_ptr` + `col_idx` +
    /// `values`). The bandwidth benchmarks divide this by nnz.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.len() * 8 + self.col_idx.len() * 4 + self.values.len() * 8
    }

    /// Rewrites every stored value from per-column scale factors
    /// (`values[k] = scale[col_idx[k]]`), keeping the entry structure — the
    /// explicit-layout twin of [`CsrImplicit::set_scale`].
    ///
    /// # Panics
    /// On a `scale` length other than `n_cols` or a non-finite factor.
    pub fn rescale_columns(&mut self, scale: &[f64]) {
        assert_eq!(scale.len(), self.n_cols, "scale must have one factor per column");
        assert!(scale.iter().all(|s| s.is_finite()), "scale factors must be finite");
        for (v, &c) in self.values.iter_mut().zip(&self.col_idx) {
            *v = scale[c as usize];
        }
    }

    /// The `(col, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&c, &v)| (c as usize, v))
    }

    /// Value at `(r, c)`, `0.0` if not stored. O(row length) — intended for
    /// tests and small matrices, not hot loops.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.row(r).find(|&(col, _)| col == c).map_or(0.0, |(_, v)| v)
    }

    /// Sequential SpMV: `y ← A·x`.
    ///
    /// # Panics
    /// If `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yr = acc;
        }
    }

    /// Pool-parallel SpMV: `y ← A·x` with row chunks distributed over real
    /// worker threads. Rows are independent and each output element is the
    /// same per-row dot product as [`Csr::mul_vec`], so the result is
    /// bit-identical to the sequential kernel at every worker count. Falls
    /// back to the sequential kernel for small matrices or a sequential
    /// pool; chunk boundaries come from [`spmv_chunk_rows`], a pure
    /// function of the matrix shape.
    pub fn mul_vec_pool(&self, x: &[f64], y: &mut [f64], pool: &Pool) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        if !spmv_parallel(pool, self.n_rows, self.nnz()) {
            return self.mul_vec(x, y);
        }
        let chunk_rows = spmv_chunk_rows(self.n_rows, self.nnz());
        let n_chunks = self.n_rows.div_ceil(chunk_rows);
        let out = SharedSlice::new(y);
        pool.for_each_chunk(n_chunks, |c| {
            let base = c * chunk_rows;
            let len = chunk_rows.min(self.n_rows - base);
            // SAFETY: chunk `c` covers rows `[base, base + len)` and chunks
            // are pairwise disjoint.
            let ys = unsafe { out.slice_mut(base, len) };
            for (i, yr) in ys.iter_mut().enumerate() {
                let r = base + i;
                let lo = self.row_ptr[r] as usize;
                let hi = self.row_ptr[r + 1] as usize;
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k] as usize];
                }
                *yr = acc;
            }
        });
    }

    /// [`Csr::mul_vec_pool`] on the process-wide [`Pool::global`] pool.
    pub fn mul_vec_par(&self, x: &[f64], y: &mut [f64]) {
        self.mul_vec_pool(x, y, Pool::global());
    }

    /// The infinity norm `‖A‖∞ = max_r Σ_c |A[r,c]|` (maximum absolute row
    /// sum). Theorem 3.2 bounds the spectral radius by any matrix norm, and
    /// this is the cheapest one for CSR; the ranking matrices satisfy
    /// `‖A‖∞ ≤ α < 1`, which is what guarantees convergence.
    #[must_use]
    pub fn inf_norm(&self) -> f64 {
        (0..self.n_rows)
            .map(|r| {
                let lo = self.row_ptr[r] as usize;
                let hi = self.row_ptr[r + 1] as usize;
                self.values[lo..hi].iter().map(|v| v.abs()).sum::<f64>()
            })
            .fold(0.0_f64, f64::max)
    }

    /// The 1-norm `‖A‖₁ = max_c Σ_r |A[r,c]|` (maximum absolute column sum).
    #[must_use]
    pub fn one_norm(&self) -> f64 {
        let mut col_sums = vec![0.0_f64; self.n_cols];
        for (k, &c) in self.col_idx.iter().enumerate() {
            col_sums[c as usize] += self.values[k].abs();
        }
        col_sums.into_iter().fold(0.0_f64, f64::max)
    }

    /// Whether every stored value is ≥ 0 (the `A ≥ 0` premise of the
    /// appendix lemmas).
    #[must_use]
    pub fn is_nonneg(&self) -> bool {
        self.values.iter().all(|v| *v >= 0.0)
    }

    /// Transposed copy (swaps the push/pull orientation).
    #[must_use]
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0u64; self.n_cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for c in 0..self.n_cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for r in 0..self.n_rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            for k in lo..hi {
                let c = self.col_idx[k] as usize;
                let slot = cursor[c] as usize;
                col_idx[slot] = r as u32;
                values[slot] = self.values[k];
                cursor[c] += 1;
            }
        }
        Csr { n_rows: self.n_cols, n_cols: self.n_rows, row_ptr, col_idx, values }
    }

    /// Estimates the spectral radius `ρ(A)` by power iteration on `|A|`
    /// (element-wise absolute values), returning the final Rayleigh-style
    /// L1 growth ratio. Used in tests to confirm `ρ(A) ≤ ‖A‖∞` (Thm 3.2)
    /// with a healthy margin on real link matrices.
    #[must_use]
    pub fn estimate_spectral_radius(&self, iters: usize) -> f64 {
        assert_eq!(self.n_rows, self.n_cols, "spectral radius needs a square matrix");
        if self.n_rows == 0 {
            return 0.0;
        }
        let n = self.n_rows;
        let mut x = vec![1.0 / n as f64; n];
        let mut y = vec![0.0; n];
        let mut ratio = 0.0;
        for _ in 0..iters.max(1) {
            for (r, yr) in y.iter_mut().enumerate() {
                let lo = self.row_ptr[r] as usize;
                let hi = self.row_ptr[r + 1] as usize;
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k].abs() * x[self.col_idx[k] as usize];
                }
                *yr = acc;
            }
            let norm: f64 = y.iter().sum();
            if norm == 0.0 {
                return 0.0;
            }
            ratio = norm;
            for v in y.iter_mut() {
                *v /= norm;
            }
            std::mem::swap(&mut x, &mut y);
        }
        ratio
    }
}

impl SpMatVec for Csr {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn mul_into(&self, x: &[f64], y: &mut [f64], _ws: &mut Vec<f64>, pool: &Pool) {
        self.mul_vec_pool(x, y, pool);
    }
    fn contraction_norm(&self) -> f64 {
        self.inf_norm().min(self.one_norm())
    }
}

/// Row-pointer word: lets the gather kernel monomorphize over narrow and
/// wide pointers instead of matching per row.
trait PtrWord: Copy + Sync {
    /// The pointer as a `usize` index.
    fn idx(self) -> usize;
}
impl PtrWord for u32 {
    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}
impl PtrWord for u64 {
    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Single-accumulator gather: the reference fold order shared with the
/// explicit kernel (`acc += term_k` left to right).
///
/// # Safety
/// Every element of `cols` must be `< ws.len()`. [`gather_span`] asserts
/// this once per multiply from the constructor invariant
/// (`validate_raw_parts` bounds every column index by `n_cols`, and both
/// `mul_vec` paths fill `ws` to exactly `n_cols`), which lets the inner
/// loop skip the per-entry bounds check the explicit kernel pays.
#[inline]
unsafe fn gather_row_plain(cols: &[u32], ws: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &c in cols {
        // SAFETY: `c < ws.len()` per the function contract.
        acc += unsafe { *ws.get_unchecked(c as usize) };
    }
    acc
}

/// 4-wide unrolled gather. The four running sums re-associate the per-row
/// addition, so this fold order **differs** from the reference kernel —
/// bit identity forces it behind the explicit
/// [`CsrImplicit::with_unrolled`] opt-in (see ROADMAP: "bit identity
/// forces a documented opt-in").
///
/// # Safety
/// Same contract as [`gather_row_plain`]: every element of `cols` must be
/// `< ws.len()`.
#[inline]
unsafe fn gather_row_unrolled(cols: &[u32], ws: &[f64]) -> f64 {
    let mut quads = cols.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64);
    for q in quads.by_ref() {
        // SAFETY: every column index is `< ws.len()` per the contract.
        unsafe {
            a0 += *ws.get_unchecked(q[0] as usize);
            a1 += *ws.get_unchecked(q[1] as usize);
            a2 += *ws.get_unchecked(q[2] as usize);
            a3 += *ws.get_unchecked(q[3] as usize);
        }
    }
    let mut acc = (a0 + a1) + (a2 + a3);
    for &c in quads.remainder() {
        // SAFETY: as above.
        acc += unsafe { *ws.get_unchecked(c as usize) };
    }
    acc
}

/// Gathers rows `[base, base + ys.len())` of the implicit layout into `ys`.
///
/// # Safety
/// Every element of `col_idx` must be `< ws.len()`. Both callers satisfy
/// this structurally: `validate_raw_parts` bounds every column index by
/// `n_cols` at construction, and `mul_vec`/`mul_vec_pool` fill `ws` to
/// exactly `n_cols` before gathering.
#[inline]
unsafe fn gather_span<P: PtrWord>(
    row_ptr: &[P],
    col_idx: &[u32],
    ws: &[f64],
    base: usize,
    ys: &mut [f64],
    unrolled: bool,
) {
    let ptrs = &row_ptr[base..base + ys.len() + 1];
    for (yr, w) in ys.iter_mut().zip(ptrs.windows(2)) {
        let (lo, hi) = (w[0].idx(), w[1].idx());
        // SAFETY: `validate_raw_parts` proved `row_ptr` monotone with every
        // entry `≤ col_idx.len()`, so `lo..hi` is in bounds; the column
        // contract is forwarded from this function's contract.
        *yr = unsafe {
            let cols = col_idx.get_unchecked(lo..hi);
            if unrolled {
                gather_row_unrolled(cols, ws)
            } else {
                gather_row_plain(cols, ws)
            }
        };
    }
}

/// The bandwidth-lean, implicit-value CSR layout.
///
/// Stores no per-entry values: entry `(v, u)` implicitly holds `scale[u]`
/// (in the ranking matrices, `α / d(u)`). One pre-scale pass per multiply
/// (`ws[u] = scale[u] · x[u]`) turns the inner loop into a `u32` gather-sum
/// that streams 4 bytes of column index per non-zero instead of 12 — plus a
/// row pointer that auto-narrows to `u32` via [`RowPtr`].
///
/// The multiply is bit-identical to [`Csr::mul_vec`] over the same entries:
/// each product `scale[u] · x[u]` is one f64 multiply of the same operands
/// the explicit kernel uses (`values[k] ≡ scale[col_idx[k]]`), computed
/// exactly once, and the per-row fold order is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrImplicit {
    n_rows: usize,
    n_cols: usize,
    row_ptr: RowPtr,
    col_idx: Vec<u32>,
    /// `scale[u]` — the implicit value of every entry in column `u`.
    /// Exactly `0.0` for dangling (zero out-degree) columns.
    scale: Vec<f64>,
    /// Opt-in 4-wide unrolled accumulator (different fold order; see
    /// [`CsrImplicit::with_unrolled`]).
    unrolled: bool,
}

impl CsrImplicit {
    /// Builds an implicit-value CSR matrix from its raw arrays. The row
    /// pointer auto-narrows to `u32` when `nnz` permits.
    ///
    /// # Panics
    /// On structurally inconsistent arrays (same checks as
    /// [`Csr::from_raw_parts`]), a `scale` length other than `n_cols`, or a
    /// non-finite scale factor (a dangling column must be `0.0`, not
    /// `inf`/`NaN` — use [`column_scale`]).
    #[must_use]
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        scale: Vec<f64>,
    ) -> Self {
        validate_raw_parts(n_rows, n_cols, &row_ptr, &col_idx, col_idx.len());
        assert_eq!(scale.len(), n_cols, "scale must have one factor per column");
        assert!(scale.iter().all(|s| s.is_finite()), "scale factors must be finite");
        Self {
            n_rows,
            n_cols,
            row_ptr: RowPtr::from_wide(row_ptr),
            col_idx,
            scale,
            unrolled: false,
        }
    }

    /// An `n_rows × n_cols` matrix with no stored entries (all scales 0).
    #[must_use]
    pub fn zero(n_rows: usize, n_cols: usize) -> Self {
        Self::from_raw_parts(n_rows, n_cols, vec![0; n_rows + 1], Vec::new(), vec![0.0; n_cols])
    }

    /// Opts into the 4-wide unrolled accumulator. The unrolled fold order
    /// differs from the reference kernel (four running sums combined at row
    /// end), so results are *not* bit-identical to the plain kernel —
    /// low-order bits may differ. Off by default; per ROADMAP, bit identity
    /// forces this to be a documented opt-in.
    #[must_use]
    pub fn with_unrolled(mut self, unrolled: bool) -> Self {
        self.unrolled = unrolled;
        self
    }

    /// Forces the wide (`u64`) row pointer, undoing the automatic
    /// narrowing. Exists so benchmarks can measure the narrow-pointer win
    /// in isolation.
    #[must_use]
    pub fn with_wide_row_ptr(mut self) -> Self {
        self.row_ptr = RowPtr::U64(self.row_ptr.to_wide());
        self
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Whether the row pointer narrowed to `u32`.
    #[must_use]
    pub fn row_ptr_is_narrow(&self) -> bool {
        self.row_ptr.is_narrow()
    }

    /// Whether the 4-wide unrolled accumulator is enabled.
    #[must_use]
    pub fn is_unrolled(&self) -> bool {
        self.unrolled
    }

    /// The per-column scale factors.
    #[must_use]
    pub fn scale(&self) -> &[f64] {
        &self.scale
    }

    /// Replaces the per-column scale factors in place, keeping the row
    /// pointer and column indices — the incremental-ranking patch path: a
    /// graph delta that changes out-degrees without touching this matrix's
    /// entry structure only needs new `α/d(u)` factors.
    ///
    /// # Panics
    /// On a `scale` length other than `n_cols` or a non-finite factor (the
    /// same contract as [`CsrImplicit::from_raw_parts`]).
    pub fn set_scale(&mut self, scale: Vec<f64>) {
        assert_eq!(scale.len(), self.n_cols, "scale must have one factor per column");
        assert!(scale.iter().all(|s| s.is_finite()), "scale factors must be finite");
        self.scale = scale;
    }

    /// Heap bytes held by the matrix arrays (`row_ptr` + `col_idx` +
    /// `scale`). The bandwidth benchmarks divide this by nnz: ≤ 8 bytes per
    /// non-zero for the narrow layout versus 12+ for [`Csr`].
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.heap_bytes() + self.col_idx.len() * 4 + self.scale.len() * 8
    }

    /// Materializes the explicit twin: a [`Csr`] with the identical entry
    /// structure and `values[k] = scale[col_idx[k]]`. The twin's
    /// [`Csr::mul_vec`] is the bit-identity reference for this layout.
    #[must_use]
    pub fn to_explicit(&self) -> Csr {
        let values = self.col_idx.iter().map(|&c| self.scale[c as usize]).collect();
        Csr::from_raw_parts(
            self.n_rows,
            self.n_cols,
            self.row_ptr.to_wide(),
            self.col_idx.clone(),
            values,
        )
    }

    /// Pre-scale pass: `ws[u] = scale[u] · x[u]`. Element-wise, so chunking
    /// cannot affect bits.
    fn prescale(&self, x: &[f64], ws: &mut Vec<f64>) {
        crate::vec_ops::hadamard_into(&self.scale, x, ws);
    }

    /// Sequential SpMV: `y ← A·x`, with `ws` as the pre-scale workspace
    /// (resized to `n_cols`; reuse it across calls to avoid reallocation).
    ///
    /// # Panics
    /// If `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64], ws: &mut Vec<f64>) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        self.prescale(x, ws);
        debug_assert_eq!(ws.len(), self.n_cols);
        // SAFETY: `validate_raw_parts` bounded every column index by
        // `n_cols` at construction and `prescale` filled `ws` to `n_cols`.
        unsafe {
            match &self.row_ptr {
                RowPtr::U32(p) => gather_span(p, &self.col_idx, ws, 0, y, self.unrolled),
                RowPtr::U64(p) => gather_span(p, &self.col_idx, ws, 0, y, self.unrolled),
            }
        }
    }

    /// Pool-parallel SpMV: `y ← A·x`. Bit-identical to
    /// [`CsrImplicit::mul_vec`] at every worker count: the pre-scale pass
    /// is element-wise and the gather uses the same fixed chunk plan
    /// ([`spmv_chunk_rows`]) as the explicit kernel.
    pub fn mul_vec_pool(&self, x: &[f64], y: &mut [f64], ws: &mut Vec<f64>, pool: &Pool) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        if !spmv_parallel(pool, self.n_rows, self.nnz()) {
            return self.mul_vec(x, y, ws);
        }
        ws.resize(self.n_cols, 0.0);
        {
            let shared_ws = SharedSlice::new(ws.as_mut_slice());
            let n_chunks = self.n_cols.div_ceil(PRESCALE_CHUNK);
            pool.for_each_chunk(n_chunks, |c| {
                let base = c * PRESCALE_CHUNK;
                let len = PRESCALE_CHUNK.min(self.n_cols - base);
                // SAFETY: chunk `c` covers elements `[base, base + len)`
                // and chunks are pairwise disjoint.
                let out = unsafe { shared_ws.slice_mut(base, len) };
                for (i, w) in out.iter_mut().enumerate() {
                    let u = base + i;
                    *w = self.scale[u] * x[u];
                }
            });
        }
        let chunk_rows = spmv_chunk_rows(self.n_rows, self.nnz());
        let n_chunks = self.n_rows.div_ceil(chunk_rows);
        let out = SharedSlice::new(y);
        let ws_ref: &[f64] = ws;
        pool.for_each_chunk(n_chunks, |c| {
            let base = c * chunk_rows;
            let len = chunk_rows.min(self.n_rows - base);
            // SAFETY: chunk `c` covers rows `[base, base + len)` and chunks
            // are pairwise disjoint.
            let ys = unsafe { out.slice_mut(base, len) };
            // SAFETY: `validate_raw_parts` bounded every column index by
            // `n_cols` at construction and `ws` was resized to `n_cols`.
            unsafe {
                match &self.row_ptr {
                    RowPtr::U32(p) => {
                        gather_span(p, &self.col_idx, ws_ref, base, ys, self.unrolled)
                    }
                    RowPtr::U64(p) => {
                        gather_span(p, &self.col_idx, ws_ref, base, ys, self.unrolled)
                    }
                }
            }
        });
    }

    /// The infinity norm `‖A‖∞` — computed in the same per-row, in-order
    /// summation as [`Csr::inf_norm`] on the explicit twin, so the bounds
    /// match bit for bit.
    #[must_use]
    pub fn inf_norm(&self) -> f64 {
        (0..self.n_rows)
            .map(|r| {
                let (lo, hi) = self.row_ptr.bounds(r);
                self.col_idx[lo..hi].iter().map(|&c| self.scale[c as usize].abs()).sum::<f64>()
            })
            .fold(0.0_f64, f64::max)
    }

    /// The 1-norm `‖A‖₁` — same accumulation order as [`Csr::one_norm`] on
    /// the explicit twin.
    #[must_use]
    pub fn one_norm(&self) -> f64 {
        let mut col_sums = vec![0.0_f64; self.n_cols];
        for &c in &self.col_idx {
            col_sums[c as usize] += self.scale[c as usize].abs();
        }
        col_sums.into_iter().fold(0.0_f64, f64::max)
    }

    /// Whether every implicit value is ≥ 0.
    #[must_use]
    pub fn is_nonneg(&self) -> bool {
        // An entry's value is its column's scale; columns without entries
        // don't contribute values at all.
        self.col_idx.iter().all(|&c| self.scale[c as usize] >= 0.0)
    }
}

impl SpMatVec for CsrImplicit {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
    fn nnz(&self) -> usize {
        self.col_idx.len()
    }
    fn mul_into(&self, x: &[f64], y: &mut [f64], ws: &mut Vec<f64>, pool: &Pool) {
        self.mul_vec_pool(x, y, ws, pool);
    }
    fn contraction_norm(&self) -> f64 {
        self.inf_norm().min(self.one_norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn sample() -> Csr {
        // [ 0  0.5 0 ]
        // [ 1  0   2 ]
        // [ 0  0   0 ]
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 1, 0.5);
        t.push(1, 0, 1.0);
        t.push(1, 2, 2.0);
        t.to_csr()
    }

    /// Builds a random pull-oriented ranking matrix in implicit form:
    /// `n` pages, per-column out-degrees in `0..=max_deg` (0 ⇒ dangling),
    /// entries sorted by (row, col) with duplicates allowed.
    fn random_implicit(n: usize, max_deg: u32, alpha: f64, seed: u64) -> CsrImplicit {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut degrees = vec![0u32; n];
        let mut entries: Vec<(u32, u32)> = Vec::new();
        for (u, deg) in degrees.iter_mut().enumerate() {
            let d = rng.gen_range(0..=max_deg);
            *deg = d;
            for _ in 0..d {
                let v = rng.gen_range(0..n) as u32;
                entries.push((v, u as u32));
            }
        }
        entries.sort_unstable();
        let mut row_ptr = vec![0u64; n + 1];
        for &(v, _) in &entries {
            row_ptr[v as usize + 1] += 1;
        }
        for r in 0..n {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx = entries.iter().map(|&(_, u)| u).collect();
        CsrImplicit::from_raw_parts(n, n, row_ptr, col_idx, column_scale(alpha, &degrees))
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        m.mul_vec(&x, &mut y);
        assert_eq!(y, [1.0, 7.0, 0.0]);
    }

    #[test]
    fn mul_vec_par_matches_sequential_small() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        m.mul_vec(&x, &mut y1);
        m.mul_vec_par(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn mul_vec_par_matches_sequential_large() {
        let n = PAR_ROWS_THRESHOLD + 123;
        let mut rng = SmallRng::seed_from_u64(7);
        let mut t = TripletMatrix::new(n, n);
        for _ in 0..n * 4 {
            t.push(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(-1.0..1.0));
        }
        let m = t.to_csr();
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        m.mul_vec(&x, &mut y1);
        m.mul_vec_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_vec_pool_bit_identical_across_worker_counts() {
        let n = PAR_ROWS_THRESHOLD + 777;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut t = TripletMatrix::new(n, n);
        for _ in 0..n * 6 {
            t.push(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(-1.0..1.0));
        }
        let m = t.to_csr();
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut seq = vec![0.0; n];
        m.mul_vec(&x, &mut seq);
        for workers in [1, 2, 8] {
            let pool = Pool::with_workers(workers);
            let mut y = vec![f64::NAN; n];
            m.mul_vec_pool(&x, &mut y, &pool);
            assert!(
                seq.iter().zip(&y).all(|(a, b)| a.to_bits() == b.to_bits()),
                "pooled SpMV diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn chunk_plan_is_a_pure_function_of_shape() {
        // A short-but-dense group matrix must yield more than a couple of
        // chunks (the old fixed 1024-row width starved the pool)...
        let rows = 1536;
        let nnz = 1536 * 15;
        let per = spmv_chunk_rows(rows, nnz);
        assert!(per < rows / 4, "chunk plan too coarse: {per} rows/chunk");
        assert!(rows.div_ceil(per) >= 4, "plan yields too few chunks");
        // ...while huge sparse matrices keep the old cap.
        assert_eq!(spmv_chunk_rows(10_000_000, 10_000_000), MAX_CHUNK_ROWS);
        // The plan depends only on (rows, nnz): constant across calls.
        assert_eq!(spmv_chunk_rows(rows, nnz), per);
        // Degenerate shapes stay sane.
        assert_eq!(spmv_chunk_rows(0, 0), 1);
        assert!(spmv_chunk_rows(5, 0) >= 1);
        // Empty rows don't zero the width.
        assert!(spmv_chunk_rows(100, 1_000_000) >= 1);
    }

    #[test]
    fn nnz_gate_parallelizes_short_dense_matrices() {
        // 1.5k rows is below the row threshold but 22k non-zeros crosses
        // the nnz threshold: the widened gate must fan out.
        let pool = Pool::with_workers(2);
        assert!(spmv_parallel(&pool, 1536, 23_000));
        assert!(!spmv_parallel(&pool, 1536, 1_000));
        assert!(!spmv_parallel(&Pool::sequential(), 1_000_000, 15_000_000));
    }

    #[test]
    fn norms() {
        let m = sample();
        assert_eq!(m.inf_norm(), 3.0); // row 1: 1 + 2
        assert_eq!(m.one_norm(), 2.0); // col 2
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(1, 0), 0.5);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.get(2, 1), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn zero_matrix() {
        let z = Csr::zero(4, 2);
        assert_eq!(z.nnz(), 0);
        let mut y = [9.0; 4];
        z.mul_vec(&[1.0, 1.0], &mut y);
        assert_eq!(y, [0.0; 4]);
        assert_eq!(z.inf_norm(), 0.0);
    }

    #[test]
    fn spectral_radius_bounded_by_inf_norm() {
        let m = sample();
        let rho = m.estimate_spectral_radius(100);
        assert!(rho <= m.inf_norm() + 1e-9, "rho={rho} > inf_norm={}", m.inf_norm());
    }

    #[test]
    fn spectral_radius_of_scaled_identity() {
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 0.7);
        }
        let rho = t.to_csr().estimate_spectral_radius(50);
        assert!((rho - 0.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn inconsistent_raw_parts_panic() {
        let _ = Csr::from_raw_parts(1, 1, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "row_ptr entry exceeds nnz")]
    fn interior_row_ptr_out_of_bounds_panics() {
        // Ends at nnz = 1 but the interior pointer 5 points past the entry
        // arrays; before the explicit interior check this was only caught
        // incidentally (and misreported) by the monotonicity assert.
        let _ = Csr::from_raw_parts(2, 1, vec![0, 5, 1], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "row_ptr entry exceeds nnz")]
    fn implicit_interior_row_ptr_out_of_bounds_panics() {
        let _ = CsrImplicit::from_raw_parts(2, 1, vec![0, 5, 1], vec![0], vec![0.85]);
    }

    #[test]
    #[should_panic(expected = "scale factors must be finite")]
    fn implicit_rejects_non_finite_scale() {
        let _ = CsrImplicit::from_raw_parts(1, 1, vec![0, 0], vec![], vec![f64::INFINITY]);
    }

    #[test]
    fn nonneg_detection() {
        assert!(sample().is_nonneg());
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, -1.0);
        assert!(!t.to_csr().is_nonneg());
    }

    #[test]
    fn column_scale_zeroes_dangling_columns() {
        let s = column_scale(0.85, &[0, 1, 4, 0]);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[0].to_bits(), 0u64); // +0.0, not -0.0
        assert_eq!(s[1], 0.85);
        assert_eq!(s[2], 0.85 / 4.0);
        assert_eq!(s[3], 0.0);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn implicit_matches_explicit_on_toy_matrix() {
        // 3 pages: 0 → {1, 2}, 1 → {2}, 2 dangling.
        let degrees = [2u32, 1, 0];
        let m = CsrImplicit::from_raw_parts(
            3,
            3,
            vec![0, 0, 1, 3],
            vec![0, 0, 1],
            column_scale(0.85, &degrees),
        );
        assert!(m.row_ptr_is_narrow());
        let twin = m.to_explicit();
        let x = [0.3, 0.5, 0.2];
        let mut y_i = [0.0; 3];
        let mut y_e = [0.0; 3];
        let mut ws = Vec::new();
        m.mul_vec(&x, &mut y_i, &mut ws);
        twin.mul_vec(&x, &mut y_e);
        assert_eq!(y_i.map(f64::to_bits), y_e.map(f64::to_bits));
        assert_eq!(m.inf_norm().to_bits(), twin.inf_norm().to_bits());
        assert_eq!(m.one_norm().to_bits(), twin.one_norm().to_bits());
        assert!(m.is_nonneg());
        assert_eq!(m.nnz(), 3);
        assert!(m.heap_bytes() < twin.heap_bytes());
    }

    #[test]
    fn implicit_dangling_columns_and_empty_rows_stay_finite() {
        // Every page dangling: no entries, all scales exactly 0.0.
        let m = CsrImplicit::from_raw_parts(
            4,
            4,
            vec![0, 0, 0, 0, 0],
            vec![],
            column_scale(0.85, &[0, 0, 0, 0]),
        );
        let mut y = [f64::NAN; 4];
        let mut ws = Vec::new();
        m.mul_vec(&[1.0, 2.0, 3.0, 4.0], &mut y, &mut ws);
        assert_eq!(y, [0.0; 4]);
        assert!(ws.iter().all(|v| v.to_bits() == 0));
        assert_eq!(m.inf_norm(), 0.0);
        assert_eq!(m.one_norm(), 0.0);
        assert_eq!(m.contraction_norm(), 0.0);
    }

    #[test]
    fn wide_row_ptr_is_bit_identical_to_narrow() {
        let m = random_implicit(500, 8, 0.85, 99);
        assert!(m.row_ptr_is_narrow());
        let wide = m.clone().with_wide_row_ptr();
        assert!(!wide.row_ptr_is_narrow());
        let x: Vec<f64> = (0..500).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let (mut y1, mut y2) = (vec![0.0; 500], vec![0.0; 500]);
        let (mut w1, mut w2) = (Vec::new(), Vec::new());
        m.mul_vec(&x, &mut y1, &mut w1);
        wide.mul_vec(&x, &mut y2, &mut w2);
        assert!(y1.iter().zip(&y2).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(wide.heap_bytes() > m.heap_bytes());
    }

    #[test]
    fn unrolled_gather_matches_plain_within_tolerance() {
        let m = random_implicit(800, 12, 0.85, 5);
        let fast = m.clone().with_unrolled(true);
        assert!(fast.is_unrolled() && !m.is_unrolled());
        let x: Vec<f64> = (0..800).map(|i| ((i as f64) * 0.37).sin().abs()).collect();
        let (mut y1, mut y2) = (vec![0.0; 800], vec![0.0; 800]);
        let (mut w1, mut w2) = (Vec::new(), Vec::new());
        m.mul_vec(&x, &mut y1, &mut w1);
        fast.mul_vec(&x, &mut y2, &mut w2);
        // Different fold order: equal within round-off, not necessarily
        // bit-identical — which is exactly why it's opt-in.
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
        }
    }

    #[test]
    fn unrolled_pooled_is_bit_identical_across_worker_counts() {
        // The opt-in changes the fold order vs the plain kernel, but it is
        // still deterministic across worker counts (fixed chunk plan).
        let m = random_implicit(3200, 12, 0.85, 21).with_unrolled(true);
        assert!(m.nnz() >= PAR_NNZ_THRESHOLD, "test matrix must cross the nnz gate");
        let x: Vec<f64> = (0..3200).map(|i| ((i as f64) * 0.11).cos().abs()).collect();
        let mut seq = vec![0.0; 3200];
        let mut ws = Vec::new();
        m.mul_vec(&x, &mut seq, &mut ws);
        for workers in [1, 2, 8] {
            let pool = Pool::with_workers(workers);
            let mut y = vec![f64::NAN; 3200];
            let mut w = Vec::new();
            m.mul_vec_pool(&x, &mut y, &mut w, &pool);
            assert!(
                seq.iter().zip(&y).all(|(a, b)| a.to_bits() == b.to_bits()),
                "unrolled pooled gather diverged at {workers} workers"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// The tentpole proof: over random ranking matrices — including
        /// dangling columns and empty rows — the implicit kernel matches
        /// the explicit twin bit for bit at 1, 2, and 8 workers, both of
        /// them matching the sequential explicit reference. Sizes are drawn
        /// so some cases cross the nnz parallel gate and genuinely fan out.
        #[test]
        fn implicit_matches_explicit_bitwise(seed in 0u64..1u64 << 32, n in 1usize..2500) {
            let m = random_implicit(n, 12, 0.85, seed);
            let twin = m.to_explicit();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xD15E);
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            let mut reference = vec![0.0; n];
            twin.mul_vec(&x, &mut reference);
            prop_assert!(reference.iter().all(|v| v.is_finite()));
            prop_assert_eq!(m.inf_norm().to_bits(), twin.inf_norm().to_bits());
            prop_assert_eq!(m.one_norm().to_bits(), twin.one_norm().to_bits());
            for workers in [1usize, 2, 8] {
                let pool = Pool::with_workers(workers);
                let mut y_i = vec![f64::NAN; n];
                let mut y_e = vec![f64::NAN; n];
                let mut ws = Vec::new();
                m.mul_vec_pool(&x, &mut y_i, &mut ws, &pool);
                twin.mul_vec_pool(&x, &mut y_e, &pool);
                for r in 0..n {
                    prop_assert_eq!(
                        y_i[r].to_bits(), reference[r].to_bits(),
                        "implicit row {} diverged at {} workers", r, workers
                    );
                    prop_assert_eq!(y_e[r].to_bits(), reference[r].to_bits());
                }
            }
        }

        /// Dangling columns never leak a non-finite scale into the result,
        /// whatever the graph shape (satellite: dangling/empty-row
        /// coverage through the implicit path).
        #[test]
        fn implicit_dangling_never_produces_non_finite(seed in 0u64..1u64 << 32) {
            let m = random_implicit(64, 2, 0.85, seed); // max_deg 2 ⇒ many dangling
            prop_assert!(m.scale().iter().all(|s| s.is_finite()));
            let x: Vec<f64> = (0..64).map(|i| (i as f64) + 0.5).collect();
            let mut y = vec![f64::NAN; 64];
            let mut ws = Vec::new();
            m.mul_vec(&x, &mut y, &mut ws);
            prop_assert!(y.iter().all(|v| v.is_finite()));
            prop_assert!(ws.iter().all(|v| v.is_finite()));
        }
    }
}
