//! Compressed sparse row (CSR) matrices.
//!
//! The web link matrix is enormous and extremely sparse (the paper's dataset
//! has 1M pages and 15M links, i.e. ~15 non-zeros per row), so CSR is the
//! natural layout: one contiguous array of column indices and one of values,
//! indexed per row through `row_ptr`. All PageRank variants in this
//! repository iterate `R ← A·R + f`, which is a single sparse
//! matrix–vector product (SpMV) per step.

use crate::pool::{Pool, SharedSlice};

/// Row count above which [`Csr::mul_vec_pool`] actually splits across the
/// worker pool; tiny matrices stay sequential.
const PAR_ROWS_THRESHOLD: usize = 1 << 12;

/// Fixed row-chunk width for the pooled SpMV. Boundaries are independent of
/// the worker count, so every output element is produced by the identical
/// per-row dot product regardless of parallelism (rows are independent, so
/// SpMV is bit-deterministic by construction; the fixed width keeps the
/// schedule cache-friendly and the work queue short).
const SPMV_CHUNK_ROWS: usize = 1024;

/// An immutable sparse matrix in compressed sparse row format.
///
/// Rows correspond to *destination* pages and columns to *source* pages in
/// the "pull" orientation used by the ranking code: entry `(v, u)` holds
/// `α / d(u)` when there is a hyperlink `u → v`, so that
/// `R'(v) = Σ_u A[v,u]·R(u)` is one rank-propagation step.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes the entries of row `r`.
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from its raw arrays.
    ///
    /// # Panics
    /// If the arrays are structurally inconsistent (wrong `row_ptr` length,
    /// non-monotonic `row_ptr`, mismatched `col_idx`/`values` lengths, or a
    /// column index out of range).
    #[must_use]
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr must have n_rows + 1 entries");
        assert_eq!(col_idx.len(), values.len(), "col_idx and values must match");
        assert_eq!(
            *row_ptr.last().unwrap_or(&0) as usize,
            col_idx.len(),
            "row_ptr must end at nnz"
        );
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr must be non-decreasing");
        assert!(col_idx.iter().all(|&c| (c as usize) < n_cols), "column index out of range");
        Self { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// An `n × n` matrix with no stored entries.
    #[must_use]
    pub fn zero(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(col, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&c, &v)| (c as usize, v))
    }

    /// Value at `(r, c)`, `0.0` if not stored. O(row length) — intended for
    /// tests and small matrices, not hot loops.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.row(r).find(|&(col, _)| col == c).map_or(0.0, |(_, v)| v)
    }

    /// Sequential SpMV: `y ← A·x`.
    ///
    /// # Panics
    /// If `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yr = acc;
        }
    }

    /// Pool-parallel SpMV: `y ← A·x` with row chunks distributed over real
    /// worker threads. Rows are independent and each output element is the
    /// same per-row dot product as [`Csr::mul_vec`], so the result is
    /// bit-identical to the sequential kernel at every worker count. Falls
    /// back to the sequential kernel for small matrices or a sequential
    /// pool.
    pub fn mul_vec_pool(&self, x: &[f64], y: &mut [f64], pool: &Pool) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        if !pool.is_parallel() || self.n_rows < PAR_ROWS_THRESHOLD {
            return self.mul_vec(x, y);
        }
        let n_chunks = self.n_rows.div_ceil(SPMV_CHUNK_ROWS);
        let out = SharedSlice::new(y);
        pool.for_each_chunk(n_chunks, |c| {
            let base = c * SPMV_CHUNK_ROWS;
            let len = SPMV_CHUNK_ROWS.min(self.n_rows - base);
            // SAFETY: chunk `c` covers rows `[base, base + len)` and chunks
            // are pairwise disjoint.
            let ys = unsafe { out.slice_mut(base, len) };
            for (i, yr) in ys.iter_mut().enumerate() {
                let r = base + i;
                let lo = self.row_ptr[r] as usize;
                let hi = self.row_ptr[r + 1] as usize;
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k] as usize];
                }
                *yr = acc;
            }
        });
    }

    /// [`Csr::mul_vec_pool`] on the process-wide [`Pool::global`] pool.
    pub fn mul_vec_par(&self, x: &[f64], y: &mut [f64]) {
        self.mul_vec_pool(x, y, Pool::global());
    }

    /// The infinity norm `‖A‖∞ = max_r Σ_c |A[r,c]|` (maximum absolute row
    /// sum). Theorem 3.2 bounds the spectral radius by any matrix norm, and
    /// this is the cheapest one for CSR; the ranking matrices satisfy
    /// `‖A‖∞ ≤ α < 1`, which is what guarantees convergence.
    #[must_use]
    pub fn inf_norm(&self) -> f64 {
        (0..self.n_rows)
            .map(|r| {
                let lo = self.row_ptr[r] as usize;
                let hi = self.row_ptr[r + 1] as usize;
                self.values[lo..hi].iter().map(|v| v.abs()).sum::<f64>()
            })
            .fold(0.0_f64, f64::max)
    }

    /// The 1-norm `‖A‖₁ = max_c Σ_r |A[r,c]|` (maximum absolute column sum).
    #[must_use]
    pub fn one_norm(&self) -> f64 {
        let mut col_sums = vec![0.0_f64; self.n_cols];
        for (k, &c) in self.col_idx.iter().enumerate() {
            col_sums[c as usize] += self.values[k].abs();
        }
        col_sums.into_iter().fold(0.0_f64, f64::max)
    }

    /// Whether every stored value is ≥ 0 (the `A ≥ 0` premise of the
    /// appendix lemmas).
    #[must_use]
    pub fn is_nonneg(&self) -> bool {
        self.values.iter().all(|v| *v >= 0.0)
    }

    /// Transposed copy (swaps the push/pull orientation).
    #[must_use]
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0u64; self.n_cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for c in 0..self.n_cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for r in 0..self.n_rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            for k in lo..hi {
                let c = self.col_idx[k] as usize;
                let slot = cursor[c] as usize;
                col_idx[slot] = r as u32;
                values[slot] = self.values[k];
                cursor[c] += 1;
            }
        }
        Csr { n_rows: self.n_cols, n_cols: self.n_rows, row_ptr, col_idx, values }
    }

    /// Estimates the spectral radius `ρ(A)` by power iteration on `|A|`
    /// (element-wise absolute values), returning the final Rayleigh-style
    /// L1 growth ratio. Used in tests to confirm `ρ(A) ≤ ‖A‖∞` (Thm 3.2)
    /// with a healthy margin on real link matrices.
    #[must_use]
    pub fn estimate_spectral_radius(&self, iters: usize) -> f64 {
        assert_eq!(self.n_rows, self.n_cols, "spectral radius needs a square matrix");
        if self.n_rows == 0 {
            return 0.0;
        }
        let n = self.n_rows;
        let mut x = vec![1.0 / n as f64; n];
        let mut y = vec![0.0; n];
        let mut ratio = 0.0;
        for _ in 0..iters.max(1) {
            for (r, yr) in y.iter_mut().enumerate() {
                let lo = self.row_ptr[r] as usize;
                let hi = self.row_ptr[r + 1] as usize;
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k].abs() * x[self.col_idx[k] as usize];
                }
                *yr = acc;
            }
            let norm: f64 = y.iter().sum();
            if norm == 0.0 {
                return 0.0;
            }
            ratio = norm;
            for v in y.iter_mut() {
                *v /= norm;
            }
            std::mem::swap(&mut x, &mut y);
        }
        ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn sample() -> Csr {
        // [ 0  0.5 0 ]
        // [ 1  0   2 ]
        // [ 0  0   0 ]
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 1, 0.5);
        t.push(1, 0, 1.0);
        t.push(1, 2, 2.0);
        t.to_csr()
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        m.mul_vec(&x, &mut y);
        assert_eq!(y, [1.0, 7.0, 0.0]);
    }

    #[test]
    fn mul_vec_par_matches_sequential_small() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        m.mul_vec(&x, &mut y1);
        m.mul_vec_par(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn mul_vec_par_matches_sequential_large() {
        use rand::{Rng, SeedableRng};
        let n = PAR_ROWS_THRESHOLD + 123;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut t = TripletMatrix::new(n, n);
        for _ in 0..n * 4 {
            t.push(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(-1.0..1.0));
        }
        let m = t.to_csr();
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        m.mul_vec(&x, &mut y1);
        m.mul_vec_par(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_vec_pool_bit_identical_across_worker_counts() {
        use crate::pool::Pool;
        use rand::{Rng, SeedableRng};
        let n = PAR_ROWS_THRESHOLD + 777;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let mut t = TripletMatrix::new(n, n);
        for _ in 0..n * 6 {
            t.push(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(-1.0..1.0));
        }
        let m = t.to_csr();
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut seq = vec![0.0; n];
        m.mul_vec(&x, &mut seq);
        for workers in [1, 2, 8] {
            let pool = Pool::with_workers(workers);
            let mut y = vec![f64::NAN; n];
            m.mul_vec_pool(&x, &mut y, &pool);
            assert!(
                seq.iter().zip(&y).all(|(a, b)| a.to_bits() == b.to_bits()),
                "pooled SpMV diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn norms() {
        let m = sample();
        assert_eq!(m.inf_norm(), 3.0); // row 1: 1 + 2
        assert_eq!(m.one_norm(), 2.0); // col 2
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(1, 0), 0.5);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.get(2, 1), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn zero_matrix() {
        let z = Csr::zero(4, 2);
        assert_eq!(z.nnz(), 0);
        let mut y = [9.0; 4];
        z.mul_vec(&[1.0, 1.0], &mut y);
        assert_eq!(y, [0.0; 4]);
        assert_eq!(z.inf_norm(), 0.0);
    }

    #[test]
    fn spectral_radius_bounded_by_inf_norm() {
        let m = sample();
        let rho = m.estimate_spectral_radius(100);
        assert!(rho <= m.inf_norm() + 1e-9, "rho={rho} > inf_norm={}", m.inf_norm());
    }

    #[test]
    fn spectral_radius_of_scaled_identity() {
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 0.7);
        }
        let rho = t.to_csr().estimate_spectral_radius(50);
        assert!((rho - 0.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn inconsistent_raw_parts_panic() {
        let _ = Csr::from_raw_parts(1, 1, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    fn nonneg_detection() {
        assert!(sample().is_nonneg());
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, -1.0);
        assert!(!t.to_csr().is_nonneg());
    }
}
