//! Extrapolation-accelerated fixed-point iteration.
//!
//! The paper's related work cites Kamvar, Haveliwala & Manning,
//! *"Extrapolation Methods for Accelerating PageRank Computations"* \[8\],
//! and §4.5 leaves "techniques ... to reduce convergence time" as future
//! work. This module implements the two classic schemes on top of the plain
//! Jacobi iteration, as an ablation for how much the paper's iteration
//! counts (Fig 8, Table 1's per-iteration cost × count) could be reduced:
//!
//! * **Aitken Δ²** — per-component extrapolation from three successive
//!   iterates: `x* ≈ x_k − (Δx_k)² / Δ²x_k`. Cheap, effective when the
//!   error is dominated by a single eigen-direction (the common PageRank
//!   regime where the second eigenvalue ≈ α).
//! * **Periodic restart** — the extrapolated point seeds the next stretch
//!   of plain iterations, so a bad extrapolation can never prevent
//!   convergence: the contraction property of `x ← Ax + f` pulls any
//!   starting point to the unique fixed point.

use crate::csr::SpMatVec;
use crate::pool::Pool;
use crate::solver::{FixedPointSolver, SolveReport};
use crate::vec_ops;

/// Configuration for Aitken-accelerated solves.
#[derive(Debug, Clone)]
pub struct AitkenSolver {
    /// Stop when `‖xᵢ₊₁ − xᵢ‖₁ ≤ tolerance`.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Apply one extrapolation every `period` plain iterations (Kamvar et
    /// al. recommend infrequent application; must be ≥ 2 because the
    /// scheme needs three iterates).
    pub period: usize,
    /// Worker pool for the underlying plain iteration's kernels; the
    /// extrapolation pass itself is a cheap O(n) sweep and stays on the
    /// calling thread. Bit-identical at every worker count.
    pub pool: Pool,
}

impl Default for AitkenSolver {
    fn default() -> Self {
        Self { tolerance: 1e-10, max_iters: 10_000, period: 8, pool: Pool::sequential() }
    }
}

impl AitkenSolver {
    /// Solves `x = A·x + f` in place with periodic Aitken Δ² extrapolation.
    /// Iteration counts include the plain steps used to gather the three
    /// iterates (extrapolation itself is free of matrix products). Generic
    /// over [`SpMatVec`], so it accepts either CSR layout.
    pub fn solve<M: SpMatVec>(&self, a: &M, f: &[f64], x: &mut Vec<f64>) -> SolveReport {
        assert!(self.period >= 2, "Aitken needs at least two steps between extrapolations");
        let n = a.n_rows();
        assert_eq!(a.n_cols(), n);
        assert_eq!(f.len(), n);
        assert_eq!(x.len(), n);

        let plain =
            FixedPointSolver { tolerance: self.tolerance, max_iters: 1, pool: self.pool.clone() };
        let mut prev2 = vec![0.0; n];
        let mut prev1 = vec![0.0; n];
        let mut iters = 0usize;
        let mut delta = f64::INFINITY;
        let mut since_extrap = 0usize;

        while iters < self.max_iters {
            prev2.copy_from_slice(&prev1);
            prev1.copy_from_slice(x);
            delta = plain.step(a, f, x, 1);
            iters += 1;
            since_extrap += 1;
            if delta <= self.tolerance {
                break;
            }
            // Extrapolate once we hold three distinct iterates.
            if since_extrap >= self.period && iters >= 2 {
                for i in 0..n {
                    let d1 = prev1[i] - prev2[i];
                    let d2 = x[i] - prev1[i];
                    let dd = d2 - d1;
                    // Guard: only extrapolate convergent, well-conditioned
                    // components (same-sign geometric decay).
                    if dd.abs() > 1e-300 && d1 * d2 > 0.0 && d2.abs() < d1.abs() {
                        let cand = prev2[i] - d1 * d1 / dd;
                        if cand.is_finite() {
                            x[i] = cand;
                        }
                    }
                }
                since_extrap = 0;
            }
        }
        SolveReport {
            iterations: iters,
            final_delta: delta,
            converged: delta <= self.tolerance,
            error_bound: crate::theory::contraction_error_bound(a.contraction_norm(), delta),
        }
    }
}

/// Convenience comparison: iterations of the plain vs Aitken-accelerated
/// solver on the same system (used by the acceleration ablation bench).
#[must_use]
pub fn iteration_savings<M: SpMatVec>(a: &M, f: &[f64], tolerance: f64) -> (usize, usize) {
    let mut x_plain = vec![0.0; f.len()];
    let plain = FixedPointSolver { tolerance, max_iters: 100_000, ..Default::default() }.solve(
        a,
        f,
        &mut x_plain,
    );
    let mut x_acc = vec![0.0; f.len()];
    let acc = AitkenSolver { tolerance, max_iters: 100_000, ..AitkenSolver::default() }
        .solve(a, f, &mut x_acc);
    debug_assert!(vec_ops::l1_diff(&x_plain, &x_acc) < tolerance * 1e3);
    (plain.iterations, acc.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::triplet::TripletMatrix;

    /// A slow contraction: x = 0.98·x + 1 componentwise ⇒ x* = 50, plain
    /// iteration needs hundreds of steps.
    fn slow_system(n: usize) -> (Csr, Vec<f64>, f64) {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 0.98);
        }
        (t.to_csr(), vec![1.0; n], 50.0)
    }

    #[test]
    fn converges_to_the_same_fixed_point() {
        let (a, f, star) = slow_system(10);
        let mut x = vec![0.0; 10];
        let report = AitkenSolver::default().solve(&a, &f, &mut x);
        assert!(report.converged);
        for v in &x {
            assert!((v - star).abs() < 1e-6, "{v} != {star}");
        }
    }

    #[test]
    fn accelerates_slow_contractions_substantially() {
        let (a, f, _) = slow_system(20);
        let (plain, accelerated) = iteration_savings(&a, &f, 1e-10);
        assert!(
            accelerated * 3 < plain,
            "Aitken should be ≥3x faster here: {accelerated} vs {plain}"
        );
    }

    #[test]
    fn does_not_hurt_fast_contractions() {
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, (i + 1) % 5, 0.3);
        }
        let a = t.to_csr();
        let f = vec![1.0; 5];
        let (plain, accelerated) = iteration_savings(&a, &f, 1e-12);
        assert!(accelerated <= plain + 2, "{accelerated} vs {plain}");
    }

    #[test]
    fn handles_non_monotone_components_safely() {
        // Rotation-ish matrix where deltas alternate sign: the guard must
        // skip extrapolation rather than diverge.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, -0.8);
        t.push(1, 0, 0.8);
        let a = t.to_csr();
        let f = vec![1.0, 1.0];
        let mut x = vec![0.0; 2];
        let report = AitkenSolver::default().solve(&a, &f, &mut x);
        assert!(report.converged);
        // Reference via plain solve.
        let mut y = vec![0.0; 2];
        FixedPointSolver::new(1e-12).solve(&a, &f, &mut y);
        assert!(vec_ops::l1_diff(&x, &y) < 1e-8);
    }

    #[test]
    fn zero_dimensional() {
        let a = Csr::zero(0, 0);
        let mut x: Vec<f64> = vec![];
        assert!(AitkenSolver::default().solve(&a, &[], &mut x).converged);
    }
}
