//! The §4.5 capacity model: how fast *can* distributed page ranking iterate?
//!
//! The paper bounds the iteration rate of indirect transmission by two
//! resources:
//!
//! 1. **Internet bisection bandwidth** — `D_it = h·l·W` bytes must cross the
//!    backbone each iteration; with a usable share `C` of the backbone,
//!    `T ≥ h·l·W / C` (formula 4.6). The paper takes the 1999 U.S. backbone
//!    estimate of 100 gigabits from \[17\] and allows page ranking one
//!    percent of it: `C = 1 Gbit/s = 100 MB/s` (paper's rounding — it treats
//!    1 gigabit as 100 MB).
//! 2. **Per-node bottleneck bandwidth** — each of the `N` rankers must
//!    absorb its `D_it / N` slice within `T`: `B ≥ D_it / (N·T)`
//!    (formula 4.7).
//!
//! [`CapacityModel`] evaluates both constraints; [`table1`] regenerates
//! Table 1 (minimal time per iteration and needed bottleneck bandwidth for
//! 1 000 / 10 000 / 100 000 page rankers ranking 3 billion pages), using the
//! paper's Pastry hop counts `h(N)`.

//!
//! # Example
//!
//! ```
//! use dpr_model::{pastry_hops, CapacityModel};
//!
//! let row = CapacityModel::default().row(1_000);
//! assert!((row.min_iteration_interval_secs - 7_500.0).abs() < 1.0); // paper Table 1
//! assert!((pastry_hops(1_000) - 2.5).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

use serde::Serialize;

/// Bytes per megabyte in the paper's loose accounting (decimal).
const MB: f64 = 1e6;

/// Inputs of the capacity model. Defaults reproduce the paper's example.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CapacityModel {
    /// Total pages being ranked, `W` (paper: 3 billion — Google's 2003
    /// index size).
    pub total_pages: f64,
    /// Average bytes per link-exchange record, `l` (paper: 100).
    pub link_record_bytes: f64,
    /// Usable internet bisection bandwidth in bytes/s (paper: 1% of
    /// 100 Gbit ⇒ "100 MB per second").
    pub usable_bisection_bytes_per_sec: f64,
}

impl Default for CapacityModel {
    fn default() -> Self {
        Self {
            total_pages: 3.0e9,
            link_record_bytes: 100.0,
            usable_bisection_bytes_per_sec: 100.0 * MB,
        }
    }
}

/// The paper's Pastry average hop counts as a function of network size
/// (§4.5: 2.5 hops at 1 000 nodes, ~3.5 at 10 000, ~4.0 at 100 000). For
/// other sizes this interpolates `log₁₆ N`, which those three data points
/// sit on.
#[must_use]
pub fn pastry_hops(n_rankers: u64) -> f64 {
    match n_rankers {
        1_000 => 2.5,
        10_000 => 3.5,
        100_000 => 4.0,
        n => (n as f64).ln() / 16.0_f64.ln(),
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Table1Row {
    /// Number of page rankers `N`.
    pub n_rankers: u64,
    /// Average lookup hops `h` at that scale.
    pub hops: f64,
    /// Minimal time between iterations in seconds (formula 4.6).
    pub min_iteration_interval_secs: f64,
    /// Minimal per-node bottleneck bandwidth in bytes/s (formula 4.7,
    /// evaluated at the minimal interval).
    pub min_bottleneck_bytes_per_sec: f64,
}

impl CapacityModel {
    /// Total bytes per iteration with indirect transmission,
    /// `D_it = h·l·W` (formula 4.1).
    #[must_use]
    pub fn bytes_per_iteration(&self, hops: f64) -> f64 {
        hops * self.link_record_bytes * self.total_pages
    }

    /// Formula 4.6: the bisection constraint
    /// `T ≥ D_it / usable_bisection`.
    #[must_use]
    pub fn min_iteration_interval(&self, hops: f64) -> f64 {
        self.bytes_per_iteration(hops) / self.usable_bisection_bytes_per_sec
    }

    /// Formula 4.7 solved for `B` at interval `t`: each of `n` nodes must
    /// move its `D_it / n` share within `t`.
    #[must_use]
    pub fn bottleneck_needed(&self, hops: f64, n_rankers: u64, t_secs: f64) -> f64 {
        assert!(n_rankers > 0 && t_secs > 0.0);
        self.bytes_per_iteration(hops) / (n_rankers as f64 * t_secs)
    }

    /// Computes one Table 1 row for `n_rankers` nodes.
    #[must_use]
    pub fn row(&self, n_rankers: u64) -> Table1Row {
        let hops = pastry_hops(n_rankers);
        let t = self.min_iteration_interval(hops);
        Table1Row {
            n_rankers,
            hops,
            min_iteration_interval_secs: t,
            min_bottleneck_bytes_per_sec: self.bottleneck_needed(hops, n_rankers, t),
        }
    }

    /// Given a *target* iteration interval, the bisection share it would
    /// require (inverse of formula 4.6) — a planning helper beyond the
    /// paper's table.
    #[must_use]
    pub fn bisection_needed_for_interval(&self, hops: f64, t_secs: f64) -> f64 {
        assert!(t_secs > 0.0);
        self.bytes_per_iteration(hops) / t_secs
    }
}

/// Regenerates Table 1 with the paper's three scales.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let m = CapacityModel::default();
    [1_000u64, 10_000, 100_000].iter().map(|&n| m.row(n)).collect()
}

/// Renders rows in the paper's layout (for the experiment binary and
/// EXPERIMENTS.md).
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str("# of Page Rankers      ");
    for r in rows {
        s.push_str(&format!("{:>12}", r.n_rankers));
    }
    s.push_str("\nTime per Iteration     ");
    for r in rows {
        s.push_str(&format!("{:>11.0}s", r.min_iteration_interval_secs));
    }
    s.push_str("\nBottleneck Bandwidth   ");
    for r in rows {
        s.push_str(&format!("{:>9.0}KB/s", r.min_bottleneck_bytes_per_sec / 1e3));
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let rows = table1();
        // Paper: 7500 s / 10500 s / 12000 s.
        assert!((rows[0].min_iteration_interval_secs - 7_500.0).abs() < 1.0);
        assert!((rows[1].min_iteration_interval_secs - 10_500.0).abs() < 1.0);
        assert!((rows[2].min_iteration_interval_secs - 12_000.0).abs() < 1.0);
        // Paper: 100 KB/s / 10 KB/s / 1 KB/s.
        assert!((rows[0].min_bottleneck_bytes_per_sec - 100e3).abs() < 1e2);
        assert!((rows[1].min_bottleneck_bytes_per_sec - 10e3).abs() < 1e2);
        assert!((rows[2].min_bottleneck_bytes_per_sec - 1e3).abs() < 1e2);
    }

    #[test]
    fn two_hour_conclusion() {
        // §4.5: "the time interval between two iterations is at least 2
        // hours" at 1000 rankers.
        let t = CapacityModel::default().min_iteration_interval(pastry_hops(1_000));
        assert!(t >= 2.0 * 3600.0, "T = {t}");
    }

    #[test]
    fn interpolated_hops_consistent_with_anchors() {
        // log16 interpolation should pass near the quoted anchor points.
        assert!((pastry_hops(999) - 2.49).abs() < 0.05);
        assert!((pastry_hops(100_001) - 4.15).abs() < 0.05);
        // Monotone in N.
        assert!(pastry_hops(500) < pastry_hops(5_000));
    }

    #[test]
    fn bottleneck_scales_inversely_with_n() {
        let m = CapacityModel::default();
        let b1 = m.bottleneck_needed(2.5, 1_000, 7_500.0);
        let b2 = m.bottleneck_needed(2.5, 2_000, 7_500.0);
        assert!((b1 / b2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn planning_helper_roundtrip() {
        let m = CapacityModel::default();
        let h = 2.5;
        let t = m.min_iteration_interval(h);
        let c = m.bisection_needed_for_interval(h, t);
        assert!((c - m.usable_bisection_bytes_per_sec).abs() < 1e-3);
    }

    #[test]
    fn render_contains_all_rows() {
        let text = render_table1(&table1());
        for key in ["1000", "10000", "100000", "7500s", "100KB/s"] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
    }
}
