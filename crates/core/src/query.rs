//! Distributed rank queries — the consumer side of the paper's motivating
//! scenario ("in a distributed search engine, page ranking is ... needed
//! for improving query results").
//!
//! Once the rankers have converged, a search front-end needs the top-ranked
//! pages among a candidate set (e.g. the docs matching a keyword) without
//! shipping every score anywhere. The classic scatter-gather: ask each
//! ranker for its local top-k (of the candidates it owns), merge the k-way
//! partial results. Because ranks are per-page and groups partition the
//! page set, the merged top-k is *exactly* the global top-k — no
//! approximation, and each ranker returns at most `k` entries.

use dpr_graph::PageId;

use crate::dpr::RankerNode;

/// One query hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Global page id.
    pub page: PageId,
    /// Its current rank at the owning ranker.
    pub rank: f64,
}

/// A ranker's local answer: its `k` best owned pages (optionally restricted
/// to a candidate set), descending by rank.
#[must_use]
pub fn local_top_k(node: &RankerNode, k: usize, candidates: Option<&[PageId]>) -> Vec<Hit> {
    let pages = node.group().pages();
    let ranks = node.ranks();
    let mut hits: Vec<Hit> = match candidates {
        None => pages.iter().zip(ranks).map(|(&page, &rank)| Hit { page, rank }).collect(),
        Some(cands) => cands
            .iter()
            .filter_map(|&p| node.group().local_index(p).map(|li| Hit { page: p, rank: ranks[li] }))
            .collect(),
    };
    hits.sort_unstable_by(|a, b| b.rank.total_cmp(&a.rank).then(a.page.cmp(&b.page)));
    hits.truncate(k);
    hits
}

/// Scatter-gather top-k over all rankers: merges every ranker's
/// [`local_top_k`] and returns the global `k` best. Exact by construction
/// (each page has exactly one owner).
#[must_use]
pub fn distributed_top_k(
    nodes: &[RankerNode],
    k: usize,
    candidates: Option<&[PageId]>,
) -> Vec<Hit> {
    let mut merged: Vec<Hit> = nodes.iter().flat_map(|n| local_top_k(n, k, candidates)).collect();
    merged.sort_unstable_by(|a, b| b.rank.total_cmp(&a.rank).then(a.page.cmp(&b.page)));
    merged.truncate(k);
    merged
}

/// Bytes a scatter-gather query moves: each ranker returns at most `k`
/// `(page id, rank)` pairs (12 bytes each) — versus shipping every rank to
/// a coordinator. Used by the example to show why ranking must live *with*
/// the pages.
#[must_use]
pub fn query_bytes(n_rankers: usize, k: usize) -> u64 {
    (n_rankers * k * 12) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RankConfig;
    use crate::dpr::{assemble_global, DprVariant};
    use crate::group::GroupContext;
    use crate::metrics::top_k;
    use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
    use dpr_partition::{Partition, Strategy};
    use dpr_sim::{SimConfig, Simulation};

    fn converged_nodes() -> (dpr_graph::WebGraph, Vec<RankerNode>) {
        let g = edu_domain(&EduDomainConfig::small());
        let p = Partition::build(&g, &Strategy::HashBySite, 8, 0);
        let nodes: Vec<RankerNode> = GroupContext::build_all(&g, &p, &RankConfig::default())
            .into_iter()
            .map(|c| RankerNode::new(c, DprVariant::Dpr1, 1.0))
            .collect();
        let mut sim = Simulation::new(nodes, SimConfig { seed: 3, ..SimConfig::default() });
        sim.run_until(120.0);
        (g, sim.into_actors())
    }

    #[test]
    fn distributed_top_k_matches_global_top_k() {
        let (g, nodes) = converged_nodes();
        let global = assemble_global(&nodes, g.n_pages());
        let want = top_k(&global, 10);
        let got: Vec<PageId> = distributed_top_k(&nodes, 10, None).iter().map(|h| h.page).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn candidate_restriction_respected() {
        let (_, nodes) = converged_nodes();
        let candidates: Vec<PageId> = (0..50).collect();
        let hits = distributed_top_k(&nodes, 5, Some(&candidates));
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.page < 50));
        // Descending rank order.
        assert!(hits.windows(2).all(|w| w[0].rank >= w[1].rank));
    }

    #[test]
    fn k_larger_than_page_count() {
        let (g, nodes) = converged_nodes();
        let hits = distributed_top_k(&nodes, g.n_pages() + 100, None);
        assert_eq!(hits.len(), g.n_pages());
    }

    #[test]
    fn local_top_k_returns_at_most_k() {
        let (_, nodes) = converged_nodes();
        for node in &nodes {
            let hits = local_top_k(node, 3, None);
            assert!(hits.len() <= 3);
        }
    }

    #[test]
    fn query_bytes_scale() {
        assert_eq!(query_bytes(100, 10), 12_000);
    }
}
