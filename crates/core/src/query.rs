//! Distributed rank queries — the consumer side of the paper's motivating
//! scenario ("in a distributed search engine, page ranking is ... needed
//! for improving query results").
//!
//! Once the rankers have converged, a search front-end needs the top-ranked
//! pages among a candidate set (e.g. the docs matching a keyword) without
//! shipping every score anywhere. The classic scatter-gather: ask each
//! ranker for its local top-k (of the candidates it owns), merge the k-way
//! partial results. Because ranks are per-page and groups partition the
//! page set, the merged top-k is *exactly* the global top-k — no
//! approximation, and each ranker returns at most `k` entries.
//!
//! These one-shot in-process queries are the reference semantics for the
//! serving layer: [`crate::store`] publishes epoch-versioned snapshots
//! whose answers are bit-identical to querying the live [`RankerNode`]s
//! here at the same epoch.

use dpr_graph::PageId;
use dpr_transport::codec;

use crate::dpr::RankerNode;

/// One query hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Global page id.
    pub page: PageId,
    /// Its current rank at the owning ranker.
    pub rank: f64,
}

/// The one ordering every query path uses: descending rank (`total_cmp`,
/// so NaN-safe), ties broken by ascending page id. Shared with the store
/// so merged answers agree bit-for-bit.
pub(crate) fn sort_hits(hits: &mut [Hit]) {
    hits.sort_unstable_by(|a, b| b.rank.total_cmp(&a.rank).then(a.page.cmp(&b.page)));
}

/// Candidate lists come from keyword matching and can repeat a page (one
/// occurrence per matching term); a repeated page must still fill at most
/// one top-k slot, so every query path dedups before scoring.
fn dedup_candidates(cands: &[PageId]) -> Vec<PageId> {
    let mut c = cands.to_vec();
    c.sort_unstable();
    c.dedup();
    c
}

fn local_top_k_deduped(node: &RankerNode, k: usize, candidates: Option<&[PageId]>) -> Vec<Hit> {
    let pages = node.group().pages();
    let ranks = node.ranks();
    let mut hits: Vec<Hit> = match candidates {
        None => pages.iter().zip(ranks).map(|(&page, &rank)| Hit { page, rank }).collect(),
        Some(cands) => cands
            .iter()
            .filter_map(|&p| node.group().local_index(p).map(|li| Hit { page: p, rank: ranks[li] }))
            .collect(),
    };
    sort_hits(&mut hits);
    hits.truncate(k);
    hits
}

/// A ranker's local answer: its `k` best owned pages (optionally restricted
/// to a candidate set), descending by rank. Duplicate candidates count
/// once.
#[must_use]
pub fn local_top_k(node: &RankerNode, k: usize, candidates: Option<&[PageId]>) -> Vec<Hit> {
    match candidates {
        None => local_top_k_deduped(node, k, None),
        Some(cands) => local_top_k_deduped(node, k, Some(&dedup_candidates(cands))),
    }
}

/// Scatter-gather top-k over all rankers: merges every ranker's
/// [`local_top_k`] and returns the global `k` best. Exact by construction
/// (each page has exactly one owner); duplicate candidates count once.
#[must_use]
pub fn distributed_top_k(
    nodes: &[RankerNode],
    k: usize,
    candidates: Option<&[PageId]>,
) -> Vec<Hit> {
    let deduped = candidates.map(dedup_candidates);
    let cands = deduped.as_deref();
    let mut merged: Vec<Hit> =
        nodes.iter().flat_map(|n| local_top_k_deduped(n, k, cands)).collect();
    sort_hits(&mut merged);
    merged.truncate(k);
    merged
}

/// Per-site rank mass computed directly from the live rankers, in the
/// canonical aggregation order the store uses: each group's partial sums
/// accumulate in local page order, and the partials fold into the global
/// totals in ascending group id. [`crate::store`] reproduces this order
/// exactly, so its precomputed aggregates can be checked bit-for-bit
/// against this reference.
#[must_use]
pub fn site_totals(nodes: &[RankerNode], site_of: &[u32], n_sites: usize) -> Vec<f64> {
    let mut order: Vec<&RankerNode> = nodes.iter().collect();
    order.sort_unstable_by_key(|n| n.group().group_id());
    let mut totals = vec![0.0; n_sites];
    for node in order {
        let mut partial = vec![0.0; n_sites];
        for (li, &p) in node.group().pages().iter().enumerate() {
            partial[site_of[p as usize] as usize] += node.ranks()[li];
        }
        for (t, p) in totals.iter_mut().zip(&partial) {
            *t += *p;
        }
    }
    totals
}

/// Traffic one scatter-gather query moves, in the two §4.5-consistent
/// record pricings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// Responses carry URL-form records ([`codec::PAPER_RECORD_BYTES`]
    /// each, the paper's `l`), one framed message per ranker.
    pub uncompressed: u64,
    /// Responses carry id-form records ([`codec::ID_RECORD_BYTES`] each —
    /// `u32` ids plus the `f64` score, the first `dpr-transport::compress`
    /// idea), same per-message header.
    pub compressed: u64,
}

/// Bytes a scatter-gather query moves: each ranker sends one response
/// message — a [`codec::PAPER_HEADER_BYTES`] header plus at most `k`
/// `(page, score)` records — versus shipping every rank to a coordinator.
/// Record prices come from `dpr-transport::codec`, the same model §4.5
/// rank-update traffic is accounted in. Used by the search-engine example
/// to show why ranking must live *with* the pages.
#[must_use]
pub fn query_cost(n_rankers: usize, k: usize) -> QueryCost {
    let header = codec::PAPER_HEADER_BYTES;
    QueryCost {
        uncompressed: (n_rankers * (header + k * codec::PAPER_RECORD_BYTES)) as u64,
        compressed: (n_rankers * (header + k * codec::ID_RECORD_BYTES)) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RankConfig;
    use crate::dpr::{assemble_global, DprVariant};
    use crate::group::GroupContext;
    use crate::metrics::top_k;
    use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
    use dpr_partition::{Partition, Strategy};
    use dpr_sim::{SimConfig, Simulation};

    fn converged_nodes() -> (dpr_graph::WebGraph, Vec<RankerNode>) {
        let g = edu_domain(&EduDomainConfig::small());
        let p = Partition::build(&g, &Strategy::HashBySite, 8, 0);
        let nodes: Vec<RankerNode> = GroupContext::build_all(&g, &p, &RankConfig::default())
            .into_iter()
            .map(|c| RankerNode::new(c, DprVariant::Dpr1, 1.0))
            .collect();
        let mut sim = Simulation::new(nodes, SimConfig { seed: 3, ..SimConfig::default() });
        sim.run_until(120.0);
        (g, sim.into_actors())
    }

    #[test]
    fn distributed_top_k_matches_global_top_k() {
        let (g, nodes) = converged_nodes();
        let global = assemble_global(&nodes, g.n_pages());
        let want = top_k(&global, 10);
        let got: Vec<PageId> = distributed_top_k(&nodes, 10, None).iter().map(|h| h.page).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn candidate_restriction_respected() {
        let (_, nodes) = converged_nodes();
        let candidates: Vec<PageId> = (0..50).collect();
        let hits = distributed_top_k(&nodes, 5, Some(&candidates));
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.page < 50));
        // Descending rank order.
        assert!(hits.windows(2).all(|w| w[0].rank >= w[1].rank));
    }

    #[test]
    fn duplicate_candidates_fill_one_slot_each() {
        let (_, nodes) = converged_nodes();
        // Regression: a repeated candidate used to emit one Hit per
        // occurrence and could fill several top-k slots by itself.
        let dups = [7, 7, 7, 7, 3, 11, 3, 7];
        let hits = distributed_top_k(&nodes, 3, Some(&dups));
        assert_eq!(hits, distributed_top_k(&nodes, 3, Some(&[3, 7, 11])));
        let mut pages: Vec<PageId> = hits.iter().map(|h| h.page).collect();
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(pages.len(), hits.len(), "every hit must be a distinct page");
    }

    #[test]
    fn duplicate_candidates_dedup_locally_too() {
        let (_, nodes) = converged_nodes();
        let node = nodes.iter().find(|n| n.group().n_local() > 0).unwrap();
        let owned = node.group().pages()[0];
        let hits = local_top_k(node, 5, Some(&[owned; 6]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].page, owned);
    }

    #[test]
    fn k_larger_than_page_count() {
        let (g, nodes) = converged_nodes();
        let hits = distributed_top_k(&nodes, g.n_pages() + 100, None);
        assert_eq!(hits.len(), g.n_pages());
    }

    #[test]
    fn local_top_k_returns_at_most_k() {
        let (_, nodes) = converged_nodes();
        for node in &nodes {
            let hits = local_top_k(node, 3, None);
            assert!(hits.len() <= 3);
        }
    }

    #[test]
    fn site_totals_conserve_rank_mass() {
        let (g, nodes) = converged_nodes();
        let site_of: Vec<u32> = (0..g.n_pages() as u32).map(|p| g.site(p)).collect();
        let n_sites = site_of.iter().max().map_or(0, |&s| s as usize + 1);
        let totals = site_totals(&nodes, &site_of, n_sites);
        let direct: f64 = assemble_global(&nodes, g.n_pages()).iter().sum();
        let agg: f64 = totals.iter().sum();
        assert!((agg - direct).abs() < 1e-9 * direct.max(1.0));
    }

    #[test]
    fn query_cost_priced_from_codec() {
        let c = query_cost(100, 10);
        let header = codec::PAPER_HEADER_BYTES as u64;
        assert_eq!(c.uncompressed, 100 * (header + 10 * codec::PAPER_RECORD_BYTES as u64));
        assert_eq!(c.compressed, 100 * (header + 10 * codec::ID_RECORD_BYTES as u64));
        // Id-form responses are strictly cheaper, headers included.
        assert!(c.compressed < c.uncompressed);
        // k = 0 still pays the per-ranker response header.
        assert_eq!(query_cost(8, 0).uncompressed, 8 * header);
    }
}
