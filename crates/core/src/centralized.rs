//! Centralized baselines: Algorithm 1 (classic PageRank) and the
//! open-system centralized PageRank (**CPR**) the figures compare against.

use dpr_graph::WebGraph;
use dpr_linalg::vec_ops;
use dpr_linalg::{Csr, Pool, TripletMatrix};

use crate::config::RankConfig;

/// Result of a centralized ranking computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankOutcome {
    /// Final rank vector (one entry per crawled page).
    pub ranks: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final successive difference `‖Rᵢ₊₁ − Rᵢ‖₁`.
    pub final_delta: f64,
    /// Whether the tolerance was met within the iteration cap.
    pub converged: bool,
}

/// Builds the open-system propagation matrix `A` of §3 in pull orientation:
/// `A[v][u] = α / d(u)` for each internal link `u → v`, where `d(u)` is the
/// *total* out-degree (internal + external). Rank flowing along external
/// links leaves the system — that is the "open" in Open System PageRank.
#[must_use]
pub fn open_system_matrix(g: &WebGraph, alpha: f64) -> Csr {
    let n = g.n_pages();
    let mut t = TripletMatrix::with_capacity(n, n, g.n_internal_links());
    for u in 0..n as u32 {
        let d = g.out_degree(u);
        if d == 0 {
            continue;
        }
        let w = alpha / f64::from(d);
        for &v in g.out_links(u) {
            t.push(v as usize, u as usize, w);
        }
    }
    t.to_csr()
}

/// **CPR** — centralized open-system PageRank: solves `R = A·R + βE` over
/// the whole crawled graph as a single group with no afferent rank. This is
/// the fixed point the distributed algorithms converge to ("Can the two
/// algorithms converge to the same vector as centralized page ranking? The
/// answer is Yes").
///
/// Iterations are counted from `R₀ = 0`, matching the distributed runs.
///
/// Large graphs route the solve through the process-wide worker pool
/// ([`Pool::global`]); the kernels' fixed chunk boundaries make the result
/// bit-identical to a sequential solve, so this is purely a wall-clock
/// optimization.
#[must_use]
pub fn open_pagerank(g: &WebGraph, cfg: &RankConfig) -> PageRankOutcome {
    let pool = if g.n_pages() > 1 << 15 { Pool::global().clone() } else { Pool::sequential() };
    open_pagerank_with_pool(g, cfg, &pool)
}

/// [`open_pagerank`] on an explicit worker pool — the entry point the
/// threads-vs-speedup bench sweeps. Results are bit-identical at every
/// worker count.
#[must_use]
pub fn open_pagerank_with_pool(g: &WebGraph, cfg: &RankConfig, pool: &Pool) -> PageRankOutcome {
    cfg.validate(g.n_pages());
    let a = open_system_matrix(g, cfg.alpha);
    // In pull orientation the columns (not rows) are the per-source
    // distributions, so the paper's `‖A‖∞ ≤ α` becomes `‖A‖₁ ≤ α` here —
    // either way ρ(A) ≤ α < 1 by Theorem 3.2.
    debug_assert!(a.one_norm() <= cfg.alpha + 1e-12, "‖A‖₁ must be ≤ α");
    let pages: Vec<u32> = (0..g.n_pages() as u32).collect();
    let f = cfg.beta_e_for(&pages);
    let mut r = vec![0.0; g.n_pages()];
    let solver = dpr_linalg::FixedPointSolver {
        tolerance: cfg.epsilon,
        max_iters: cfg.max_iters,
        pool: pool.clone(),
    };
    let report = solver.solve(&a, &f, &mut r);
    PageRankOutcome {
        ranks: r,
        iterations: report.iterations,
        final_delta: report.final_delta,
        converged: report.converged,
    }
}

/// CPR with Aitken Δ² extrapolation (Kamvar et al. \[8\], the acceleration
/// the paper's related work points at): same fixed point, fewer iterations
/// on slowly-mixing graphs. The ablation bench compares this against
/// [`open_pagerank`].
#[must_use]
pub fn open_pagerank_accelerated(g: &WebGraph, cfg: &RankConfig) -> PageRankOutcome {
    cfg.validate(g.n_pages());
    let a = open_system_matrix(g, cfg.alpha);
    let pages: Vec<u32> = (0..g.n_pages() as u32).collect();
    let f = cfg.beta_e_for(&pages);
    let mut r = vec![0.0; g.n_pages()];
    let solver = dpr_linalg::AitkenSolver {
        tolerance: cfg.epsilon,
        max_iters: cfg.max_iters,
        ..dpr_linalg::AitkenSolver::default()
    };
    let report = solver.solve(&a, &f, &mut r);
    PageRankOutcome {
        ranks: r,
        iterations: report.iterations,
        final_delta: report.final_delta,
        converged: report.converged,
    }
}

/// CPR solved with Gauss–Seidel sweeps — the centralized-only alternative
/// (within-sweep updates need all pages in one address space, which is
/// exactly what a distributed ranker does not have). The Jacobi/GS gap per
/// iteration is the computational price of distribution.
#[must_use]
pub fn open_pagerank_gauss_seidel(g: &WebGraph, cfg: &RankConfig) -> PageRankOutcome {
    cfg.validate(g.n_pages());
    let a = open_system_matrix(g, cfg.alpha);
    let pages: Vec<u32> = (0..g.n_pages() as u32).collect();
    let f = cfg.beta_e_for(&pages);
    let mut r = vec![0.0; g.n_pages()];
    let report = dpr_linalg::GaussSeidelSolver {
        tolerance: cfg.epsilon,
        max_iters: cfg.max_iters,
        ..dpr_linalg::GaussSeidelSolver::default()
    }
    .solve(&a, &f, &mut r);
    PageRankOutcome {
        ranks: r,
        iterations: report.iterations,
        final_delta: report.final_delta,
        converged: report.converged,
    }
}

/// Counts the CPR iterations needed before the iterate's relative error to
/// the (pre-computed) fixed point drops to `threshold` — the metric Fig 8
/// plots for the CPR bar.
#[must_use]
pub fn open_pagerank_iterations_to(g: &WebGraph, cfg: &RankConfig, threshold: f64) -> usize {
    let r_star = open_pagerank(g, cfg).ranks;
    let a = open_system_matrix(g, cfg.alpha);
    let pages: Vec<u32> = (0..g.n_pages() as u32).collect();
    let f = cfg.beta_e_for(&pages);
    let solver = dpr_linalg::FixedPointSolver::new(cfg.epsilon);
    let mut r = vec![0.0; g.n_pages()];
    for iter in 1..=cfg.max_iters {
        solver.step(&a, &f, &mut r, 1);
        if vec_ops::relative_error(&r, &r_star) <= threshold {
            return iter;
        }
    }
    cfg.max_iters
}

/// **Algorithm 1** — classic PageRank over the crawled set treated as a
/// *closed* system: `A[v][u] = 1/d_int(u)` with `d_int` the internal
/// out-degree, and the rank lost to dangling pages each step
/// (`D = ‖Rᵢ‖₁ − ‖Rᵢ₊₁‖₁`) re-injected along `E`:
///
/// ```text
/// R0 = S
/// loop
///     R_{i+1} = A R_i
///     D = ||R_i||_1 - ||R_{i+1}||_1
///     R_{i+1} = R_{i+1} + D·E
///     δ = ||R_{i+1} - R_i||_1
/// while δ > ε
/// ```
///
/// `E` is normalized to unit L1 mass so the total rank `‖R‖₁` is conserved
/// exactly — the "balance of rank carefully considered in each iteration
/// step" the paper contrasts open systems against.
#[must_use]
pub fn pagerank(g: &WebGraph, cfg: &RankConfig) -> PageRankOutcome {
    cfg.validate(g.n_pages());
    let n = g.n_pages();
    if n == 0 {
        return PageRankOutcome { ranks: vec![], iterations: 0, final_delta: 0.0, converged: true };
    }
    // Closed-system matrix: internal links only, 1/d_int weights scaled by α
    // (the paper's formula 2.1 damping constant c).
    let mut t = TripletMatrix::with_capacity(n, n, g.n_internal_links());
    for u in 0..n as u32 {
        let d = g.internal_out_degree(u);
        if d == 0 {
            continue;
        }
        let w = cfg.alpha / f64::from(d);
        for &v in g.out_links(u) {
            t.push(v as usize, u as usize, w);
        }
    }
    let a = t.to_csr();

    // E normalized to total mass 1.
    let mut e: Vec<f64> = (0..n as u32).map(|p| cfg.e.value(p)).collect();
    let mass = vec_ops::l1_norm(&e);
    assert!(mass > 0.0, "E must have positive mass");
    vec_ops::scale(1.0 / mass, &mut e);

    // S = E scaled to total rank n (so average rank starts at 1).
    let mut r: Vec<f64> = e.iter().map(|v| v * n as f64).collect();
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    let mut delta = f64::INFINITY;
    while iterations < cfg.max_iters {
        a.mul_vec(&r, &mut next);
        let d = vec_ops::l1_norm(&r) - vec_ops::l1_norm(&next);
        vec_ops::axpy(d, &e, &mut next);
        delta = vec_ops::l1_diff(&next, &r);
        std::mem::swap(&mut r, &mut next);
        iterations += 1;
        if delta <= cfg.epsilon {
            break;
        }
    }
    PageRankOutcome { ranks: r, iterations, final_delta: delta, converged: delta <= cfg.epsilon }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::generators::toy;
    use dpr_linalg::vec_ops::{l1_norm, mean};

    #[test]
    fn cycle_open_ranks_are_uniform() {
        let g = toy::cycle(8);
        let out = open_pagerank(&g, &RankConfig::default());
        assert!(out.converged);
        // Closed cycle (no leakage): R = αR + β ⇒ R(v) = 1 for every page.
        for r in &out.ranks {
            assert!((r - 1.0).abs() < 1e-6, "rank {r}");
        }
    }

    #[test]
    fn leaky_graph_average_rank_below_one() {
        // 2/3 of each page's links leave the crawl: mean rank must settle
        // well below 1 — the paper's Fig 7 observation (≈ 0.3 with ~53%
        // leakage at α = 0.85).
        let g = toy::leaky_cycle(50, 2);
        let out = open_pagerank(&g, &RankConfig::default());
        let avg = mean(&out.ranks);
        // R = α/3·R + β ⇒ R = 0.15/(1 − 0.85/3) ≈ 0.209.
        assert!((avg - 0.15 / (1.0 - 0.85 / 3.0)).abs() < 1e-6, "avg {avg}");
    }

    #[test]
    fn star_hub_dominates() {
        let g = toy::star(10);
        let out = open_pagerank(&g, &RankConfig::default());
        let hub = out.ranks[0];
        for spoke in &out.ranks[1..] {
            assert!(hub > 3.0 * spoke, "hub {hub} vs spoke {spoke}");
        }
    }

    #[test]
    fn closed_pagerank_conserves_mass() {
        let g = toy::star(10);
        let out = pagerank(&g, &RankConfig::default());
        assert!(out.converged);
        assert!((l1_norm(&out.ranks) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn closed_pagerank_handles_dangling_chain() {
        let g = toy::chain(5);
        let out = pagerank(&g, &RankConfig::default());
        assert!(out.converged);
        assert!((l1_norm(&out.ranks) - 5.0).abs() < 1e-6);
        assert!(out.ranks.iter().all(|r| *r > 0.0));
    }

    #[test]
    fn iterations_to_threshold_less_than_full_solve() {
        let g = toy::star(30);
        let cfg = RankConfig::default();
        let full = open_pagerank(&g, &cfg);
        let coarse = open_pagerank_iterations_to(&g, &cfg, 1e-2);
        let fine = open_pagerank_iterations_to(&g, &cfg, 1e-6);
        assert!(coarse <= fine, "{coarse} > {fine}");
        assert!(fine <= full.iterations + 1);
    }

    #[test]
    fn gauss_seidel_cpr_matches_plain_cpr_in_fewer_sweeps() {
        let g = toy::star(40);
        let cfg = RankConfig { epsilon: 1e-12, ..RankConfig::default() };
        let plain = open_pagerank(&g, &cfg);
        let gs = open_pagerank_gauss_seidel(&g, &cfg);
        assert!(gs.converged);
        let err = vec_ops::relative_error(&gs.ranks, &plain.ranks);
        assert!(err < 1e-9, "GS CPR diverged from plain: {err}");
        assert!(gs.iterations <= plain.iterations, "{} vs {}", gs.iterations, plain.iterations);
    }

    #[test]
    fn accelerated_cpr_matches_plain_cpr() {
        let g = toy::star(40);
        let cfg = RankConfig { epsilon: 1e-12, ..RankConfig::default() };
        let plain = open_pagerank(&g, &cfg);
        let fast = open_pagerank_accelerated(&g, &cfg);
        assert!(fast.converged);
        let err = vec_ops::relative_error(&fast.ranks, &plain.ranks);
        assert!(err < 1e-9, "accelerated CPR diverged from plain: {err}");
        assert!(fast.iterations <= plain.iterations + 2);
    }

    #[test]
    fn open_matrix_norm_bounded_by_alpha() {
        let g = toy::leaky_cycle(20, 3);
        let a = open_system_matrix(&g, 0.85);
        assert!(a.one_norm() <= 0.85 + 1e-12);
        assert!(a.is_nonneg());
    }

    #[test]
    fn empty_graph() {
        let g = dpr_graph::GraphBuilder::new().build();
        let out = pagerank(&g, &RankConfig::default());
        assert!(out.converged);
        assert!(out.ranks.is_empty());
    }

    #[test]
    fn virtual_links_defeat_the_rank_sink() {
        // §2's motivating pathology: pages {1,2} form a closed sink fed by
        // page 0. Pure power iteration (no E term) drains everything into
        // the sink; the open-system fixed point keeps every page ranked.
        let mut b = dpr_graph::GraphBuilder::new();
        let s = b.add_site("a.edu");
        let p0 = b.add_page(s);
        let p1 = b.add_page(s);
        let p2 = b.add_page(s);
        b.add_link(p0, p1);
        b.add_link(p1, p2);
        b.add_link(p2, p1);
        let g = b.build();
        let sinks = dpr_graph::analysis::rank_sinks(&g, true);
        assert_eq!(sinks.len(), 1, "test graph must contain a closed sink");

        // Pure iteration R <- A R with alpha ~ 1 and no rank source:
        // the feeder's rank decays toward zero.
        let a = open_system_matrix(&g, 0.999_999);
        let mut r = vec![1.0; 3];
        dpr_linalg::FixedPointSolver { tolerance: 0.0, max_iters: 200, ..Default::default() }
            .step(&a, &[0.0; 3], &mut r, 200);
        assert!(r[p0 as usize] < 1e-6, "feeder should have drained: {}", r[p0 as usize]);

        // Open-system PageRank: everyone keeps positive rank and the
        // feeder holds exactly its source share betaE = 0.15.
        let out = open_pagerank(&g, &RankConfig::default());
        assert!(out.converged);
        assert!((out.ranks[p0 as usize] - 0.15).abs() < 1e-6);
        assert!(out.ranks.iter().all(|&x| x > 0.1));
    }
}
