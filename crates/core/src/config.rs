//! Ranking parameters shared by every algorithm in the crate.

/// The rank-source vector `E` of §3.
///
/// The paper assumes `E(v) = 1` for all pages ("For briefness, we can assume
/// E(v)=1 for all pages in the group") and notes that a non-uniform `E`
/// yields personalized page ranking.
#[derive(Debug, Clone, PartialEq)]
pub enum EVector {
    /// Every page receives the same rank source (the paper's default 1.0).
    Uniform(f64),
    /// Per-page rank sources (personalized ranking). Must be non-negative
    /// and as long as the page set.
    Custom(Vec<f64>),
}

impl EVector {
    /// The value for page `p`.
    #[must_use]
    pub fn value(&self, p: u32) -> f64 {
        match self {
            EVector::Uniform(v) => *v,
            EVector::Custom(vs) => vs[p as usize],
        }
    }

    /// Validates against a page count.
    ///
    /// # Panics
    /// On length mismatch or negative entries.
    pub fn validate(&self, n_pages: usize) {
        match self {
            EVector::Uniform(v) => assert!(*v >= 0.0, "E must be non-negative"),
            EVector::Custom(vs) => {
                assert_eq!(vs.len(), n_pages, "E length must equal page count");
                assert!(vs.iter().all(|v| *v >= 0.0), "E must be non-negative");
            }
        }
    }
}

/// Parameters of open-system page ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct RankConfig {
    /// `α` — fraction of a page's rank transmitted over real (inner +
    /// efferent) links; the damping factor `c` of classic PageRank. The
    /// contraction certificate `‖A‖∞ ≤ α < 1` requires `α < 1`.
    pub alpha: f64,
    /// Convergence tolerance on the successive L1 difference
    /// `‖Rᵢ₊₁ − Rᵢ‖₁` (Theorem 3.3 makes this a sound stopping rule).
    pub epsilon: f64,
    /// Hard cap on iterations (safety net only).
    pub max_iters: usize,
    /// The rank source `E`.
    pub e: EVector,
}

impl Default for RankConfig {
    fn default() -> Self {
        Self { alpha: 0.85, epsilon: 1e-8, max_iters: 1_000, e: EVector::Uniform(1.0) }
    }
}

impl RankConfig {
    /// `β = 1 − α`, the virtual-link fraction.
    #[must_use]
    pub fn beta(&self) -> f64 {
        1.0 - self.alpha
    }

    /// Validates the configuration against a page count.
    ///
    /// # Panics
    /// If `α ∉ [0, 1)`, `ε ≤ 0`, or `E` is malformed.
    pub fn validate(&self, n_pages: usize) {
        assert!((0.0..1.0).contains(&self.alpha), "alpha must be in [0, 1), got {}", self.alpha);
        assert!(self.epsilon > 0.0, "epsilon must be positive");
        self.e.validate(n_pages);
    }

    /// The `βE` vector restricted to a set of pages.
    #[must_use]
    pub fn beta_e_for(&self, pages: &[u32]) -> Vec<f64> {
        let b = self.beta();
        pages.iter().map(|&p| b * self.e.value(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers() {
        let c = RankConfig::default();
        assert_eq!(c.alpha, 0.85);
        assert!((c.beta() - 0.15).abs() < 1e-12);
        assert_eq!(c.e, EVector::Uniform(1.0));
        c.validate(10);
    }

    #[test]
    fn beta_e_uniform() {
        let c = RankConfig::default();
        let v = c.beta_e_for(&[0, 5, 9]);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| (*x - 0.15).abs() < 1e-12));
    }

    #[test]
    fn beta_e_custom() {
        let c = RankConfig { e: EVector::Custom(vec![0.0, 2.0, 4.0]), ..RankConfig::default() };
        let v = c.beta_e_for(&[2, 0]);
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert_eq!(v[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1)")]
    fn alpha_one_rejected() {
        RankConfig { alpha: 1.0, ..RankConfig::default() }.validate(1);
    }

    #[test]
    #[should_panic(expected = "E length")]
    fn custom_e_length_checked() {
        RankConfig { e: EVector::Custom(vec![1.0]), ..RankConfig::default() }.validate(2);
    }
}
