//! Epoch-versioned, read-optimized rank store — ROADMAP item 2's serving
//! layer for the paper's motivating search engine.
//!
//! The solve side ([`crate::netrun`], or a plain [`RankerNode`] simulation)
//! *publishes* immutable per-group snapshots: the group's rank vector plus
//! its outer-iteration epoch. The store assembles them into a [`StoreView`]
//! — an immutable, internally consistent picture of the whole ranking with
//! precomputed global top-k and per-site aggregates — and swaps it in
//! behind an `Arc`. Readers clone the `Arc` under a read lock held for a
//! pointer copy; the publisher rebuilds the next view entirely outside the
//! lock and swaps it in under a write lock held for a pointer store. No
//! reader ever blocks the solve/commit path, and no query ever observes a
//! half-published epoch (§12 of DESIGN.md).
//!
//! Derived indices are cheap by construction:
//!
//! * per-group descending rank order, the global top-k, and the per-site
//!   partial sums are rebuilt **only when a group's rank bits actually
//!   change** — an epoch bump that re-publishes identical bits (a
//!   converged group) reuses every index by `Arc` clone;
//! * the global top-k merges each group's precomputed order prefix, so a
//!   publish costs `O(changed pages · log)` not `O(total pages · log)`.
//!
//! Answers are **bit-identical** to the one-shot scatter-gather in
//! [`crate::query`] at the same epoch: hits use the exact published rank
//! bits and the same `(rank desc, page asc)` total order, and site
//! aggregates fold per-group partials in the same canonical order as
//! [`crate::query::site_totals`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dpr_graph::PageId;
use dpr_partition::GroupId;

use crate::dpr::RankerNode;
use crate::query::{sort_hits, Hit};

/// Default number of precomputed global top-k entries.
pub const DEFAULT_TOPK_CAP: usize = 128;

/// One group's publication: what the solve side hands the store each time
/// a group finishes an outer iteration (or a checkpoint interval).
#[derive(Debug, Clone, Copy)]
pub struct GroupPublish<'a> {
    /// Which group this snapshot belongs to.
    pub group: GroupId,
    /// The group's outer-iteration epoch at snapshot time.
    pub epoch: u64,
    /// Global page ids owned by the group, in local order. Usually
    /// identical on every publish of the same group; a publish with a
    /// *different* page set (a crawl delta deleted or inserted pages)
    /// retires the group's old location entries and installs the new ones,
    /// so lookups on removed pages answer `None` instead of a stale slot.
    pub pages: &'a [PageId],
    /// Current rank of each owned page, parallel to `pages`.
    pub ranks: &'a [f64],
}

/// One group's published state, immutable once built. Shared by `Arc`
/// between consecutive views, so an unchanged group costs a pointer clone
/// per publish.
#[derive(Debug)]
pub struct GroupRanks {
    group: GroupId,
    epoch: u64,
    pages: Arc<Vec<PageId>>,
    ranks: Arc<Vec<f64>>,
    /// Local indices sorted by (rank desc, page asc) — the group's
    /// contribution to any top-k is a prefix of this.
    order: Arc<Vec<u32>>,
    /// Per-site rank mass of this group's pages, accumulated in local page
    /// order (present iff the store was built with site info).
    site_partial: Option<Arc<Vec<f64>>>,
}

impl GroupRanks {
    /// Group id.
    #[must_use]
    pub fn group(&self) -> GroupId {
        self.group
    }
    /// Outer epoch this snapshot was published at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
    /// Owned pages (local order).
    #[must_use]
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }
    /// Published ranks (local order).
    #[must_use]
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }
}

/// A point lookup's answer: the rank plus its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointLookup {
    /// The queried page.
    pub page: PageId,
    /// Its published rank (exact solve bits).
    pub rank: f64,
    /// The owning group.
    pub group: GroupId,
    /// The owning group's epoch at publication.
    pub epoch: u64,
}

/// Publication counters (monotonic over the store's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Views swapped in (`publish` calls that changed anything).
    pub publishes: u64,
    /// Group snapshots accepted (epoch moved and/or bits changed).
    pub group_updates: u64,
    /// Group snapshots skipped as identical (same epoch, same bits).
    pub skipped_updates: u64,
}

/// An immutable snapshot of the whole ranking at one publication instant.
///
/// Cloning the `Arc<StoreView>` out of [`RankStore::view`] pins this
/// epoch: every query on it is answered from the same consistent state no
/// matter how many publishes happen concurrently.
#[derive(Debug)]
pub struct StoreView {
    version: u64,
    /// Indexed by group id; `None` for never-published ids.
    groups: Vec<Option<Arc<GroupRanks>>>,
    /// page → (owning group, local index). Built incrementally and shared
    /// between views while page sets are stable; a publish that changes a
    /// group's page set (crawl delta) clones the map once, retiring the
    /// group's old entries before installing the new ones.
    page_loc: Arc<HashMap<PageId, (GroupId, u32)>>,
    /// Precomputed global top-`topk_cap` (rank desc, page asc).
    topk: Vec<Hit>,
    topk_cap: usize,
    /// Precomputed per-site totals (present iff site info was supplied).
    site_totals: Option<Arc<Vec<f64>>>,
}

impl StoreView {
    fn empty(topk_cap: usize) -> Self {
        Self {
            version: 0,
            groups: Vec::new(),
            page_loc: Arc::new(HashMap::new()),
            topk: Vec::new(),
            topk_cap,
            site_totals: None,
        }
    }

    /// Monotone view version: bumps by one per accepted publish. Version 0
    /// is the empty store.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The published epoch of one group, if it has published.
    #[must_use]
    pub fn group_epoch(&self, group: GroupId) -> Option<u64> {
        self.groups.get(group as usize)?.as_ref().map(|g| g.epoch)
    }

    /// One group's published snapshot, if any.
    #[must_use]
    pub fn group(&self, group: GroupId) -> Option<&Arc<GroupRanks>> {
        self.groups.get(group as usize)?.as_ref()
    }

    /// Total pages published so far.
    #[must_use]
    pub fn n_pages(&self) -> usize {
        self.page_loc.len()
    }

    /// Global top-`k`: bit-identical to
    /// [`crate::query::distributed_top_k`] over the live rankers at this
    /// view's epochs. `k ≤ topk_cap` is answered from the precomputed
    /// prefix (a memcpy); larger `k` falls back to merging the per-group
    /// orders.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<Hit> {
        if k <= self.topk_cap || self.topk.len() < self.topk_cap {
            // The second disjunct: fewer total pages than the cap means the
            // precomputed list already holds *every* page.
            return self.topk[..k.min(self.topk.len())].to_vec();
        }
        let mut hits: Vec<Hit> = Vec::new();
        for g in self.groups.iter().flatten() {
            hits.extend(
                g.order
                    .iter()
                    .take(k)
                    .map(|&li| Hit { page: g.pages[li as usize], rank: g.ranks[li as usize] }),
            );
        }
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }

    /// Top-`k` restricted to a candidate set (duplicates count once):
    /// bit-identical to the scatter-gather equivalent. Unowned candidates
    /// are ignored.
    #[must_use]
    pub fn top_k_candidates(&self, k: usize, candidates: &[PageId]) -> Vec<Hit> {
        let mut cands = candidates.to_vec();
        cands.sort_unstable();
        cands.dedup();
        let mut hits: Vec<Hit> = cands
            .into_iter()
            .filter_map(|p| self.lookup(p).map(|l| Hit { page: p, rank: l.rank }))
            .collect();
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }

    /// Point lookup: the page's exact published rank bits plus owning
    /// group and epoch. `None` if no published group owns the page.
    #[must_use]
    pub fn lookup(&self, page: PageId) -> Option<PointLookup> {
        let &(group, li) = self.page_loc.get(&page)?;
        let g = self.groups[group as usize].as_ref()?;
        Some(PointLookup { page, rank: g.ranks[li as usize], group, epoch: g.epoch })
    }

    /// Precomputed per-site rank totals, bit-identical to
    /// [`crate::query::site_totals`] at this view's epochs. `None` when the
    /// store was built without site info.
    #[must_use]
    pub fn site_totals(&self) -> Option<&[f64]> {
        self.site_totals.as_deref().map(Vec::as_slice)
    }
}

/// The concurrent rank store: one writer (the publishing engine), any
/// number of readers. See the module docs for the swap discipline.
pub struct RankStore {
    current: RwLock<Arc<StoreView>>,
    /// Serializes publishers; readers never touch it.
    publish_lock: Mutex<()>,
    topk_cap: usize,
    /// page → site, for per-site aggregates (optional).
    site_of: Option<Arc<Vec<u32>>>,
    n_sites: usize,
    publishes: AtomicU64,
    group_updates: AtomicU64,
    skipped_updates: AtomicU64,
}

impl std::fmt::Debug for RankStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.view();
        f.debug_struct("RankStore")
            .field("version", &v.version())
            .field("n_pages", &v.n_pages())
            .field("topk_cap", &self.topk_cap)
            .finish()
    }
}

impl RankStore {
    /// A fresh store precomputing `topk_cap` global top entries.
    #[must_use]
    pub fn new(topk_cap: usize) -> Self {
        Self {
            current: RwLock::new(Arc::new(StoreView::empty(topk_cap))),
            publish_lock: Mutex::new(()),
            topk_cap,
            site_of: None,
            n_sites: 0,
            publishes: AtomicU64::new(0),
            group_updates: AtomicU64::new(0),
            skipped_updates: AtomicU64::new(0),
        }
    }

    /// Enables per-site aggregates (`site_of[page] → site id`). Must be
    /// called before the first publish.
    ///
    /// # Panics
    /// If anything has already been published.
    #[must_use]
    pub fn with_sites(mut self, site_of: Vec<u32>, n_sites: usize) -> Self {
        assert_eq!(self.view().version(), 0, "with_sites must precede the first publish");
        self.site_of = Some(Arc::new(site_of));
        self.n_sites = n_sites;
        self
    }

    /// The current immutable view. The read lock is held only for the
    /// `Arc` clone; queries run lock-free on the returned view, which
    /// stays valid (and unchanged) however many publishes follow.
    #[must_use]
    pub fn view(&self) -> Arc<StoreView> {
        Arc::clone(&self.current.read())
    }

    /// Publication counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            publishes: self.publishes.load(Ordering::Relaxed),
            group_updates: self.group_updates.load(Ordering::Relaxed),
            skipped_updates: self.skipped_updates.load(Ordering::Relaxed),
        }
    }

    /// Publishes a batch of group snapshots atomically: readers see either
    /// the previous view or one containing the whole batch. Returns `true`
    /// if a new view was swapped in (`false` = every snapshot was
    /// identical to what the store already held).
    ///
    /// Unchanged groups (same epoch *and* same rank bits) are skipped;
    /// epoch bumps with identical bits reuse every derived index; the
    /// global top-k and site totals are rebuilt only when some group's
    /// rank bits actually changed. A publish whose page set differs from
    /// the group's previous one (a crawl delta deleted or inserted pages)
    /// is always treated as a change: the old location entries are
    /// retired — `lookup` on a removed page answers `None` — and every
    /// derived index of the group is rebuilt against the new page set.
    ///
    /// # Panics
    /// If a publication's `pages`/`ranks` lengths differ, or two groups
    /// claim the same page.
    pub fn publish<'a, I>(&self, updates: I) -> bool
    where
        I: IntoIterator<Item = GroupPublish<'a>>,
    {
        let _serial = self.publish_lock.lock();
        let old = self.view();

        let mut groups = old.groups.clone();
        let mut new_pages: Vec<(GroupId, Arc<Vec<PageId>>)> = Vec::new();
        let mut retired_pages: Vec<Arc<Vec<PageId>>> = Vec::new();
        let mut any_change = false;
        let mut ranks_changed = false;
        let mut accepted = 0u64;
        let mut skipped = 0u64;

        for u in updates {
            let gi = u.group as usize;
            if gi >= groups.len() {
                groups.resize(gi + 1, None);
            }
            let prev = groups[gi].take();
            assert_eq!(
                u.pages.len(),
                u.ranks.len(),
                "group {} pages/ranks length mismatch",
                u.group
            );
            let pages_changed = prev.as_ref().is_some_and(|g| g.pages.as_slice() != u.pages);
            let bits_same =
                !pages_changed && prev.as_ref().is_some_and(|g| rank_bits_equal(&g.ranks, u.ranks));
            if let Some(g) = &prev {
                if g.epoch == u.epoch && bits_same {
                    skipped += 1;
                    groups[gi] = prev;
                    continue;
                }
            }
            accepted += 1;
            any_change = true;
            let pages = match (&prev, pages_changed) {
                (Some(g), false) => Arc::clone(&g.pages),
                (prev, _) => {
                    if let Some(g) = prev {
                        // Changed page set: every old location entry of
                        // this group is retired before the new set goes in
                        // (local indices shift even for surviving pages).
                        retired_pages.push(Arc::clone(&g.pages));
                    }
                    let p = Arc::new(u.pages.to_vec());
                    new_pages.push((u.group, Arc::clone(&p)));
                    p
                }
            };
            let (ranks, order, site_partial) = if bits_same {
                // Epoch moved, bits did not (a converged group keeps
                // iterating): every derived index is still valid.
                let g = prev.as_ref().unwrap();
                (Arc::clone(&g.ranks), Arc::clone(&g.order), g.site_partial.clone())
            } else {
                ranks_changed = true;
                let ranks = Arc::new(u.ranks.to_vec());
                let order = Arc::new(build_order(&pages, &ranks));
                let partial = self
                    .site_of
                    .as_ref()
                    .map(|so| Arc::new(build_site_partial(&pages, &ranks, so, self.n_sites)));
                (ranks, order, partial)
            };
            groups[gi] = Some(Arc::new(GroupRanks {
                group: u.group,
                epoch: u.epoch,
                pages,
                ranks,
                order,
                site_partial,
            }));
        }

        self.group_updates.fetch_add(accepted, Ordering::Relaxed);
        self.skipped_updates.fetch_add(skipped, Ordering::Relaxed);
        if !any_change {
            return false;
        }

        let page_loc = if new_pages.is_empty() && retired_pages.is_empty() {
            Arc::clone(&old.page_loc)
        } else {
            let mut m = (*old.page_loc).clone();
            // All retirements precede all inserts, so a page surviving a
            // repage (or moving between groups in one batch) re-resolves
            // cleanly instead of tripping the clash assert.
            for pages in &retired_pages {
                for p in pages.iter() {
                    m.remove(p);
                }
            }
            for (gid, pages) in &new_pages {
                for (li, &p) in pages.iter().enumerate() {
                    let clash = m.insert(p, (*gid, li as u32));
                    assert!(clash.is_none(), "page {p} published by two groups");
                }
            }
            Arc::new(m)
        };

        let (topk, site_totals) = if ranks_changed {
            let topk = build_topk(&groups, self.topk_cap);
            let totals =
                self.site_of.as_ref().map(|_| Arc::new(fold_site_totals(&groups, self.n_sites)));
            (topk, totals)
        } else {
            // Only epochs moved: the ranking itself is unchanged.
            (old.topk.clone(), old.site_totals.clone())
        };

        let next = Arc::new(StoreView {
            version: old.version + 1,
            groups,
            page_loc,
            topk,
            topk_cap: self.topk_cap,
            site_totals,
        });
        // The entire rebuild above ran without the write lock; the swap is
        // a pointer store, so a concurrent reader blocks for at most that.
        *self.current.write() = next;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Publishes every ranker's current state (group, outer epoch, exact
    /// rank bits) — the simulation-side hook.
    pub fn publish_rankers(&self, nodes: &[RankerNode]) -> bool {
        self.publish(nodes.iter().map(|n| GroupPublish {
            group: n.group().group_id(),
            epoch: n.outer_iterations,
            pages: n.group().pages(),
            ranks: n.ranks(),
        }))
    }

    /// Convenience: [`StoreView::top_k`] on the current view.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<Hit> {
        self.view().top_k(k)
    }

    /// Convenience: [`StoreView::top_k_candidates`] on the current view.
    #[must_use]
    pub fn top_k_candidates(&self, k: usize, candidates: &[PageId]) -> Vec<Hit> {
        self.view().top_k_candidates(k, candidates)
    }

    /// Convenience: [`StoreView::lookup`] on the current view.
    #[must_use]
    pub fn lookup(&self, page: PageId) -> Option<PointLookup> {
        self.view().lookup(page)
    }
}

fn rank_bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn build_order(pages: &[PageId], ranks: &[f64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..ranks.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        ranks[b as usize]
            .total_cmp(&ranks[a as usize])
            .then(pages[a as usize].cmp(&pages[b as usize]))
    });
    order
}

fn build_site_partial(
    pages: &[PageId],
    ranks: &[f64],
    site_of: &[u32],
    n_sites: usize,
) -> Vec<f64> {
    let mut partial = vec![0.0; n_sites];
    for (li, &p) in pages.iter().enumerate() {
        // Pages beyond the site map (inserted by a crawl delta after the
        // store was built) contribute to no site aggregate.
        if let Some(&s) = site_of.get(p as usize) {
            partial[s as usize] += ranks[li];
        }
    }
    partial
}

fn build_topk(groups: &[Option<Arc<GroupRanks>>], cap: usize) -> Vec<Hit> {
    let mut hits: Vec<Hit> = Vec::new();
    for g in groups.iter().flatten() {
        hits.extend(
            g.order
                .iter()
                .take(cap)
                .map(|&li| Hit { page: g.pages[li as usize], rank: g.ranks[li as usize] }),
        );
    }
    sort_hits(&mut hits);
    hits.truncate(cap);
    hits
}

/// Folds per-group site partials into global totals in ascending group id
/// — the same canonical order as [`crate::query::site_totals`], so the
/// precomputed aggregate is bit-identical to the live reference.
fn fold_site_totals(groups: &[Option<Arc<GroupRanks>>], n_sites: usize) -> Vec<f64> {
    let mut totals = vec![0.0; n_sites];
    for g in groups.iter().flatten() {
        if let Some(p) = &g.site_partial {
            for (t, v) in totals.iter_mut().zip(p.iter()) {
                *t += *v;
            }
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn publish_two_groups(store: &RankStore) {
        // Group 0 owns pages {0, 2, 4}, group 1 owns {1, 3}.
        assert!(store.publish([
            GroupPublish { group: 0, epoch: 1, pages: &[0, 2, 4], ranks: &[0.5, 0.1, 0.9] },
            GroupPublish { group: 1, epoch: 1, pages: &[1, 3], ranks: &[0.7, 0.2] },
        ]));
    }

    #[test]
    fn topk_merges_across_groups() {
        let store = RankStore::new(2);
        assert_eq!(store.view().version(), 0);
        assert!(store.top_k(3).is_empty(), "empty store answers empty");
        publish_two_groups(&store);
        let v = store.view();
        assert_eq!(v.version(), 1);
        assert_eq!(v.n_pages(), 5);
        // Precomputed prefix (cap = 2)...
        assert_eq!(v.top_k(2), vec![Hit { page: 4, rank: 0.9 }, Hit { page: 1, rank: 0.7 }]);
        // ...and the beyond-cap fallback merge.
        let all = v.top_k(10);
        assert_eq!(all.len(), 5);
        assert_eq!(
            all.iter().map(|h| h.page).collect::<Vec<_>>(),
            vec![4, 1, 0, 3, 2],
            "full descending order across both groups"
        );
        assert_eq!(v.group_epoch(0), Some(1));
        assert_eq!(v.group_epoch(7), None);
    }

    #[test]
    fn candidates_dedup_and_ignore_unowned() {
        let store = RankStore::new(8);
        publish_two_groups(&store);
        let hits = store.top_k_candidates(4, &[3, 99, 3, 3, 0, 4_000_000]);
        assert_eq!(hits, vec![Hit { page: 0, rank: 0.5 }, Hit { page: 3, rank: 0.2 }]);
        assert!(store.top_k_candidates(0, &[0, 1, 2]).is_empty(), "k = 0 answers empty");
        assert!(store.lookup(99).is_none());
        let l = store.lookup(3).unwrap();
        assert_eq!((l.group, l.epoch, l.rank), (1, 1, 0.2));
    }

    #[test]
    fn identical_republish_is_skipped_and_epoch_bump_reuses_indices() {
        let store = RankStore::new(4);
        publish_two_groups(&store);
        let v1 = store.view();

        // Same epoch, same bits: no new view.
        assert!(!store.publish([GroupPublish {
            group: 0,
            epoch: 1,
            pages: &[0, 2, 4],
            ranks: &[0.5, 0.1, 0.9],
        }]));
        assert_eq!(store.view().version(), 1);
        assert_eq!(store.stats().skipped_updates, 1);

        // Epoch moved, bits identical: new view, derived indices shared.
        assert!(store.publish([GroupPublish {
            group: 0,
            epoch: 5,
            pages: &[0, 2, 4],
            ranks: &[0.5, 0.1, 0.9],
        }]));
        let v2 = store.view();
        assert_eq!(v2.version(), 2);
        assert_eq!(v2.group_epoch(0), Some(5));
        let (g1, g2) = (v1.group(0).unwrap(), v2.group(0).unwrap());
        assert!(Arc::ptr_eq(&g1.order, &g2.order), "order index must be reused");
        assert!(Arc::ptr_eq(&g1.ranks, &g2.ranks), "rank vector must be reused");
        assert_eq!(v1.top_k(4), v2.top_k(4));

        // Bits changed: indices rebuilt, topk reflects the new ranking.
        assert!(store.publish([GroupPublish {
            group: 0,
            epoch: 6,
            pages: &[0, 2, 4],
            ranks: &[0.5, 2.0, 0.9],
        }]));
        assert_eq!(store.top_k(1), vec![Hit { page: 2, rank: 2.0 }]);
        assert_eq!(store.stats().publishes, 3);
        assert_eq!(store.stats().group_updates, 4); // 2 initial + bump + change
    }

    #[test]
    fn old_views_stay_frozen_after_publish() {
        let store = RankStore::new(4);
        publish_two_groups(&store);
        let pinned = store.view();
        assert!(store.publish([GroupPublish {
            group: 1,
            epoch: 9,
            pages: &[1, 3],
            ranks: &[9.0, 9.0],
        }]));
        // The pinned view still answers from its own epoch...
        assert_eq!(pinned.top_k(1), vec![Hit { page: 4, rank: 0.9 }]);
        assert_eq!(pinned.lookup(1).unwrap().rank, 0.7);
        // ...while the store serves the new one.
        assert_eq!(store.top_k(1), vec![Hit { page: 1, rank: 9.0 }]);
    }

    #[test]
    fn site_totals_fold_in_group_order() {
        // site 0 = {0, 1}, site 1 = {2, 3, 4}.
        let store = RankStore::new(4).with_sites(vec![0, 0, 1, 1, 1], 2);
        publish_two_groups(&store);
        let v = store.view();
        let totals = v.site_totals().unwrap();
        assert_eq!(totals.len(), 2);
        // Exact reference: group 0 partial then group 1 partial.
        let g0: [f64; 2] = [0.5 + 0.0, 0.1 + 0.9]; // pages 0→s0, 2→s1, 4→s1
        let g1: [f64; 2] = [0.7, 0.2]; // pages 1→s0, 3→s1
        assert_eq!(totals[0].to_bits(), (g0[0] + g1[0]).to_bits());
        assert_eq!(totals[1].to_bits(), (g0[1] + g1[1]).to_bits());
    }

    #[test]
    fn deleted_page_lookup_goes_stale_free() {
        // Satellite regression: after a crawl delta removes page 2 from
        // group 0, a lookup on it must answer `None` — not a stale
        // `(group, idx)` resolving into the shrunken rank vector.
        let store = RankStore::new(4);
        publish_two_groups(&store);
        assert_eq!(store.lookup(2).unwrap().rank, 0.1);
        let pinned = store.view();

        assert!(store.publish([GroupPublish {
            group: 0,
            epoch: 2,
            pages: &[0, 4],
            ranks: &[0.6, 1.0],
        }]));
        assert!(store.lookup(2).is_none(), "deleted page must not resolve");
        // Surviving pages re-resolve at their shifted local indices.
        let l = store.lookup(4).unwrap();
        assert_eq!((l.group, l.epoch, l.rank), (0, 2, 1.0));
        assert_eq!(store.lookup(0).unwrap().rank, 0.6);
        assert!(store.top_k(10).iter().all(|h| h.page != 2));
        assert_eq!(store.view().n_pages(), 4);
        // The pinned pre-delta view keeps serving the old epoch.
        assert_eq!(pinned.lookup(2).unwrap().rank, 0.1);

        // A later publish that *adds* a page (insert delta) resolves too.
        assert!(store.publish([GroupPublish {
            group: 0,
            epoch: 3,
            pages: &[0, 4, 7],
            ranks: &[0.6, 1.0, 0.3],
        }]));
        assert_eq!(store.lookup(7).unwrap().rank, 0.3);
        assert_eq!(store.view().n_pages(), 5);
    }

    #[test]
    #[should_panic(expected = "published by two groups")]
    fn page_ownership_clash_panics() {
        let store = RankStore::new(4);
        let _ = store.publish([
            GroupPublish { group: 0, epoch: 1, pages: &[0, 1], ranks: &[0.1, 0.2] },
            GroupPublish { group: 1, epoch: 1, pages: &[1], ranks: &[0.3] },
        ]);
    }
}
