//! Kleinberg's HITS \[1\] — the other seminal link-analysis algorithm the
//! paper's introduction discusses. Included as a centralized baseline so the
//! examples can contrast hub/authority scores with PageRank on the same
//! crawl.
//!
//! Iterates the mutual reinforcement
//! `a(v) = Σ_{u→v} h(u)`, `h(u) = Σ_{u→v} a(v)`
//! with L2 normalization each round, until the combined successive change
//! drops below the tolerance.

use dpr_graph::WebGraph;

/// HITS configuration.
#[derive(Debug, Clone, Copy)]
pub struct HitsConfig {
    /// Stop when `‖aᵢ₊₁ − aᵢ‖₁ + ‖hᵢ₊₁ − hᵢ‖₁ ≤ epsilon`.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for HitsConfig {
    fn default() -> Self {
        Self { epsilon: 1e-10, max_iters: 1_000 }
    }
}

/// Hub and authority scores.
#[derive(Debug, Clone, PartialEq)]
pub struct HitsOutcome {
    /// Authority score per page (L2-normalized).
    pub authorities: Vec<f64>,
    /// Hub score per page (L2-normalized).
    pub hubs: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Runs HITS on the full crawled graph.
#[must_use]
pub fn hits(g: &WebGraph, cfg: &HitsConfig) -> HitsOutcome {
    let n = g.n_pages();
    if n == 0 {
        return HitsOutcome { authorities: vec![], hubs: vec![], iterations: 0, converged: true };
    }
    let mut auth = vec![1.0_f64; n];
    let mut hub = vec![1.0_f64; n];
    let mut new_auth = vec![0.0_f64; n];
    let mut new_hub = vec![0.0_f64; n];
    let mut iterations = 0;
    let mut converged = false;

    while iterations < cfg.max_iters {
        // a(v) = Σ_{u→v} h(u)
        new_auth.iter_mut().for_each(|v| *v = 0.0);
        for u in 0..n as u32 {
            let hu = hub[u as usize];
            for &v in g.out_links(u) {
                new_auth[v as usize] += hu;
            }
        }
        l2_normalize(&mut new_auth);
        // h(u) = Σ_{u→v} a(v)
        for u in 0..n as u32 {
            let mut s = 0.0;
            for &v in g.out_links(u) {
                s += new_auth[v as usize];
            }
            new_hub[u as usize] = s;
        }
        l2_normalize(&mut new_hub);

        iterations += 1;
        let delta: f64 = auth
            .iter()
            .zip(&new_auth)
            .chain(hub.iter().zip(&new_hub))
            .map(|(a, b)| (a - b).abs())
            .sum();
        auth.copy_from_slice(&new_auth);
        hub.copy_from_slice(&new_hub);
        if delta <= cfg.epsilon {
            converged = true;
            break;
        }
    }
    HitsOutcome { authorities: auth, hubs: hub, iterations, converged }
}

fn l2_normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::generators::toy;

    #[test]
    fn star_center_is_top_authority() {
        let g = toy::star(10);
        let out = hits(&g, &HitsConfig::default());
        assert!(out.converged);
        let best = (0..10).max_by(|&i, &j| out.authorities[i].total_cmp(&out.authorities[j]));
        assert_eq!(best, Some(0));
        // In the symmetric star every page is an equally good hub (each
        // spoke points at the one big authority; the hub's targets are all
        // equal minor authorities) — scores tie.
        let h0 = out.hubs[0];
        for h in &out.hubs[1..] {
            assert!((h - h0).abs() < 1e-9);
        }
    }

    #[test]
    fn scores_are_l2_normalized() {
        let g = toy::complete(6);
        let out = hits(&g, &HitsConfig::default());
        let na: f64 = out.authorities.iter().map(|x| x * x).sum();
        let nh: f64 = out.hubs.iter().map(|x| x * x).sum();
        assert!((na - 1.0).abs() < 1e-9);
        assert!((nh - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_graph_gives_uniform_scores() {
        let g = toy::cycle(8);
        let out = hits(&g, &HitsConfig::default());
        for w in out.authorities.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn directed_bipartite_hub_authority_split() {
        // Pages 0,1 link to pages 2,3: 0,1 are pure hubs, 2,3 pure
        // authorities.
        let mut b = dpr_graph::GraphBuilder::new();
        let s = b.add_site("a.edu");
        let p: Vec<_> = (0..4).map(|_| b.add_page(s)).collect();
        for &u in &p[..2] {
            for &v in &p[2..] {
                b.add_link(u, v);
            }
        }
        let out = hits(&b.build(), &HitsConfig::default());
        assert!(out.hubs[0] > 1e-6 && out.authorities[0] < 1e-9);
        assert!(out.authorities[2] > 1e-6 && out.hubs[2] < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = dpr_graph::GraphBuilder::new().build();
        let out = hits(&g, &HitsConfig::default());
        assert!(out.converged);
        assert!(out.authorities.is_empty());
    }
}
