//! Personalized page ranking via a non-uniform rank source `E`.
//!
//! §3: "The case when E is not uniform over pages can be used for
//! personalized page ranking \[5, 9\]." The entire open-system machinery is
//! already parameterized on `E` ([`EVector::Custom`]); this module provides
//! the common personalization constructions and a convenience runner.

use dpr_graph::{SiteId, WebGraph};

use crate::centralized::{open_pagerank, PageRankOutcome};
use crate::config::{EVector, RankConfig};

/// An `E` that boosts one site's pages by `boost` (others get `base`) —
/// topic-sensitive ranking at site granularity.
#[must_use]
pub fn site_biased_e(g: &WebGraph, site: SiteId, base: f64, boost: f64) -> EVector {
    assert!(base >= 0.0 && boost >= 0.0);
    EVector::Custom(
        (0..g.n_pages() as u32).map(|p| if g.site(p) == site { boost } else { base }).collect(),
    )
}

/// An `E` concentrated on an explicit preference set of pages (Jeh &
/// Widom's hub-set personalization \[5\]): preferred pages get `boost`, the
/// rest zero.
#[must_use]
pub fn preference_set_e(g: &WebGraph, pages: &[u32], boost: f64) -> EVector {
    assert!(boost >= 0.0);
    let mut e = vec![0.0; g.n_pages()];
    for &p in pages {
        e[p as usize] = boost;
    }
    EVector::Custom(e)
}

/// Runs centralized open-system PageRank with a personalized `E`.
#[must_use]
pub fn personalized_pagerank(g: &WebGraph, mut cfg: RankConfig, e: EVector) -> PageRankOutcome {
    cfg.e = e;
    open_pagerank(g, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::generators::toy;
    use dpr_linalg::vec_ops::sum;

    #[test]
    fn site_bias_lifts_that_sites_ranks() {
        let g = toy::two_cliques(5); // sites 0 and 1
        let cfg = RankConfig::default();
        let uniform = open_pagerank(&g, &cfg).ranks;
        let biased = personalized_pagerank(&g, cfg, site_biased_e(&g, 0, 0.1, 2.0)).ranks;
        // Site 0's total rank share must grow relative to uniform.
        let share = |r: &[f64]| {
            let site0: f64 =
                (0..g.n_pages() as u32).filter(|&p| g.site(p) == 0).map(|p| r[p as usize]).sum();
            site0 / sum(r)
        };
        assert!(share(&biased) > share(&uniform) + 0.1);
    }

    #[test]
    fn preference_set_concentrates_rank() {
        let g = toy::cycle(10);
        let cfg = RankConfig::default();
        let out = personalized_pagerank(&g, cfg, preference_set_e(&g, &[3], 1.0));
        assert!(out.converged);
        // Page 3 (source) and its successors dominate; farthest page is
        // weakest.
        let r = &out.ranks;
        assert!(r[3] > r[2], "preference page must outrank its predecessor");
        // Rank decays around the cycle 4, 5, ... back to 2.
        assert!(r[4] > r[5]);
        assert!(r[5] > r[6]);
    }

    #[test]
    fn zero_preference_pages_still_get_flow_through_links() {
        let g = toy::cycle(4);
        let out = personalized_pagerank(&g, RankConfig::default(), preference_set_e(&g, &[0], 1.0));
        // E is zero on pages 1..3, but link flow reaches them.
        assert!(out.ranks[1] > 0.0);
        assert!(out.ranks[2] > 0.0);
    }
}
