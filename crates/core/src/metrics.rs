//! Convergence and ranking-quality metrics.

pub use dpr_linalg::vec_ops::{l1_diff, l1_norm, mean, relative_error};

/// Kendall-tau-style pairwise order agreement between two rankings, sampled
/// over `samples` random page pairs (exact Kendall tau is O(n²)). Returns a
/// value in `[0, 1]`: 1.0 = identical ordering. Search engines care about
/// the *order* PageRank induces more than its absolute values, so the
/// experiment reports include this alongside relative error.
#[must_use]
pub fn sampled_order_agreement(a: &[f64], b: &[f64], samples: usize, seed: u64) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.len() < 2 || samples == 0 {
        return 1.0;
    }
    // splitmix64 in counter mode: every seed (including 0 and 1) yields a
    // distinct stream, unlike the old `seed | 1` LCG which aliased seeds
    // that differed only in the low bit.
    let mut ctr = seed;
    let mut next = || {
        ctr = ctr.wrapping_add(0x9E37_79B9_7F4A_7C15);
        dpr_graph::urls::splitmix64(ctr)
    };
    // Unbiased index in [0, len): Lemire's widening multiply with rejection
    // of the biased low region, instead of `next() % len`.
    let len = a.len() as u64;
    let threshold = len.wrapping_neg() % len;
    let mut next_index = || loop {
        let r = next();
        let wide = u128::from(r) * u128::from(len);
        if (wide as u64) >= threshold {
            return (wide >> 64) as usize;
        }
    };
    let mut agree = 0usize;
    let mut counted = 0usize;
    for _ in 0..samples {
        let i = next_index();
        let j = next_index();
        if i == j {
            continue;
        }
        let oa = a[i].partial_cmp(&a[j]);
        let ob = b[i].partial_cmp(&b[j]);
        counted += 1;
        if oa == ob {
            agree += 1;
        }
    }
    if counted == 0 {
        1.0
    } else {
        agree as f64 / counted as f64
    }
}

/// Indices of the top-`k` pages by rank (descending; ties by page id).
#[must_use]
pub fn top_k(ranks: &[f64], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..ranks.len() as u32).collect();
    // `total_cmp` gives a total order even with NaNs (which `partial_cmp +
    // unwrap_or(Equal)` silently turned into an inconsistent comparator —
    // a violation of the sort's ordering contract). Positive NaN compares
    // greater than every real in the IEEE total order, so NaN ranks land
    // at the front of this descending order, deterministically.
    idx.sort_unstable_by(|&i, &j| ranks[j as usize].total_cmp(&ranks[i as usize]).then(i.cmp(&j)));
    idx.truncate(k);
    idx
}

/// Overlap fraction of the top-`k` sets of two rankings (a precision-style
/// metric: how many of the paper-relevant "important pages" the distributed
/// run agrees on).
#[must_use]
pub fn top_k_overlap(a: &[f64], b: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let ta: std::collections::HashSet<u32> = top_k(a, k).into_iter().collect();
    let tb = top_k(b, k);
    let inter = tb.iter().filter(|i| ta.contains(i)).count();
    inter as f64 / k.min(a.len()).max(1) as f64
}

/// Distribution summary of a rank vector — the concentration statistics a
/// search-engine operator watches (PageRank on web graphs is famously
/// heavy-tailed; a uniform distribution would mean the link structure
/// carries no signal).
#[derive(Debug, Clone, PartialEq)]
pub struct RankSummary {
    /// Number of pages.
    pub n: usize,
    /// Mean rank.
    pub mean: f64,
    /// Gini coefficient in [0, 1]: 0 = perfectly uniform, → 1 = all rank on
    /// one page.
    pub gini: f64,
    /// Shannon entropy of the normalized rank distribution, in bits.
    pub entropy_bits: f64,
    /// Selected percentiles of the rank values: p50, p90, p99, max.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest rank.
    pub max: f64,
}

impl RankSummary {
    /// Computes the summary (O(n log n) for the sort).
    ///
    /// # Panics
    /// If any rank is negative or non-finite.
    #[must_use]
    pub fn compute(ranks: &[f64]) -> Self {
        assert!(ranks.iter().all(|r| r.is_finite() && *r >= 0.0), "ranks must be >= 0");
        let n = ranks.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                gini: 0.0,
                entropy_bits: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = ranks.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let total: f64 = sorted.iter().sum();
        let mean = total / n as f64;

        // Gini via the sorted form: G = (2·Σ i·x_i)/(n·Σ x) − (n+1)/n.
        let gini = if total > 0.0 {
            let weighted: f64 = sorted.iter().enumerate().map(|(i, x)| (i + 1) as f64 * x).sum();
            (2.0 * weighted / (n as f64 * total) - (n as f64 + 1.0) / n as f64).max(0.0)
        } else {
            0.0
        };

        let entropy_bits = if total > 0.0 {
            -sorted
                .iter()
                .filter(|&&x| x > 0.0)
                .map(|&x| {
                    let p = x / total;
                    p * p.log2()
                })
                .sum::<f64>()
        } else {
            0.0
        };

        // Standard nearest-rank percentile: the smallest value with at least
        // q·n observations at or below it, i.e. sorted[⌈q·n⌉ − 1].
        let pct = |q: f64| sorted[((q * n as f64).ceil() as usize).saturating_sub(1).min(n - 1)];
        Self {
            n,
            mean,
            gini,
            entropy_bits,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: sorted[n - 1],
        }
    }
}

/// Aggregates page ranks to site totals — "which hosts matter" is the
/// site-granularity view the §4.1 partitioning already thinks in.
#[must_use]
pub fn site_ranks(g: &dpr_graph::WebGraph, ranks: &[f64]) -> Vec<f64> {
    assert_eq!(ranks.len(), g.n_pages());
    let mut out = vec![0.0; g.n_sites()];
    for (p, &r) in ranks.iter().enumerate() {
        out[g.site(p as u32) as usize] += r;
    }
    out
}

/// Log₂-bucketed latency histogram for the store's read-path load tests.
///
/// Bucket 0 counts 0 ns samples; bucket `i ≥ 1` counts samples in
/// `[2^(i-1), 2^i)` ns, with the last bucket absorbing everything above.
/// Power-of-two buckets keep `record` branch-free (one `leading_zeros`)
/// so the histogram itself doesn't distort microsecond-scale
/// measurements, and two histograms [`merge`](Self::merge) by bucket-wise
/// addition — each reader thread records into its own and the bench merges
/// them afterwards, no shared counters on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; Self::BUCKETS],
    count: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Number of buckets: covers up to 2^47 ns (≈ 1.6 days) exactly.
    pub const BUCKETS: usize = 48;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { buckets: [0; Self::BUCKETS], count: 0, max_ns: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        let b = ((u64::BITS - ns.leading_zeros()) as usize).min(Self::BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample seen (exact, not bucketed).
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound (exclusive) in ns of the bucket holding the nearest-rank
    /// `q`-quantile sample — e.g. `quantile_upper_ns(0.99)` reads "99% of
    /// queries finished within this many ns". Returns 0 on an empty
    /// histogram; the answer never exceeds [`max_ns`](Self::max_ns).
    #[must_use]
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                let upper = if i == 0 { 1 } else { 1u64 << i };
                return upper.min(self.max_ns.max(1));
            }
        }
        self.max_ns
    }

    /// Bucket counts trimmed after the last non-empty bucket (for reports;
    /// bucket `i ≥ 1` spans `[2^(i-1), 2^i)` ns).
    #[must_use]
    pub fn counts(&self) -> Vec<u64> {
        let last = self.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        self.buckets[..last].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_fully_agree() {
        let r = vec![0.3, 0.1, 0.9, 0.5];
        assert_eq!(sampled_order_agreement(&r, &r, 1000, 1), 1.0);
        assert_eq!(top_k_overlap(&r, &r, 2), 1.0);
    }

    #[test]
    fn reversed_rankings_disagree() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![4.0, 3.0, 2.0, 1.0];
        assert!(sampled_order_agreement(&a, &b, 1000, 1) < 0.05);
        assert_eq!(top_k_overlap(&a, &b, 1), 0.0);
    }

    #[test]
    fn top_k_ordering_and_ties() {
        let r = vec![0.5, 0.9, 0.5, 0.1];
        assert_eq!(top_k(&r, 3), vec![1, 0, 2]);
        assert_eq!(top_k(&r, 10), vec![1, 0, 2, 3]);
    }

    #[test]
    fn rank_summary_uniform_vs_concentrated() {
        let uniform = RankSummary::compute(&[1.0; 100]);
        assert!(uniform.gini < 1e-9);
        assert!((uniform.entropy_bits - 100f64.log2()).abs() < 1e-9);
        assert_eq!(uniform.p50, 1.0);

        let mut concentrated = vec![0.0; 100];
        concentrated[7] = 100.0;
        let c = RankSummary::compute(&concentrated);
        assert!(c.gini > 0.98, "gini {}", c.gini);
        assert!(c.entropy_bits < 1e-9);
        assert_eq!(c.max, 100.0);
        assert_eq!(c.p50, 0.0);
    }

    #[test]
    fn rank_summary_on_real_pagerank_is_heavy_tailed() {
        use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
        let g = edu_domain(&EduDomainConfig::small());
        let out = crate::centralized::open_pagerank(&g, &crate::RankConfig::default());
        let s = RankSummary::compute(&out.ranks);
        // Web-like graphs concentrate rank: Gini well above uniform and the
        // top page far above the median.
        assert!(s.gini > 0.2, "gini {}", s.gini);
        assert!(s.max > 5.0 * s.p50, "max {} p50 {}", s.max, s.p50);
    }

    #[test]
    fn site_ranks_sum_to_total() {
        use dpr_graph::generators::toy;
        let g = toy::two_cliques(4);
        let ranks: Vec<f64> = (0..8).map(f64::from).collect();
        let per_site = site_ranks(&g, &ranks);
        assert_eq!(per_site.len(), 2);
        let total: f64 = per_site.iter().sum();
        assert!((total - 28.0).abs() < 1e-12);
    }

    #[test]
    fn rank_summary_empty() {
        let s = RankSummary::compute(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn top_k_tolerates_nan_ranks() {
        // A NaN rank (e.g. from a corrupted update) must not violate the
        // sort's ordering contract or scramble the order of the real ranks.
        // Under `total_cmp`, positive NaN outranks every real value, so
        // NaNs land first (ties still broken by page id) and the real
        // ranks keep their correct relative order.
        let r = vec![0.5, f64::NAN, 0.9, f64::NAN, 0.1];
        assert_eq!(top_k(&r, 5), vec![1, 3, 2, 0, 4]);
        assert_eq!(top_k(&r, 2), vec![1, 3]);
    }

    #[test]
    fn distinct_seeds_give_distinct_sample_streams() {
        // The old LCG seeded with `seed | 1`, so seeds 0 and 1 (and any pair
        // differing only in bit 0) produced identical pair samples. Build
        // rankings that agree on roughly half of all pairs, so the sampled
        // agreement is sensitive to which pairs get drawn, then check that
        // different seeds actually draw different pairs. (Two seeds can
        // still coincide on the final fraction by chance, so we assert over
        // a spread of seeds rather than one pair.)
        let a: Vec<f64> = (0..64).map(f64::from).collect();
        let b: Vec<f64> =
            (0..64).map(|i| if i % 2 == 0 { f64::from(i) } else { -f64::from(i) }).collect();
        let results: std::collections::HashSet<u64> =
            (0..16).map(|seed| sampled_order_agreement(&a, &b, 25, seed).to_bits()).collect();
        assert!(results.len() > 1, "all 16 seeds sampled identical pair streams");
        // And the estimator itself stays deterministic for a fixed seed.
        assert_eq!(sampled_order_agreement(&a, &b, 25, 7), sampled_order_agreement(&a, &b, 25, 7));
    }

    #[test]
    fn percentiles_follow_nearest_rank_definition() {
        // 1..=10: nearest-rank p50 = sorted[⌈0.5·10⌉−1] = sorted[4] = 5,
        // p90 = sorted[8] = 9, p99 = sorted[9] = 10.
        let v: Vec<f64> = (1..=10).map(f64::from).collect();
        let s = RankSummary::compute(&v);
        assert_eq!(s.p50, 5.0);
        assert_eq!(s.p90, 9.0);
        assert_eq!(s.p99, 10.0);
        // Single element: every percentile is that element.
        let one = RankSummary::compute(&[42.0]);
        assert_eq!(one.p50, 42.0);
        assert_eq!(one.p99, 42.0);
    }

    #[test]
    fn latency_histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        // 90 fast samples in [256, 512), 9 in [4096, 8192), one huge one.
        for i in 0..90 {
            h.record(256 + i);
        }
        for _ in 0..9 {
            h.record(5000);
        }
        h.record(1 << 20);
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_ns(), 1 << 20);
        assert_eq!(h.quantile_upper_ns(0.50), 512);
        assert_eq!(h.quantile_upper_ns(0.90), 512);
        assert_eq!(h.quantile_upper_ns(0.99), 8192);
        // The tail quantile clamps to the exact max rather than its bucket
        // upper bound.
        assert_eq!(h.quantile_upper_ns(1.0), 1 << 20);
        let counts = h.counts();
        assert_eq!(counts.iter().sum::<u64>(), 100);
        assert_eq!(*counts.last().unwrap(), 1, "trimmed at the last non-empty bucket");
    }

    #[test]
    fn latency_histogram_merge_matches_combined_stream() {
        let samples_a = [0u64, 1, 3, 700, 700, 12_000];
        let samples_b = [2u64, 900, 1 << 30];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for s in samples_a {
            a.record(s);
            both.record(s);
        }
        for s in samples_b {
            b.record(s);
            both.record(s);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Empty histogram: quantiles are 0, counts empty.
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile_upper_ns(0.99), 0);
        assert!(empty.counts().is_empty());
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(sampled_order_agreement(&[], &[], 10, 1), 1.0);
        assert_eq!(sampled_order_agreement(&[1.0], &[2.0], 10, 1), 1.0);
        assert_eq!(top_k(&[], 3), Vec::<u32>::new());
        assert_eq!(top_k_overlap(&[1.0], &[1.0], 0), 1.0);
    }
}
