//! Distributed Page Ranking in Structured P2P Networks — the core library.
//!
//! This crate implements the paper's primary contribution on top of the
//! substrates in this workspace (`dpr-linalg`, `dpr-graph`, `dpr-partition`,
//! `dpr-overlay`, `dpr-transport`, `dpr-sim`):
//!
//! * [`config::RankConfig`] — the open-system parameters: `α` (the fraction
//!   of a page's rank carried by real links), `β = 1 − α` (virtual-link /
//!   rank-source fraction) and the rank-source vector `E`;
//! * [`centralized`] — Algorithm 1 (classic PageRank with sink
//!   redistribution) and the open-system centralized baseline **CPR** the
//!   figures compare against;
//! * [`group`] — Algorithm 2, `GroupPageRank`: one page group solving
//!   `R = A·R + βE + X` with afferent rank `X` received from other groups,
//!   and producing efferent rank `Y` for them;
//! * [`dpr`] — Algorithms 3 & 4, **DPR1** and **DPR2**, as asynchronous
//!   actors in the discrete-event simulator, with optional instrumentation
//!   asserting Theorems 4.1/4.2 (monotone, bounded rank sequences);
//! * [`run`] — whole-system experiment orchestration producing the time
//!   series behind Figs 6–8;
//! * [`hits`] — Kleinberg's HITS, the other seminal link-analysis baseline
//!   the introduction discusses;
//! * [`personalized`] — non-uniform `E` (§3's pointer to personalized page
//!   ranking).
//!
//! ## A note on formula 3.5
//!
//! The paper defines `Y = B·R` with `B[u][v] = β/d(u)`, which contradicts
//! §3's construction where the *real* (inner + efferent) rank transmission
//! carries the `α` fraction and the virtual links carry `β`. We implement
//! `Y(v) = Σ α·R(u)/d(u)` over efferent links `u → v`: with that reading,
//! stacking all group equations yields the single global system
//! `R = α·Ā·R + βE`, whose unique fixed point is exactly what the
//! centralized open-system baseline computes — and the paper's own
//! experiment ("Distributed PageRank converges to the ranks of centralized
//! PageRank", Fig 6) requires that identity to hold.

#![warn(missing_docs)]

pub mod centralized;
pub mod config;
pub mod dpr;
pub mod group;
pub mod hits;
pub mod metrics;
pub mod netrun;
pub mod personalized;
pub mod query;
pub mod ranks_io;
pub mod run;
pub mod store;
pub mod threaded;

pub use centralized::{open_pagerank, open_pagerank_with_pool, pagerank, PageRankOutcome};
pub use config::RankConfig;
pub use dpr::{DprVariant, RankerNode, YMessage};
pub use dpr_overlay::RouteCacheStats;
pub use group::{AfferentState, GroupContext, GroupMatrix, MatrixLayout};
pub use netrun::{
    group_owners, try_run_over_network, ChurnUnsupported, GroupSnapshot, NetCounters, NetRunConfig,
    NetRunError, NetRunResult, OverlayKind, Reliability, Transmission,
};
pub use query::{distributed_top_k, query_cost, site_totals, Hit, QueryCost};
pub use run::{run_distributed, DistributedRun, DistributedRunConfig, RunResult};
pub use store::{GroupPublish, PointLookup, RankStore, StoreStats, StoreView};
pub use threaded::{run_threaded, ThreadedRunConfig, ThreadedRunResult};
