//! Algorithm 2 — `GroupPageRank`, the per-group open-system solver.
//!
//! A page group (the pages owned by one page ranker) sees the world as in
//! Fig 2 of the paper:
//!
//! * **inner links** — both endpoints in the group: the local matrix `A`
//!   with `A[v][u] = α/d(u)`;
//! * **virtual links** — the uniform rank source `βE`;
//! * **afferent links** — rank `X` flowing in from other groups;
//! * **efferent links** — rank `Y = α·R(u)/d(u)` flowing out to other
//!   groups (see the crate-level note on the paper's formula 3.5 typo).
//!
//! `GroupPageRank(R0, X)` iterates `R ← A·R + βE + X` to its fixed point;
//! the column norm satisfies `‖A‖₁ ≤ α < 1` (the paper writes `‖A‖∞` for
//! its row-stochastic orientation; ours is transposed), so Theorems 3.1–3.3
//! guarantee convergence.

use std::collections::HashMap;

use dpr_graph::{PageId, WebGraph};
use dpr_linalg::pool::SharedSlice;
use dpr_linalg::{column_scale, Csr, CsrImplicit, FixedPointSolver, Pool, SolveReport, SpMatVec};
use dpr_partition::{GroupId, Partition};

use crate::config::RankConfig;

/// Which in-memory layout a group's local matrix uses. The implicit-value
/// layout is the default everywhere: it streams ≤ 8 bytes per non-zero
/// instead of 12+ and is bit-identical to the explicit layout by
/// construction (see `dpr_linalg::CsrImplicit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixLayout {
    /// Implicit per-column values (`α/d(u)`), `u32` gather kernel.
    #[default]
    Implicit,
    /// Implicit values with the 4-wide unrolled accumulator. The unroll
    /// re-associates per-row sums, so results can differ from the other
    /// two layouts in the low bits — a documented opt-in.
    ImplicitUnrolled,
    /// Explicit per-entry `f64` values (the legacy layout, kept for
    /// benchmarking the bandwidth win).
    Explicit,
}

/// A group's local propagation matrix in its chosen layout. Both variants
/// hold the *same entries* — the explicit form is materialized from the
/// implicit one (`values[k] = scale[col_idx[k]]`) — so plain-kernel solves
/// are bit-identical across layouts.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupMatrix {
    /// Explicit-value CSR.
    Explicit(Csr),
    /// Implicit-value (bandwidth-lean) CSR.
    Implicit(CsrImplicit),
}

impl GroupMatrix {
    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        match self {
            GroupMatrix::Explicit(m) => m.nnz(),
            GroupMatrix::Implicit(m) => m.nnz(),
        }
    }

    /// Heap bytes held by the matrix arrays.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            GroupMatrix::Explicit(m) => m.heap_bytes(),
            GroupMatrix::Implicit(m) => m.heap_bytes(),
        }
    }

    /// The layout tag this matrix was built with.
    #[must_use]
    pub fn layout(&self) -> MatrixLayout {
        match self {
            GroupMatrix::Explicit(_) => MatrixLayout::Explicit,
            GroupMatrix::Implicit(m) if m.is_unrolled() => MatrixLayout::ImplicitUnrolled,
            GroupMatrix::Implicit(_) => MatrixLayout::Implicit,
        }
    }
}

impl SpMatVec for GroupMatrix {
    fn n_rows(&self) -> usize {
        match self {
            GroupMatrix::Explicit(m) => m.n_rows(),
            GroupMatrix::Implicit(m) => m.n_rows(),
        }
    }
    fn n_cols(&self) -> usize {
        match self {
            GroupMatrix::Explicit(m) => m.n_cols(),
            GroupMatrix::Implicit(m) => m.n_cols(),
        }
    }
    fn nnz(&self) -> usize {
        GroupMatrix::nnz(self)
    }
    fn mul_into(&self, x: &[f64], y: &mut [f64], ws: &mut Vec<f64>, pool: &Pool) {
        match self {
            GroupMatrix::Explicit(m) => m.mul_into(x, y, ws, pool),
            GroupMatrix::Implicit(m) => m.mul_into(x, y, ws, pool),
        }
    }
    fn contraction_norm(&self) -> f64 {
        match self {
            GroupMatrix::Explicit(m) => m.contraction_norm(),
            GroupMatrix::Implicit(m) => m.contraction_norm(),
        }
    }
}

/// One efferent edge: `(local source index, α/d(source), global destination
/// page)`.
type EfferentEdge = (u32, f64, PageId);

/// Efferent edges from one group to a single destination group, sorted by
/// destination page so outgoing scores aggregate in one scan.
#[derive(Debug, Clone, PartialEq)]
struct EfferentBatch {
    dest: GroupId,
    edges: Vec<EfferentEdge>,
}

/// Everything one page ranker needs to run Algorithms 2–4 on its group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupContext {
    group_id: GroupId,
    /// Global ids of the pages in this group, sorted ascending; local index
    /// `i` refers to `pages[i]`.
    pages: Vec<PageId>,
    /// Local propagation matrix (inner links only), in the layout chosen
    /// at build time (implicit-value by default).
    a: GroupMatrix,
    /// `βE` restricted to this group's pages.
    beta_e: Vec<f64>,
    /// Outgoing rank routes, one batch per destination group.
    efferent: Vec<EfferentBatch>,
}

impl GroupContext {
    /// Builds the contexts of **all** groups of a partition in one pass over
    /// the graph (O(pages + links)), using the default bandwidth-lean
    /// [`MatrixLayout::Implicit`] local matrices.
    #[must_use]
    pub fn build_all(g: &WebGraph, partition: &Partition, cfg: &RankConfig) -> Vec<GroupContext> {
        Self::build_all_with_layout(g, partition, cfg, MatrixLayout::default())
    }

    /// [`GroupContext::build_all`] with an explicit choice of local-matrix
    /// layout.
    #[must_use]
    pub fn build_all_with_layout(
        g: &WebGraph,
        partition: &Partition,
        cfg: &RankConfig,
        layout: MatrixLayout,
    ) -> Vec<GroupContext> {
        cfg.validate(g.n_pages());
        assert_eq!(partition.n_pages(), g.n_pages());
        let k = partition.k();

        let group_pages = partition.group_pages();
        // Global page -> local index within its group.
        let mut local_of = vec![0u32; g.n_pages()];
        for pages in &group_pages {
            for (i, &p) in pages.iter().enumerate() {
                local_of[p as usize] = i as u32;
            }
        }

        // Inner links as local (row, col) = (dest, src) pairs; the entry
        // value is implicit (`α/d(src)`, a function of the column alone),
        // so nothing else needs collecting.
        let mut inner: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
        let mut efferent_maps: Vec<HashMap<GroupId, Vec<EfferentEdge>>> = vec![HashMap::new(); k];

        for u in 0..g.n_pages() as u32 {
            let d = g.out_degree(u);
            if d == 0 {
                continue;
            }
            let w = cfg.alpha / f64::from(d);
            let gu = partition.group_of(u);
            let lu = local_of[u as usize];
            for &v in g.out_links(u) {
                let gv = partition.group_of(v);
                if gv == gu {
                    inner[gu as usize].push((local_of[v as usize], lu));
                } else {
                    efferent_maps[gu as usize].entry(gv).or_default().push((lu, w, v));
                }
            }
        }

        // Per-group assembly (CSR conversion, efferent-batch sorting) is
        // independent across groups, so it fans out over the shared worker
        // pool — one chunk per group, each output slot written exactly once,
        // so the result is identical to the sequential loop. Small builds
        // stay inline: the broadcast handoff would dominate.
        let pool = if g.n_pages() >= 1 << 14 && k > 1 {
            Pool::global().clone()
        } else {
            Pool::sequential()
        };
        let mut pages_in = group_pages;
        let mut out: Vec<Option<GroupContext>> = (0..k).map(|_| None).collect();
        {
            let pages_slots = SharedSlice::new(&mut pages_in);
            let eff_slots = SharedSlice::new(&mut efferent_maps);
            let out_slots = SharedSlice::new(&mut out);
            let inner = &inner;
            pool.for_each_chunk(k, |gid| {
                // SAFETY (all three): each `gid` is claimed by exactly one
                // chunk, so the slot accesses are disjoint.
                let pages = std::mem::take(unsafe { &mut pages_slots.slice_mut(gid, 1)[0] });
                let eff_map = unsafe { &mut eff_slots.slice_mut(gid, 1)[0] };
                let mut efferent: Vec<EfferentBatch> = eff_map
                    .drain()
                    .map(|(dest, mut edges)| {
                        edges.sort_unstable_by_key(|&(_, _, v)| v);
                        EfferentBatch { dest, edges }
                    })
                    .collect();
                efferent.sort_unstable_by_key(|b| b.dest);
                let a = Self::assemble_matrix(g, cfg, &pages, &inner[gid], layout);
                let ctx = GroupContext {
                    group_id: gid as GroupId,
                    beta_e: cfg.beta_e_for(&pages),
                    a,
                    pages,
                    efferent,
                };
                unsafe { out_slots.slice_mut(gid, 1)[0] = Some(ctx) };
            });
        }
        out.into_iter().map(|c| c.expect("every group built")).collect()
    }

    /// Assembles one group's local matrix from its inner-link pairs:
    /// counting-sort by destination row, per-row column sort, per-column
    /// scale `α/d(u)` (exactly `0.0` for dangling pages — see
    /// `dpr_linalg::column_scale`). Parallel inner links stay as separate
    /// entries in *every* layout — the explicit form is materialized from
    /// the implicit one — so layouts share identical entry structure and
    /// plain-kernel solves match bit for bit.
    fn assemble_matrix(
        g: &WebGraph,
        cfg: &RankConfig,
        pages: &[PageId],
        pairs: &[(u32, u32)],
        layout: MatrixLayout,
    ) -> GroupMatrix {
        let n = pages.len();
        let degrees: Vec<u32> = pages.iter().map(|&p| g.out_degree(p)).collect();
        let scale = column_scale(cfg.alpha, &degrees);
        let mut row_ptr = vec![0u64; n + 1];
        for &(lv, _) in pairs {
            row_ptr[lv as usize + 1] += 1;
        }
        for r in 0..n {
            row_ptr[r + 1] += row_ptr[r];
        }
        let mut cursor: Vec<u64> = row_ptr.clone();
        let mut col_idx = vec![0u32; pairs.len()];
        for &(lv, lu) in pairs {
            let slot = cursor[lv as usize] as usize;
            col_idx[slot] = lu;
            cursor[lv as usize] += 1;
        }
        for r in 0..n {
            col_idx[row_ptr[r] as usize..row_ptr[r + 1] as usize].sort_unstable();
        }
        let m = CsrImplicit::from_raw_parts(n, n, row_ptr, col_idx, scale);
        match layout {
            MatrixLayout::Implicit => GroupMatrix::Implicit(m),
            MatrixLayout::ImplicitUnrolled => GroupMatrix::Implicit(m.with_unrolled(true)),
            MatrixLayout::Explicit => GroupMatrix::Explicit(m.to_explicit()),
        }
    }

    /// Rebuilds **one** group's context against a mutated graph — the
    /// incremental-ranking path: a delta dirties a handful of groups, each
    /// of which re-derives its matrix, efferent routes, and `βE` from the
    /// new graph, while every untouched group keeps its existing context
    /// untouched. Cost is one pass over the group's own rows, independent
    /// of graph size.
    ///
    /// `pages` is the group's sorted page set in the new graph;
    /// `assignment` maps every page of `g` to its owning group. Building
    /// every group this way yields contexts identical to
    /// [`GroupContext::build_all_with_layout`]: pairs and efferent edges
    /// are collected in the same ascending-source order, so the assembled
    /// arrays — and therefore all solve bits — match exactly.
    ///
    /// # Panics
    /// If `pages` is not sorted-unique, contains a page outside `g` or not
    /// assigned to `gid`, or `assignment` does not cover `g`.
    #[must_use]
    pub fn rebuild(
        g: &WebGraph,
        assignment: &[GroupId],
        cfg: &RankConfig,
        gid: GroupId,
        pages: Vec<PageId>,
        layout: MatrixLayout,
    ) -> GroupContext {
        cfg.validate(g.n_pages());
        assert_eq!(assignment.len(), g.n_pages(), "assignment must cover the graph");
        assert!(pages.windows(2).all(|w| w[0] < w[1]), "pages must be sorted unique");
        let mut inner: Vec<(u32, u32)> = Vec::new();
        let mut eff_map: HashMap<GroupId, Vec<EfferentEdge>> = HashMap::new();
        for (lu, &u) in pages.iter().enumerate() {
            assert_eq!(assignment[u as usize], gid, "page {u} is not assigned to group {gid}");
            let d = g.out_degree(u);
            if d == 0 {
                continue;
            }
            let w = cfg.alpha / f64::from(d);
            let lu = lu as u32;
            for &v in g.out_links(u) {
                if assignment[v as usize] == gid {
                    let lv = pages.binary_search(&v).expect("inner destination owned") as u32;
                    inner.push((lv, lu));
                } else {
                    eff_map.entry(assignment[v as usize]).or_default().push((lu, w, v));
                }
            }
        }
        let mut efferent: Vec<EfferentBatch> = eff_map
            .into_iter()
            .map(|(dest, mut edges)| {
                edges.sort_unstable_by_key(|&(_, _, v)| v);
                EfferentBatch { dest, edges }
            })
            .collect();
        efferent.sort_unstable_by_key(|b| b.dest);
        let a = Self::assemble_matrix(g, cfg, &pages, &inner, layout);
        GroupContext { group_id: gid, beta_e: cfg.beta_e_for(&pages), a, pages, efferent }
    }

    /// Patches this context in place for a delta that changed out-degrees
    /// **without touching the group's link structure** (external-out-degree
    /// edits, including ones that leave a page dangling): recomputes the
    /// per-column `α/d(u)` factors — exactly `0.0` for a newly dangling
    /// page — and the efferent edge weights, reusing the matrix's entry
    /// structure and allocations. Bit-identical to a full
    /// [`GroupContext::rebuild`] whenever that structural precondition
    /// holds; the caller is responsible for checking it (netrun derives it
    /// from the delta report's ext-only page list).
    pub fn rescale_in_place(&mut self, g: &WebGraph, cfg: &RankConfig) {
        let degrees: Vec<u32> = self.pages.iter().map(|&p| g.out_degree(p)).collect();
        let scale = column_scale(cfg.alpha, &degrees);
        for batch in &mut self.efferent {
            for (lu, w, _) in &mut batch.edges {
                *w = cfg.alpha / f64::from(degrees[*lu as usize]);
            }
        }
        match &mut self.a {
            GroupMatrix::Implicit(m) => m.set_scale(scale),
            GroupMatrix::Explicit(m) => m.rescale_columns(&scale),
        }
    }

    /// The group's local propagation matrix.
    #[must_use]
    pub fn matrix(&self) -> &GroupMatrix {
        &self.a
    }

    /// This group's id.
    #[must_use]
    pub fn group_id(&self) -> GroupId {
        self.group_id
    }

    /// Number of pages owned by the group.
    #[must_use]
    pub fn n_local(&self) -> usize {
        self.pages.len()
    }

    /// The global page ids owned by the group (sorted).
    #[must_use]
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// The groups this group sends rank to.
    pub fn efferent_groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.efferent.iter().map(|b| b.dest)
    }

    /// Maps a global page id to its local index, if owned by this group.
    #[must_use]
    pub fn local_index(&self, p: PageId) -> Option<usize> {
        self.pages.binary_search(&p).ok()
    }

    /// **Algorithm 2**: solves `R = A·R + βE + X` starting from the current
    /// contents of `r` (warm starts make DPR1's later outer loops cheap).
    ///
    /// # Panics
    /// If `r` or `x` have the wrong length.
    pub fn group_pagerank(
        &self,
        r: &mut Vec<f64>,
        x: &[f64],
        epsilon: f64,
        max_iters: usize,
    ) -> SolveReport {
        self.group_pagerank_pooled(r, x, epsilon, max_iters, &Pool::sequential())
    }

    /// [`GroupContext::group_pagerank`] with the solve's SpMV/reduction
    /// kernels routed through `pool`. Bit-identical to the sequential
    /// variant at every worker count (fixed chunk boundaries).
    pub fn group_pagerank_pooled(
        &self,
        r: &mut Vec<f64>,
        x: &[f64],
        epsilon: f64,
        max_iters: usize,
        pool: &Pool,
    ) -> SolveReport {
        assert_eq!(r.len(), self.n_local());
        assert_eq!(x.len(), self.n_local());
        let f: Vec<f64> = self.beta_e.iter().zip(x).map(|(b, xi)| b + xi).collect();
        FixedPointSolver { tolerance: epsilon, max_iters, pool: pool.clone() }.solve(&self.a, &f, r)
    }

    /// `βE` restricted to this group's pages. Callers that keep a persistent
    /// `f = βE + X` buffer (netrun's allocation-hoisted think step) rebuild
    /// its rows from this slice.
    #[must_use]
    pub fn beta_e(&self) -> &[f64] {
        &self.beta_e
    }

    /// [`GroupContext::group_pagerank`] with a *prepared* right-hand side:
    /// the caller passes `f = βE + X` directly (maintained incrementally
    /// across think steps) plus reusable solve and multiply-workspace
    /// buffers, so the hot path allocates nothing. Bit-identical to the
    /// allocating variant for equal `f`.
    pub fn group_pagerank_prepared(
        &self,
        r: &mut Vec<f64>,
        f: &[f64],
        epsilon: f64,
        max_iters: usize,
        scratch: &mut Vec<f64>,
        ws: &mut Vec<f64>,
    ) -> SolveReport {
        assert_eq!(r.len(), self.n_local());
        assert_eq!(f.len(), self.n_local());
        FixedPointSolver { tolerance: epsilon, max_iters, pool: Pool::sequential() }
            .solve_with_scratch(&self.a, f, r, scratch, ws)
    }

    /// One iteration `R ← A·R + βE + X` (the DPR2 node body). Returns the
    /// successive L1 difference.
    pub fn step(&self, r: &mut Vec<f64>, x: &[f64]) -> f64 {
        self.step_pooled(r, x, &Pool::sequential())
    }

    /// [`GroupContext::step`] on an explicit pool (same determinism
    /// contract as [`GroupContext::group_pagerank_pooled`]).
    pub fn step_pooled(&self, r: &mut Vec<f64>, x: &[f64], pool: &Pool) -> f64 {
        assert_eq!(r.len(), self.n_local());
        assert_eq!(x.len(), self.n_local());
        let f: Vec<f64> = self.beta_e.iter().zip(x).map(|(b, xi)| b + xi).collect();
        FixedPointSolver::default().with_pool(pool.clone()).step(&self.a, &f, r, 1)
    }

    /// [`GroupContext::step`] with a prepared `f = βE + X` and reusable
    /// double/workspace buffers (the allocation-free DPR2 think step).
    pub fn step_prepared(
        &self,
        r: &mut Vec<f64>,
        f: &[f64],
        scratch: &mut Vec<f64>,
        ws: &mut Vec<f64>,
    ) -> f64 {
        assert_eq!(r.len(), self.n_local());
        assert_eq!(f.len(), self.n_local());
        FixedPointSolver::default().step_with_scratch(&self.a, f, r, 1, scratch, ws)
    }

    /// Computes the outgoing rank `Y` for every destination group:
    /// `Y(v) = Σ_{u→v efferent} α·R(u)/d(u)`, aggregated per destination
    /// page. Entries are `(global destination page, score)`.
    #[must_use]
    pub fn compute_y(&self, r: &[f64]) -> Vec<(GroupId, Vec<(PageId, f64)>)> {
        assert_eq!(r.len(), self.n_local());
        self.efferent
            .iter()
            .map(|batch| {
                let mut out: Vec<(PageId, f64)> = Vec::new();
                for &(lu, w, v) in &batch.edges {
                    let score = w * r[lu as usize];
                    match out.last_mut() {
                        Some((last_v, acc)) if *last_v == v => *acc += score,
                        _ => out.push((v, score)),
                    }
                }
                (batch.dest, out)
            })
            .collect()
    }

    /// Localizes an incoming `Y` payload (global page ids) into
    /// `(local index, score)` pairs; entries for pages this group does not
    /// own are ignored (stale traffic after a repartition).
    #[must_use]
    pub fn localize(&self, entries: &[(PageId, f64)]) -> Vec<(u32, f64)> {
        entries.iter().filter_map(|&(p, s)| self.local_index(p).map(|i| (i as u32, s))).collect()
    }
}

/// The afferent-rank bookkeeping every ranker needs: the latest localized
/// `Y` received from each source group, materialized on demand into the
/// dense `X` vector of Algorithm 2. A newer message from the same source
/// *replaces* the older one — `Y` is the sender's current outflow, not an
/// increment — which is what makes DPR1's sequences monotone under loss
/// (a dropped `Y` just leaves the previous, smaller one in place).
///
/// # Dirty-row caching
///
/// In the default *cached* mode the state also maintains a per-row inverted
/// index (`rows[li]` = the `(src, score)` contributions touching local page
/// `li`, sorted by source) plus a worklist of rows whose cached `x` entry is
/// stale. [`AfferentState::refresh`] then recomputes only the stale rows —
/// the common case between think steps is that a handful of sources
/// re-published, leaving most rows untouched. Each stale row is re-summed
/// *from scratch in ascending source order*, which is exactly the order the
/// full rebuild adds contributions in (`received` is a `BTreeMap`), so the
/// cached `X` is bit-identical to a full rebuild at every refresh —
/// floating-point addition is not associative, and the engine promises
/// bit-identical runs per seed. [`AfferentState::new_full_rebuild`] keeps
/// the pre-cache behavior (rebuild every row on any change) as the
/// benchmark baseline.
#[derive(Debug, Clone, Default)]
pub struct AfferentState {
    /// BTreeMap (not HashMap) so X materialization sums in a fixed order.
    received: std::collections::BTreeMap<GroupId, Vec<(u32, f64)>>,
    /// Per-row inverted index, sorted by source group (cached mode only).
    rows: Vec<Vec<(GroupId, f64)>>,
    /// Rows whose `x` entry is stale, deduplicated through `row_dirty`.
    dirty_rows: Vec<u32>,
    row_dirty: Vec<bool>,
    x: Vec<f64>,
    dirty: bool,
    full_rebuild: bool,
    rows_recomputed: u64,
}

impl AfferentState {
    /// State for a group with `n_local` pages (X starts at zero), with
    /// dirty-row caching on.
    #[must_use]
    pub fn new(n_local: usize) -> Self {
        Self {
            received: std::collections::BTreeMap::new(),
            rows: vec![Vec::new(); n_local],
            dirty_rows: Vec::new(),
            row_dirty: vec![false; n_local],
            x: vec![0.0; n_local],
            dirty: false,
            full_rebuild: false,
            rows_recomputed: 0,
        }
    }

    /// The pre-cache baseline: every refresh rebuilds the whole `X` vector
    /// and no inverted index is maintained. Kept so benchmarks can compare
    /// the two modes honestly; results are bit-identical either way.
    #[must_use]
    pub fn new_full_rebuild(n_local: usize) -> Self {
        Self { rows: Vec::new(), row_dirty: Vec::new(), full_rebuild: true, ..Self::new(n_local) }
    }

    /// Marks row `li` stale (cached mode).
    #[inline]
    fn mark_row(row_dirty: &mut [bool], dirty_rows: &mut Vec<u32>, li: u32) {
        if !row_dirty[li as usize] {
            row_dirty[li as usize] = true;
            dirty_rows.push(li);
        }
    }

    /// Upserts `src`'s contribution to row `li` in the inverted index.
    #[inline]
    fn index_row(row: &mut Vec<(GroupId, f64)>, src: GroupId, s: f64) {
        match row.binary_search_by_key(&src, |&(g, _)| g) {
            Ok(pos) => row[pos].1 = s,
            Err(pos) => row.insert(pos, (src, s)),
        }
    }

    /// Bitwise equality on localized `Y` payloads. `==` on `f64` would
    /// conflate `0.0`/`-0.0` and reject equal NaNs; the caching contract is
    /// about *bits*, so compare bits.
    #[inline]
    fn entries_bits_equal(a: &[(u32, f64)], b: &[(u32, f64)]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits())
    }

    /// Returns whether a localized `Y` stream from `src` is bit-identical
    /// to the contribution already stored, i.e. whether [`AfferentState::set`]
    /// would take its steady-state short-circuit. Receivers use this to
    /// skip materializing the localized payload at all once ranks stall —
    /// the stream is compared entry-by-entry against the stored slice
    /// without allocating. Always `false` in full-rebuild mode (the
    /// baseline re-stores every arrival).
    pub fn bits_match(&self, src: GroupId, entries: impl Iterator<Item = (u32, f64)>) -> bool {
        if self.full_rebuild {
            return false;
        }
        let Some(old) = self.received.get(&src) else {
            return false;
        };
        let mut matched = 0usize;
        for (li, s) in entries {
            match old.get(matched) {
                Some(&(oli, os)) if oli == li && os.to_bits() == s.to_bits() => matched += 1,
                _ => return false,
            }
        }
        matched == old.len()
    }

    /// Records the latest `Y` from `src` (already localized); replaces any
    /// previous contribution from the same source. Entries must be sorted
    /// by strictly increasing local index (what
    /// [`GroupContext::localize`] produces).
    pub fn set(&mut self, src: GroupId, entries: Vec<(u32, f64)>) {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "Y entries must be sorted by unique local index"
        );
        // Steady-state short-circuit (cached mode): a re-publication whose
        // payload is bit-identical to what this source already contributed
        // changes nothing — replacing it, re-indexing it, and re-summing
        // its rows would all reproduce the exact same bits. Converged
        // senders keep publishing (the wire protocol never goes quiet), so
        // this is the hot path once ranks stall. The full-rebuild baseline
        // deliberately skips this check: it models the pre-cache engine,
        // which rebuilt on every arrival.
        if !self.full_rebuild {
            if let Some(old) = self.received.get(&src) {
                if Self::entries_bits_equal(old, &entries) {
                    return;
                }
            }
        }
        let old = self.received.insert(src, entries);
        self.dirty = true;
        if self.full_rebuild {
            return;
        }
        // Retract the superseded contribution: rows it touched go stale and
        // lose their index entry (re-added below if the new Y touches them
        // too).
        if let Some(old) = old {
            for &(li, _) in &old {
                let row = &mut self.rows[li as usize];
                if let Ok(pos) = row.binary_search_by_key(&src, |&(g, _)| g) {
                    row.remove(pos);
                }
                Self::mark_row(&mut self.row_dirty, &mut self.dirty_rows, li);
            }
        }
        for &(li, s) in &self.received[&src] {
            Self::index_row(&mut self.rows[li as usize], src, s);
            Self::mark_row(&mut self.row_dirty, &mut self.dirty_rows, li);
        }
    }

    /// Upserts individual entries from `src` without discarding entries the
    /// sender chose not to re-send — the receive side of *thresholded* `Y`
    /// publication (the §4.5/§7 communication-reduction future work): a
    /// sender may suppress entries that barely changed, so absence means
    /// "unchanged", not "zero".
    pub fn merge(&mut self, src: GroupId, entries: &[(u32, f64)]) {
        if entries.is_empty() {
            return;
        }
        let full_rebuild = self.full_rebuild;
        let stored = self.received.entry(src).or_default();
        let mut changed = false;
        for &(li, s) in entries {
            match stored.binary_search_by_key(&li, |&(i, _)| i) {
                // Bit-identical upsert: nothing to re-index or re-sum
                // (cached mode; the baseline still rebuilds below).
                Ok(pos) if !full_rebuild && stored[pos].1.to_bits() == s.to_bits() => continue,
                Ok(pos) => stored[pos].1 = s,
                Err(pos) => stored.insert(pos, (li, s)),
            }
            changed = true;
            if !full_rebuild {
                Self::index_row(&mut self.rows[li as usize], src, s);
                Self::mark_row(&mut self.row_dirty, &mut self.dirty_rows, li);
            }
        }
        if full_rebuild || changed {
            self.dirty = true;
        }
    }

    /// Materializes and returns `X` ("Xi+1 = Refresh X" in Algorithms 3/4).
    pub fn refresh(&mut self) -> &[f64] {
        self.refresh_tracked(None);
        &self.x
    }

    /// [`AfferentState::refresh`], appending the indices of every row whose
    /// `x` entry was recomputed to `touched` (all rows in full-rebuild
    /// mode). Callers maintaining derived per-row state — netrun's
    /// persistent `f = βE + X` buffer — use the worklist to update exactly
    /// the rows that may have changed.
    pub fn refresh_tracked(&mut self, touched: Option<&mut Vec<u32>>) {
        if !self.dirty {
            return;
        }
        if self.full_rebuild {
            self.x.iter_mut().for_each(|v| *v = 0.0);
            for entries in self.received.values() {
                for &(li, s) in entries {
                    self.x[li as usize] += s;
                }
            }
            self.rows_recomputed += self.x.len() as u64;
            if let Some(t) = touched {
                t.extend(0..self.x.len() as u32);
            }
        } else {
            for &li in &self.dirty_rows {
                self.row_dirty[li as usize] = false;
                // From-scratch re-sum in ascending source order: the same
                // additions, in the same order, as the full rebuild above.
                let mut sum = 0.0;
                for &(_, s) in &self.rows[li as usize] {
                    sum += s;
                }
                self.x[li as usize] = sum;
            }
            self.rows_recomputed += self.dirty_rows.len() as u64;
            if let Some(t) = touched {
                t.extend_from_slice(&self.dirty_rows);
            }
            self.dirty_rows.clear();
        }
        self.dirty = false;
    }

    /// The current `X` without refreshing (test/inspection use).
    #[must_use]
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Number of source groups heard from so far.
    #[must_use]
    pub fn n_sources(&self) -> usize {
        self.received.len()
    }

    /// Copies out the per-source contributions, in ascending source order —
    /// the checkpoint payload the replication protocol ships. Replaying the
    /// snapshot through [`AfferentState::set`] in this order reproduces `X`
    /// bit-identically on a fresh instance: `received` is a `BTreeMap`, so
    /// both the original and the restored state sum rows in the same
    /// ascending source order.
    #[must_use]
    pub fn snapshot_received(&self) -> Vec<(GroupId, Vec<(u32, f64)>)> {
        self.received.iter().map(|(&g, v)| (g, v.clone())).collect()
    }

    /// Total rows recomputed across all refreshes (a full rebuild counts
    /// every row) — the work the dirty-row cache is there to avoid.
    #[must_use]
    pub fn rows_recomputed(&self) -> u64 {
        self.rows_recomputed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::generators::toy;
    use dpr_partition::Strategy;

    #[test]
    fn afferent_state_replaces_per_source() {
        let mut st = AfferentState::new(3);
        st.set(0, vec![(0, 1.0), (2, 2.0)]);
        st.set(1, vec![(0, 0.5)]);
        assert_eq!(st.refresh(), &[1.5, 0.0, 2.0]);
        // A newer Y from source 0 replaces, not accumulates.
        st.set(0, vec![(0, 3.0)]);
        assert_eq!(st.refresh(), &[3.5, 0.0, 0.0]);
        assert_eq!(st.n_sources(), 2);
    }

    #[test]
    fn afferent_state_merge_upserts() {
        let mut st = AfferentState::new(4);
        st.merge(0, &[(0, 1.0), (2, 2.0)]);
        assert_eq!(st.refresh(), &[1.0, 0.0, 2.0, 0.0]);
        // Partial update: entry 2 unchanged and unsent, entry 0 grows,
        // entry 3 appears.
        st.merge(0, &[(0, 1.5), (3, 0.5)]);
        assert_eq!(st.refresh(), &[1.5, 0.0, 2.0, 0.5]);
        // merge on a fresh source behaves like set.
        st.merge(7, &[(1, 4.0)]);
        assert_eq!(st.refresh(), &[1.5, 4.0, 2.0, 0.5]);
    }

    #[test]
    fn afferent_state_refresh_is_idempotent() {
        let mut st = AfferentState::new(2);
        st.set(5, vec![(1, 4.0)]);
        assert_eq!(st.refresh(), &[0.0, 4.0]);
        assert_eq!(st.refresh(), &[0.0, 4.0]);
    }

    #[test]
    fn afferent_snapshot_replays_bit_identically() {
        // The checkpoint/restore contract the takeover protocol relies on:
        // replaying a snapshot through `set` on a fresh instance rebuilds
        // the exact bits of `X`, in both caching modes.
        let mut st = AfferentState::new(5);
        st.set(3, vec![(0, 0.125), (4, 1.0 / 3.0)]);
        st.set(0, vec![(0, 0.7), (2, 1e-9)]);
        st.merge(3, &[(1, 0.2)]);
        st.set(9, vec![(3, 0.55)]);
        let x_before: Vec<u64> = st.refresh().iter().map(|v| v.to_bits()).collect();
        let snap = st.snapshot_received();
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "ascending source order");
        for fresh in [AfferentState::new(5), AfferentState::new_full_rebuild(5)] {
            let mut fresh = fresh;
            for (src, entries) in &snap {
                fresh.set(*src, entries.clone());
            }
            let x_after: Vec<u64> = fresh.refresh().iter().map(|v| v.to_bits()).collect();
            assert_eq!(x_before, x_after);
        }
    }

    fn split_cycle() -> (WebGraph, Vec<GroupContext>) {
        // Cycle of 6 split into two groups of alternating pages: every link
        // crosses groups.
        let g = toy::cycle(6);
        let assignment = (0..6u32).map(|p| p % 2).collect();
        let partition = Partition::from_assignment(2, assignment);
        let ctxs = GroupContext::build_all(&g, &partition, &RankConfig::default());
        (g, ctxs)
    }

    #[test]
    fn build_all_structure() {
        let (_, ctxs) = split_cycle();
        assert_eq!(ctxs.len(), 2);
        assert_eq!(ctxs[0].pages(), &[0, 2, 4]);
        assert_eq!(ctxs[1].pages(), &[1, 3, 5]);
        // Alternating cycle: no inner links at all.
        assert_eq!(ctxs[0].a.nnz(), 0);
        assert_eq!(ctxs[0].efferent_groups().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn matrix_layouts_solve_bit_identically() {
        // Implicit (default) and explicit layouts hold the same entries, so
        // a GroupPageRank solve must produce the same rank bits; the
        // unrolled opt-in re-associates sums and only matches within
        // round-off.
        let g = toy::complete(10);
        let assignment = (0..10u32).map(|p| p % 2).collect();
        let partition = Partition::from_assignment(2, assignment);
        let cfg = RankConfig::default();
        let build = |layout| GroupContext::build_all_with_layout(&g, &partition, &cfg, layout);
        let implicit = build(MatrixLayout::Implicit);
        let explicit = build(MatrixLayout::Explicit);
        let unrolled = build(MatrixLayout::ImplicitUnrolled);
        assert!(matches!(implicit[0].matrix(), GroupMatrix::Implicit(_)));
        assert!(matches!(explicit[0].matrix(), GroupMatrix::Explicit(_)));
        assert_eq!(implicit[0].matrix().nnz(), explicit[0].matrix().nnz());
        assert!(implicit[0].matrix().heap_bytes() < explicit[0].matrix().heap_bytes());
        let x = vec![0.01; implicit[0].n_local()];
        let solve = |ctxs: &[GroupContext]| {
            let mut r = vec![0.0; ctxs[0].n_local()];
            let report = ctxs[0].group_pagerank(&mut r, &x, 1e-12, 1000);
            assert!(report.converged);
            r
        };
        let r_i = solve(&implicit);
        let r_e = solve(&explicit);
        let r_u = solve(&unrolled);
        assert!(r_i.iter().zip(&r_e).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(r_i.iter().zip(&r_u).all(|(a, b)| (a - b).abs() < 1e-12));
    }

    #[test]
    fn compute_y_carries_alpha_fraction() {
        let (_, ctxs) = split_cycle();
        let r = vec![1.0, 1.0, 1.0];
        let ys = ctxs[0].compute_y(&r);
        assert_eq!(ys.len(), 1);
        let (dest, entries) = &ys[0];
        assert_eq!(*dest, 1);
        // Pages 0,2,4 each send α·1/1 to pages 1,3,5.
        assert_eq!(entries.len(), 3);
        for (_, s) in entries {
            assert!((s - 0.85).abs() < 1e-12);
        }
    }

    #[test]
    fn y_aggregates_parallel_edges_to_same_dest() {
        // Two pages in group 0 both link to the same page in group 1.
        let mut b = dpr_graph::GraphBuilder::new();
        let s = b.add_site("a.edu");
        let p0 = b.add_page(s);
        let p1 = b.add_page(s);
        let p2 = b.add_page(s);
        b.add_link(p0, p2);
        b.add_link(p1, p2);
        let g = b.build();
        let partition = Partition::from_assignment(2, vec![0, 0, 1]);
        let ctxs = GroupContext::build_all(&g, &partition, &RankConfig::default());
        let ys = ctxs[0].compute_y(&[2.0, 4.0]);
        assert_eq!(ys[0].1, vec![(p2, 0.85 * 2.0 + 0.85 * 4.0)]);
    }

    #[test]
    fn group_pagerank_matches_global_fixed_point_via_exchange() {
        // Alternate GroupPageRank and Y-exchange by hand until the stacked
        // vector matches the centralized open-system solution.
        let (g, ctxs) = split_cycle();
        let cfg = RankConfig::default();
        let star = crate::centralized::open_pagerank(&g, &cfg);

        let mut r: Vec<Vec<f64>> = ctxs.iter().map(|c| vec![0.0; c.n_local()]).collect();
        let mut x: Vec<Vec<f64>> = r.clone();
        for _ in 0..200 {
            for (i, c) in ctxs.iter().enumerate() {
                let report = c.group_pagerank(&mut r[i], &x[i], 1e-12, 1000);
                assert!(report.converged);
            }
            // Exchange Y.
            let mut new_x: Vec<Vec<f64>> = ctxs.iter().map(|c| vec![0.0; c.n_local()]).collect();
            for (i, c) in ctxs.iter().enumerate() {
                for (dest, entries) in c.compute_y(&r[i]) {
                    let dc = &ctxs[dest as usize];
                    for (li, s) in dc.localize(&entries) {
                        new_x[dest as usize][li as usize] += s;
                    }
                }
            }
            x = new_x;
        }
        let mut global = vec![0.0; g.n_pages()];
        for (i, c) in ctxs.iter().enumerate() {
            for (li, &p) in c.pages().iter().enumerate() {
                global[p as usize] = r[i][li];
            }
        }
        let err = dpr_linalg::vec_ops::relative_error(&global, &star.ranks);
        assert!(err < 1e-8, "relative error {err}");
    }

    #[test]
    fn localize_ignores_foreign_pages() {
        let (_, ctxs) = split_cycle();
        let local = ctxs[0].localize(&[(0, 1.0), (1, 2.0), (4, 3.0)]);
        assert_eq!(local, vec![(0, 1.0), (2, 3.0)]);
    }

    #[test]
    fn single_group_has_no_efferent_traffic() {
        let g = toy::complete(5);
        let partition = Partition::build(&g, &Strategy::HashBySite, 1, 0);
        let ctxs = GroupContext::build_all(&g, &partition, &RankConfig::default());
        assert_eq!(ctxs.len(), 1);
        assert_eq!(ctxs[0].efferent_groups().count(), 0);
        // And GroupPageRank alone reproduces CPR.
        let mut r = vec![0.0; 5];
        let x = vec![0.0; 5];
        ctxs[0].group_pagerank(&mut r, &x, 1e-12, 1000);
        // The reference is itself only converged to ~1e-8 (its epsilon), so
        // compare with matching slack.
        let star = crate::centralized::open_pagerank(&g, &RankConfig::default());
        assert!(dpr_linalg::vec_ops::relative_error(&r, &star.ranks) < 1e-7);
    }

    #[test]
    fn rebuild_per_group_matches_build_all() {
        // The incremental path's correctness anchor: rebuilding any single
        // group against the same graph reproduces the batch-built context
        // exactly (same arrays, same bits), in every layout.
        let g = dpr_graph::generators::random::erdos_renyi(200, 5, 4.0, 3);
        let partition = Partition::build(&g, &Strategy::HashBySite, 4, 0);
        let cfg = RankConfig::default();
        for layout in
            [MatrixLayout::Implicit, MatrixLayout::Explicit, MatrixLayout::ImplicitUnrolled]
        {
            let all = GroupContext::build_all_with_layout(&g, &partition, &cfg, layout);
            for ctx in &all {
                let rebuilt = GroupContext::rebuild(
                    &g,
                    partition.assignment(),
                    &cfg,
                    ctx.group_id(),
                    ctx.pages().to_vec(),
                    layout,
                );
                assert_eq!(&rebuilt, ctx);
                assert_eq!(rebuilt.matrix().layout(), layout);
            }
        }
    }

    #[test]
    fn rescale_in_place_matches_rebuild_for_ext_only_delta() {
        use dpr_graph::{DeltaOp, GraphDelta};
        // p0→p1→p2→p0 plus external-only pages; the delta dangles p3
        // (ext 4 → 0) and grows p5's external degree. No internal row
        // changes, so every dirty group qualifies for the in-place rescale.
        let mut b = dpr_graph::GraphBuilder::new();
        let s = b.add_site("a.edu");
        let pages: Vec<u32> = (0..6).map(|_| b.add_page(s)).collect();
        b.add_link(pages[0], pages[1]);
        b.add_link(pages[1], pages[2]);
        b.add_link(pages[2], pages[0]);
        b.add_link(pages[5], pages[0]);
        b.add_external_links(pages[3], 4);
        b.add_external_links(pages[4], 1);
        b.add_external_links(pages[5], 2);
        let g = b.build();
        let delta = GraphDelta::new(vec![
            DeltaOp::SetExternal { page: pages[3], ext_out: 0 },
            DeltaOp::SetExternal { page: pages[5], ext_out: 7 },
        ]);
        let (g2, report) = delta.apply_report(&g);
        assert_eq!(report.ext_only_pages, vec![pages[3], pages[5]]);
        assert_eq!(report.touched_pages, report.ext_only_pages);

        let assignment = vec![0u32, 0, 1, 1, 0, 1];
        let partition = Partition::from_assignment(2, assignment.clone());
        let cfg = RankConfig::default();
        for layout in
            [MatrixLayout::Implicit, MatrixLayout::Explicit, MatrixLayout::ImplicitUnrolled]
        {
            let old = GroupContext::build_all_with_layout(&g, &partition, &cfg, layout);
            for ctx in &old {
                let mut patched = ctx.clone();
                patched.rescale_in_place(&g2, &cfg);
                let rebuilt = GroupContext::rebuild(
                    &g2,
                    &assignment,
                    &cfg,
                    ctx.group_id(),
                    ctx.pages().to_vec(),
                    layout,
                );
                assert_eq!(patched, rebuilt, "layout {layout:?} group {}", ctx.group_id());
            }
        }
        // The dangled page's column scale is exactly 0.0, not a residue.
        let patched = {
            let mut c = GroupContext::build_all(&g, &partition, &cfg)
                .into_iter()
                .find(|c| c.local_index(pages[3]).is_some())
                .unwrap();
            c.rescale_in_place(&g2, &cfg);
            c
        };
        let li = patched.local_index(pages[3]).unwrap();
        match patched.matrix() {
            GroupMatrix::Implicit(m) => {
                assert_eq!(m.scale()[li].to_bits(), 0.0f64.to_bits());
            }
            GroupMatrix::Explicit(_) => unreachable!("default layout is implicit"),
        }
    }

    #[test]
    fn empty_group_is_harmless() {
        let g = toy::cycle(4);
        // Group 2 owns nothing.
        let partition = Partition::from_assignment(3, vec![0, 0, 1, 1]);
        let ctxs = GroupContext::build_all(&g, &partition, &RankConfig::default());
        assert_eq!(ctxs[2].n_local(), 0);
        let mut r = vec![];
        let report = ctxs[2].group_pagerank(&mut r, &[], 1e-9, 10);
        assert!(report.converged);
        assert!(ctxs[2].compute_y(&r).is_empty());
    }

    proptest::proptest! {
        /// Satellite contract: a re-crawl deletion that leaves some linker
        /// with no surviving out-links must give that page a column scale
        /// of **exactly** `0.0` in its group matrix — the same dangling
        /// contract the static build pins — never a phantom `α/d` from the
        /// pre-deletion degree.
        #[test]
        fn deletion_dangled_pages_get_exact_zero_column_scale(
            n in 2usize..40,
            sites in 1usize..4,
            deg in 1.0f64..5.0,
            change in 0.0f64..1.0,
            delete in 0.05f64..0.6,
            seed in 0u64..300,
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq, prop_assume};
            let g = dpr_graph::generators::random::erdos_renyi(n, sites, deg, seed);
            let (g2, report) =
                dpr_graph::refresh::recrawl_with_deletions(&g, change, 0.1, delete, seed ^ 1);
            prop_assume!(!report.deleted_pages.is_empty());
            let partition = Partition::build(&g2, &Strategy::HashBySite, 3, 0);
            let ctxs = GroupContext::build_all(&g2, &partition, &RankConfig::default());
            for ctx in &ctxs {
                let GroupMatrix::Implicit(m) = ctx.matrix() else {
                    unreachable!("default layout is implicit")
                };
                for (li, &p) in ctx.pages().iter().enumerate() {
                    if g2.out_degree(p) == 0 {
                        prop_assert_eq!(
                            m.scale()[li].to_bits(),
                            0.0f64.to_bits(),
                            "dangling page {} must scale to exactly 0.0",
                            p
                        );
                    } else {
                        prop_assert!(m.scale()[li] > 0.0);
                    }
                }
            }
        }
    }
}
