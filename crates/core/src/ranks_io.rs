//! Rank-vector persistence.
//!
//! A deployment re-ranks the web continuously (see `dpr-graph::refresh` and
//! the warm-start machinery); persisting converged ranks between sessions
//! is what makes warm starts possible across process restarts. The format
//! is line-oriented text, like the graph format, so rank files diff and
//! version cleanly:
//!
//! ```text
//! dpr-ranks v1
//! <n>
//! <rank of page 0>
//! …
//! ```

use std::io::{self, BufRead, Write};

/// Writes a rank vector.
pub fn write_ranks<W: Write>(ranks: &[f64], mut w: W) -> io::Result<()> {
    writeln!(w, "dpr-ranks v1")?;
    writeln!(w, "{}", ranks.len())?;
    for r in ranks {
        // 17 significant digits: lossless f64 round-trip.
        writeln!(w, "{r:.17e}")?;
    }
    Ok(())
}

/// Reads a rank vector; errors carry a line-context message.
pub fn read_ranks<R: BufRead>(r: R) -> Result<Vec<f64>, String> {
    let mut lines = r.lines().enumerate();
    let mut next = |what: &str| -> Result<(usize, String), String> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(format!("line {}: {e}", i + 1)),
            None => Err(format!("unexpected end of file, wanted {what}")),
        }
    };
    let (ln, header) = next("header")?;
    if header.trim() != "dpr-ranks v1" {
        return Err(format!("line {ln}: bad header {header:?}"));
    }
    let (ln, count) = next("count")?;
    let n: usize =
        count.trim().parse().map_err(|e| format!("line {ln}: bad count {count:?}: {e}"))?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let (ln, v) = next("rank value")?;
        let value: f64 =
            v.trim().parse().map_err(|e| format!("line {ln}: bad value {v:?}: {e}"))?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!("line {ln}: rank {value} is not a finite non-negative number"));
        }
        out.push(value);
    }
    Ok(out)
}

/// Writes to a file path.
pub fn save(ranks: &[f64], path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_ranks(ranks, io::BufWriter::new(f))
}

/// Reads from a file path.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<Vec<f64>, String> {
    let f = std::fs::File::open(&path)
        .map_err(|e| format!("cannot open {}: {e}", path.as_ref().display()))?;
    read_ranks(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_lossless() {
        let ranks = vec![0.0, 1.5, 0.2483, 1e-300, 12345.6789, f64::MIN_POSITIVE];
        let mut buf = Vec::new();
        write_ranks(&ranks, &mut buf).unwrap();
        let back = read_ranks(buf.as_slice()).unwrap();
        assert_eq!(back.len(), ranks.len());
        for (a, b) in ranks.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn empty_vector() {
        let mut buf = Vec::new();
        write_ranks(&[], &mut buf).unwrap();
        assert_eq!(read_ranks(buf.as_slice()).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn bad_header_rejected() {
        assert!(read_ranks("nope\n0\n".as_bytes()).unwrap_err().contains("bad header"));
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        write_ranks(&[1.0, 2.0], &mut buf).unwrap();
        // Drop the entire final value line.
        let cut =
            buf.len() - 1 - buf[..buf.len() - 1].iter().rev().position(|&b| b == b'\n').unwrap();
        buf.truncate(cut);
        assert!(read_ranks(buf.as_slice()).is_err());
    }

    #[test]
    fn negative_and_nan_rejected() {
        assert!(read_ranks("dpr-ranks v1\n1\n-1.0\n".as_bytes()).unwrap_err().contains("finite"));
        assert!(read_ranks("dpr-ranks v1\n1\nNaN\n".as_bytes()).unwrap_err().contains("finite"));
    }
}
