//! Rank-vector persistence.
//!
//! A deployment re-ranks the web continuously (see `dpr-graph::refresh` and
//! the warm-start machinery); persisting converged ranks between sessions
//! is what makes warm starts possible across process restarts. The format
//! is line-oriented text, like the graph format, so rank files diff and
//! version cleanly:
//!
//! ```text
//! dpr-ranks v1
//! <n>
//! <rank of page 0>
//! …
//! ```

use std::io::{self, BufRead, Write};

/// Writes a rank vector.
pub fn write_ranks<W: Write>(ranks: &[f64], mut w: W) -> io::Result<()> {
    writeln!(w, "dpr-ranks v1")?;
    writeln!(w, "{}", ranks.len())?;
    for r in ranks {
        // Shortest round-trip form: `{:e}` with no precision prints the
        // fewest digits that parse back to the identical f64 (the previous
        // `{:.17e}` printed 17 digits *after* the point — 18 significant —
        // while claiming "17 significant digits"; correct but mislabeled
        // and ~40% larger on disk).
        writeln!(w, "{r:e}")?;
    }
    Ok(())
}

/// Reads a rank vector; errors carry a line-context message.
pub fn read_ranks<R: BufRead>(r: R) -> Result<Vec<f64>, String> {
    let mut lines = r.lines().enumerate();
    let mut next = |what: &str| -> Result<(usize, String), String> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(format!("line {}: {e}", i + 1)),
            None => Err(format!("unexpected end of file, wanted {what}")),
        }
    };
    let (ln, header) = next("header")?;
    if header.trim() != "dpr-ranks v1" {
        return Err(format!("line {ln}: bad header {header:?}"));
    }
    let (ln, count) = next("count")?;
    let n: usize =
        count.trim().parse().map_err(|e| format!("line {ln}: bad count {count:?}: {e}"))?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let (ln, v) = next("rank value")?;
        let value: f64 =
            v.trim().parse().map_err(|e| format!("line {ln}: bad value {v:?}: {e}"))?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!("line {ln}: rank {value} is not a finite non-negative number"));
        }
        out.push(value);
    }
    Ok(out)
}

/// Writes to a file path.
pub fn save(ranks: &[f64], path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_ranks(ranks, io::BufWriter::new(f))
}

/// Reads from a file path.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<Vec<f64>, String> {
    let f = std::fs::File::open(&path)
        .map_err(|e| format!("cannot open {}: {e}", path.as_ref().display()))?;
    read_ranks(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_roundtrip_bits(ranks: &[f64]) {
        let mut buf = Vec::new();
        write_ranks(ranks, &mut buf).unwrap();
        let back = read_ranks(buf.as_slice()).unwrap();
        assert_eq!(back.len(), ranks.len());
        for (a, b) in ranks.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        assert_roundtrip_bits(&[0.0, 1.5, 0.2483, 1e-300, 12345.6789, f64::MIN_POSITIVE]);
    }

    #[test]
    fn roundtrip_edge_values() {
        // Negative zero is "not < 0.0", so the reader accepts it and the
        // sign bit must survive; subnormals (down to the very smallest)
        // and f64::MAX exercise both ends of the exponent range.
        let edges = [
            -0.0,
            f64::from_bits(1), // smallest positive subnormal, 5e-324
            f64::from_bits(0xF_FFFF_FFFF_FFFF), // largest subnormal
            f64::MIN_POSITIVE,
            f64::MAX,
            1.0 + f64::EPSILON,
        ];
        assert_roundtrip_bits(&edges);
        assert!(edges[0].to_bits() != 0.0f64.to_bits(), "-0.0 must keep its sign bit");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        // Pin the shortest-round-trip claim at the bit level: any finite
        // non-negative f64 (uniform over bit patterns, so subnormals and
        // extreme exponents are routinely hit) must survive write → read
        // exactly.
        #[test]
        fn roundtrip_preserves_arbitrary_bit_patterns(bits in any::<u64>()) {
            // Clear the sign bit (ranks are non-negative; -0.0 is covered
            // by `roundtrip_edge_values`), then fold the non-finite
            // exponent into the subnormal range instead of discarding the
            // case.
            let magnitude = bits & !(1u64 << 63);
            let v = f64::from_bits(magnitude);
            let v = if v.is_finite() { v } else { f64::from_bits(magnitude & 0xF_FFFF_FFFF_FFFF) };
            let mut buf = Vec::new();
            write_ranks(&[v], &mut buf).unwrap();
            let back = read_ranks(buf.as_slice()).unwrap();
            prop_assert_eq!(back.len(), 1);
            prop_assert_eq!(back[0].to_bits(), v.to_bits());
        }
    }

    #[test]
    fn empty_vector() {
        let mut buf = Vec::new();
        write_ranks(&[], &mut buf).unwrap();
        assert_eq!(read_ranks(buf.as_slice()).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn bad_header_rejected() {
        assert!(read_ranks("nope\n0\n".as_bytes()).unwrap_err().contains("bad header"));
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        write_ranks(&[1.0, 2.0], &mut buf).unwrap();
        // Drop the entire final value line.
        let cut =
            buf.len() - 1 - buf[..buf.len() - 1].iter().rev().position(|&b| b == b'\n').unwrap();
        buf.truncate(cut);
        assert!(read_ranks(buf.as_slice()).is_err());
    }

    #[test]
    fn negative_and_nan_rejected() {
        assert!(read_ranks("dpr-ranks v1\n1\n-1.0\n".as_bytes()).unwrap_err().contains("finite"));
        assert!(read_ranks("dpr-ranks v1\n1\nNaN\n".as_bytes()).unwrap_err().contains("finite"));
    }
}
