//! Whole-system experiment orchestration: builds the partition and groups,
//! wires the ranker actors into the discrete-event simulator, runs with the
//! paper's §5 parameters (K, p, T1, T2), and records the time series behind
//! Figs 6–8.

use dpr_graph::WebGraph;
use dpr_linalg::vec_ops;
use dpr_partition::{Partition, Strategy};
use dpr_sim::waits::WaitModel;
use dpr_sim::{SimConfig, SimStats, Simulation, TimeSeries};

use crate::centralized::open_pagerank;
use crate::config::RankConfig;
use crate::dpr::{assemble_global, DprVariant, RankerNode};
use crate::group::GroupContext;

/// Parameters of one distributed run (one curve of Figs 6–8).
#[derive(Debug, Clone)]
pub struct DistributedRunConfig {
    /// Number of page rankers `K`.
    pub k: usize,
    /// DPR1 or DPR2.
    pub variant: DprVariant,
    /// How pages map to rankers (§4.1).
    pub strategy: Strategy,
    /// Open-system ranking parameters.
    pub rank: RankConfig,
    /// Think-time interval `[T1, T2]` the per-group means are drawn from.
    pub t1: f64,
    /// Upper end of the think-time interval.
    pub t2: f64,
    /// The paper's `p`: probability a `Y` send succeeds.
    pub send_success_prob: f64,
    /// Master seed (think-time means, drops, start offsets).
    pub seed: u64,
    /// DPR1 inner tolerance.
    pub inner_epsilon: f64,
    /// Virtual-time horizon.
    pub t_end: f64,
    /// Sampling period for the time series.
    pub sample_every: f64,
    /// Relative-error threshold for the "converged" readout (Fig 8 uses
    /// 0.01% = 1e-4).
    pub threshold_rel_err: f64,
    /// Check Theorems 4.1/4.2 on every node during the run.
    pub track_theorems: bool,
    /// Suppress `Y` entries that changed by at most this amount since last
    /// published (0.0 = off). §4.5/§7 communication reduction; keep well
    /// below `threshold_rel_err` or convergence stalls at the threshold.
    pub y_threshold: f64,
    /// Warm-start ranks (global, page-indexed), e.g. the converged ranks of
    /// the previous crawl. With a warm start the Theorem 4.1/4.2
    /// instrumentation is meaningless (sequences need not be monotone) and
    /// should stay off.
    pub warm_start: Option<Vec<f64>>,
}

impl Default for DistributedRunConfig {
    fn default() -> Self {
        Self {
            k: 100,
            variant: DprVariant::Dpr1,
            strategy: Strategy::HashBySite,
            rank: RankConfig::default(),
            t1: 0.0,
            t2: 6.0,
            send_success_prob: 1.0,
            seed: 0,
            inner_epsilon: 1e-10,
            t_end: 100.0,
            sample_every: 1.0,
            threshold_rel_err: 1e-4,
            track_theorems: false,
            y_threshold: 0.0,
            warm_start: None,
        }
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// `‖R(t) − R*‖₁ / ‖R*‖₁` over time (Fig 6).
    pub rel_err: TimeSeries,
    /// Average rank over time (Fig 7).
    pub avg_rank: TimeSeries,
    /// Virtual time when the threshold was first met.
    pub time_at_threshold: Option<f64>,
    /// Mean outer iterations of the *active* (non-empty) rankers when the
    /// threshold was first met (the Fig 8 y-axis).
    pub mean_outer_iters_at_threshold: Option<f64>,
    /// Final relative error at `t_end`.
    pub final_rel_err: f64,
    /// Final global rank vector.
    pub final_ranks: Vec<f64>,
    /// The centralized fixed point used as reference.
    pub reference_ranks: Vec<f64>,
    /// Engine counters (sends, drops, deliveries, wakes).
    pub sim_stats: SimStats,
    /// Per-theorem verdicts when tracking was on: `(monotone, bounded)`
    /// ANDed over all nodes.
    pub theorems_held: Option<(bool, bool)>,
    /// Number of groups that own at least one page.
    pub active_groups: usize,
    /// Y entries published across all nodes.
    pub y_entries_sent: u64,
    /// Y entries suppressed by the `y_threshold` knob.
    pub y_entries_suppressed: u64,
}

/// A fully wired distributed page-ranking system, ready to run. Separating
/// construction from execution lets benches reuse the (expensive) group
/// build across measurements.
pub struct DistributedRun {
    sim: Simulation<RankerNode>,
    reference: Vec<f64>,
    n_pages: usize,
    cfg: DistributedRunConfig,
}

impl DistributedRun {
    /// Builds partition, group contexts, reference solution and actors.
    #[must_use]
    pub fn new(g: &WebGraph, cfg: DistributedRunConfig) -> Self {
        cfg.rank.validate(g.n_pages());
        assert!(cfg.t_end > 0.0 && cfg.sample_every > 0.0);
        assert!((0.0..=1.0).contains(&cfg.send_success_prob));

        let partition = Partition::build(g, &cfg.strategy, cfg.k, 0);
        // Both construction hot spots fan out over the shared worker pool
        // on large graphs: the reference solve through the pooled kernels
        // (bit-identical to sequential) and the per-group context assembly
        // inside `build_all`.
        let reference = open_pagerank(g, &cfg.rank).ranks;
        let contexts = GroupContext::build_all(g, &partition, &cfg.rank);
        let waits = WaitModel::uniform_means(cfg.k, cfg.t1, cfg.t2, cfg.seed ^ 0xABCD);

        let nodes: Vec<RankerNode> = contexts
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let bound: Option<Vec<f64>> = cfg
                    .track_theorems
                    .then(|| c.pages().iter().map(|&p| reference[p as usize]).collect());
                let mut node = RankerNode::new(c, cfg.variant, waits.mean(i))
                    .with_inner_epsilon(cfg.inner_epsilon)
                    .with_y_threshold(cfg.y_threshold);
                if cfg.track_theorems {
                    node.enable_theorem_tracking(bound);
                }
                if let Some(seed_ranks) = &cfg.warm_start {
                    node.seed_ranks(seed_ranks);
                }
                node
            })
            .collect();

        let sim = Simulation::new(
            nodes,
            SimConfig { send_success_prob: cfg.send_success_prob, latency: 0.01, seed: cfg.seed },
        );
        Self { sim, reference, n_pages: g.n_pages(), cfg }
    }

    /// Runs to `t_end`, sampling the two series every `sample_every` units.
    #[must_use]
    pub fn execute(mut self) -> RunResult {
        let mut rel_err = TimeSeries::new();
        let mut avg_rank = TimeSeries::new();
        let mut time_at_threshold = None;
        let mut iters_at_threshold = None;
        let reference = std::mem::take(&mut self.reference);
        let n_pages = self.n_pages;
        let threshold = self.cfg.threshold_rel_err;

        self.sim.run_sampled(self.cfg.t_end, self.cfg.sample_every, |t, nodes| {
            let global = assemble_global(nodes, n_pages);
            let err = vec_ops::relative_error(&global, &reference);
            rel_err.push(t, err);
            avg_rank.push(t, vec_ops::mean(&global));
            if err <= threshold && time_at_threshold.is_none() {
                time_at_threshold = Some(t);
                let active: Vec<&RankerNode> =
                    nodes.iter().filter(|n| n.group().n_local() > 0).collect();
                let total: u64 = active.iter().map(|n| n.outer_iterations).sum();
                iters_at_threshold = Some(total as f64 / active.len().max(1) as f64);
            }
        });

        let nodes = self.sim.actors();
        let final_ranks = assemble_global(nodes, n_pages);
        let final_rel_err = vec_ops::relative_error(&final_ranks, &reference);
        let active_groups = nodes.iter().filter(|n| n.group().n_local() > 0).count();
        let theorems_held = self.cfg.track_theorems.then(|| {
            nodes
                .iter()
                .filter_map(|n| n.theorems_held())
                .fold((true, true), |(am, ab), (m, b)| (am && m, ab && b))
        });

        let y_entries_sent = nodes.iter().map(|n| n.y_entries_sent).sum();
        let y_entries_suppressed = nodes.iter().map(|n| n.y_entries_suppressed).sum();
        RunResult {
            rel_err,
            avg_rank,
            time_at_threshold,
            mean_outer_iters_at_threshold: iters_at_threshold,
            final_rel_err,
            final_ranks,
            reference_ranks: reference,
            sim_stats: self.sim.stats(),
            theorems_held,
            active_groups,
            y_entries_sent,
            y_entries_suppressed,
        }
    }
}

/// Convenience: build and execute in one call.
#[must_use]
pub fn run_distributed(g: &WebGraph, cfg: DistributedRunConfig) -> RunResult {
    DistributedRun::new(g, cfg).execute()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
    use dpr_graph::generators::toy;

    fn quick_cfg() -> DistributedRunConfig {
        DistributedRunConfig {
            k: 8,
            t1: 0.5,
            t2: 2.0,
            t_end: 150.0,
            sample_every: 2.0,
            strategy: Strategy::HashByUrl,
            ..DistributedRunConfig::default()
        }
    }

    #[test]
    fn relative_error_decreases_and_converges() {
        let g = toy::two_cliques(6);
        let res = run_distributed(&g, quick_cfg());
        let pts = res.rel_err.points();
        assert!(pts.first().unwrap().1 > pts.last().unwrap().1);
        assert!(res.final_rel_err < 1e-4, "final rel err {}", res.final_rel_err);
        assert!(res.time_at_threshold.is_some());
        assert!(res.mean_outer_iters_at_threshold.unwrap() >= 1.0);
    }

    #[test]
    fn lossy_run_converges_slower_but_converges() {
        let g = edu_domain(&EduDomainConfig {
            n_pages: 2_000,
            n_sites: 20,
            ..EduDomainConfig::default()
        });
        let reliable = run_distributed(
            &g,
            DistributedRunConfig { send_success_prob: 1.0, seed: 9, ..quick_cfg() },
        );
        let lossy = run_distributed(
            &g,
            DistributedRunConfig { send_success_prob: 0.5, seed: 9, ..quick_cfg() },
        );
        assert!(reliable.final_rel_err < 1e-3);
        assert!(lossy.final_rel_err < 1e-2);
        let t_rel = reliable.time_at_threshold;
        let t_lossy = lossy.time_at_threshold;
        if let (Some(a), Some(b)) = (t_rel, t_lossy) {
            assert!(b >= a, "loss should not speed convergence: {a} vs {b}");
        }
        assert!(lossy.sim_stats.sends_dropped > 0);
    }

    #[test]
    fn avg_rank_monotone_and_theorems_hold() {
        let g = edu_domain(&EduDomainConfig {
            n_pages: 1_500,
            n_sites: 15,
            ..EduDomainConfig::default()
        });
        let res = run_distributed(&g, DistributedRunConfig { track_theorems: true, ..quick_cfg() });
        assert!(res.avg_rank.is_monotone_nondecreasing(1e-9), "Fig 7 property violated");
        let (monotone, bounded) = res.theorems_held.unwrap();
        assert!(monotone, "Theorem 4.1 violated");
        assert!(bounded, "Theorem 4.2 violated");
    }

    #[test]
    fn leaky_dataset_average_rank_settles_below_one() {
        // The Fig 7 observation: with ~53% of links leaving the dataset the
        // converged average rank sits near 0.3, not 1.0.
        let g = edu_domain(&EduDomainConfig {
            n_pages: 2_000,
            n_sites: 20,
            ..EduDomainConfig::default()
        });
        let res = run_distributed(&g, DistributedRunConfig { t_end: 200.0, ..quick_cfg() });
        let avg = res.avg_rank.last_value().unwrap();
        assert!((0.15..=0.5).contains(&avg), "converged average rank {avg}");
    }

    #[test]
    fn k_has_little_effect_on_iterations() {
        // Fig 8's second conclusion. Compare outer iterations at K=4 vs
        // K=32 on the same dataset.
        let g = edu_domain(&EduDomainConfig {
            n_pages: 2_000,
            n_sites: 20,
            ..EduDomainConfig::default()
        });
        let iters = |k: usize| {
            run_distributed(
                &g,
                DistributedRunConfig { k, t1: 1.0, t2: 1.0, t_end: 400.0, ..quick_cfg() },
            )
            .mean_outer_iters_at_threshold
            .expect("must converge")
        };
        let a = iters(4);
        let b = iters(32);
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 3.0, "K changed iterations too much: {a} vs {b}");
    }

    #[test]
    fn y_threshold_cuts_traffic_without_breaking_convergence() {
        let g = edu_domain(&EduDomainConfig {
            n_pages: 2_000,
            n_sites: 20,
            ..EduDomainConfig::default()
        });
        let full = run_distributed(&g, DistributedRunConfig { seed: 4, ..quick_cfg() });
        let thresholded =
            run_distributed(&g, DistributedRunConfig { seed: 4, y_threshold: 1e-6, ..quick_cfg() });
        assert_eq!(full.y_entries_suppressed, 0);
        assert!(thresholded.y_entries_suppressed > 0, "threshold never fired");
        // Traffic drops substantially…
        assert!(
            thresholded.y_entries_sent < full.y_entries_sent / 2,
            "sent {} vs {}",
            thresholded.y_entries_sent,
            full.y_entries_sent
        );
        // …while accuracy stays within the threshold's reach.
        assert!(thresholded.final_rel_err < 1e-3, "rel err {}", thresholded.final_rel_err);
    }

    #[test]
    fn distributed_personalized_ranking_converges() {
        // §3: non-uniform E = personalized ranking — the distributed
        // machinery must converge to the personalized fixed point too.
        let g = edu_domain(&EduDomainConfig {
            n_pages: 1_500,
            n_sites: 15,
            ..EduDomainConfig::default()
        });
        let e = crate::personalized::site_biased_e(&g, 3, 0.1, 2.0);
        let rank = crate::RankConfig { e, ..crate::RankConfig::default() };
        let res = run_distributed(&g, DistributedRunConfig { rank: rank.clone(), ..quick_cfg() });
        assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
        // The reference it converged to is the personalized one: site 3's
        // share must exceed its share under uniform E.
        let uniform = crate::centralized::open_pagerank(&g, &crate::RankConfig::default()).ranks;
        let share = |r: &[f64]| {
            let site3: f64 =
                (0..g.n_pages() as u32).filter(|&p| g.site(p) == 3).map(|p| r[p as usize]).sum();
            site3 / dpr_linalg::vec_ops::sum(r)
        };
        assert!(share(&res.final_ranks) > share(&uniform) * 1.5);
    }

    #[test]
    fn empty_groups_are_counted_out() {
        let g = toy::two_cliques(4); // 2 sites
        let res = run_distributed(
            &g,
            DistributedRunConfig { k: 16, strategy: Strategy::HashBySite, ..quick_cfg() },
        );
        assert!(res.active_groups <= 2);
        assert!(res.final_rel_err < 1e-3);
    }
}
