//! Whole-system mode: DPR with rank exchange **routed through the
//! structured overlay**, in both §4.4 transmission styles.
//!
//! [`run::DistributedRun`](crate::run::DistributedRun) abstracts the network
//! away (group *g* is actor *g*; `Y` travels in one hop), which is the model
//! the paper's own convergence experiments use. This module closes the loop
//! with the rest of the system:
//!
//! * page groups are placed on overlay nodes by **DHT responsibility** —
//!   group `g` lives on the node numerically closest to `key(g)`;
//! * with [`Transmission::Direct`], a publishing node first pays an
//!   `h`-hop lookup (modelled as added latency and counted messages), then
//!   ships `Y` point-to-point;
//! * with [`Transmission::Indirect`], `Y` parts travel hop-by-hop along the
//!   overlay's own routes as real simulator messages: every relay buffers
//!   arriving parts and, at its next wake, recombines them by destination
//!   and forwards **one package per neighbor** (Fig 4's pack/unpack cycle),
//!   so in-network aggregation emerges from the simulation instead of being
//!   assumed;
//! * message and byte counters per node reproduce the §4.4 cost asymmetry
//!   (direct: `O((h+1)K²)` messages; indirect: neighbor-bound packages but
//!   `h×` forwarded bytes) *while the ranks are converging*.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::RwLock;

use dpr_graph::{GraphDelta, PageId, WebGraph};
use dpr_linalg::vec_ops;
use dpr_overlay::{
    CanNetwork, ChordNetwork, NodeIndex, Overlay, PastryNetwork, RouteCache, RouteCacheStats,
};
use dpr_partition::{GroupId, Partition};
use dpr_sim::waits::WaitModel;
use dpr_sim::{Actor, Ctx, FaultPlan, SchedStats, SchedulerKind, SimStats, Simulation, TimeSeries};
use dpr_transport::snapshot::paper_snapshot_bytes;

use crate::centralized::open_pagerank;
use crate::config::RankConfig;
use crate::dpr::DprVariant;
use crate::group::{AfferentState, GroupContext, MatrixLayout};

/// Which structured overlay carries the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayKind {
    /// Pastry prefix routing (the paper's §4.5 assumption).
    Pastry,
    /// Chord ring with finger tables.
    Chord,
    /// CAN coordinate torus with the given dimensionality.
    Can {
        /// Number of torus dimensions (1..=4).
        d: usize,
    },
}

/// A churn operation the active overlay implementation does not support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnUnsupported {
    /// The requested operation (`"departures"` or `"joins"`).
    pub op: &'static str,
    /// The overlay that rejected it.
    pub overlay: &'static str,
}

impl std::fmt::Display for ChurnUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mid-run {} are not supported on the {} overlay", self.op, self.overlay)
    }
}

impl std::error::Error for ChurnUnsupported {}

/// Why a whole-system run was rejected before its event loop started.
/// Malformed configurations come back as structured errors instead of
/// aborting the process (the churn schedules and the replication knobs
/// arrive from CLI flags and experiment scripts, where a typo should fail
/// the run, not the harness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetRunError {
    /// Scheduled churn the chosen overlay cannot perform.
    Churn(ChurnUnsupported),
    /// A configuration value failed validation.
    Config {
        /// The offending field or aspect.
        what: &'static str,
        /// Human-readable explanation.
        detail: String,
    },
}

impl std::fmt::Display for NetRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetRunError::Churn(c) => c.fmt(f),
            NetRunError::Config { what, detail } => {
                write!(f, "invalid net-run config ({what}): {detail}")
            }
        }
    }
}

impl std::error::Error for NetRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetRunError::Churn(c) => Some(c),
            NetRunError::Config { .. } => None,
        }
    }
}

impl From<ChurnUnsupported> for NetRunError {
    fn from(c: ChurnUnsupported) -> Self {
        NetRunError::Churn(c)
    }
}

/// Concrete overlay storage behind the shared lock (an enum rather than a
/// trait object so churn operations, which not every overlay supports,
/// stay available).
pub enum AnyOverlay {
    /// Pastry prefix routing.
    Pastry(PastryNetwork),
    /// Chord ring.
    Chord(ChordNetwork),
    /// CAN torus.
    Can(CanNetwork),
}

impl AnyOverlay {
    fn as_overlay(&self) -> &dyn Overlay {
        match self {
            AnyOverlay::Pastry(p) => p,
            AnyOverlay::Chord(c) => c,
            AnyOverlay::Can(c) => c,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyOverlay::Pastry(_) => "Pastry",
            AnyOverlay::Chord(_) => "Chord",
            AnyOverlay::Can(_) => "CAN",
        }
    }

    /// Node departure. Pastry and Chord repair their routing state; CAN
    /// does not model churn and returns an error.
    ///
    /// # Errors
    /// [`ChurnUnsupported`] on CAN.
    pub fn depart(&mut self, h: NodeIndex) -> Result<(), ChurnUnsupported> {
        match self {
            AnyOverlay::Pastry(p) => {
                p.depart(h);
                Ok(())
            }
            AnyOverlay::Chord(c) => {
                c.depart(h);
                Ok(())
            }
            AnyOverlay::Can(_) => Err(ChurnUnsupported { op: "departures", overlay: self.name() }),
        }
    }

    /// Mid-run join: derives a fresh node id from `seed`, bootstraps off
    /// the first live node, and returns the newcomer's handle. Only Pastry
    /// implements incremental joins.
    ///
    /// # Errors
    /// [`ChurnUnsupported`] on Chord/CAN.
    pub fn join(&mut self, seed: u64) -> Result<NodeIndex, ChurnUnsupported> {
        match self {
            AnyOverlay::Pastry(p) => {
                let bootstrap = (0..p.n_nodes())
                    .find(|&h| p.is_alive(h))
                    .expect("network has at least one live node");
                Ok(p.join(bootstrap, seed))
            }
            _ => Err(ChurnUnsupported { op: "joins", overlay: self.name() }),
        }
    }
}

/// Which §4.4 transmission scheme carries the `Y` exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmission {
    /// Lookup (h hops of latency + h counted messages) then point-to-point.
    Direct,
    /// Hop-by-hop forwarding along overlay routes with per-relay
    /// aggregation.
    Indirect,
}

/// Hop-by-hop reliable-delivery settings: every data package is
/// sequence-numbered, the receiver acknowledges it, and the sender
/// retransmits unacked packages with exponential backoff until a bounded
/// retry budget runs out. Receivers suppress duplicates (a retransmission
/// whose original did arrive) but re-ack them, since the earlier ack may
/// itself have been lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reliability {
    /// Time to wait for an ack before the first retransmission. Should
    /// comfortably exceed one round trip (`2 × hop_latency` plus engine
    /// latency).
    pub ack_timeout: f64,
    /// Maximum retransmissions per package; afterwards the package is
    /// abandoned and counted in [`NetCounters::retry_exhausted`].
    pub max_retries: u32,
    /// Multiplier applied to the timeout after every retransmission
    /// (exponential backoff).
    pub backoff: f64,
}

impl Default for Reliability {
    fn default() -> Self {
        Self { ack_timeout: 1.0, max_retries: 5, backoff: 2.0 }
    }
}

/// Parameters of a whole-system run.
#[derive(Debug, Clone)]
pub struct NetRunConfig {
    /// Number of page groups `K`.
    pub k: usize,
    /// Number of overlay nodes `N` (groups are placed on them by DHT
    /// responsibility; `N` may differ from `K` in either direction).
    pub n_nodes: usize,
    /// Transmission scheme.
    pub transmission: Transmission,
    /// Overlay flavor hosting the rankers.
    pub overlay: OverlayKind,
    /// DPR1 or DPR2.
    pub variant: DprVariant,
    /// Page → group strategy.
    pub strategy: dpr_partition::Strategy,
    /// Ranking parameters.
    pub rank: RankConfig,
    /// Think-time interval `[T1, T2]`.
    pub t1: f64,
    /// Upper end of the think-time interval.
    pub t2: f64,
    /// Per-message success probability (applies to every routed hop under
    /// indirect transmission — losses compound with path length, a harsher
    /// but more realistic reading than the paper's per-Y loss).
    pub send_success_prob: f64,
    /// Virtual-time cost of one overlay hop.
    pub hop_latency: f64,
    /// Master seed.
    pub seed: u64,
    /// Virtual-time horizon.
    pub t_end: f64,
    /// Sampling period for the error series.
    pub sample_every: f64,
    /// Bytes per rank update on the wire (the paper's `l` = 100).
    pub update_bytes: u64,
    /// Bytes per lookup message (the `r` of formula 4.2).
    pub lookup_bytes: u64,
    /// Fixed per-message header bytes.
    pub header_bytes: u64,
    /// Per-node bottleneck bandwidth in bytes per virtual-time unit
    /// (§4.5's `B`): every outgoing message is serialized through the
    /// sender's uplink, so messages queue when the node produces bytes
    /// faster than `B`. `None` = infinite uplink.
    pub bottleneck_bytes_per_time: Option<f64>,
    /// Scheduled node crashes: at each `(time, node)` the node departs the
    /// overlay, its hosted groups *lose their state* and migrate to the
    /// new responsible nodes, and ranking must re-converge. Requires
    /// [`OverlayKind::Pastry`] or [`OverlayKind::Chord`]. Times must be
    /// strictly increasing.
    pub departures: Vec<(f64, NodeIndex)>,
    /// Scheduled node joins: at each `(time, id_seed)` a fresh node joins
    /// the overlay and the groups it becomes responsible for are handed
    /// over *gracefully* — ranking state moves with them (contrast with
    /// `departures`, where state is lost). Requires
    /// [`OverlayKind::Pastry`]. Times must be strictly increasing.
    pub joins: Vec<(f64, u64)>,
    /// Scheduled crawl deltas: at each `(time, delta)` the live graph is
    /// patched in place and the affected groups re-rank *incrementally* —
    /// each dirtied owner receives the delta as a priced message, patches
    /// its group's matrix (a pure column rescale when only out-degrees
    /// changed, a one-group rebuild otherwise), and warm-starts its solve
    /// from the previous fixed point with ranks and afferent history
    /// kept. Untouched converged groups never leave the stall
    /// short-circuit, and when a [`RankStore`](crate::store::RankStore)
    /// is attached it keeps serving each dirtied group's pre-delta epoch
    /// until the group re-converges. Times must be strictly increasing;
    /// an empty delta is bit-invisible. Works on every overlay.
    pub deltas: Vec<(f64, GraphDelta)>,
    /// Optional ack/retry/dedup protocol on every data package. `None`
    /// keeps the paper's fire-and-forget model where lost `Y` vectors are
    /// simply absorbed by the next exchange.
    pub reliability: Option<Reliability>,
    /// Full fault model for the underlying engine. When set, it takes
    /// precedence over `send_success_prob` (the plan's own loss, latency,
    /// jitter, partitions, stragglers and crash windows govern delivery).
    pub faults: Option<FaultPlan>,
    /// Per-destination update coalescing (§4.4): within one think window a
    /// node merges `Y` parts sharing `(src_group, dest_group)` — keeping
    /// the newest, exactly what sequential delivery into
    /// [`AfferentState::set`] would have kept — and, under direct
    /// transmission, batches all parts for one owner into a single
    /// package. Changes message/byte counters (that is the point), never
    /// the final ranks.
    pub coalesce: bool,
    /// Memoize overlay `next_hop`/`route` lookups in a generation-checked
    /// [`RouteCache`]. Invisible to results by construction — `false`
    /// recomputes every lookup (and still counts them, so benchmarks can
    /// compare the two modes honestly).
    pub route_cache: bool,
    /// Event-scheduler implementation for the underlying engine. Both
    /// choices dequeue in the identical `(time, seq)` total order, so runs
    /// are bit-identical across them; the slab default recycles event slots
    /// instead of allocating per event.
    pub scheduler: SchedulerKind,
    /// Dirty-row external-contribution caching (see
    /// [`AfferentState`](crate::group::AfferentState)): think steps
    /// recompute only the `X` rows remote updates touched and keep a
    /// persistent `f = βE + X` solve input. `false` rebuilds everything
    /// every step (the pre-cache baseline). Bit-identical either way.
    pub ext_cache: bool,
    /// Replication factor `k` for crash-survivable ranking. When `> 0`,
    /// every group owner periodically ships a compact checkpoint of each
    /// hosted group's dynamic state (`r`, afferent `X`, iteration epoch) to
    /// the group's `k` overlay replicas ([`Overlay::replicas`]: Pastry's
    /// numerically adjacent leaves, Chord's successor list), priced as
    /// §4.5 traffic. When a crashed node's groups fall to a replica by DHT
    /// responsibility, the replica detects the owner's silence by
    /// checkpoint timeout and re-hosts the groups *warm* from its newest
    /// checkpoint instead of rank-zero. `0` (the default) disables the
    /// protocol entirely — no extra messages, no extra state, the exact
    /// pre-replication baseline. Requires Pastry or Chord.
    pub replication: usize,
    /// Virtual-time interval between checkpoint shipments (`replication >
    /// 0` only). Shorter intervals mean fresher warm starts and faster
    /// suspicion at more checkpoint bytes.
    pub checkpoint_every: f64,
    /// Failure-detection threshold: a replica suspects the owner dead — and
    /// takes over the orphaned groups it is now responsible for — once it
    /// has heard no checkpoint for `suspect_after × checkpoint_every`
    /// virtual time. Timeout-based, no oracle knowledge: detection costs
    /// real windows, which is exactly the gap the warm start then recovers.
    pub suspect_after: u32,
    /// Worker threads for the engine's deterministic parallel think stage.
    /// `1` (the default) runs the plain sequential event loop; `> 1` runs
    /// same-window node solves concurrently on a shared pool and commits
    /// their outputs in canonical `(time, seq)` order — bit-identical to
    /// the sequential engine at any worker count (the
    /// [`dpr_sim`] batched-engine contract). Parallelism only materializes
    /// with `coalesce: true`; the legacy non-coalesce wake path dispatches
    /// relay traffic before its solves, so those stay inline.
    pub engine_workers: usize,
    /// Use the legacy explicit-value CSR layout for the group matrices
    /// instead of the default bandwidth-lean implicit layout. Both layouts
    /// hold identical entries and the plain kernels are bit-identical, so
    /// this is a pure performance A/B switch.
    pub explicit_matrix: bool,
    /// Opt into the 4-wide unrolled SpMV accumulator (implicit layout
    /// only). The unroll re-associates per-row sums, so ranks may differ
    /// from the default kernel in the low bits — a documented opt-in per
    /// the bit-identity contract. Ignored when `explicit_matrix` is set.
    pub unrolled_spmv: bool,
}

impl Default for NetRunConfig {
    fn default() -> Self {
        Self {
            k: 64,
            n_nodes: 64,
            transmission: Transmission::Indirect,
            overlay: OverlayKind::Pastry,
            variant: DprVariant::Dpr1,
            strategy: dpr_partition::Strategy::HashBySite,
            rank: RankConfig::default(),
            t1: 0.5,
            t2: 3.0,
            send_success_prob: 1.0,
            hop_latency: 0.05,
            seed: 0,
            t_end: 200.0,
            sample_every: 2.0,
            update_bytes: 100,
            lookup_bytes: 50,
            header_bytes: 40,
            bottleneck_bytes_per_time: None,
            departures: Vec::new(),
            joins: Vec::new(),
            deltas: Vec::new(),
            reliability: None,
            faults: None,
            coalesce: true,
            route_cache: true,
            scheduler: SchedulerKind::Slab,
            ext_cache: true,
            replication: 0,
            checkpoint_every: 4.0,
            suspect_after: 2,
            engine_workers: 1,
            explicit_matrix: false,
            unrolled_spmv: false,
        }
    }
}

/// One `Y` in flight: the publishing group, the destination group, and the
/// aggregated `(page, score)` payload.
#[derive(Debug, Clone)]
pub struct YPart {
    /// Publishing group.
    pub src_group: GroupId,
    /// Destination group.
    pub dest_group: GroupId,
    /// Aggregated rank transfers (global page ids). Shared, not owned: a
    /// converged group re-publishes the same `Y` every wake, and the `Arc`
    /// lets every re-publication (and every coalesced/relayed copy) alias
    /// the sender's memoized buffer instead of cloning it onto the wire.
    pub entries: Arc<Vec<(PageId, f64)>>,
}

/// A package of parts sharing one overlay hop.
///
/// The payload is behind an `Arc` so the in-flight copy and the sender's
/// retransmit queue share one allocation: a retransmission clones the
/// `Arc`, never the parts. (`Arc<Vec<_>>` rather than `Arc<[_]>` so a
/// receiver holding the last reference can take the parts back out with
/// [`Arc::try_unwrap`] — the fire-and-forget path moves payloads end to
/// end without copying them once.)
#[derive(Debug, Clone)]
pub struct Package(pub Arc<Vec<YPart>>);

/// Per-source afferent contributions in localized form: `(source group,
/// (local page index, contribution))` pairs in ascending source order —
/// the shape [`AfferentState::snapshot_received`] produces.
pub type AfferentSnapshot = Vec<(GroupId, Vec<(u32, f64)>)>;

/// One group's dynamic solver state as carried by a checkpoint message —
/// the in-simulator twin of the wire frame in
/// [`dpr_transport::snapshot`]. Only dynamic state travels (`r`, afferent
/// contributions in localized per-source form, iteration epoch): the
/// group's pages and link structure are deterministic functions of the
/// graph and partition, so the taking-over replica rebuilds its
/// [`GroupContext`] locally from the shared context directory. Payloads
/// are `Arc`-shared across the `k` replica copies — shipping to more
/// replicas bumps pointers, not allocations, exactly like [`YPart`]s.
#[derive(Debug, Clone)]
pub struct GroupSnapshot {
    /// The checkpointed group.
    pub group: GroupId,
    /// The owner's outer-iteration count when the snapshot was taken;
    /// replicas keep the highest-epoch snapshot they have seen.
    pub epoch: u64,
    /// The group's local rank vector (exact bits).
    pub r: Arc<Vec<f64>>,
    /// Per-source afferent contributions — what
    /// [`AfferentState::snapshot_received`] produced on the owner.
    pub afferent: Arc<AfferentSnapshot>,
}

impl GroupSnapshot {
    /// Scored entries the snapshot carries (`r` plus afferent) — the
    /// record count the §4.5-style pricing charges.
    fn n_entries(&self) -> u64 {
        self.r.len() as u64 + self.afferent.iter().map(|(_, v)| v.len() as u64).sum::<u64>()
    }
}

/// The simulator message: a data package (sequence-numbered when the
/// reliability protocol is active), a hop-by-hop acknowledgment, or a
/// replication checkpoint.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// A data package.
    Data {
        /// Sender-local sequence number; `None` = fire-and-forget.
        seq: Option<u64>,
        /// The payload.
        package: Package,
    },
    /// Acknowledgment of the sender's `Data { seq }`.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Group-state checkpoint from an owner to one of its replicas.
    /// Fire-and-forget: a lost checkpoint is superseded by the next one,
    /// so freshness — not retransmission — is the delivery guarantee.
    Checkpoint {
        /// Every snapshot this owner ships to the receiving replica,
        /// `Arc`-shared with the copies bound for the other replicas.
        snaps: Arc<Vec<GroupSnapshot>>,
    },
}

/// Per-node network cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Data packages sent (each counted once per hop under indirect;
    /// retransmissions count again — they cost real bandwidth).
    pub data_messages: u64,
    /// Lookup messages charged (direct transmission only).
    pub lookup_messages: u64,
    /// Bytes put on the wire (forwarded bytes count at every hop; ack
    /// frames and retransmitted payloads included).
    pub bytes: u64,
    /// Retransmissions triggered by ack timeouts.
    pub retries: u64,
    /// Ack frames sent.
    pub acks: u64,
    /// Received duplicates suppressed by the dedup filter.
    pub duplicates_suppressed: u64,
    /// Packages abandoned after exhausting the retry budget.
    pub retry_exhausted: u64,
    /// `Y` parts absorbed by per-destination coalescing before reaching
    /// the wire (each one a superseded update that was never sent).
    pub coalesced_parts: u64,
    /// Receive-path payload copies forced by a still-shared `Arc` (a
    /// reliable-mode sender holding the package for retransmission). Zero
    /// under fire-and-forget: payloads move end to end without a copy.
    pub payload_clones: u64,
    /// Afferent `X` rows recomputed during refreshes — a full rebuild
    /// counts every row, the dirty-row cache only the stale ones. Charged
    /// to the group's host at collection time.
    pub rows_recomputed: u64,
    /// `Y` parts abandoned with their package when the retry budget ran
    /// out — the per-part face of [`NetCounters::retry_exhausted`]
    /// (updates that were *silently never delivered*, the quantity a
    /// liveness analysis actually cares about).
    pub gave_up: u64,
    /// Checkpoint messages shipped to replicas (`replication > 0` only).
    pub checkpoints_sent: u64,
    /// Bytes of checkpoint traffic (also included in `bytes`): the §4.5
    /// price of crash survivability, separable from the `Y` exchange.
    pub checkpoint_bytes: u64,
    /// Orphaned groups re-hosted *warm* from a replica's checkpoint.
    pub takeovers_warm: u64,
    /// Orphaned groups re-hosted *cold* (rank zero) because no checkpoint
    /// had arrived before the owner went silent — the liveness fallback.
    pub takeovers_cold: u64,
    /// Crawl-delta shipments received: one per scheduled delta per node
    /// that owned at least one dirtied group at delivery time.
    pub delta_messages: u64,
    /// Bytes of serialized crawl deltas (the `DPRG1` delta-record wire
    /// form plus a per-message header; also included in `bytes`) — the
    /// §4.5-style price of keeping ranks live against an evolving web.
    pub delta_bytes: u64,
}

/// One group's ranking state hosted on a node. The `f_buf`/`scratch`/
/// `touched` buffers persist across think steps so the steady-state wake
/// path allocates nothing (the §4.5 "million-page" scaling requirement).
/// Memoized per-destination `Y` publication: `(dest group, shared payload)`.
type YCache = Vec<(GroupId, Arc<Vec<(PageId, f64)>>)>;

struct GroupState {
    /// Static group structure, shared with the run-wide context directory
    /// (every node can rebuild any group's state from it on takeover).
    ctx: Arc<GroupContext>,
    r: Vec<f64>,
    afferent: AfferentState,
    /// Persistent solve input `f = βE + X`; rows are patched from the
    /// refresh worklist instead of being rebuilt (cached mode only).
    f_buf: Vec<f64>,
    /// Reusable solve double buffer.
    scratch: Vec<f64>,
    /// Reusable multiply workspace: the implicit-value matrix pre-scales
    /// the iterate into it once per SpMV (stays empty for the explicit
    /// layout).
    ws: Vec<f64>,
    /// Worklist of `X` rows the last refresh recomputed.
    touched: Vec<u32>,
    /// Final successive difference of the last solve that actually ran.
    /// Exactly `0.0` means `r` is the *exact* f64 fixed point of the
    /// current iteration map: rerunning the solve with an unchanged `f`
    /// would reproduce `r` bit-for-bit, so the think step may skip it
    /// (cached mode only).
    last_delta: f64,
    /// Memoized `compute_y(&r)` — a deterministic function of `r`, valid
    /// until a solve changes `r` (cached mode only). Entries are behind
    /// `Arc`s so publication is a pointer bump, not a payload copy.
    y_cache: Option<YCache>,
    /// Last accepted raw `Y` payload per source, as `(page, rank bits)` —
    /// the receive-path twin of the sender's `y_cache`. A re-publication
    /// that bit-matches it is dropped before any page→local translation;
    /// the localized comparison in [`AfferentState::bits_match`] remains as
    /// the slow-path check when the raw bytes differ (cached mode only).
    last_payload: BTreeMap<GroupId, Vec<(PageId, u64)>>,
    outer_iterations: u64,
}

impl GroupState {
    /// Fresh (rank-zero) state for `ctx`, in cached or full-rebuild mode.
    fn new(ctx: Arc<GroupContext>, ext_cache: bool) -> Self {
        let n = ctx.n_local();
        let afferent =
            if ext_cache { AfferentState::new(n) } else { AfferentState::new_full_rebuild(n) };
        // `X` starts at zero, so `f = βE` exactly (βE ≥ 0, and `b + 0.0`
        // is bitwise `b` for non-negative `b`).
        let f_buf = ctx.beta_e().to_vec();
        Self {
            ctx,
            r: vec![0.0; n],
            afferent,
            f_buf,
            scratch: vec![0.0; n],
            ws: Vec::new(),
            touched: Vec::new(),
            last_delta: f64::INFINITY,
            y_cache: None,
            last_payload: BTreeMap::new(),
            outer_iterations: 0,
        }
    }
}

/// An overlay node hosting zero or more page groups and relaying traffic.
pub struct NetNode {
    me: NodeIndex,
    groups: Vec<GroupState>,
    overlay: Arc<RwLock<AnyOverlay>>,
    /// `group → owner node` (responsible node of the group's key).
    owner_of: Arc<RwLock<Vec<NodeIndex>>>,
    /// `group → DHT key`.
    key_of: Arc<Vec<u128>>,
    /// Shared memo of routing decisions (keys include the source node, so
    /// one shared cache is equivalent to per-node caches). Bypassed — but
    /// still counting lookups — when `cfg.route_cache` is off.
    cache: Arc<RwLock<RouteCache>>,
    relay: Vec<YPart>,
    /// `Y` parts produced by the last `think` (the engine's parallel
    /// compute stage), awaiting dispatch by the matching `on_wake` commit.
    pending_y: Vec<YPart>,
    cfg: Arc<NetRunConfig>,
    mean_wait: f64,
    /// Virtual time until which this node's uplink is busy serializing
    /// previously sent bytes (bottleneck model).
    uplink_busy_until: f64,
    /// False once the node departed: it stops waking and drops traffic.
    active: bool,
    /// Network cost counters for traffic *originated or forwarded* here.
    pub counters: NetCounters,
    /// Next data sequence number (reliability protocol).
    next_seq: u64,
    /// Unacked packages awaiting retransmission, by sequence number
    /// (`BTreeMap` so the retransmit scan order is deterministic).
    pending: BTreeMap<u64, PendingSend>,
    /// `(sender, seq)` pairs already processed, for duplicate suppression.
    seen: HashSet<(usize, u64)>,
    /// Run-wide group-context directory indexed by group id: static group
    /// structure is never shipped, any node rebuilds it from here when it
    /// takes over an orphaned group. Behind a lock because crawl deltas
    /// swap dirtied groups' contexts mid-run (the driver writes, nodes
    /// read).
    contexts: Arc<RwLock<Vec<Arc<GroupContext>>>>,
    /// Newest checkpoint held for each group this node replicates, plus
    /// when the owner was last heard from (`BTreeMap`: takeover scan order
    /// is deterministic).
    replica_store: BTreeMap<GroupId, ReplicaEntry>,
    /// When this node first noticed each orphaned group it is responsible
    /// for but holds no checkpoint of — the cold-takeover liveness
    /// fallback's suspicion clock.
    orphan_since: BTreeMap<GroupId, f64>,
    /// Virtual time of the last checkpoint shipment (`-inf` initially, so
    /// the first wake establishes a baseline at the replicas).
    last_checkpoint: f64,
}

/// A replica's record of one group it guards: the newest snapshot and the
/// freshness of the owner's last sign of life.
struct ReplicaEntry {
    snap: GroupSnapshot,
    /// Virtual time of the last checkpoint from the owner — *any*
    /// checkpoint refreshes it, even one carrying an older epoch, since it
    /// proves the owner is alive.
    last_heard: f64,
}

/// One unacked package on the sender side. `parts` shares the in-flight
/// package's allocation; retransmissions put the *same* bytes back on the
/// wire without copying them.
struct PendingSend {
    dst: NodeIndex,
    parts: Arc<Vec<YPart>>,
    /// Retransmissions already performed.
    retries: u32,
    /// Virtual time at which the package is considered lost.
    deadline: f64,
    /// Current retransmission timeout (grows by the backoff factor).
    rto: f64,
}

impl NetNode {
    fn payload_bytes(&self, parts: &[YPart]) -> u64 {
        let updates: u64 = parts.iter().map(|p| p.entries.len() as u64).sum();
        updates * self.cfg.update_bytes + self.cfg.header_bytes
    }

    /// Delivers a part to a locally hosted group.
    fn deliver_local(&mut self, part: &YPart) {
        let ext_cache = self.cfg.ext_cache;
        if let Some(gs) = self.groups.iter_mut().find(|g| g.ctx.group_id() == part.dest_group) {
            if !ext_cache {
                let localized = gs.ctx.localize(&part.entries);
                gs.afferent.set(part.src_group, localized);
                return;
            }
            // Steady-state receive path: once the sender's ranks stall its
            // re-publications are bit-identical and `set` would discard the
            // payload unread. Cheapest check first — the raw `(page, bits)`
            // copy of the last accepted payload, a flat scan with no
            // page→local translation at all.
            if let Some(prev) = gs.last_payload.get(&part.src_group) {
                if prev.len() == part.entries.len()
                    && prev
                        .iter()
                        .zip(part.entries.iter())
                        .all(|(&(pp, pb), &(p, s))| pp == p && pb == s.to_bits())
                {
                    return;
                }
            }
            // Raw bytes differ; the *localized* payload may still match
            // (e.g. the delta is confined to pages this group no longer
            // owns). Compare lazily before paying the allocation.
            let lazily_localized = part
                .entries
                .iter()
                .filter_map(|&(p, s)| gs.ctx.local_index(p).map(|i| (i as u32, s)));
            if !gs.afferent.bits_match(part.src_group, lazily_localized) {
                let localized = gs.ctx.localize(&part.entries);
                gs.afferent.set(part.src_group, localized);
            }
            gs.last_payload.insert(
                part.src_group,
                part.entries.iter().map(|&(p, s)| (p, s.to_bits())).collect(),
            );
        }
        // A part for a group we do not host is stale traffic after a
        // membership change; §4.2 lets nodes drop it silently.
    }

    /// Cached next hop toward `dest_group`'s key.
    fn next_hop_for(&self, dest_group: GroupId) -> Option<NodeIndex> {
        let ov = self.overlay.read();
        self.cache.write().next_hop(ov.as_overlay(), self.me, self.key_of[dest_group as usize])
    }

    /// Cached route length toward `dest_group`'s key — the `h` a direct
    /// transmission's lookup pays in messages and latency (§4.5).
    fn lookup_hops(&self, dest_group: GroupId) -> u64 {
        let ov = self.overlay.read();
        self.cache.write().route_hops(ov.as_overlay(), self.me, self.key_of[dest_group as usize])
            as u64
    }

    /// Merges parts sharing `(src_group, dest_group)`, keeping the newest
    /// payload at the earliest occurrence's position. Sequential delivery
    /// would feed both through [`AfferentState::set`], which replaces per
    /// source — so dropping the superseded payload is rank-neutral and the
    /// stale bytes simply never reach the wire.
    fn coalesce_parts(&mut self, parts: &mut Vec<YPart>) {
        if parts.len() < 2 {
            return;
        }
        let mut slot: HashMap<(GroupId, GroupId), usize> = HashMap::with_capacity(parts.len());
        let mut kept: Vec<YPart> = Vec::with_capacity(parts.len());
        for part in parts.drain(..) {
            match slot.entry((part.src_group, part.dest_group)) {
                Entry::Occupied(e) => {
                    self.counters.coalesced_parts += 1;
                    kept[*e.get()] = part;
                }
                Entry::Vacant(e) => {
                    e.insert(kept.len());
                    kept.push(part);
                }
            }
        }
        *parts = kept;
    }

    /// Serializes `bytes` through the node's uplink: returns the extra
    /// delay before the message can leave and advances the busy horizon
    /// (§4.5's per-node bottleneck `B`; formula 4.7's constraint appears
    /// here as queueing delay instead of an inequality).
    fn uplink_delay(&mut self, now: f64, bytes: u64) -> f64 {
        let Some(b) = self.cfg.bottleneck_bytes_per_time else { return 0.0 };
        let start = self.uplink_busy_until.max(now);
        let done = start + bytes as f64 / b;
        self.uplink_busy_until = done;
        done - now
    }

    /// The single data-send path: counts the message and bytes, pays the
    /// uplink, registers the package for retransmission when reliability
    /// is on, and hands it to the engine. `extra_delay` models time spent
    /// before the message can leave (a direct-mode lookup).
    fn transmit(
        &mut self,
        ctx: &mut Ctx<'_, NetMsg>,
        dst: NodeIndex,
        extra_delay: f64,
        parts: Vec<YPart>,
    ) {
        self.counters.data_messages += 1;
        let bytes = self.payload_bytes(&parts);
        self.counters.bytes += bytes;
        let queueing = self.uplink_delay(ctx.now(), bytes);
        let delay = self.cfg.hop_latency + queueing + extra_delay;
        let parts = Arc::new(parts);
        let seq = self.cfg.reliability.map(|rel| {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.insert(
                seq,
                PendingSend {
                    dst,
                    parts: Arc::clone(&parts),
                    retries: 0,
                    deadline: ctx.now() + delay + rel.ack_timeout,
                    rto: rel.ack_timeout,
                },
            );
            seq
        });
        ctx.send_after(dst, delay, NetMsg::Data { seq, package: Package(parts) });
    }

    /// Retransmits every pending package whose ack deadline has passed,
    /// with exponential backoff, abandoning those out of retry budget.
    /// Runs at every wake, so the scan granularity is the think time.
    fn retransmit_due(&mut self, ctx: &mut Ctx<'_, NetMsg>, rel: Reliability) {
        let now = ctx.now();
        let due: Vec<u64> =
            self.pending.iter().filter(|(_, p)| p.deadline <= now).map(|(&s, _)| s).collect();
        for seq in due {
            let mut p = self.pending.remove(&seq).expect("due entry present");
            if p.retries >= rel.max_retries {
                self.counters.retry_exhausted += 1;
                self.counters.gave_up += p.parts.len() as u64;
                continue;
            }
            p.retries += 1;
            self.counters.retries += 1;
            self.counters.data_messages += 1;
            let bytes = self.payload_bytes(&p.parts);
            self.counters.bytes += bytes;
            let queueing = self.uplink_delay(now, bytes);
            let delay = self.cfg.hop_latency + queueing;
            // The retransmitted package shares the original's allocation:
            // byte-for-byte the same payload, no copy.
            ctx.send_after(
                p.dst,
                delay,
                NetMsg::Data { seq: Some(seq), package: Package(Arc::clone(&p.parts)) },
            );
            p.rto *= rel.backoff;
            p.deadline = now + delay + p.rto;
            self.pending.insert(seq, p);
        }
    }

    /// Routes parts one overlay hop (indirect) or directly to the owner
    /// (direct), grouping by next hop so each neighbor gets one package.
    /// With coalescing on, superseded same-`(src, dest)` parts are merged
    /// away first and direct mode additionally batches everything bound
    /// for one owner into a single package (one data message, one header;
    /// every part's destination still pays its §4.5 lookup).
    fn dispatch(&mut self, ctx: &mut Ctx<'_, NetMsg>, mut parts: Vec<YPart>) {
        if self.cfg.coalesce {
            self.coalesce_parts(&mut parts);
        }
        match self.cfg.transmission {
            Transmission::Direct if self.cfg.coalesce => {
                // BTreeMap: package send order must be deterministic.
                let mut by_owner: BTreeMap<NodeIndex, (u64, Vec<YPart>)> = BTreeMap::new();
                for part in parts {
                    let owner = self.owner_of.read()[part.dest_group as usize];
                    if owner == self.me {
                        self.deliver_local(&part);
                        continue;
                    }
                    let hops = self.lookup_hops(part.dest_group);
                    self.counters.lookup_messages += hops;
                    self.counters.bytes += hops * self.cfg.lookup_bytes;
                    let slot = by_owner.entry(owner).or_insert((0, Vec::new()));
                    // The batch leaves once its slowest lookup resolves.
                    slot.0 = slot.0.max(hops);
                    slot.1.push(part);
                }
                for (owner, (hops, batch)) in by_owner {
                    let lookup_delay = hops as f64 * self.cfg.hop_latency;
                    self.transmit(ctx, owner, lookup_delay, batch);
                }
            }
            Transmission::Direct => {
                for part in parts {
                    let owner = self.owner_of.read()[part.dest_group as usize];
                    if owner == self.me {
                        self.deliver_local(&part);
                        continue;
                    }
                    // Pay the lookup: h messages of r bytes, plus latency
                    // before the data message can leave.
                    let hops = self.lookup_hops(part.dest_group);
                    self.counters.lookup_messages += hops;
                    self.counters.bytes += hops * self.cfg.lookup_bytes;
                    let lookup_delay = hops as f64 * self.cfg.hop_latency;
                    self.transmit(ctx, owner, lookup_delay, vec![part]);
                }
            }
            Transmission::Indirect => {
                // BTreeMap: package send order must be deterministic.
                let mut by_hop: BTreeMap<NodeIndex, Vec<YPart>> = BTreeMap::new();
                for part in parts {
                    match self.next_hop_for(part.dest_group) {
                        None => self.deliver_local(&part),
                        Some(hop) => by_hop.entry(hop).or_default().push(part),
                    }
                }
                for (hop, package) in by_hop {
                    self.transmit(ctx, hop, 0.0, package);
                }
            }
        }
    }

    /// The DPR loop body for every hosted group: refresh afferent state,
    /// solve, and buffer the resulting `Y` parts in `pending_y` for the
    /// next dispatch. This is the wake's pure-compute slice — it touches
    /// only this node's own state, draws no RNG, and sends nothing, which
    /// is what lets the batched engine run it concurrently with other
    /// nodes' solves ([`Actor::think`]) without observable divergence.
    fn run_group_thinks(&mut self) {
        for gi in 0..self.groups.len() {
            let gs = &mut self.groups[gi];
            if gs.ctx.n_local() == 0 {
                continue;
            }
            if self.cfg.ext_cache {
                // Dirty-row path: refresh only the stale X rows, patch the
                // persistent f = βE + X on exactly those rows, and solve
                // with the reusable double buffer — no allocation, same
                // bits as the full rebuild below.
                gs.touched.clear();
                gs.afferent.refresh_tracked(Some(&mut gs.touched));
                let (beta_e, x) = (gs.ctx.beta_e(), gs.afferent.x());
                for &li in &gs.touched {
                    gs.f_buf[li as usize] = beta_e[li as usize] + x[li as usize];
                }
                // Stall short-circuit: no row of f changed and the last
                // solve ended with a successive difference of exactly 0.0,
                // so `r` is the exact f64 fixed point of `r ← A·r + f` —
                // rerunning the solve would reproduce `r` bit-for-bit
                // (ranks are non-negative, so even ±0.0 cannot differ).
                // The group still publishes below; only the arithmetic is
                // skipped.
                if !(gs.touched.is_empty() && gs.last_delta == 0.0) {
                    let (delta, r_unchanged) = match self.cfg.variant {
                        DprVariant::Dpr1 => {
                            let report = gs.ctx.group_pagerank_prepared(
                                &mut gs.r,
                                &gs.f_buf,
                                1e-10,
                                10_000,
                                &mut gs.scratch,
                                &mut gs.ws,
                            );
                            // A multi-iteration solve moved `r` even if its
                            // final step didn't.
                            (
                                report.final_delta,
                                report.iterations <= 1 && report.final_delta == 0.0,
                            )
                        }
                        DprVariant::Dpr2 => {
                            let delta = gs.ctx.step_prepared(
                                &mut gs.r,
                                &gs.f_buf,
                                &mut gs.scratch,
                                &mut gs.ws,
                            );
                            (delta, delta == 0.0)
                        }
                    };
                    gs.last_delta = delta;
                    if !r_unchanged {
                        gs.y_cache = None;
                    }
                }
            } else {
                let x = gs.afferent.refresh();
                match self.cfg.variant {
                    DprVariant::Dpr1 => {
                        gs.ctx.group_pagerank(&mut gs.r, x, 1e-10, 10_000);
                    }
                    DprVariant::Dpr2 => {
                        gs.ctx.step(&mut gs.r, x);
                    }
                }
            }
            gs.outer_iterations += 1;
            let src = gs.ctx.group_id();
            if self.cfg.ext_cache {
                // Y is a pure function of `r`; while `r` is bitwise
                // unchanged the memoized parts are bit-identical to a
                // fresh computation and only need cloning onto the wire.
                let y = gs.y_cache.get_or_insert_with(|| {
                    gs.ctx.compute_y(&gs.r).into_iter().map(|(d, e)| (d, Arc::new(e))).collect()
                });
                for (dest, entries) in y {
                    self.pending_y.push(YPart {
                        src_group: src,
                        dest_group: *dest,
                        entries: Arc::clone(entries),
                    });
                }
            } else {
                for (dest, entries) in gs.ctx.compute_y(&gs.r) {
                    self.pending_y.push(YPart {
                        src_group: src,
                        dest_group: dest,
                        entries: Arc::new(entries),
                    });
                }
            }
        }
    }

    /// Ships one checkpoint message to each replica of every group this
    /// node owns: the group's dynamic state (`r`, afferent contributions,
    /// epoch), batched per destination so a replica guarding several of
    /// this owner's groups receives a single message. Checkpoints are
    /// priced like §4.5 rank updates (one record per carried entry plus a
    /// header per message) and pay the sender's uplink — survivability
    /// competes for the same bandwidth as the `Y` exchange.
    fn ship_checkpoints(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        let k = self.cfg.replication;
        // BTreeMap: the per-replica send order must be deterministic.
        let mut per_dst: BTreeMap<NodeIndex, Vec<GroupSnapshot>> = BTreeMap::new();
        for gs in &self.groups {
            let gid = gs.ctx.group_id();
            if self.owner_of.read()[gid as usize] != self.me {
                continue; // not ours to checkpoint (transient misplacement)
            }
            let reps = {
                let ov = self.overlay.read();
                self.cache.write().replicas(ov.as_overlay(), self.key_of[gid as usize], k)
            };
            if reps.is_empty() {
                continue;
            }
            let snap = GroupSnapshot {
                group: gid,
                epoch: gs.outer_iterations,
                r: Arc::new(gs.r.clone()),
                afferent: Arc::new(gs.afferent.snapshot_received()),
            };
            for &rep in reps.iter() {
                if rep != self.me {
                    per_dst.entry(rep).or_default().push(snap.clone());
                }
            }
        }
        for (dst, snaps) in per_dst {
            let entries: u64 = snaps.iter().map(GroupSnapshot::n_entries).sum();
            let bytes =
                paper_snapshot_bytes(entries, self.cfg.update_bytes) + self.cfg.header_bytes;
            self.counters.checkpoints_sent += 1;
            self.counters.checkpoint_bytes += bytes;
            self.counters.bytes += bytes;
            let queueing = self.uplink_delay(ctx.now(), bytes);
            // One hop: replicas are the owner's overlay neighbors (Pastry
            // leaf set, Chord successor list) by construction.
            ctx.send_after(
                dst,
                self.cfg.hop_latency + queueing,
                NetMsg::Checkpoint { snaps: Arc::new(snaps) },
            );
        }
    }

    /// Failure detection and takeover: for every group this node is DHT-
    /// responsible for but does not host, suspect the former owner dead
    /// once no checkpoint has been heard for `suspect_after ×
    /// checkpoint_every` virtual time, then re-host the group — warm from
    /// the newest held checkpoint, or cold (rank zero) via the
    /// `orphan_since` fallback when none ever arrived. Purely timeout-
    /// based: no oracle tells the replica about the crash, so detection
    /// costs real windows (the gap the warm start then recovers).
    fn scan_takeover(&mut self, now: f64) {
        let timeout = f64::from(self.cfg.suspect_after) * self.cfg.checkpoint_every;
        let mut adopt: Vec<GroupId> = Vec::new();
        {
            let owners = self.owner_of.read();
            for (gid, &owner) in owners.iter().enumerate() {
                let gid = gid as GroupId;
                if owner != self.me || self.groups.iter().any(|g| g.ctx.group_id() == gid) {
                    self.orphan_since.remove(&gid);
                    continue;
                }
                // Responsible but not hosting: the group is orphaned.
                match self.replica_store.get(&gid) {
                    Some(e) if now - e.last_heard >= timeout => adopt.push(gid),
                    Some(_) => {} // owner (or a takeover peer) still alive
                    None => {
                        let since = *self.orphan_since.entry(gid).or_insert(now);
                        if now - since >= timeout {
                            adopt.push(gid);
                        }
                    }
                }
            }
        }
        for gid in adopt {
            self.install_group(gid);
            self.orphan_since.remove(&gid);
        }
    }

    /// Re-hosts `gid` on this node: a fresh [`GroupState`] rebuilt from
    /// the shared context directory, warm-started from the newest held
    /// checkpoint when there is one. The afferent contributions replay
    /// through [`AfferentState::set`] exactly as the original deliveries
    /// did, so the rebuilt `X` is bit-identical to the owner's at snapshot
    /// time; the next think then solves from the checkpointed `r` instead
    /// of from zero.
    fn install_group(&mut self, gid: GroupId) {
        let ctx = Arc::clone(&self.contexts.read()[gid as usize]);
        let mut gs = GroupState::new(ctx, self.cfg.ext_cache);
        match self.replica_store.get(&gid) {
            // A checkpoint whose rank vector no longer matches the group's
            // page count describes the group *before* a crawl delta
            // repaged it (the driver purges stale entries at delta time,
            // but a frame already in flight can still land afterwards) —
            // useless for a warm start, so fall through to cold.
            Some(e) if e.snap.r.len() == gs.r.len() => {
                let snap = &e.snap;
                gs.r.copy_from_slice(&snap.r);
                for (src, entries) in snap.afferent.iter() {
                    gs.afferent.set(*src, entries.clone());
                }
                gs.outer_iterations = snap.epoch;
                self.counters.takeovers_warm += 1;
            }
            _ => self.counters.takeovers_cold += 1,
        }
        self.groups.push(gs);
    }

    fn sample_wait(&self, ctx: &mut Ctx<'_, NetMsg>) -> f64 {
        use rand::Rng;
        if self.mean_wait <= 0.0 {
            return 1e-3;
        }
        let u: f64 = ctx.rng().gen::<f64>();
        -self.mean_wait * (1.0 - u).ln()
    }
}

impl Actor for NetNode {
    type Msg = NetMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        let w = self.sample_wait(ctx);
        ctx.schedule_wake(w);
    }

    fn think(&mut self, _now: f64) {
        // The engine runs this (possibly concurrently with other nodes'
        // thinks) exactly once before every on_wake. Legacy non-coalesce
        // mode dispatches relay traffic — which can deliver locally and
        // alter solve inputs — *before* its solves, so its compute cannot
        // be hoisted here without changing bits; it stays inline below.
        if self.active && self.cfg.coalesce {
            self.run_group_thinks();
        }
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        if !self.active {
            return; // departed: no work, no reschedule
        }
        // 1. Retransmit unacked packages whose deadline passed.
        if let Some(rel) = self.cfg.reliability {
            self.retransmit_due(ctx, rel);
        }

        // 2. Forward buffered relay traffic (indirect transmission's
        //    store-recombine-forward cycle). With coalescing on, relayed
        //    parts and freshly produced Y share this wake's packages —
        //    §4.4's merge at intermediate nodes.
        let mut outgoing = if self.cfg.coalesce {
            std::mem::take(&mut self.relay)
        } else {
            if !self.relay.is_empty() {
                let parts = std::mem::take(&mut self.relay);
                self.dispatch(ctx, parts);
            }
            Vec::new()
        };

        // 3. Collect the Y parts of this wake's DPR loop body. In coalesce
        //    mode the solves already ran in think() — the engine's
        //    (possibly parallel) compute stage — and buffered their output
        //    in `pending_y`; legacy non-coalesce mode runs them inline now,
        //    after the relay dispatch above (which can deliver locally and
        //    alter solve inputs).
        if !self.cfg.coalesce {
            self.run_group_thinks();
        }
        outgoing.append(&mut self.pending_y);
        if !outgoing.is_empty() {
            self.dispatch(ctx, outgoing);
        }

        // 4. Replication protocol (gated: with `replication == 0` this
        //    wake is byte-for-byte the pre-replication baseline). Adopt
        //    orphaned groups whose owner went silent, then ship fresh
        //    checkpoints on the checkpoint clock — adoption first, so a
        //    just-taken-over group announces itself to *its* replicas in
        //    the same wake.
        if self.cfg.replication > 0 {
            self.scan_takeover(ctx.now());
            if ctx.now() - self.last_checkpoint >= self.cfg.checkpoint_every {
                self.ship_checkpoints(ctx);
                self.last_checkpoint = ctx.now();
            }
        }

        let w = self.sample_wait(ctx);
        ctx.schedule_wake(w);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NetMsg>, from: usize, msg: NetMsg) {
        if !self.active {
            return; // a departed node neither relays nor delivers
        }
        let package = match msg {
            NetMsg::Ack { seq } => {
                self.pending.remove(&seq);
                return;
            }
            NetMsg::Checkpoint { snaps } => {
                let now = ctx.now();
                for snap in snaps.iter() {
                    let e = self
                        .replica_store
                        .entry(snap.group)
                        .or_insert_with(|| ReplicaEntry { snap: snap.clone(), last_heard: now });
                    // An out-of-order older frame must not roll back a
                    // newer epoch, but any checkpoint proves the owner
                    // (or its takeover successor) is alive.
                    if snap.epoch >= e.snap.epoch {
                        e.snap = snap.clone();
                    }
                    e.last_heard = now;
                    self.orphan_since.remove(&snap.group);
                }
                return;
            }
            NetMsg::Data { seq, package } => {
                if let Some(seq) = seq {
                    // Ack first — even for duplicates, since the previous
                    // ack may have been lost. Ack frames are header-sized
                    // control traffic; they skip the §4.5 data uplink.
                    self.counters.acks += 1;
                    self.counters.bytes += self.cfg.header_bytes;
                    ctx.send(from, NetMsg::Ack { seq });
                    if !self.seen.insert((from, seq)) {
                        self.counters.duplicates_suppressed += 1;
                        return;
                    }
                }
                package
            }
        };
        // Fire-and-forget packages arrive holding the last `Arc` reference,
        // so the parts move out without a copy; only a reliable-mode sender
        // still holding the payload for retransmission forces a clone.
        let parts = Arc::try_unwrap(package.0).unwrap_or_else(|shared| {
            self.counters.payload_clones += 1;
            (*shared).clone()
        });
        for part in parts {
            if self.owner_of.read()[part.dest_group as usize] == self.me {
                self.deliver_local(&part);
            } else {
                // Buffer for the next wake; recombination with other parts
                // for the same destination happens in dispatch().
                self.relay.push(part);
            }
        }
    }
}

/// Result of a whole-system run.
#[derive(Debug, Clone)]
pub struct NetRunResult {
    /// Relative error vs the centralized fixed point, over time.
    pub rel_err: TimeSeries,
    /// Final relative error.
    pub final_rel_err: f64,
    /// Final global ranks.
    pub final_ranks: Vec<f64>,
    /// Summed per-node network counters.
    pub counters: NetCounters,
    /// The same counters before summing, indexed by overlay node. Sends
    /// (data, lookups, retries) are charged to the sender; acks and
    /// duplicate suppressions to the receiver.
    pub per_node: Vec<NetCounters>,
    /// Wall-clock seconds spent before the event loop started: graph
    /// partitioning, the centralized reference solve, group-context
    /// assembly, and overlay placement. Identical work across engine
    /// configurations, so throughput comparisons should exclude it.
    pub setup_secs: f64,
    /// Wall-clock seconds spent inside the event loop (simulation plus
    /// periodic error sampling) — the denominator for events/sec.
    pub engine_secs: f64,
    /// Wall-clock seconds of the `engine_secs` window spent recomputing
    /// the centralized reference after crawl deltas — measurement-only
    /// overhead (error tracking), not protocol work. Subtract it when
    /// comparing incremental-update engine time against a cold restart.
    pub delta_ref_secs: f64,
    /// Engine counters.
    pub sim_stats: SimStats,
    /// Event-scheduler allocation counters (arena recycling
    /// observability; never part of the replay contract).
    pub sched_stats: SchedStats,
    /// Measured mean route length between group publishers and owners.
    pub mean_route_hops: f64,
    /// Route-cache hit/miss/invalidation counters for the whole run (all
    /// misses when `route_cache` is off).
    pub route_cache: RouteCacheStats,
}

/// One scheduled churn event, merged from `departures`, `joins`, and
/// `deltas` (the index points into `cfg.deltas`).
enum ChurnEvent {
    Depart(NodeIndex),
    Join { id_seed: u64 },
    Delta(usize),
}

/// Builds and executes a whole-system run, validating churn support and
/// configuration shape up front.
///
/// # Errors
/// [`NetRunError::Churn`] when `departures` are scheduled on CAN or
/// `joins` on anything but Pastry; [`NetRunError::Config`] for malformed
/// values (empty system, non-increasing churn schedules, replication on
/// CAN, degenerate checkpoint/suspicion settings).
pub fn try_run_over_network(g: &WebGraph, cfg: NetRunConfig) -> Result<NetRunResult, NetRunError> {
    try_run_over_network_with_store(g, cfg, None)
}

/// [`try_run_over_network`] with a serving-side publication hook: after
/// every sample slice (the same cadence as the convergence series) the
/// driver publishes each hosted group's rank vector and outer epoch into
/// `store`, so concurrent readers query a consistent, epoch-versioned
/// picture of the run while the engine keeps committing. Publication
/// happens outside the event loop and never mutates node state, so it is
/// bit-neutral: results are identical with or without a store (and the
/// store's converged-group skip logic keeps steady-state publishes cheap).
///
/// The final published view equals [`NetRunResult::final_ranks`] exactly —
/// the last slice ends at `t_end`, where the result itself is assembled.
///
/// # Errors
/// Same as [`try_run_over_network`].
pub fn try_run_over_network_with_store(
    g: &WebGraph,
    cfg: NetRunConfig,
    store: Option<&crate::store::RankStore>,
) -> Result<NetRunResult, NetRunError> {
    let wall_start = std::time::Instant::now();
    cfg.rank.validate(g.n_pages());
    if cfg.k < 1 || cfg.n_nodes < 1 {
        return Err(NetRunError::Config {
            what: "k/n_nodes",
            detail: format!(
                "need at least one group and one node, got k={} n_nodes={}",
                cfg.k, cfg.n_nodes
            ),
        });
    }
    let cfg = Arc::new(cfg);

    if !cfg.departures.is_empty() {
        if matches!(cfg.overlay, OverlayKind::Can { .. }) {
            return Err(ChurnUnsupported { op: "departures", overlay: "CAN" }.into());
        }
        if !cfg.departures.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(NetRunError::Config {
                what: "departures",
                detail: "departure times must be strictly increasing".into(),
            });
        }
    }
    if !cfg.joins.is_empty() {
        match cfg.overlay {
            OverlayKind::Pastry => {}
            OverlayKind::Chord => {
                return Err(ChurnUnsupported { op: "joins", overlay: "Chord" }.into())
            }
            OverlayKind::Can { .. } => {
                return Err(ChurnUnsupported { op: "joins", overlay: "CAN" }.into())
            }
        }
        if !cfg.joins.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(NetRunError::Config {
                what: "joins",
                detail: "join times must be strictly increasing".into(),
            });
        }
    }
    if !cfg.deltas.is_empty() {
        if !cfg.deltas.iter().all(|&(t, _)| t.is_finite() && t >= 0.0) {
            return Err(NetRunError::Config {
                what: "deltas",
                detail: "delta times must be finite and non-negative".into(),
            });
        }
        if !cfg.deltas.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(NetRunError::Config {
                what: "deltas",
                detail: "delta times must be strictly increasing".into(),
            });
        }
    }
    if cfg.replication > 0 {
        if matches!(cfg.overlay, OverlayKind::Can { .. }) {
            return Err(NetRunError::Config {
                what: "replication",
                detail: "the CAN overlay has no replica sets (see DESIGN.md §11); \
                         use Pastry or Chord"
                    .into(),
            });
        }
        if !(cfg.checkpoint_every > 0.0 && cfg.checkpoint_every.is_finite()) {
            return Err(NetRunError::Config {
                what: "checkpoint_every",
                detail: format!("must be positive and finite, got {}", cfg.checkpoint_every),
            });
        }
        if cfg.suspect_after < 1 {
            return Err(NetRunError::Config {
                what: "suspect_after",
                detail: "must be at least 1 missed checkpoint interval".into(),
            });
        }
    }
    let overlay: Arc<RwLock<AnyOverlay>> = Arc::new(RwLock::new(match cfg.overlay {
        OverlayKind::Pastry => {
            AnyOverlay::Pastry(PastryNetwork::with_nodes(cfg.n_nodes, cfg.seed ^ 0x0E0E))
        }
        OverlayKind::Chord => {
            AnyOverlay::Chord(ChordNetwork::with_nodes(cfg.n_nodes, cfg.seed ^ 0x0E0E))
        }
        OverlayKind::Can { d } => {
            AnyOverlay::Can(CanNetwork::with_nodes(cfg.n_nodes, d, cfg.seed ^ 0x0E0E))
        }
    }));
    let key_of: Arc<Vec<u128>> =
        Arc::new((0..cfg.k as u64).map(dpr_overlay::id::key_from_u64).collect());
    let owner_of: Arc<RwLock<Vec<NodeIndex>>> = Arc::new(RwLock::new(
        key_of.iter().map(|&k| overlay.read().as_overlay().responsible(k)).collect(),
    ));
    let cache = Arc::new(RwLock::new(if cfg.route_cache {
        RouteCache::new()
    } else {
        RouteCache::bypassed()
    }));

    let partition = Partition::build(g, &cfg.strategy, cfg.k, 0);
    let mut reference = open_pagerank(g, &cfg.rank).ranks;
    // Run-wide context directory, indexed by group id and shared with
    // every node: static group structure is rebuilt from here (never
    // shipped) when a replica takes over an orphaned group.
    let layout = if cfg.explicit_matrix {
        crate::group::MatrixLayout::Explicit
    } else if cfg.unrolled_spmv {
        crate::group::MatrixLayout::ImplicitUnrolled
    } else {
        crate::group::MatrixLayout::Implicit
    };
    let contexts: Arc<RwLock<Vec<Arc<GroupContext>>>> = {
        let mut dir: Vec<Option<Arc<GroupContext>>> = (0..cfg.k).map(|_| None).collect();
        for c in GroupContext::build_all_with_layout(g, &partition, &cfg.rank, layout) {
            let gid = c.group_id() as usize;
            dir[gid] = Some(Arc::new(c));
        }
        Arc::new(RwLock::new(dir.into_iter().map(|c| c.expect("one context per group")).collect()))
    };
    // Draw means for joiners too; uniform_means samples sequentially, so
    // the first n_nodes means are unchanged by the extension.
    let waits =
        WaitModel::uniform_means(cfg.n_nodes + cfg.joins.len(), cfg.t1, cfg.t2, cfg.seed ^ 0xCAFE);

    // Place groups on their owner nodes.
    let mut hosted: Vec<Vec<GroupState>> = (0..cfg.n_nodes).map(|_| Vec::new()).collect();
    let mut hop_total = 0usize;
    let mut hop_count = 0usize;
    for c in contexts.read().iter() {
        let gid = c.group_id() as usize;
        let owner = owner_of.read()[gid];
        // Record the publisher→owner route lengths for reporting.
        for dest in c.efferent_groups() {
            hop_total += overlay.read().as_overlay().route(owner, key_of[dest as usize]).len();
            hop_count += 1;
        }
        hosted[owner].push(GroupState::new(Arc::clone(c), cfg.ext_cache));
    }

    let nodes: Vec<NetNode> = hosted
        .into_iter()
        .enumerate()
        .map(|(i, groups)| NetNode {
            me: i,
            groups,
            overlay: Arc::clone(&overlay),
            owner_of: Arc::clone(&owner_of),
            key_of: Arc::clone(&key_of),
            cache: Arc::clone(&cache),
            relay: Vec::new(),
            pending_y: Vec::new(),
            cfg: Arc::clone(&cfg),
            mean_wait: waits.mean(i),
            uplink_busy_until: 0.0,
            active: true,
            counters: NetCounters::default(),
            next_seq: 0,
            pending: BTreeMap::new(),
            seen: HashSet::new(),
            contexts: Arc::clone(&contexts),
            replica_store: BTreeMap::new(),
            orphan_since: BTreeMap::new(),
            last_checkpoint: f64::NEG_INFINITY,
        })
        .collect();

    // The fault plan takes precedence over the legacy scalar knob.
    let plan = cfg.faults.clone().unwrap_or_else(|| {
        FaultPlan::new().with_latency(0.01).with_default_success(cfg.send_success_prob)
    });
    let mut sim = Simulation::with_plan_scheduler(nodes, cfg.seed, plan, cfg.scheduler);

    // Merge departures, joins, and crawl deltas into one time-ordered
    // churn schedule (the sort is stable, so coinciding times keep the
    // departures → joins → deltas order deterministically).
    let mut churn: Vec<(f64, ChurnEvent)> = cfg
        .departures
        .iter()
        .map(|&(t, node)| (t, ChurnEvent::Depart(node)))
        .chain(cfg.joins.iter().map(|&(t, id_seed)| (t, ChurnEvent::Join { id_seed })))
        .chain(cfg.deltas.iter().enumerate().map(|(i, &(t, _))| (t, ChurnEvent::Delta(i))))
        .collect();
    churn.sort_by(|a, b| a.0.total_cmp(&b.0));

    let setup_secs = wall_start.elapsed().as_secs_f64();
    // `engine_workers == 1` is the plain sequential event loop (the
    // replay-contract reference); `> 1` takes the batched path, which
    // commits in the identical (time, seq) order and is bit-identical.
    let engine_pool =
        (cfg.engine_workers > 1).then(|| dpr_linalg::pool::Pool::with_workers(cfg.engine_workers));
    let engine_start = std::time::Instant::now();
    let mut delta_ref_secs = 0.0f64;
    let mut rel_err = TimeSeries::new();
    let mut n_pages = g.n_pages();
    let mut churn = churn.into_iter().peekable();
    let mut joined = 0usize;
    // Live-graph state, materialized lazily on the first crawl delta: the
    // mutable graph plus the page→group assignment (extended as pages are
    // inserted; pinned for existing pages).
    let mut live: Option<(WebGraph, Vec<GroupId>)> = None;
    // Tombstoned pages: no group ranks them anymore, so their reference
    // entries are pinned to 0.0 (the centralized solve still hands a
    // tombstone its βE share — rank that never propagates and that the
    // distributed system deliberately stops serving).
    let mut dead: Vec<PageId> = Vec::new();
    // Groups re-solving after a delta: their store publishes are held
    // back — the store keeps serving the pre-delta epoch — until the
    // group's solver re-stalls on the new fixed point (tracked in cached
    // mode only; without the ext cache there is no stall detection).
    let mut resolving: HashSet<GroupId> = HashSet::new();
    let mut t = 0.0;
    while t < cfg.t_end {
        let next_t = (t + cfg.sample_every).min(cfg.t_end);
        // Apply any churn scheduled inside this slice first.
        while let Some(&(ct, _)) = churn.peek() {
            if ct > next_t {
                break;
            }
            let (ct, ev) = churn.next().expect("peeked");
            match &engine_pool {
                Some(pool) => sim.run_until_pooled(ct, pool),
                None => sim.run_until(ct),
            }
            match ev {
                ChurnEvent::Depart(node) => {
                    apply_departure(&mut sim, &overlay, &owner_of, &key_of, node);
                }
                ChurnEvent::Join { id_seed } => {
                    let mean_wait = waits.mean(cfg.n_nodes + joined);
                    joined += 1;
                    apply_join(
                        &mut sim, &overlay, &owner_of, &key_of, &cache, &cfg, &contexts, mean_wait,
                        id_seed,
                    );
                }
                ChurnEvent::Delta(i) => {
                    let (gl, asg) =
                        live.get_or_insert_with(|| (g.clone(), partition.assignment().to_vec()));
                    let report = apply_delta(
                        &mut sim,
                        &cfg,
                        &contexts,
                        layout,
                        gl,
                        asg,
                        &cfg.deltas[i].1,
                        &mut resolving,
                    );
                    if !report.is_noop() {
                        for &p in &report.deleted {
                            dead.push(p);
                        }
                        n_pages = gl.n_pages();
                        let ref_start = std::time::Instant::now();
                        reference = open_pagerank(gl, &cfg.rank).ranks;
                        for &p in &dead {
                            reference[p as usize] = 0.0;
                        }
                        delta_ref_secs += ref_start.elapsed().as_secs_f64();
                    }
                }
            }
        }
        match &engine_pool {
            Some(pool) => sim.run_until_pooled(next_t, pool),
            None => sim.run_until(next_t),
        }
        rel_err.push(next_t, vec_ops::relative_error(&assemble(sim.actors(), n_pages), &reference));
        // A dirtied group leaves the resolving set once its solver has
        // re-stalled on the exact post-delta fixed point (reads state
        // only — bit-neutral to the run).
        if !resolving.is_empty() {
            let actors = sim.actors();
            resolving.retain(|&gid| {
                !actors.iter().any(|n| {
                    n.active
                        && n.groups.iter().any(|gs| {
                            gs.ctx.group_id() == gid
                                && gs.touched.is_empty()
                                && gs.last_delta == 0.0
                        })
                })
            });
        }
        if let Some(store) = store {
            // Group state is only read here: publication cannot perturb
            // the run. Crashed/migrated groups publish from their current
            // host; a group orphaned mid-takeover simply keeps its last
            // published epoch until a survivor re-hosts it; a group still
            // re-solving a crawl delta keeps serving its pre-delta epoch
            // until the new fixed point is reached.
            store.publish(sim.actors().iter().filter(|n| n.active).flat_map(|node| {
                node.groups.iter().filter(|gs| !resolving.contains(&gs.ctx.group_id())).map(|gs| {
                    crate::store::GroupPublish {
                        group: gs.ctx.group_id(),
                        epoch: gs.outer_iterations,
                        pages: gs.ctx.pages(),
                        ranks: &gs.r,
                    }
                })
            }));
        }
        t = next_t;
    }
    if let Some(store) = store {
        // Final flush, gate lifted: a group still mid-resolve at `t_end`
        // publishes its best current state, so the served view equals
        // `final_ranks` exactly (already-published groups skip via the
        // store's bit-identical-republish path).
        store.publish(sim.actors().iter().filter(|n| n.active).flat_map(|node| {
            node.groups.iter().map(|gs| crate::store::GroupPublish {
                group: gs.ctx.group_id(),
                epoch: gs.outer_iterations,
                pages: gs.ctx.pages(),
                ranks: &gs.r,
            })
        }));
    }

    let engine_secs = engine_start.elapsed().as_secs_f64();
    let final_ranks = assemble(sim.actors(), n_pages);
    let per_node: Vec<NetCounters> = sim
        .actors()
        .iter()
        .map(|n| {
            let mut c = n.counters;
            c.rows_recomputed = n.groups.iter().map(|g| g.afferent.rows_recomputed()).sum();
            c
        })
        .collect();
    let counters = per_node.iter().fold(NetCounters::default(), |mut acc, c| {
        acc.data_messages += c.data_messages;
        acc.lookup_messages += c.lookup_messages;
        acc.bytes += c.bytes;
        acc.retries += c.retries;
        acc.acks += c.acks;
        acc.duplicates_suppressed += c.duplicates_suppressed;
        acc.retry_exhausted += c.retry_exhausted;
        acc.coalesced_parts += c.coalesced_parts;
        acc.payload_clones += c.payload_clones;
        acc.rows_recomputed += c.rows_recomputed;
        acc.gave_up += c.gave_up;
        acc.checkpoints_sent += c.checkpoints_sent;
        acc.checkpoint_bytes += c.checkpoint_bytes;
        acc.takeovers_warm += c.takeovers_warm;
        acc.takeovers_cold += c.takeovers_cold;
        acc.delta_messages += c.delta_messages;
        acc.delta_bytes += c.delta_bytes;
        acc
    });
    let route_cache = cache.read().stats();
    Ok(NetRunResult {
        final_rel_err: vec_ops::relative_error(&final_ranks, &reference),
        rel_err,
        final_ranks,
        counters,
        per_node,
        setup_secs,
        engine_secs,
        delta_ref_secs,
        sim_stats: sim.stats(),
        sched_stats: sim.sched_stats(),
        mean_route_hops: if hop_count == 0 { 0.0 } else { hop_total as f64 / hop_count as f64 },
        route_cache,
    })
}

/// Crashes `node`: removes it from the overlay, recomputes group
/// ownership, and discards everything the node held — its ranking state
/// dies with it.
///
/// What happens to the orphaned groups depends on the replication mode:
///
/// * `replication == 0` (the baseline): the driver migrates them to the
///   new responsible nodes *with all ranking state lost* (R back to 0,
///   afferent history cleared) — the peers' next Y deliveries rebuild it.
///   This oracle re-hosting is instant but cold.
/// * `replication > 0`: nobody is told anything. The surviving replicas
///   notice the owner's silence by checkpoint timeout
///   ([`NetNode::scan_takeover`]) and re-host the groups warm from their
///   newest snapshots — detection costs real windows, recovery starts
///   near the fixed point instead of at zero.
fn apply_departure(
    sim: &mut Simulation<NetNode>,
    overlay: &Arc<RwLock<AnyOverlay>>,
    owner_of: &Arc<RwLock<Vec<NodeIndex>>>,
    key_of: &Arc<Vec<u128>>,
    node: NodeIndex,
) {
    overlay.write().depart(node).expect("churn support validated before the run");
    {
        let ov = overlay.read();
        let mut owners = owner_of.write();
        for (gid, slot) in owners.iter_mut().enumerate() {
            *slot = ov.as_overlay().responsible(key_of[gid]);
        }
    }
    let actors = sim.actors_mut();
    actors[node].active = false;
    let replication = actors[node].cfg.replication;
    let ext_cache = actors[node].cfg.ext_cache;
    let orphaned = std::mem::take(&mut actors[node].groups);
    actors[node].relay.clear();
    actors[node].pending_y.clear();
    actors[node].pending.clear();
    actors[node].replica_store.clear();
    actors[node].orphan_since.clear();
    if replication > 0 {
        // Crash-survivable mode: the state is simply gone; takeover is
        // the replicas' job, driven by their own failure detectors.
        return;
    }
    let owners = owner_of.read();
    for gs in orphaned {
        let gid = gs.ctx.group_id() as usize;
        let new_owner = owners[gid];
        actors[new_owner].groups.push(GroupState::new(gs.ctx, ext_cache));
    }
}

/// Joins a fresh node (id derived from `id_seed`): inserts it into the
/// overlay, recomputes group ownership, spawns its actor mid-run, and
/// hands over the groups it is now responsible for *with their ranking
/// state intact* — a graceful handoff, unlike the state loss of
/// [`apply_departure`].
#[allow(clippy::too_many_arguments)]
fn apply_join(
    sim: &mut Simulation<NetNode>,
    overlay: &Arc<RwLock<AnyOverlay>>,
    owner_of: &Arc<RwLock<Vec<NodeIndex>>>,
    key_of: &Arc<Vec<u128>>,
    cache: &Arc<RwLock<RouteCache>>,
    cfg: &Arc<NetRunConfig>,
    contexts: &Arc<RwLock<Vec<Arc<GroupContext>>>>,
    mean_wait: f64,
    id_seed: u64,
) {
    let new = overlay.write().join(id_seed).expect("churn support validated before the run");
    {
        let ov = overlay.read();
        let mut owners = owner_of.write();
        for (gid, slot) in owners.iter_mut().enumerate() {
            *slot = ov.as_overlay().responsible(key_of[gid]);
        }
    }
    let idx = sim.add_actor(NetNode {
        me: new,
        groups: Vec::new(),
        overlay: Arc::clone(overlay),
        owner_of: Arc::clone(owner_of),
        key_of: Arc::clone(key_of),
        cache: Arc::clone(cache),
        relay: Vec::new(),
        pending_y: Vec::new(),
        cfg: Arc::clone(cfg),
        mean_wait,
        uplink_busy_until: 0.0,
        active: true,
        counters: NetCounters::default(),
        next_seq: 0,
        pending: BTreeMap::new(),
        seen: HashSet::new(),
        contexts: Arc::clone(contexts),
        replica_store: BTreeMap::new(),
        orphan_since: BTreeMap::new(),
        last_checkpoint: f64::NEG_INFINITY,
    });
    debug_assert_eq!(idx, new, "overlay handle and actor index must agree");

    // Graceful handoff: any group no longer hosted by its owner moves,
    // state and all.
    let owners = owner_of.read();
    let actors = sim.actors_mut();
    let mut migrating = Vec::new();
    for (host, actor) in actors.iter_mut().enumerate() {
        let mut i = 0;
        while i < actor.groups.len() {
            let gid = actor.groups[i].ctx.group_id() as usize;
            if owners[gid] != host {
                migrating.push(actor.groups.remove(i));
            } else {
                i += 1;
            }
        }
    }
    for gs in migrating {
        let gid = gs.ctx.group_id() as usize;
        actors[owners[gid]].groups.push(gs);
    }
}

/// Applies one scheduled crawl delta to the running system — the
/// incremental-ranking path. The graph is patched in place and only the
/// groups the delta actually dirties are touched:
///
/// * a dirty group whose pages all kept their internal out-rows (pure
///   out-degree edits, including pages left dangling by a deletion)
///   gets its matrix *rescaled in place* — same entry structure, new
///   `α/d(u)` column factors;
/// * any other dirty group (links rewired, pages inserted or tombstoned)
///   gets a one-group [`GroupContext::rebuild`] against the new graph —
///   cost proportional to the group, not the web;
/// * each dirty group's host *warm-starts*: surviving pages keep their
///   converged ranks, the afferent history replays from the last
///   accepted raw payloads (re-localized against the new context, so
///   shifted local indices and dropped pages are handled by
///   construction), and the outer epoch keeps counting — the solver
///   resumes from the previous fixed point instead of from zero;
/// * every untouched group keeps its context, its ranks, and its stall
///   short-circuit — it never notices the delta;
/// * each node owning at least one dirty group is charged one delta
///   shipment (the `DPRG1` delta-record wire bytes plus a header) — the
///   §4.5-style price of the crawler pushing the update into the
///   overlay.
///
/// Inserted pages are assigned by the run's own strategy (crawl epoch 0,
/// like the initial partition); existing pages keep their pinned
/// assignment, so a `SplitSite` op affects future assignments only (the
/// DESIGN.md §14 caveat for URL-hashed strategies). Replica checkpoints
/// of dirty groups are purged — they describe the pre-delta group.
///
/// Runs in the sequential driver between engine slices, like the other
/// churn events, so worker counts cannot reorder it: the replay and
/// cross-worker bit-identity contracts hold with deltas exactly as
/// without. Returns the delta report; the caller refreshes the
/// centralized reference and the page count from it.
#[allow(clippy::too_many_arguments)]
fn apply_delta(
    sim: &mut Simulation<NetNode>,
    cfg: &Arc<NetRunConfig>,
    contexts: &Arc<RwLock<Vec<Arc<GroupContext>>>>,
    layout: MatrixLayout,
    g_live: &mut WebGraph,
    assignment: &mut Vec<GroupId>,
    delta: &GraphDelta,
    resolving: &mut HashSet<GroupId>,
) -> dpr_graph::DeltaReport {
    let (g2, report) = delta.apply_report(g_live);
    *g_live = g2;
    // Every new id slot gets an assignment — including pages inserted and
    // tombstoned within the same delta, which still occupy a slot.
    for p in assignment.len() as PageId..g_live.n_pages() as PageId {
        assignment.push(cfg.strategy.assign(g_live, p, cfg.k, 0));
    }
    // Classify the dirty groups (BTreeMap: patch order is deterministic).
    // `true` = structural (page set or link structure changed, full
    // one-group rebuild); `false` = every dirty page kept its internal
    // out-row, so an in-place column rescale suffices.
    let ext_only: HashSet<PageId> = report.ext_only_pages.iter().copied().collect();
    let mut dirty: BTreeMap<GroupId, bool> = BTreeMap::new();
    for &p in &report.touched_pages {
        let structural = dirty.entry(assignment[p as usize]).or_insert(false);
        *structural |= !ext_only.contains(&p);
    }
    for &p in report.inserted.iter().chain(report.deleted.iter()) {
        dirty.insert(assignment[p as usize], true);
    }
    if dirty.is_empty() {
        return report; // an empty delta is bit-invisible
    }
    {
        let mut dir = contexts.write();
        for (&gid, &structural) in &dirty {
            let old_ctx = &dir[gid as usize];
            let new_ctx = if structural {
                let mut pages: Vec<PageId> = old_ctx
                    .pages()
                    .iter()
                    .copied()
                    .filter(|p| report.deleted.binary_search(p).is_err())
                    .collect();
                // Inserted ids all exceed the old page count, so appending
                // the group's share keeps `pages` sorted.
                pages.extend(
                    report.inserted.iter().copied().filter(|&p| assignment[p as usize] == gid),
                );
                Arc::new(GroupContext::rebuild(g_live, assignment, &cfg.rank, gid, pages, layout))
            } else {
                let mut c = (**old_ctx).clone();
                c.rescale_in_place(g_live, &cfg.rank);
                Arc::new(c)
            };
            dir[gid as usize] = new_ctx;
        }
    }
    // Warm-restart each dirty group's hosted state and price the delta
    // shipment to the nodes owning dirty groups.
    let dir = contexts.read();
    let actors = sim.actors_mut();
    let wire = dpr_graph::io::delta_wire_bytes(delta) + cfg.header_bytes;
    let mut charged: BTreeSet<usize> = BTreeSet::new();
    for &gid in dirty.keys() {
        if cfg.ext_cache {
            resolving.insert(gid);
        }
        // Stale pre-delta checkpoints are useless for a warm takeover;
        // purge them everywhere (a frame already in flight is caught by
        // the length guard in `install_group`).
        for a in actors.iter_mut() {
            a.replica_store.remove(&gid);
        }
        let new_ctx = Arc::clone(&dir[gid as usize]);
        let Some((host, slot)) = actors.iter().enumerate().find_map(|(h, a)| {
            a.groups.iter().position(|gs| gs.ctx.group_id() == gid).map(|i| (h, i))
        }) else {
            // Orphaned by a crash: the eventual takeover rebuilds from
            // the already-updated context directory.
            continue;
        };
        charged.insert(host);
        let node = &mut actors[host];
        let mut gs = GroupState::new(new_ctx, cfg.ext_cache);
        {
            let old = &node.groups[slot];
            // Surviving pages keep their converged ranks; inserted pages
            // start at zero.
            for (li, &p) in gs.ctx.pages().iter().enumerate() {
                if let Some(j) = old.ctx.local_index(p) {
                    gs.r[li] = old.r[j];
                }
            }
            // Replay the afferent history from the last accepted raw
            // payloads — exactly what re-delivering those messages would
            // do under the new context. (Without the ext cache no raw
            // payloads are retained; peers repopulate `X` as they
            // republish every wake.)
            for (&src, payload) in &old.last_payload {
                let localized: Vec<(u32, f64)> = payload
                    .iter()
                    .filter_map(|&(p, bits)| {
                        gs.ctx.local_index(p).map(|i| (i as u32, f64::from_bits(bits)))
                    })
                    .collect();
                gs.afferent.set(src, localized);
                gs.last_payload.insert(src, payload.clone());
            }
            gs.outer_iterations = old.outer_iterations;
        }
        node.groups[slot] = gs;
    }
    drop(dir);
    for host in charged {
        let c = &mut actors[host].counters;
        c.delta_messages += 1;
        c.delta_bytes += wire;
        c.bytes += wire;
    }
    report
}

/// The owner node of every group under `cfg` — the same DHT-responsibility
/// mapping `try_run_over_network` computes at placement time, rebuilt from
/// the config's overlay seed without running a simulation. Tests and
/// benches use it to pick a crash victim that actually hosts groups (e.g.
/// `group_owners(&cfg)[0]` is the owner of group 0).
#[must_use]
pub fn group_owners(cfg: &NetRunConfig) -> Vec<NodeIndex> {
    let overlay = match cfg.overlay {
        OverlayKind::Pastry => {
            AnyOverlay::Pastry(PastryNetwork::with_nodes(cfg.n_nodes, cfg.seed ^ 0x0E0E))
        }
        OverlayKind::Chord => {
            AnyOverlay::Chord(ChordNetwork::with_nodes(cfg.n_nodes, cfg.seed ^ 0x0E0E))
        }
        OverlayKind::Can { d } => {
            AnyOverlay::Can(CanNetwork::with_nodes(cfg.n_nodes, d, cfg.seed ^ 0x0E0E))
        }
    };
    let ov = overlay.as_overlay();
    (0..cfg.k as u64).map(|g| ov.responsible(dpr_overlay::id::key_from_u64(g))).collect()
}

fn assemble(nodes: &[NetNode], n_pages: usize) -> Vec<f64> {
    let mut global = vec![0.0; n_pages];
    for node in nodes {
        for gs in &node.groups {
            for (li, &p) in gs.ctx.pages().iter().enumerate() {
                global[p as usize] = gs.r[li];
            }
        }
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
    use dpr_graph::generators::toy;
    use dpr_graph::DeltaOp;
    use dpr_partition::Strategy;

    /// Test convenience: every config in this module schedules churn the
    /// overlay supports, so unwrap the `Result` here instead of threading
    /// `expect` through every call site.
    fn run_over_network(g: &WebGraph, cfg: NetRunConfig) -> NetRunResult {
        try_run_over_network(g, cfg).expect("test configs use supported churn schedules")
    }

    fn quick(transmission: Transmission) -> NetRunConfig {
        NetRunConfig {
            k: 24,
            n_nodes: 24,
            transmission,
            strategy: Strategy::HashByUrl,
            t_end: 300.0,
            ..NetRunConfig::default()
        }
    }

    #[test]
    fn direct_mode_converges_over_overlay() {
        let g = toy::two_cliques(6);
        let res = run_over_network(&g, quick(Transmission::Direct));
        assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
        assert!(res.counters.lookup_messages > 0, "direct mode must pay lookups");
    }

    #[test]
    fn indirect_mode_converges_over_overlay() {
        let g = toy::two_cliques(6);
        let res = run_over_network(&g, quick(Transmission::Indirect));
        assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
        assert_eq!(res.counters.lookup_messages, 0, "indirect mode never looks up");
    }

    #[test]
    fn indirect_sends_fewer_messages_than_direct() {
        let g = edu_domain(&EduDomainConfig {
            n_pages: 3_000,
            n_sites: 30,
            ..EduDomainConfig::default()
        });
        let k = 48;
        let run =
            |t| run_over_network(&g, NetRunConfig { k, n_nodes: k, t_end: 150.0, ..quick(t) });
        let d = run(Transmission::Direct);
        let i = run(Transmission::Indirect);
        assert!(d.final_rel_err < 1e-3);
        assert!(i.final_rel_err < 1e-3);
        let d_total = d.counters.data_messages + d.counters.lookup_messages;
        let i_total = i.counters.data_messages;
        assert!(i_total < d_total, "indirect {i_total} should beat direct {d_total} messages");
    }

    #[test]
    fn fewer_nodes_than_groups_collocates() {
        // 32 groups on 4 overlay nodes: several groups per node, including
        // group-local deliveries.
        let g = toy::complete(24);
        let res = run_over_network(
            &g,
            NetRunConfig {
                k: 32,
                n_nodes: 4,
                strategy: Strategy::HashByUrl,
                t_end: 300.0,
                ..NetRunConfig::default()
            },
        );
        assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
    }

    #[test]
    fn lossy_network_still_converges() {
        let g = toy::two_cliques(5);
        let res = run_over_network(
            &g,
            NetRunConfig { send_success_prob: 0.8, t_end: 900.0, ..quick(Transmission::Indirect) },
        );
        assert!(res.final_rel_err < 1e-3, "rel err {}", res.final_rel_err);
        assert!(res.sim_stats.sends_dropped > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = toy::two_cliques(4);
        let run = || run_over_network(&g, quick(Transmission::Indirect));
        let a = run();
        let b = run();
        assert_eq!(a.final_ranks, b.final_ranks);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn converges_on_every_overlay_kind() {
        let g = toy::two_cliques(5);
        for overlay in [OverlayKind::Pastry, OverlayKind::Chord, OverlayKind::Can { d: 2 }] {
            let res =
                run_over_network(&g, NetRunConfig { overlay, ..quick(Transmission::Indirect) });
            assert!(res.final_rel_err < 1e-4, "{overlay:?}: rel err {}", res.final_rel_err);
        }
    }

    #[test]
    fn tight_bottleneck_slows_convergence() {
        // §4.5's B as queueing: an uplink that cannot keep up with the Y
        // traffic must push the 1%-error crossing later, but never break
        // convergence.
        let g = edu_domain(&EduDomainConfig {
            n_pages: 2_000,
            n_sites: 20,
            ..EduDomainConfig::default()
        });
        let base = NetRunConfig {
            k: 24,
            n_nodes: 24,
            strategy: Strategy::HashByUrl,
            t_end: 900.0,
            ..NetRunConfig::default()
        };
        let fast = run_over_network(&g, base.clone());
        let slow = run_over_network(
            &g,
            NetRunConfig { bottleneck_bytes_per_time: Some(20_000.0), ..base },
        );
        assert!(fast.final_rel_err < 1e-3);
        assert!(slow.final_rel_err < 1e-2, "rel err {}", slow.final_rel_err);
        let tf = fast.rel_err.first_time_below(0.01).expect("fast hits 1%");
        let ts = slow.rel_err.first_time_below(0.01).expect("slow hits 1%");
        assert!(ts > tf, "bottleneck should delay convergence: {ts} vs {tf}");
    }

    #[test]
    fn ranking_recovers_from_a_node_crash() {
        // A node hosting groups crashes mid-run: its state is lost, its
        // groups migrate cold to the new responsible nodes, and the system
        // re-converges — quantitatively: the error spikes above the
        // converged level, then returns below the pre-crash tolerance
        // within a bounded number of sample windows.
        let g = edu_domain(&EduDomainConfig {
            n_pages: 2_000,
            n_sites: 20,
            ..EduDomainConfig::default()
        });
        let base = NetRunConfig {
            k: 24,
            n_nodes: 24,
            strategy: Strategy::HashByUrl,
            t_end: 500.0,
            sample_every: 2.0,
            ..NetRunConfig::default()
        };
        let crash = 120.0;
        // The owner of group 0 hosts ranking state by construction — no
        // probe run needed to find a meaningful victim.
        let victim = group_owners(&base)[0];
        let res = run_over_network(
            &g,
            NetRunConfig { departures: vec![(crash, victim)], ..base.clone() },
        );
        let tol = 1e-3;
        let before = res.rel_err.value_at(crash - 1.0).unwrap();
        assert!(before < tol, "must converge before the crash: {before}");
        let after: Vec<(f64, f64)> =
            res.rel_err.points().iter().copied().filter(|&(t, _)| t > crash).collect();
        let spike = after.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        assert!(spike > before * 5.0, "state loss must perturb the ranks: spike {spike}");
        let recovered_at = after
            .iter()
            .find(|&&(_, v)| v < tol)
            .map(|&(t, _)| t)
            .expect("error must drop back below the pre-crash tolerance");
        let windows = ((recovered_at - crash) / base.sample_every).round() as u64;
        assert!(
            windows <= 60,
            "cold re-convergence took {windows} windows (recovered at t = {recovered_at})"
        );
        assert!(res.final_rel_err < tol, "rel err {}", res.final_rel_err);
    }

    #[test]
    fn crash_spike_then_reconvergence_is_visible() {
        let g = toy::two_cliques(6);
        let base = NetRunConfig {
            k: 8,
            n_nodes: 8,
            strategy: Strategy::HashByUrl,
            t_end: 400.0,
            sample_every: 1.0,
            ..NetRunConfig::default()
        };
        // Crash every node once except node 0, late enough that the system
        // converged first; at least one crash must perturb the ranks.
        let res = run_over_network(
            &g,
            NetRunConfig {
                departures: (1..8).map(|i| (100.0 + 10.0 * i as f64, i)).collect(),
                ..base
            },
        );
        let before = res.rel_err.value_at(99.0).unwrap();
        assert!(before < 1e-3, "should converge before the crashes: {before}");
        let spike = res
            .rel_err
            .points()
            .iter()
            .filter(|&&(t, _)| t > 100.0)
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        assert!(spike > before * 5.0, "crashes should perturb ranks: spike {spike}");
        assert!(res.final_rel_err < 1e-3, "must re-converge: {}", res.final_rel_err);
    }

    #[test]
    fn departures_rejected_on_can() {
        let g = toy::cycle(4);
        let err = try_run_over_network(
            &g,
            NetRunConfig {
                overlay: OverlayKind::Can { d: 2 },
                departures: vec![(1.0, 0)],
                ..NetRunConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, NetRunError::Churn(ChurnUnsupported { op: "departures", overlay: "CAN" }));
        assert!(err.to_string().contains("not supported on the CAN overlay"));
    }

    #[test]
    fn joins_rejected_on_chord_and_can() {
        let g = toy::cycle(4);
        for overlay in [OverlayKind::Chord, OverlayKind::Can { d: 2 }] {
            let err = try_run_over_network(
                &g,
                NetRunConfig { overlay, joins: vec![(1.0, 77)], ..NetRunConfig::default() },
            )
            .unwrap_err();
            match err {
                NetRunError::Churn(c) => assert_eq!(c.op, "joins"),
                other => panic!("expected a churn error, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_configs_are_rejected_with_structured_errors() {
        // Formerly panicking validations: a bad config from a CLI flag or
        // an experiment script must fail the run, not abort the process.
        let g = toy::cycle(4);
        let what = |cfg: NetRunConfig| match try_run_over_network(&g, cfg).unwrap_err() {
            NetRunError::Config { what, .. } => what,
            other => panic!("expected a config error, got {other:?}"),
        };
        let base = NetRunConfig::default;
        assert_eq!(what(NetRunConfig { k: 0, ..base() }), "k/n_nodes");
        assert_eq!(what(NetRunConfig { n_nodes: 0, ..base() }), "k/n_nodes");
        assert_eq!(
            what(NetRunConfig { departures: vec![(5.0, 1), (5.0, 2)], ..base() }),
            "departures"
        );
        assert_eq!(what(NetRunConfig { joins: vec![(9.0, 1), (5.0, 2)], ..base() }), "joins");
        assert_eq!(
            what(NetRunConfig { replication: 1, checkpoint_every: 0.0, ..base() }),
            "checkpoint_every"
        );
        assert_eq!(
            what(NetRunConfig { replication: 1, checkpoint_every: f64::INFINITY, ..base() }),
            "checkpoint_every"
        );
        assert_eq!(
            what(NetRunConfig { replication: 1, suspect_after: 0, ..base() }),
            "suspect_after"
        );
        assert_eq!(
            what(NetRunConfig { replication: 1, overlay: OverlayKind::Can { d: 2 }, ..base() }),
            "replication"
        );
        let err = try_run_over_network(&g, NetRunConfig { k: 0, ..base() }).unwrap_err();
        assert!(err.to_string().contains("invalid net-run config"));
    }

    #[test]
    fn can_churn_gap_is_pinned() {
        // CAN's departure repair (zone merging) is deliberately out of
        // scope — see DESIGN.md §11. Pin the gap at the overlay seam so a
        // future implementation must flip this test consciously, and check
        // the replication layer refuses to start on CAN rather than
        // silently running with empty replica sets.
        let mut ov = AnyOverlay::Can(CanNetwork::with_nodes(8, 2, 1));
        assert_eq!(
            ov.depart(3).unwrap_err(),
            ChurnUnsupported { op: "departures", overlay: "CAN" }
        );
        assert!(
            ov.as_overlay().replicas(dpr_overlay::id::key_from_u64(0), 2).is_empty(),
            "CAN keeps the Overlay::replicas default: no replica sets"
        );
        let g = toy::cycle(4);
        let err = try_run_over_network(
            &g,
            NetRunConfig {
                overlay: OverlayKind::Can { d: 2 },
                replication: 1,
                ..NetRunConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, NetRunError::Config { what: "replication", .. }));
    }

    #[test]
    fn chord_departures_reconverge() {
        // The former panic path: Chord now repairs successors and fingers
        // on departure and the ranking survives the migration.
        let g = toy::two_cliques(5);
        let res = run_over_network(
            &g,
            NetRunConfig {
                overlay: OverlayKind::Chord,
                departures: vec![(60.0, 2), (90.0, 5)],
                t_end: 400.0,
                ..quick(Transmission::Indirect)
            },
        );
        assert!(res.final_rel_err < 1e-3, "rel err {}", res.final_rel_err);
    }

    #[test]
    fn joins_hand_over_groups_gracefully() {
        let g = toy::two_cliques(5);
        let base = NetRunConfig {
            n_nodes: 8, // few nodes: joiners very likely take over groups
            t_end: 400.0,
            ..quick(Transmission::Indirect)
        };
        let res = run_over_network(
            &g,
            NetRunConfig { joins: vec![(50.0, 901), (80.0, 902), (110.0, 903)], ..base.clone() },
        );
        assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
        // Handoff keeps state: the error curve never spikes back above the
        // pre-join level once converged (graceful, not a crash).
        let before = res.rel_err.value_at(49.0).unwrap();
        let after_max = res
            .rel_err
            .points()
            .iter()
            .filter(|&&(t, _)| t > 50.0)
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        assert!(
            after_max <= before * 1.5 + 1e-12,
            "joins must not perturb ranks: before {before}, after max {after_max}"
        );
    }

    #[test]
    fn reliable_delivery_suppresses_duplicates_and_acks() {
        let g = toy::two_cliques(5);
        let res = run_over_network(
            &g,
            NetRunConfig {
                send_success_prob: 0.5,
                reliability: Some(Reliability::default()),
                t_end: 300.0,
                ..quick(Transmission::Indirect)
            },
        );
        assert!(res.counters.acks > 0, "acks must flow");
        assert!(res.counters.retries > 0, "50% loss must trigger retries");
        assert!(res.final_rel_err < 1e-3, "rel err {}", res.final_rel_err);
    }

    #[test]
    fn reliability_is_quiet_on_a_perfect_network() {
        let g = toy::two_cliques(4);
        let res = run_over_network(
            &g,
            NetRunConfig {
                reliability: Some(Reliability::default()),
                ..quick(Transmission::Indirect)
            },
        );
        assert_eq!(res.counters.retries, 0);
        assert_eq!(res.counters.duplicates_suppressed, 0);
        assert_eq!(res.counters.retry_exhausted, 0);
        assert_eq!(res.counters.gave_up, 0, "no update may be silently abandoned");
        assert!(res.counters.acks >= res.counters.data_messages);
        assert!(res.final_rel_err < 1e-4);
    }

    #[test]
    fn package_clones_share_the_payload_allocation() {
        // The retransmit path clones `Package`s; payloads must be shared,
        // never copied.
        let parts = Arc::new(vec![YPart {
            src_group: 0,
            dest_group: 1,
            entries: Arc::new(vec![(0, 0.5)]),
        }]);
        let original = Package(Arc::clone(&parts));
        let retransmitted = original.clone();
        assert!(Arc::ptr_eq(&original.0, &retransmitted.0));
    }

    #[test]
    fn retransmitted_bytes_match_the_original_send() {
        // On a 2-node overlay every node's data packages have one constant
        // payload size (the same parts structure every wake). Solve that
        // size per node from a clean run, then check a partition-stressed
        // run — where every data message past the first attempt is a
        // retransmission sharing the original's payload — against the same
        // per-node accounting identity: bytes = data·P + acks·header. Any
        // retransmission that put different bytes on the wire than its
        // original breaks the identity.
        let g = toy::two_cliques(4);
        let base = NetRunConfig {
            k: 2,
            n_nodes: 2,
            strategy: Strategy::HashByUrl,
            reliability: Some(Reliability::default()),
            t_end: 120.0,
            ..quick(Transmission::Indirect)
        };
        let clean = run_over_network(&g, base.clone());
        let stressed = run_over_network(
            &g,
            NetRunConfig {
                faults: Some(FaultPlan::new().with_latency(0.01).with_partition(20.0, 45.0, &[0])),
                ..base
            },
        );
        assert!(stressed.counters.retries > 0, "the partition must force retransmissions");
        let hdr = 40u64;
        // On two nodes each sender emits the same parts structure every
        // wake, so all of one node's packages share a single payload size.
        // Solve it from the per-node byte identity and require the
        // partition-stressed run — where the extra data messages are
        // retransmissions sharing the original send's payload — to satisfy
        // the identity with the *same* size (both runs place groups
        // identically).
        let solve = |c: &NetCounters| {
            if c.data_messages == 0 {
                return None;
            }
            let payload = c.bytes - c.acks * hdr;
            assert_eq!(
                payload % c.data_messages,
                0,
                "bytes must be an integer number of equal-sized packages"
            );
            Some(payload / c.data_messages)
        };
        assert_eq!(clean.per_node.len(), stressed.per_node.len());
        let mut senders = 0;
        for (c, s) in clean.per_node.iter().zip(&stressed.per_node) {
            assert_eq!(solve(c), solve(s));
            senders += usize::from(c.data_messages > 0);
        }
        assert!(senders > 0, "the topology must produce cross-node traffic");
        // And the retransmitted payloads were *correct*: ranking still
        // reaches the centralized fixed point after the partition heals.
        assert!(stressed.final_rel_err < 1e-3, "rel err {}", stressed.final_rel_err);
    }

    #[test]
    fn coalescing_reduces_traffic_with_identical_final_ranks() {
        // The golden on/off comparison: §4.4 coalescing may only change
        // *cost* counters (down), never the ranks.
        let g = toy::two_cliques(6);
        let base = quick(Transmission::Indirect);
        let on = run_over_network(&g, NetRunConfig { coalesce: true, ..base.clone() });
        let off = run_over_network(&g, NetRunConfig { coalesce: false, ..base });
        assert_eq!(
            on.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            off.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            "coalescing must be rank-neutral"
        );
        assert!(on.counters.coalesced_parts > 0, "relayed duplicates must get merged");
        assert_eq!(off.counters.coalesced_parts, 0);
        // Merging same-(src, dest) parts shrinks packages; it only removes
        // whole packages when a relay batch and the node's own output share
        // a next hop, so messages are ≤ and bytes strictly <.
        assert!(on.counters.data_messages <= off.counters.data_messages);
        assert!(
            on.counters.bytes < off.counters.bytes,
            "coalescing must cut bytes: {} vs {}",
            on.counters.bytes,
            off.counters.bytes
        );
    }

    #[test]
    fn direct_coalescing_batches_per_owner() {
        // With fewer nodes than groups every node hosts several groups, so
        // a sender has multiple parts bound for the same owner per wake;
        // §4.4 batching must collapse them into one data message each —
        // while still pricing every part's own §4.5 lookup — without
        // disturbing the final ranks.
        let g = toy::two_cliques(6);
        let base = NetRunConfig { n_nodes: 6, ..quick(Transmission::Direct) };
        let on = run_over_network(&g, NetRunConfig { coalesce: true, ..base.clone() });
        let off = run_over_network(&g, NetRunConfig { coalesce: false, ..base });
        assert_eq!(
            on.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            off.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            "batching must be rank-neutral"
        );
        assert!(
            on.counters.data_messages < off.counters.data_messages,
            "batching must cut data messages: {} vs {}",
            on.counters.data_messages,
            off.counters.data_messages
        );
        assert!(on.counters.bytes < off.counters.bytes);
        assert_eq!(
            on.counters.lookup_messages, off.counters.lookup_messages,
            "batched parts still pay their own lookups"
        );
    }

    #[test]
    fn route_cache_is_invisible_to_results() {
        // Cache on vs off: *everything* observable must be identical —
        // ranks, §4.5 counters, engine stats. Only the hit/miss bookkeeping
        // may differ.
        let g = toy::two_cliques(5);
        let base = NetRunConfig {
            departures: vec![(60.0, 2), (90.0, 5)],
            t_end: 250.0,
            ..quick(Transmission::Indirect)
        };
        let cached = run_over_network(&g, NetRunConfig { route_cache: true, ..base.clone() });
        let fresh = run_over_network(&g, NetRunConfig { route_cache: false, ..base });
        assert_eq!(cached.final_ranks, fresh.final_ranks);
        assert_eq!(cached.counters, fresh.counters);
        assert_eq!(cached.sim_stats, fresh.sim_stats);
        assert!(cached.route_cache.hits > 0);
        assert_eq!(cached.route_cache.invalidations, 2, "one flush per departure");
        assert_eq!(fresh.route_cache.hits, 0, "a bypassed cache never hits");
        assert_eq!(
            cached.route_cache.hits + cached.route_cache.misses,
            fresh.route_cache.misses,
            "both modes must count the same lookups"
        );
    }

    #[test]
    fn engine_workers_are_bit_invisible() {
        // The tentpole contract: any worker count replays the sequential
        // engine bit for bit — ranks, cost counters, engine stats, the
        // whole error time series, and even the order-sensitive route
        // cache bookkeeping.
        let g = toy::two_cliques(6);
        let base = NetRunConfig {
            faults: Some(
                FaultPlan::new()
                    .with_latency(0.01)
                    .with_default_success(0.85)
                    .with_jitter(dpr_sim::Jitter::Uniform { max: 0.005 })
                    .with_straggler(3, 2.0, 1.5),
            ),
            t_end: 250.0,
            ..quick(Transmission::Indirect)
        };
        let run = |workers| {
            run_over_network(&g, NetRunConfig { engine_workers: workers, ..base.clone() })
        };
        let seq = run(1);
        assert_eq!(seq.sched_stats.batches, 0, "one worker is the plain sequential loop");
        for workers in [2, 4, 8] {
            let par = run(workers);
            assert_eq!(
                par.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                seq.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                "rank bits diverged at {workers} workers"
            );
            assert_eq!(par.counters, seq.counters, "counters diverged at {workers} workers");
            assert_eq!(par.per_node, seq.per_node);
            assert_eq!(par.sim_stats, seq.sim_stats, "engine stats diverged at {workers} workers");
            assert_eq!(par.rel_err.points(), seq.rel_err.points());
            assert_eq!(par.route_cache.hits, seq.route_cache.hits);
            assert_eq!(par.route_cache.misses, seq.route_cache.misses);
            assert!(par.sched_stats.batches > 0, "parallel runs must actually batch");
            assert!(par.sched_stats.max_batch >= 2, "no same-window parallelism exposed");
        }
    }

    #[test]
    fn engine_workers_survive_churn_and_reliability() {
        // The hard mode: departures (state loss + ownership churn), a
        // join (graceful handoff + mid-run actor spawn), retransmissions,
        // and direct-mode lookups — still bit-identical across workers.
        let g = toy::two_cliques(5);
        let base = NetRunConfig {
            n_nodes: 8,
            send_success_prob: 0.7,
            reliability: Some(Reliability::default()),
            departures: vec![(60.0, 2)],
            joins: vec![(90.0, 901)],
            t_end: 300.0,
            ..quick(Transmission::Direct)
        };
        let run = |workers| {
            run_over_network(&g, NetRunConfig { engine_workers: workers, ..base.clone() })
        };
        let seq = run(1);
        let par = run(2);
        assert_eq!(
            par.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            seq.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(par.counters, seq.counters);
        assert_eq!(par.sim_stats, seq.sim_stats);
        assert!(par.counters.retries > 0, "loss must exercise the retransmit path");
        assert!(seq.final_rel_err < 1e-3, "rel err {}", seq.final_rel_err);
    }

    #[test]
    fn fault_plan_overrides_scalar_loss() {
        // A plan with no loss beats the scalar knob claiming total loss:
        // `faults` must take precedence.
        let g = toy::two_cliques(4);
        let res = run_over_network(
            &g,
            NetRunConfig {
                send_success_prob: 0.0,
                faults: Some(FaultPlan::new().with_latency(0.01)),
                ..quick(Transmission::Indirect)
            },
        );
        assert_eq!(res.sim_stats.sends_dropped, 0);
        assert!(res.final_rel_err < 1e-4, "rel err {}", res.final_rel_err);
    }

    #[test]
    fn replication_zero_is_the_exact_baseline() {
        // The observation-invariance contract: with `replication: 0` the
        // protocol knobs must be completely inert — same rank bits, same
        // counters, same engine stats, zero checkpoint traffic — even
        // through a departure (which takes the legacy cold-migration
        // path).
        let g = toy::two_cliques(5);
        let base = NetRunConfig {
            departures: vec![(60.0, 2)],
            t_end: 250.0,
            ..quick(Transmission::Indirect)
        };
        let a = run_over_network(&g, base.clone());
        let b =
            run_over_network(&g, NetRunConfig { checkpoint_every: 0.25, suspect_after: 9, ..base });
        assert_eq!(
            a.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            b.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            "inert knobs must not change a single bit"
        );
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.sim_stats, b.sim_stats);
        assert_eq!(a.rel_err.points(), b.rel_err.points());
        assert_eq!(a.counters.checkpoints_sent, 0);
        assert_eq!(a.counters.checkpoint_bytes, 0);
        assert_eq!(a.counters.takeovers_warm + a.counters.takeovers_cold, 0);
    }

    #[test]
    fn warm_takeover_beats_cold_restart() {
        // The acceptance scenario: a mid-run permanent crash of a group-
        // hosting node under DPR2 — one power step per think, the regime
        // where restarting from zero costs real virtual time (DPR1's
        // unbounded inner solve would erase the difference as soon as the
        // afferent state is rebuilt). With replicas, the orphaned groups
        // come back warm from checkpoints and the error returns below
        // tolerance in measurably fewer sample windows than the cold
        // replication-0 baseline; both end at the same fixed point
        // (top-10 pages compared against an undisturbed run, L1 error
        // below tolerance).
        let g = edu_domain(&EduDomainConfig {
            n_pages: 2_000,
            n_sites: 20,
            ..EduDomainConfig::default()
        });
        let crash = 150.0;
        let base = NetRunConfig {
            k: 24,
            n_nodes: 24,
            strategy: Strategy::HashByUrl,
            variant: DprVariant::Dpr2,
            t_end: 400.0,
            sample_every: 2.0,
            ..NetRunConfig::default()
        };
        let victim = group_owners(&base)[0];
        let run = |replication| {
            run_over_network(
                &g,
                NetRunConfig {
                    replication,
                    departures: vec![(crash, victim)],
                    faults: Some(
                        FaultPlan::new().with_latency(0.01).with_permanent_crash(victim, crash),
                    ),
                    ..base.clone()
                },
            )
        };
        let cold = run(0);
        let warm = run(2);
        let healthy = run_over_network(&g, base.clone());
        let tol = 1e-3;
        assert!(healthy.final_rel_err < tol);
        assert!(cold.final_rel_err < tol, "cold rel err {}", cold.final_rel_err);
        assert!(warm.final_rel_err < tol, "warm rel err {}", warm.final_rel_err);
        assert!(warm.counters.checkpoints_sent > 0, "owners must ship checkpoints");
        assert!(warm.counters.checkpoint_bytes > 0, "checkpoints must be priced");
        assert!(warm.counters.takeovers_warm > 0, "orphaned groups must be re-hosted warm");
        assert_eq!(warm.counters.takeovers_cold, 0, "checkpoints had ample time to arrive");
        assert_eq!(cold.counters.checkpoints_sent, 0);
        // Same fixed point: the top pages agree with the undisturbed run.
        let top = |r: &[f64]| {
            let mut idx: Vec<usize> = (0..r.len()).collect();
            idx.sort_by(|&a, &b| r[b].total_cmp(&r[a]).then(a.cmp(&b)));
            idx.truncate(10);
            idx
        };
        assert_eq!(top(&warm.final_ranks), top(&healthy.final_ranks));
        assert_eq!(top(&cold.final_ranks), top(&healthy.final_ranks));
        // And the headline: measurably fewer post-crash windows to get
        // back below tolerance.
        let windows = |res: &NetRunResult| {
            res.rel_err
                .points()
                .iter()
                .filter(|&&(t, _)| t > crash)
                .find(|&&(_, v)| v < tol)
                .map(|&(t, _)| ((t - crash) / base.sample_every).round() as u64)
                .expect("re-converges before t_end")
        };
        let (wc, ww) = (windows(&cold), windows(&warm));
        assert!(ww < wc, "warm takeover must recover in fewer windows: warm {ww} vs cold {wc}");
    }

    #[test]
    fn crash_recovery_is_bit_identical_across_engine_workers() {
        // The replication protocol must preserve the batched-engine
        // contract: checkpoints, failure detection, and warm takeover all
        // happen in the sequential commit stage, so a crashed-and-
        // recovered run replays bit for bit at any worker count.
        let g = toy::two_cliques(6);
        let crash = 100.0;
        let base = NetRunConfig {
            k: 8,
            n_nodes: 8,
            strategy: Strategy::HashByUrl,
            variant: DprVariant::Dpr2,
            replication: 2,
            t_end: 300.0,
            sample_every: 2.0,
            ..NetRunConfig::default()
        };
        let victim = group_owners(&base)[0];
        let base = NetRunConfig {
            departures: vec![(crash, victim)],
            faults: Some(FaultPlan::new().with_latency(0.01).with_permanent_crash(victim, crash)),
            ..base
        };
        let run = |workers| {
            run_over_network(&g, NetRunConfig { engine_workers: workers, ..base.clone() })
        };
        let seq = run(1);
        assert!(seq.counters.checkpoints_sent > 0, "protocol must be exercised");
        assert!(seq.counters.takeovers_warm > 0, "the victim's groups must be re-hosted warm");
        assert_eq!(seq.counters.takeovers_cold, 0);
        for workers in [2, 4] {
            let par = run(workers);
            assert_eq!(
                par.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                seq.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                "rank bits diverged at {workers} workers"
            );
            assert_eq!(par.counters, seq.counters, "counters diverged at {workers} workers");
            assert_eq!(par.per_node, seq.per_node);
            assert_eq!(par.sim_stats, seq.sim_stats);
            assert_eq!(par.rel_err.points(), seq.rel_err.points());
        }
    }

    #[test]
    fn zero_op_delta_is_bit_invisible() {
        // A delta carrying zero ops must leave every rank bit and every
        // counter identical to an undisturbed run, at any worker count —
        // the delta machinery itself is observation-free.
        let g = toy::two_cliques(6);
        let base = NetRunConfig { t_end: 250.0, ..quick(Transmission::Indirect) };
        let undisturbed = run_over_network(&g, base.clone());
        for workers in [1, 2, 4] {
            let res = run_over_network(
                &g,
                NetRunConfig {
                    deltas: vec![(60.0, GraphDelta::empty())],
                    engine_workers: workers,
                    ..base.clone()
                },
            );
            assert_eq!(
                res.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                undisturbed.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                "rank bits diverged at {workers} workers"
            );
            assert_eq!(res.counters, undisturbed.counters, "counters diverged at {workers}");
            assert_eq!(res.per_node, undisturbed.per_node);
            assert_eq!(res.sim_stats, undisturbed.sim_stats);
            assert_eq!(res.rel_err.points(), undisturbed.rel_err.points());
            assert_eq!(res.counters.delta_messages, 0, "an empty delta ships nothing");
        }
    }

    #[test]
    fn crawl_delta_reconverges_warm_and_prices_shipment() {
        // The tentpole scenario: converge, then a real crawl delta (link
        // churn plus a page delete and a page insert) lands mid-run. The
        // dirtied groups warm-start from the previous fixed point and the
        // system re-converges to the *mutated* graph's fixed point (the
        // in-run reference swaps at delta time); the shipment is priced;
        // and the whole evolution replays bit-identically at any worker
        // count.
        let g = edu_domain(&EduDomainConfig {
            n_pages: 2_000,
            n_sites: 20,
            ..EduDomainConfig::default()
        });
        let mut delta = GraphDelta::link_churn(&g, 0.02, 7);
        delta.ops.push(DeltaOp::DeletePage { page: 3 });
        delta.ops.push(DeltaOp::InsertPage { site: 0, ext_out: 2, links: vec![0, 1] });
        let when = 150.0;
        let base = NetRunConfig {
            k: 24,
            n_nodes: 24,
            strategy: Strategy::HashByUrl,
            t_end: 400.0,
            sample_every: 2.0,
            deltas: vec![(when, delta)],
            ..NetRunConfig::default()
        };
        let res = run_over_network(&g, base.clone());
        let tol = 1e-3;
        assert!(res.rel_err.value_at(when - 1.0).unwrap() < tol, "must converge before the delta");
        assert!(res.final_rel_err < tol, "must re-converge: rel err {}", res.final_rel_err);
        assert_eq!(res.final_ranks.len(), g.n_pages() + 1, "the insert extends the rank vector");
        assert_eq!(res.final_ranks[3], 0.0, "a tombstoned page is no longer ranked");
        assert!(res.final_ranks[g.n_pages()] > 0.0, "the inserted page earns rank");
        assert!(res.counters.delta_messages > 0, "dirty owners receive priced shipments");
        assert!(res.counters.delta_bytes > 0, "delta bytes must be charged");
        // Warm beats cold: re-convergence after the delta takes less
        // virtual time than the initial convergence from rank zero.
        let initial = res.rel_err.first_time_below(tol).expect("initially converges");
        let recovered = res
            .rel_err
            .points()
            .iter()
            .filter(|&&(t, _)| t > when)
            .find(|&&(_, v)| v < tol)
            .map(|&(t, _)| t - when)
            .expect("re-converges after the delta");
        assert!(
            recovered < initial,
            "warm re-solve must beat the cold start: {recovered} vs {initial}"
        );
        for workers in [2, 4] {
            let par =
                run_over_network(&g, NetRunConfig { engine_workers: workers, ..base.clone() });
            assert_eq!(
                par.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                res.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                "rank bits diverged at {workers} workers"
            );
            assert_eq!(par.counters, res.counters, "counters diverged at {workers} workers");
            assert_eq!(par.sim_stats, res.sim_stats);
            assert_eq!(par.rel_err.points(), res.rel_err.points());
        }
    }

    #[test]
    fn store_epoch_handoff_across_a_delta() {
        // A store attached across a crawl delta: dirtied groups hold
        // their publishes while re-solving (readers keep the pre-delta
        // epoch), then the final flush serves the new fixed point — the
        // tombstoned page drops out of the view, every surviving page
        // answers with the exact final rank bits.
        let g = edu_domain(&EduDomainConfig {
            n_pages: 1_000,
            n_sites: 10,
            ..EduDomainConfig::default()
        });
        let mut delta = GraphDelta::link_churn(&g, 0.02, 11);
        delta.ops.push(DeltaOp::DeletePage { page: 5 });
        let when = 150.0;
        let cfg = NetRunConfig {
            k: 16,
            n_nodes: 16,
            strategy: Strategy::HashByUrl,
            t_end: 400.0,
            sample_every: 2.0,
            deltas: vec![(when, delta)],
            ..NetRunConfig::default()
        };
        let store = crate::store::RankStore::new(16);
        let res = try_run_over_network_with_store(&g, cfg, Some(&store)).expect("valid config");
        let view = store.view();
        assert_eq!(view.lookup(5), None, "tombstoned page must drop out of the served view");
        for (p, &r) in res.final_ranks.iter().enumerate() {
            if p == 5 {
                continue;
            }
            let got = view.lookup(p as PageId);
            assert_eq!(
                got.map(|l| l.rank.to_bits()),
                Some(r.to_bits()),
                "served rank for page {p} must match the final fixed point"
            );
        }
    }

    #[test]
    fn continuous_delta_stream_tracks_the_evolving_web() {
        // The "live web" loop: crawl → delta → re-converge → repeat. Three
        // successive churn deltas land mid-run, each computed against the
        // graph state the previous one produced (exactly what a continuous
        // recrawl feeds in). The run must re-converge between every pair of
        // deltas, end at the final graph's fixed point, and replay
        // bit-identically across worker counts.
        let g0 = edu_domain(&EduDomainConfig {
            n_pages: 1_500,
            n_sites: 15,
            ..EduDomainConfig::default()
        });
        let times = [150.0, 320.0, 490.0];
        let mut deltas = Vec::new();
        let mut g = g0.clone();
        for (i, &t) in times.iter().enumerate() {
            let d = GraphDelta::link_churn(&g, 0.01, 100 + i as u64);
            g = d.apply(&g);
            deltas.push((t, d));
        }
        let base = NetRunConfig {
            k: 16,
            n_nodes: 16,
            strategy: Strategy::HashByUrl,
            t_end: 700.0,
            sample_every: 2.0,
            deltas,
            ..NetRunConfig::default()
        };
        let res = run_over_network(&g0, base.clone());
        let tol = 1e-3;
        // Converged before the first delta and re-converged inside every
        // inter-delta window.
        assert!(res.rel_err.value_at(times[0] - 1.0).unwrap() < tol);
        for w in times.windows(2) {
            let back = res.rel_err.first_time_below_after(w[0], tol);
            assert!(
                back.is_some_and(|t| t < w[1]),
                "must re-converge inside ({}, {}): {back:?}",
                w[0],
                w[1]
            );
        }
        assert!(res.final_rel_err < tol, "final fixed point: {}", res.final_rel_err);
        // Each delta ships to at least one dirty owner.
        assert!(res.counters.delta_messages >= times.len() as u64);
        let par = run_over_network(&g0, NetRunConfig { engine_workers: 4, ..base });
        assert_eq!(
            par.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            res.final_ranks.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(par.counters, res.counters);
        assert_eq!(par.rel_err.points(), res.rel_err.points());
    }
}
