//! Algorithms 3 & 4 — **DPR1** and **DPR2** as asynchronous actors.
//!
//! Each page ranker loops forever: refresh the afferent vector `X` from the
//! latest `Y` messages other groups managed to deliver, recompute `R`, send
//! fresh `Y` to every destination group, then sleep for an exponentially
//! distributed think time. The two variants differ only in how much work an
//! outer loop does:
//!
//! * **DPR1** runs `GroupPageRank` (Algorithm 2) to *inner convergence*
//!   before publishing `Y`;
//! * **DPR2** performs a *single* iteration `R ← A·R + βE + X` and eagerly
//!   publishes.
//!
//! Nodes start at different times, run at different speeds, and their `Y`
//! sends are dropped with probability `1 − p` — precisely the freedoms §4.2
//! grants ("ranking programs in all the nodes can start at different time,
//! execute at different 'speed', sleep for some time").
//!
//! With `R₀ = 0` the per-node rank sequences are monotone non-decreasing and
//! bounded by the centralized fixed point (Theorems 4.1/4.2); enabling
//! [`RankerNode::enable_theorem_tracking`] checks both properties at every
//! step of a live run.

use dpr_graph::PageId;
use dpr_partition::GroupId;
use dpr_sim::{Actor, Ctx};
use rand::Rng;

use crate::group::{AfferentState, GroupContext};

/// Which distributed algorithm a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DprVariant {
    /// Algorithm 3: inner-converge before every publish.
    Dpr1,
    /// Algorithm 4: one iteration per publish.
    Dpr2,
}

/// The `Y` payload one group sends another: aggregated
/// `(destination page, score)` pairs. The sender is identified by the
/// simulator's `from` index (= group id).
#[derive(Debug, Clone, PartialEq)]
pub struct YMessage {
    /// Aggregated rank transfers, keyed by global destination page.
    pub entries: Vec<(PageId, f64)>,
}

/// Node-churn model — §4.2 grants rankers the freedom to "sleep for some
/// time, suspend itself as its wish, or even shutdown". At each wake the
/// node blacks out with `prob`, skipping its loop body (no compute, no
/// publish; incoming `Y` still accumulates) for an exponential duration
/// with mean `mean_duration`.
#[derive(Debug, Clone, Copy)]
pub struct BlackoutModel {
    /// Probability a wake turns into a blackout.
    pub prob: f64,
    /// Mean blackout duration (exponential).
    pub mean_duration: f64,
}

/// Theorem 4.1/4.2 instrumentation state.
#[derive(Debug, Clone)]
struct TheoremTracker {
    /// R snapshot at the previous outer iteration.
    prev_r: Vec<f64>,
    /// Per-local-page upper bound (the centralized fixed point R*).
    bound: Option<Vec<f64>>,
    /// Whether monotonicity has held so far.
    monotone_ok: bool,
    /// Whether the bound has held so far.
    bounded_ok: bool,
}

/// Numeric slack for the theorem checks. The checks are exact in real
/// arithmetic, but the Theorem 4.2 upper bound is the *computed* centralized
/// fixed point — itself converged from below to within the solver tolerance
/// (~1e-8) — so the slack must absorb that residual as well as float jitter.
const THEOREM_TOL: f64 = 1e-6;

/// One page ranker: a [`GroupContext`] plus the mutable DPR loop state.
pub struct RankerNode {
    ctx: GroupContext,
    variant: DprVariant,
    /// Current rank vector `R` (local indexing).
    r: Vec<f64>,
    /// Afferent-rank bookkeeping (`X` and the per-source latest `Y`s).
    afferent: AfferentState,
    /// Mean think time of this group (drawn from `[T1, T2]` by the run
    /// harness).
    mean_wait: f64,
    /// Inner tolerance for DPR1's `GroupPageRank`.
    inner_epsilon: f64,
    /// Inner iteration cap.
    max_inner_iters: usize,
    /// Outer loop steps completed (the Fig 8 "number of iterations").
    pub outer_iterations: u64,
    /// Total inner `R ← AR + f` applications (cost accounting).
    pub inner_iterations: u64,
    /// Suppress re-sending `Y` entries that changed by at most this amount
    /// since they were last published (0.0 = always send everything). The
    /// §4.5/§7 communication-reduction knob; keep it well below the target
    /// accuracy.
    y_threshold: f64,
    /// Last published score per destination batch entry (lazily sized).
    last_sent: Option<Vec<Vec<f64>>>,
    /// Y entries actually published.
    pub y_entries_sent: u64,
    /// Y entries suppressed by the threshold.
    pub y_entries_suppressed: u64,
    /// Split-phase publication (§4.2: "we can insert some delays before or
    /// after any instructions"): when set, the `Y` computed at one wake is
    /// published at the *next* wake, so compute and publish never happen
    /// atomically.
    deferred_publish: bool,
    /// Y batches computed but not yet published (split-phase mode).
    pending_y: Vec<(GroupId, Vec<(PageId, f64)>)>,
    /// Optional churn model (see [`BlackoutModel`]).
    blackout: Option<BlackoutModel>,
    /// Number of blackouts taken.
    pub blackouts: u64,
    tracker: Option<TheoremTracker>,
}

impl RankerNode {
    /// Creates a node with `R₀ = 0` (the initial value under which
    /// Theorems 4.1/4.2 hold).
    #[must_use]
    pub fn new(ctx: GroupContext, variant: DprVariant, mean_wait: f64) -> Self {
        let n = ctx.n_local();
        Self {
            ctx,
            variant,
            r: vec![0.0; n],
            afferent: AfferentState::new(n),
            mean_wait,
            inner_epsilon: 1e-10,
            max_inner_iters: 10_000,
            outer_iterations: 0,
            inner_iterations: 0,
            y_threshold: 0.0,
            last_sent: None,
            y_entries_sent: 0,
            y_entries_suppressed: 0,
            deferred_publish: false,
            pending_y: Vec::new(),
            blackout: None,
            blackouts: 0,
            tracker: None,
        }
    }

    /// Overrides the DPR1 inner tolerance.
    #[must_use]
    pub fn with_inner_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0);
        self.inner_epsilon = epsilon;
        self
    }

    /// Enables thresholded `Y` publication (see [`Self::y_entries_sent`]).
    #[must_use]
    pub fn with_y_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold >= 0.0);
        self.y_threshold = threshold;
        self
    }

    /// Enables split-phase publication: compute at one wake, publish at the
    /// next (a §4.2-sanctioned reordering that stresses the asynchrony
    /// tolerance of the algorithm).
    #[must_use]
    pub fn with_deferred_publish(mut self) -> Self {
        self.deferred_publish = true;
        self
    }

    /// Enables node churn (§4.2's sleep/suspend/shutdown freedom).
    #[must_use]
    pub fn with_blackouts(mut self, model: BlackoutModel) -> Self {
        assert!((0.0..=1.0).contains(&model.prob));
        assert!(model.mean_duration >= 0.0);
        self.blackout = Some(model);
        self
    }

    /// Seeds `R` from a global rank vector (pages this group owns are
    /// copied in). Used to *warm-start* ranking after a re-crawl changed
    /// the link graph — the paper's dynamic-graph scenario (§4.3 notes the
    /// monotonicity theorems no longer apply, but convergence to the new
    /// fixed point is still expected; the contraction makes it so from any
    /// start).
    pub fn seed_ranks(&mut self, global: &[f64]) {
        for (li, &p) in self.ctx.pages().iter().enumerate() {
            if let Some(&v) = global.get(p as usize) {
                self.r[li] = v;
            }
        }
        // Monotonicity tracking baselines must restart from the seed.
        if let Some(t) = &mut self.tracker {
            t.prev_r.copy_from_slice(&self.r);
        }
    }

    /// Turns on Theorem 4.1/4.2 checking; `bound` is this group's slice of
    /// the centralized fixed point `R*` (local indexing), or `None` to
    /// check monotonicity only.
    pub fn enable_theorem_tracking(&mut self, bound: Option<Vec<f64>>) {
        if let Some(b) = &bound {
            assert_eq!(b.len(), self.ctx.n_local());
        }
        self.tracker = Some(TheoremTracker {
            prev_r: self.r.clone(),
            bound,
            monotone_ok: true,
            bounded_ok: true,
        });
    }

    /// Whether every theorem check passed so far (`None` if tracking is
    /// off). Returns `(monotone, bounded)`.
    #[must_use]
    pub fn theorems_held(&self) -> Option<(bool, bool)> {
        self.tracker.as_ref().map(|t| (t.monotone_ok, t.bounded_ok))
    }

    /// The group context.
    #[must_use]
    pub fn group(&self) -> &GroupContext {
        &self.ctx
    }

    /// Current local rank vector.
    #[must_use]
    pub fn ranks(&self) -> &[f64] {
        &self.r
    }

    /// The loop body shared by both variants: refresh X, compute R, publish
    /// Y. Factored out so tests can drive a node synchronously.
    fn loop_body(&mut self, ctx: &mut Ctx<'_, YMessage>) {
        let x = self.afferent.refresh();
        match self.variant {
            DprVariant::Dpr1 => {
                let report = self.ctx.group_pagerank(
                    &mut self.r,
                    x,
                    self.inner_epsilon,
                    self.max_inner_iters,
                );
                self.inner_iterations += report.iterations as u64;
            }
            DprVariant::Dpr2 => {
                self.ctx.step(&mut self.r, x);
                self.inner_iterations += 1;
            }
        }
        self.outer_iterations += 1;
        self.check_theorems();
        // Split-phase: publish what the *previous* wake computed.
        if self.deferred_publish {
            for (dest, entries) in std::mem::take(&mut self.pending_y) {
                self.y_entries_sent += entries.len() as u64;
                ctx.send(dest as usize, YMessage { entries });
            }
        }
        let ys = self.ctx.compute_y(&self.r);
        if self.deferred_publish {
            // Stash for the next wake (thresholding is bypassed in this
            // mode; the deferral itself already rate-limits publication).
            self.pending_y = ys;
            return;
        }
        let threshold = self.y_threshold;
        let last = self
            .last_sent
            .get_or_insert_with(|| ys.iter().map(|(_, e)| vec![0.0; e.len()]).collect());
        let mut sent = 0u64;
        let mut suppressed = 0u64;
        for (bi, (dest, entries)) in ys.into_iter().enumerate() {
            let filtered: Vec<(PageId, f64)> = if threshold > 0.0 {
                let batch_last = &mut last[bi];
                entries
                    .into_iter()
                    .enumerate()
                    .filter(|&(ei, (_, score))| {
                        if (score - batch_last[ei]).abs() > threshold {
                            batch_last[ei] = score;
                            true
                        } else {
                            suppressed += 1;
                            false
                        }
                    })
                    .map(|(_, e)| e)
                    .collect()
            } else {
                entries
            };
            if filtered.is_empty() {
                continue;
            }
            sent += filtered.len() as u64;
            ctx.send(dest as usize, YMessage { entries: filtered });
        }
        self.y_entries_sent += sent;
        self.y_entries_suppressed += suppressed;
    }

    fn check_theorems(&mut self) {
        let Some(t) = &mut self.tracker else { return };
        for (new, old) in self.r.iter().zip(&t.prev_r) {
            if *new < *old - THEOREM_TOL {
                t.monotone_ok = false;
            }
        }
        if let Some(bound) = &t.bound {
            for (new, b) in self.r.iter().zip(bound) {
                if *new > *b + THEOREM_TOL {
                    t.bounded_ok = false;
                }
            }
        }
        t.prev_r.copy_from_slice(&self.r);
    }

    /// Samples an exponential think time with this node's mean (zero mean ⇒
    /// immediate re-wake with a tiny guard so the simulation still
    /// advances).
    fn sample_wait(&self, ctx: &mut Ctx<'_, YMessage>) -> f64 {
        if self.mean_wait <= 0.0 {
            return 1e-3;
        }
        let u: f64 = ctx.rng().gen::<f64>();
        -self.mean_wait * (1.0 - u).ln()
    }
}

impl Actor for RankerNode {
    type Msg = YMessage;

    fn on_start(&mut self, ctx: &mut Ctx<'_, YMessage>) {
        // Nodes start at different times: the first wake is itself an
        // exponential draw.
        let w = self.sample_wait(ctx);
        ctx.schedule_wake(w);
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_, YMessage>) {
        use rand::Rng;
        if let Some(b) = self.blackout {
            if b.prob > 0.0 && ctx.rng().gen_bool(b.prob) {
                // Suspend: skip the loop body, come back later. Incoming Y
                // keeps accumulating in `afferent` meanwhile.
                self.blackouts += 1;
                let u: f64 = ctx.rng().gen::<f64>();
                let pause =
                    if b.mean_duration > 0.0 { -b.mean_duration * (1.0 - u).ln() } else { 0.0 };
                let wait = self.sample_wait(ctx);
                ctx.schedule_wake(pause + wait);
                return;
            }
        }
        if self.ctx.n_local() > 0 {
            self.loop_body(ctx);
        }
        let w = self.sample_wait(ctx);
        ctx.schedule_wake(w);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, YMessage>, from: usize, msg: YMessage) {
        // Merge (upsert) rather than replace: under thresholded publication
        // an absent entry means "unchanged since the last Y", and for full
        // publications merge and replace coincide (the entry set per
        // destination is fixed by the link structure).
        let localized = self.ctx.localize(&msg.entries);
        self.afferent.merge(from as GroupId, &localized);
    }
}

/// Stitches the per-group rank vectors of all nodes into one global rank
/// vector (page-indexed).
#[must_use]
pub fn assemble_global(nodes: &[RankerNode], n_pages: usize) -> Vec<f64> {
    let mut global = vec![0.0; n_pages];
    for node in nodes {
        for (li, &p) in node.group().pages().iter().enumerate() {
            global[p as usize] = node.ranks()[li];
        }
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::open_pagerank;
    use crate::config::RankConfig;
    use dpr_graph::generators::toy;
    use dpr_linalg::vec_ops::relative_error;
    use dpr_partition::{Partition, Strategy};
    use dpr_sim::{SimConfig, Simulation};

    fn make_nodes(
        g: &dpr_graph::WebGraph,
        k: usize,
        variant: DprVariant,
        mean_wait: f64,
    ) -> Vec<RankerNode> {
        let p = Partition::build(g, &Strategy::HashByUrl, k, 0);
        GroupContext::build_all(g, &p, &RankConfig::default())
            .into_iter()
            .map(|c| RankerNode::new(c, variant, mean_wait))
            .collect()
    }

    #[test]
    fn dpr1_converges_to_centralized_on_two_cliques() {
        let g = toy::two_cliques(5);
        let star = open_pagerank(&g, &RankConfig::default()).ranks;
        let nodes = make_nodes(&g, 4, DprVariant::Dpr1, 1.0);
        let mut sim = Simulation::new(nodes, SimConfig { seed: 1, ..SimConfig::default() });
        sim.run_until(200.0);
        let global = assemble_global(sim.actors(), g.n_pages());
        let err = relative_error(&global, &star);
        assert!(err < 1e-6, "rel err {err}");
    }

    #[test]
    fn dpr2_converges_to_centralized_on_two_cliques() {
        let g = toy::two_cliques(5);
        let star = open_pagerank(&g, &RankConfig::default()).ranks;
        let nodes = make_nodes(&g, 4, DprVariant::Dpr2, 1.0);
        let mut sim = Simulation::new(nodes, SimConfig { seed: 2, ..SimConfig::default() });
        sim.run_until(600.0);
        let global = assemble_global(sim.actors(), g.n_pages());
        let err = relative_error(&global, &star);
        assert!(err < 1e-5, "rel err {err}");
    }

    #[test]
    fn converges_despite_message_loss() {
        let g = toy::two_cliques(4);
        let star = open_pagerank(&g, &RankConfig::default()).ranks;
        let nodes = make_nodes(&g, 4, DprVariant::Dpr1, 1.0);
        let cfg = SimConfig { send_success_prob: 0.5, seed: 3, ..SimConfig::default() };
        let mut sim = Simulation::new(nodes, cfg);
        sim.run_until(800.0);
        let global = assemble_global(sim.actors(), g.n_pages());
        let err = relative_error(&global, &star);
        assert!(err < 1e-5, "rel err {err} under 50% loss");
        assert!(sim.stats().sends_dropped > 0, "loss was never exercised");
    }

    #[test]
    fn theorem_4_1_and_4_2_hold_during_dpr1() {
        let g = toy::two_cliques(5);
        let cfg = RankConfig::default();
        let star = open_pagerank(&g, &cfg).ranks;
        let p = Partition::build(&g, &Strategy::HashByUrl, 3, 0);
        let mut nodes: Vec<RankerNode> = GroupContext::build_all(&g, &p, &cfg)
            .into_iter()
            .map(|c| {
                let bound: Vec<f64> = c.pages().iter().map(|&pg| star[pg as usize]).collect();
                let mut n = RankerNode::new(c, DprVariant::Dpr1, 2.0);
                n.enable_theorem_tracking(Some(bound));
                n
            })
            .collect();
        // Lossy + heterogeneous — the theorems must hold regardless.
        nodes.iter_mut().for_each(|_| {});
        let sim_cfg = SimConfig { send_success_prob: 0.7, seed: 7, ..SimConfig::default() };
        let mut sim = Simulation::new(nodes, sim_cfg);
        sim.run_until(300.0);
        for (i, node) in sim.actors().iter().enumerate() {
            let (monotone, bounded) = node.theorems_held().unwrap();
            assert!(monotone, "node {i} violated Theorem 4.1");
            assert!(bounded, "node {i} violated Theorem 4.2");
        }
    }

    #[test]
    fn theorem_4_1_holds_for_dpr2_with_zero_start() {
        let g = toy::cycle(9);
        let p = Partition::build(&g, &Strategy::HashByUrl, 3, 0);
        let nodes: Vec<RankerNode> = GroupContext::build_all(&g, &p, &RankConfig::default())
            .into_iter()
            .map(|c| {
                let mut n = RankerNode::new(c, DprVariant::Dpr2, 1.0);
                n.enable_theorem_tracking(None);
                n
            })
            .collect();
        let mut sim = Simulation::new(nodes, SimConfig { seed: 11, ..SimConfig::default() });
        sim.run_until(300.0);
        for node in sim.actors() {
            assert!(node.theorems_held().unwrap().0);
        }
    }

    #[test]
    fn dpr1_uses_fewer_outer_iterations_than_dpr2() {
        let g = toy::two_cliques(6);
        let star = open_pagerank(&g, &RankConfig::default()).ranks;
        let outer_at_convergence = |variant| {
            let nodes = make_nodes(&g, 4, variant, 1.0);
            let mut sim = Simulation::new(nodes, SimConfig { seed: 5, ..SimConfig::default() });
            let mut t = 0.0;
            loop {
                t += 5.0;
                sim.run_until(t);
                let global = assemble_global(sim.actors(), g.n_pages());
                if relative_error(&global, &star) < 1e-4 || t > 2000.0 {
                    break;
                }
            }
            let total: u64 = sim.actors().iter().map(|n| n.outer_iterations).sum();
            total as f64 / sim.actors().len() as f64
        };
        let dpr1 = outer_at_convergence(DprVariant::Dpr1);
        let dpr2 = outer_at_convergence(DprVariant::Dpr2);
        assert!(dpr1 < dpr2, "DPR1 {dpr1} outer iters vs DPR2 {dpr2}");
    }

    #[test]
    fn split_phase_publication_still_converges_and_stays_monotone() {
        // §4.2 allows delays "before or after any instructions": publishing
        // the previous wake's Y must not break convergence or Theorem 4.1.
        let g = toy::two_cliques(5);
        let cfg = RankConfig::default();
        let star = open_pagerank(&g, &cfg).ranks;
        let p = Partition::build(&g, &Strategy::HashByUrl, 4, 0);
        let nodes: Vec<RankerNode> = GroupContext::build_all(&g, &p, &cfg)
            .into_iter()
            .map(|c| {
                let mut n = RankerNode::new(c, DprVariant::Dpr1, 1.0).with_deferred_publish();
                n.enable_theorem_tracking(None);
                n
            })
            .collect();
        let mut sim = Simulation::new(nodes, SimConfig { seed: 21, ..SimConfig::default() });
        sim.run_until(400.0);
        let global = assemble_global(sim.actors(), g.n_pages());
        let err = relative_error(&global, &star);
        assert!(err < 1e-5, "rel err {err} with split-phase publication");
        for node in sim.actors() {
            assert!(node.theorems_held().unwrap().0);
        }
    }

    #[test]
    fn convergence_survives_node_blackouts() {
        // Half the wakes turn into long suspensions: §4.2 says nodes may
        // "sleep for some time, suspend itself as its wish" — convergence
        // (and the theorems) must survive.
        let g = toy::two_cliques(5);
        let cfg = RankConfig::default();
        let star = open_pagerank(&g, &cfg).ranks;
        let p = Partition::build(&g, &Strategy::HashByUrl, 4, 0);
        let nodes: Vec<RankerNode> = GroupContext::build_all(&g, &p, &cfg)
            .into_iter()
            .map(|c| {
                let mut n = RankerNode::new(c, DprVariant::Dpr1, 1.0)
                    .with_blackouts(BlackoutModel { prob: 0.5, mean_duration: 10.0 });
                n.enable_theorem_tracking(None);
                n
            })
            .collect();
        let mut sim = Simulation::new(nodes, SimConfig { seed: 13, ..SimConfig::default() });
        sim.run_until(2_000.0);
        let global = assemble_global(sim.actors(), g.n_pages());
        let err = relative_error(&global, &star);
        assert!(err < 1e-5, "rel err {err} under churn");
        let total_blackouts: u64 = sim.actors().iter().map(|n| n.blackouts).sum();
        assert!(total_blackouts > 10, "churn never exercised");
        for node in sim.actors() {
            assert!(node.theorems_held().unwrap().0, "Thm 4.1 must survive churn");
        }
    }

    #[test]
    fn assemble_covers_every_page_once() {
        let g = toy::cycle(12);
        let nodes = make_nodes(&g, 5, DprVariant::Dpr1, 1.0);
        let covered: usize = nodes.iter().map(|n| n.group().n_local()).sum();
        assert_eq!(covered, 12);
        let global = assemble_global(&nodes, 12);
        assert_eq!(global.len(), 12);
    }
}
