//! Real-thread execution: every page ranker is an OS thread and `Y`
//! travels over crossbeam channels.
//!
//! The discrete-event runs ([`run`](crate::run), [`netrun`](crate::netrun))
//! prove the paper's properties under *controlled* asynchrony —
//! reproducible schedules, injected failures, per-node think times. This
//! module complements them with genuine parallel hardware: rankers compute
//! concurrently on all cores and exchange rank over channels.
//!
//! Execution is bulk-synchronous (Pregel-style): within a round every
//! ranker drains its inbox, solves its group, and publishes `Y`; a barrier
//! separates rounds, so everything sent in round `i` is visible in round
//! `i + 1`. The barrier makes termination exact — a round in which no
//! ranker moved more than `epsilon` publishes nothing, so the system is
//! quiescent — and makes results *deterministic* even though threads race
//! freely inside a round (the afferent state sums per-source contributions
//! in a fixed order, so arrival order cannot perturb the floats). The
//! fully asynchronous schedule of §4.2 lives in the simulator, where it can
//! be controlled and replayed; here the point is correctness on real
//! parallelism.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};
use dpr_graph::{PageId, WebGraph};
use dpr_linalg::{vec_ops, Pool};
use dpr_partition::{GroupId, Partition, Strategy};

use crate::centralized::open_pagerank;
use crate::config::RankConfig;
use crate::dpr::DprVariant;
use crate::group::{AfferentState, GroupContext};

/// Parameters of a real-thread run.
#[derive(Debug, Clone)]
pub struct ThreadedRunConfig {
    /// Number of page rankers (= OS threads).
    pub k: usize,
    /// Page → ranker strategy.
    pub strategy: Strategy,
    /// Ranking parameters.
    pub rank: RankConfig,
    /// DPR1 (inner-converge per publish) or DPR2 (one step per publish).
    pub variant: DprVariant,
    /// Stop once no ranker's `R` moved more than this in a round.
    pub quiescence_epsilon: f64,
    /// Safety cap on rounds.
    pub max_rounds: u64,
    /// Worker pool for each ranker's *inner* solve kernels. Defaults to
    /// sequential: the rankers themselves already occupy one core each, so
    /// hand a real pool in only when `k` is small relative to the machine
    /// (e.g. 2 rankers on a 16-core box). The kernels' fixed chunking
    /// keeps results bit-identical whichever pool is used.
    pub solver_pool: Pool,
}

impl Default for ThreadedRunConfig {
    fn default() -> Self {
        Self {
            k: 8,
            strategy: Strategy::HashBySite,
            rank: RankConfig::default(),
            variant: DprVariant::Dpr1,
            quiescence_epsilon: 1e-9,
            max_rounds: 100_000,
            solver_pool: Pool::sequential(),
        }
    }
}

/// Result of a real-thread run.
#[derive(Debug, Clone)]
pub struct ThreadedRunResult {
    /// Final global ranks.
    pub final_ranks: Vec<f64>,
    /// Relative error vs the centralized fixed point.
    pub final_rel_err: f64,
    /// Rounds until quiescence.
    pub rounds: u64,
    /// Total `Y` messages exchanged.
    pub messages: u64,
}

/// A `Y` payload on the wire: `(source group, entries)`.
type YWire = (GroupId, Vec<(PageId, f64)>);

/// Shared coordination state.
struct Coord {
    /// Barrier 1: everyone finished draining + computing — only now may
    /// anyone publish (otherwise a fast thread's round-i+1 publish could
    /// race into a slow thread's round-i+1 drain and break determinism).
    compute_done: Barrier,
    /// Barrier 2: everyone finished publishing.
    publish_done: Barrier,
    /// Barrier 3: leader has evaluated quiescence.
    round_done: Barrier,
    /// Max L1 movement this round, as f64 bits (valid fetch_max for
    /// non-negative floats).
    max_moved_bits: AtomicU64,
    /// Set by the leader when the round moved less than epsilon.
    done: AtomicBool,
    /// Rounds completed.
    rounds: AtomicU64,
}

/// Runs distributed page ranking on real threads until global quiescence.
///
/// # Panics
/// If the configuration is invalid or a ranker thread panics.
#[must_use]
pub fn run_threaded(g: &WebGraph, cfg: &ThreadedRunConfig) -> ThreadedRunResult {
    cfg.rank.validate(g.n_pages());
    assert!(cfg.k >= 1);
    assert!(cfg.quiescence_epsilon > 0.0);

    let partition = Partition::build(g, &cfg.strategy, cfg.k, 0);
    let reference = open_pagerank(g, &cfg.rank).ranks;
    let contexts = GroupContext::build_all(g, &partition, &cfg.rank);

    let (senders, receivers): (Vec<Sender<YWire>>, Vec<Receiver<YWire>>) =
        (0..cfg.k).map(|_| unbounded()).unzip();
    let coord = Arc::new(Coord {
        compute_done: Barrier::new(cfg.k),
        publish_done: Barrier::new(cfg.k),
        round_done: Barrier::new(cfg.k),
        max_moved_bits: AtomicU64::new(0),
        done: AtomicBool::new(false),
        rounds: AtomicU64::new(0),
    });

    let results: Vec<(GroupContext, Vec<f64>, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.k);
        for (i, (ctx, inbox)) in contexts.into_iter().zip(receivers).enumerate() {
            let senders = senders.clone();
            let coord = Arc::clone(&coord);
            let cfg = cfg.clone();
            handles.push(
                scope.spawn(move || ranker_thread(i == 0, ctx, inbox, senders, &coord, &cfg)),
            );
        }
        drop(senders);
        handles.into_iter().map(|h| h.join().expect("ranker thread panicked")).collect()
    });

    let mut final_ranks = vec![0.0; g.n_pages()];
    let mut messages = 0u64;
    for (ctx, r, sent) in &results {
        for (li, &p) in ctx.pages().iter().enumerate() {
            final_ranks[p as usize] = r[li];
        }
        messages += sent;
    }
    ThreadedRunResult {
        final_rel_err: vec_ops::relative_error(&final_ranks, &reference),
        final_ranks,
        rounds: coord.rounds.load(Ordering::Acquire),
        messages,
    }
}

/// Body of one ranker thread. Returns `(context, R, messages sent)`.
fn ranker_thread(
    leader: bool,
    ctx: GroupContext,
    inbox: Receiver<YWire>,
    senders: Vec<Sender<YWire>>,
    coord: &Coord,
    cfg: &ThreadedRunConfig,
) -> (GroupContext, Vec<f64>, u64) {
    let n = ctx.n_local();
    let mut r = vec![0.0; n];
    let mut prev = vec![0.0; n];
    let mut afferent = AfferentState::new(n);
    let mut sent = 0u64;

    loop {
        // --- compute phase -------------------------------------------------
        // Everything published last round is already in the inbox (sends
        // happened before the senders crossed barrier B).
        while let Ok((src, entries)) = inbox.try_recv() {
            let localized = ctx.localize(&entries);
            afferent.merge(src, &localized);
        }
        let x = afferent.refresh();
        match cfg.variant {
            DprVariant::Dpr1 => {
                ctx.group_pagerank_pooled(&mut r, x, 1e-12, 100_000, &cfg.solver_pool);
            }
            DprVariant::Dpr2 => {
                ctx.step_pooled(&mut r, x, &cfg.solver_pool);
            }
        }
        let moved = vec_ops::l1_diff(&r, &prev);
        prev.copy_from_slice(&r);
        coord.max_moved_bits.fetch_max(moved.abs().to_bits(), Ordering::AcqRel);

        // --- publish phase (gated so no drain can observe this round) ------
        coord.compute_done.wait();
        if moved > cfg.quiescence_epsilon {
            for (dest, entries) in ctx.compute_y(&r) {
                if senders[dest as usize].send((ctx.group_id(), entries)).is_ok() {
                    sent += 1;
                }
            }
        }
        coord.publish_done.wait();

        // --- decide phase (leader) -----------------------------------------
        if leader {
            let max_moved = f64::from_bits(coord.max_moved_bits.load(Ordering::Acquire));
            let round = coord.rounds.fetch_add(1, Ordering::AcqRel) + 1;
            if max_moved <= cfg.quiescence_epsilon || round >= cfg.max_rounds {
                coord.done.store(true, Ordering::Release);
            }
            coord.max_moved_bits.store(0, Ordering::Release);
        }
        coord.round_done.wait();
        if coord.done.load(Ordering::Acquire) {
            return (ctx, r, sent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
    use dpr_graph::generators::toy;

    #[test]
    fn threads_converge_to_centralized_ranks() {
        let g = toy::two_cliques(6);
        let res = run_threaded(&g, &ThreadedRunConfig { k: 4, ..ThreadedRunConfig::default() });
        assert!(res.final_rel_err < 1e-6, "rel err {}", res.final_rel_err);
        assert!(res.messages > 0);
        assert!(res.rounds > 1);
    }

    #[test]
    fn many_threads_on_a_real_dataset() {
        let g = edu_domain(&EduDomainConfig {
            n_pages: 3_000,
            n_sites: 24,
            ..EduDomainConfig::default()
        });
        let res = run_threaded(
            &g,
            &ThreadedRunConfig {
                k: 16,
                strategy: Strategy::HashByUrl,
                ..ThreadedRunConfig::default()
            },
        );
        assert!(res.final_rel_err < 1e-6, "rel err {}", res.final_rel_err);
    }

    #[test]
    fn dpr2_variant_also_terminates_and_converges() {
        let g = toy::two_cliques(5);
        let res = run_threaded(
            &g,
            &ThreadedRunConfig { k: 4, variant: DprVariant::Dpr2, ..ThreadedRunConfig::default() },
        );
        assert!(res.final_rel_err < 1e-5, "rel err {}", res.final_rel_err);
        // One Jacobi step per round: rounds ≈ the CPR iteration count.
        assert!(res.rounds >= 5);
    }

    #[test]
    fn single_thread_degenerates_to_cpr() {
        let g = toy::complete(6);
        let res = run_threaded(&g, &ThreadedRunConfig { k: 1, ..ThreadedRunConfig::default() });
        assert!(res.final_rel_err < 1e-8, "rel err {}", res.final_rel_err);
        assert_eq!(res.messages, 0);
    }

    #[test]
    fn results_are_bit_deterministic_across_runs() {
        // Threads race inside a round, but the barrier discipline plus the
        // fixed-order afferent summation make the output exact.
        let g = edu_domain(&EduDomainConfig {
            n_pages: 1_000,
            n_sites: 10,
            ..EduDomainConfig::default()
        });
        let cfg = ThreadedRunConfig { k: 8, ..ThreadedRunConfig::default() };
        let a = run_threaded(&g, &cfg);
        let b = run_threaded(&g, &cfg);
        assert_eq!(a.final_ranks, b.final_ranks);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn matches_the_simulated_run_fixed_point() {
        // Real threads and the discrete-event simulator must land on the
        // same fixed point (both converge to CPR).
        let g = toy::two_cliques(5);
        let threaded =
            run_threaded(&g, &ThreadedRunConfig { k: 4, ..ThreadedRunConfig::default() });
        let simulated = crate::run::run_distributed(
            &g,
            crate::run::DistributedRunConfig {
                k: 4,
                strategy: Strategy::HashBySite,
                t_end: 300.0,
                ..crate::run::DistributedRunConfig::default()
            },
        );
        let diff = vec_ops::l1_diff(&threaded.final_ranks, &simulated.final_ranks);
        assert!(diff < 1e-5, "threaded and simulated runs disagree by {diff}");
    }
}
