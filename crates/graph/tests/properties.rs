//! Property tests for the graph substrate: builder/IO round-trips, stats
//! consistency, and generator invariants over randomized configurations.

use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::generators::random;
use dpr_graph::refresh::recrawl;
use dpr_graph::{GraphBuilder, GraphStats, WebGraph};
use proptest::prelude::*;

/// Arbitrary small graph: sites, page→site assignment, links, ext counts.
fn arb_graph() -> impl Strategy<Value = WebGraph> {
    (1usize..6, 1usize..40).prop_flat_map(|(n_sites, n_pages)| {
        let links = prop::collection::vec((0..n_pages as u32, 0..n_pages as u32), 0..120);
        let ext = prop::collection::vec(0u32..4, n_pages);
        let sites = prop::collection::vec(0..n_sites as u32, n_pages);
        (Just(n_sites), sites, links, ext).prop_map(|(n_sites, sites, links, ext)| {
            let mut b = GraphBuilder::new();
            for s in 0..n_sites {
                b.add_site(format!("www.s{s}.edu"));
            }
            for &s in &sites {
                b.add_page(s);
            }
            for &(u, v) in &links {
                b.add_link(u, v);
            }
            for (p, &e) in ext.iter().enumerate() {
                b.add_external_links(p as u32, e);
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        dpr_graph::io::write_graph(&g, &mut buf).unwrap();
        let back = dpr_graph::io::read_graph(buf.as_slice()).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn degree_bookkeeping_consistent(g in arb_graph()) {
        let total_internal: u64 =
            (0..g.n_pages() as u32).map(|p| u64::from(g.internal_out_degree(p))).sum();
        prop_assert_eq!(total_internal, g.n_internal_links() as u64);
        let total: u64 = (0..g.n_pages() as u32).map(|p| u64::from(g.out_degree(p))).sum();
        prop_assert_eq!(total, g.n_total_links());
        // In-degrees sum to internal link count too.
        let in_sum: u64 = g.in_degrees().iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(in_sum, g.n_internal_links() as u64);
    }

    #[test]
    fn stats_agree_with_direct_queries(g in arb_graph()) {
        let s = GraphStats::compute(&g);
        prop_assert_eq!(s.n_pages, g.n_pages());
        prop_assert_eq!(s.n_internal_links, g.n_internal_links());
        prop_assert_eq!(s.n_external_links, g.n_external_links());
        prop_assert_eq!(s.n_dangling, g.dangling_pages().len());
        prop_assert!(s.intra_site_fraction >= 0.0 && s.intra_site_fraction <= 1.0);
    }

    #[test]
    fn out_links_sorted_and_in_range(g in arb_graph()) {
        for p in 0..g.n_pages() as u32 {
            let links = g.out_links(p);
            prop_assert!(links.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(links.iter().all(|&v| (v as usize) < g.n_pages()));
        }
    }

    #[test]
    fn recrawl_preserves_identity_of_surviving_pages(
        g in arb_graph(),
        change in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        prop_assume!(g.n_pages() > 0);
        let (g2, report) = recrawl(&g, change, 0.2, seed);
        prop_assert!(g2.n_pages() >= g.n_pages());
        for p in 0..g.n_pages() as u32 {
            prop_assert_eq!(g2.site(p), g.site(p));
            prop_assert_eq!(g2.url_of(p), g.url_of(p));
            // Total degree preserved even for changed pages.
            prop_assert_eq!(g2.out_degree(p), g.out_degree(p));
        }
        for &p in &report.new_pages {
            prop_assert!((p as usize) >= g.n_pages());
        }
    }

    #[test]
    fn erdos_renyi_structure(n in 2usize..200, sites in 1usize..8, seed in 0u64..100) {
        let g = random::erdos_renyi(n, sites, 3.0, seed);
        prop_assert_eq!(g.n_pages(), n);
        prop_assert_eq!(g.n_sites(), sites);
        prop_assert!(g.links().all(|(u, v)| u != v));
    }

    #[test]
    fn edu_domain_internal_fraction_tracks_config(
        frac in 0.2f64..0.8,
        seed in 0u64..50,
    ) {
        let g = edu_domain(&EduDomainConfig {
            n_pages: 3_000,
            n_sites: 20,
            internal_fraction: frac,
            seed,
            ..EduDomainConfig::default()
        });
        let measured = g.n_internal_links() as f64 / g.n_total_links() as f64;
        prop_assert!((measured - frac).abs() < 0.08, "measured {measured} vs cfg {frac}");
    }
}
