//! Property tests for the graph substrate: builder/IO round-trips, stats
//! consistency, and generator invariants over randomized configurations.

use dpr_graph::generators::edu::{edu_domain, stream_graph, EduDomainConfig, SnapshotSink};
use dpr_graph::generators::random;
use dpr_graph::refresh::{recrawl, recrawl_with_deletions};
use dpr_graph::{GraphBuilder, GraphDelta, GraphStats, WebGraph};
use proptest::prelude::*;
use std::io::Cursor;

/// Arbitrary small graph: sites, page→site assignment, links, ext counts.
fn arb_graph() -> impl Strategy<Value = WebGraph> {
    (1usize..6, 1usize..40).prop_flat_map(|(n_sites, n_pages)| {
        let links = prop::collection::vec((0..n_pages as u32, 0..n_pages as u32), 0..120);
        let ext = prop::collection::vec(0u32..4, n_pages);
        let sites = prop::collection::vec(0..n_sites as u32, n_pages);
        (Just(n_sites), sites, links, ext).prop_map(|(n_sites, sites, links, ext)| {
            let mut b = GraphBuilder::new();
            for s in 0..n_sites {
                b.add_site(format!("www.s{s}.edu"));
            }
            for &s in &sites {
                b.add_page(s);
            }
            for &(u, v) in &links {
                b.add_link(u, v);
            }
            for (p, &e) in ext.iter().enumerate() {
                b.add_external_links(p as u32, e);
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        dpr_graph::io::write_graph(&g, &mut buf).unwrap();
        let back = dpr_graph::io::read_graph(buf.as_slice()).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn degree_bookkeeping_consistent(g in arb_graph()) {
        let total_internal: u64 =
            (0..g.n_pages() as u32).map(|p| u64::from(g.internal_out_degree(p))).sum();
        prop_assert_eq!(total_internal, g.n_internal_links() as u64);
        let total: u64 = (0..g.n_pages() as u32).map(|p| u64::from(g.out_degree(p))).sum();
        prop_assert_eq!(total, g.n_total_links());
        // In-degrees sum to internal link count too.
        let in_sum: u64 = g.in_degrees().iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(in_sum, g.n_internal_links() as u64);
    }

    #[test]
    fn stats_agree_with_direct_queries(g in arb_graph()) {
        let s = GraphStats::compute(&g);
        prop_assert_eq!(s.n_pages, g.n_pages());
        prop_assert_eq!(s.n_internal_links, g.n_internal_links());
        prop_assert_eq!(s.n_external_links, g.n_external_links());
        prop_assert_eq!(s.n_dangling, g.dangling_pages().len());
        prop_assert!(s.intra_site_fraction >= 0.0 && s.intra_site_fraction <= 1.0);
    }

    #[test]
    fn out_links_sorted_and_in_range(g in arb_graph()) {
        for p in 0..g.n_pages() as u32 {
            let links = g.out_links(p);
            prop_assert!(links.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(links.iter().all(|&v| (v as usize) < g.n_pages()));
        }
    }

    #[test]
    fn recrawl_preserves_identity_of_surviving_pages(
        g in arb_graph(),
        change in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        prop_assume!(g.n_pages() > 0);
        let (g2, report) = recrawl(&g, change, 0.2, seed);
        prop_assert!(g2.n_pages() >= g.n_pages());
        for p in 0..g.n_pages() as u32 {
            prop_assert_eq!(g2.site(p), g.site(p));
            prop_assert_eq!(g2.url_of(p), g.url_of(p));
            // Total degree preserved even for changed pages.
            prop_assert_eq!(g2.out_degree(p), g.out_degree(p));
        }
        for &p in &report.new_pages {
            prop_assert!((p as usize) >= g.n_pages());
        }
    }

    /// Satellite: `snapshot + deltas == re-snapshot`. A crawl refresh with
    /// deletions plus a round of link churn are shipped as `DPRD1` records
    /// behind the base snapshot, both paths streamed through the
    /// `PageRowSink` snapshot sink; applying the records read back must
    /// reproduce the mutated graph byte for byte.
    #[test]
    fn snapshot_plus_deltas_equals_resnapshot(
        g in arb_graph(),
        change in 0.0f64..1.0,
        delete in 0.0f64..0.5,
        seed in 0u64..200,
    ) {
        prop_assume!(g.n_pages() >= 2);
        let (g2, report) = recrawl_with_deletions(&g, change, 0.2, delete, seed);
        let mut written = vec![GraphDelta::from_recrawl(&g, &g2, &report)];
        let mut expected = g2;
        if expected.n_internal_links() > 0 {
            let churn = GraphDelta::link_churn(&expected, 0.3, seed ^ 1);
            expected = churn.apply(&expected);
            written.push(churn);
        }

        // Base snapshot through the PageRowSink path, delta records behind.
        let mut sink = SnapshotSink::new(Cursor::new(Vec::new()), g.n_pages());
        stream_graph(&g, &mut sink).unwrap();
        let mut bytes = sink.finish().unwrap().into_inner();
        for d in &written {
            dpr_graph::io::write_delta(d, &mut bytes).unwrap();
        }

        let (base, deltas) = dpr_graph::io::read_snapshot_with_deltas(bytes.as_slice()).unwrap();
        prop_assert_eq!(&base, &g);
        prop_assert_eq!(&deltas, &written);
        let mut mutated = base;
        for d in &deltas {
            mutated = d.apply(&mutated);
        }
        prop_assert_eq!(&mutated, &expected);

        // Re-snapshot of the applied graph, again through the sink: byte
        // identical to a direct snapshot of the independently mutated graph.
        let mut re = SnapshotSink::new(Cursor::new(Vec::new()), mutated.n_pages());
        stream_graph(&mutated, &mut re).unwrap();
        let re_bytes = re.finish().unwrap().into_inner();
        let mut direct = Cursor::new(Vec::new());
        dpr_graph::io::write_snapshot(&expected, &mut direct).unwrap();
        prop_assert_eq!(re_bytes, direct.into_inner());
    }

    #[test]
    fn erdos_renyi_structure(n in 2usize..200, sites in 1usize..8, seed in 0u64..100) {
        let g = random::erdos_renyi(n, sites, 3.0, seed);
        prop_assert_eq!(g.n_pages(), n);
        prop_assert_eq!(g.n_sites(), sites);
        prop_assert!(g.links().all(|(u, v)| u != v));
    }

    #[test]
    fn edu_domain_internal_fraction_tracks_config(
        frac in 0.2f64..0.8,
        seed in 0u64..50,
    ) {
        let g = edu_domain(&EduDomainConfig {
            n_pages: 3_000,
            n_sites: 20,
            internal_fraction: frac,
            seed,
            ..EduDomainConfig::default()
        });
        let measured = g.n_internal_links() as f64 / g.n_total_links() as f64;
        prop_assert!((measured - frac).abs() < 0.08, "measured {measured} vs cfg {frac}");
    }
}
