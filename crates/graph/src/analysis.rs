//! Link-graph analysis: strongly connected components, rank-sink
//! detection, reachability and degree diagnostics.
//!
//! The paper's §2 recalls why PageRank needs the `(1−c)E` term: "avoiding
//! rank sink". A *rank sink* is a set of pages that rank can enter but
//! never leave — formally, a strongly connected component with no edges
//! leaving it (and, in an open system, no external out-links either).
//! Without virtual links, iteration drains all rank into sinks; with them
//! (`β > 0`), the fixed point exists regardless. This module finds the
//! sinks so datasets can be audited, and provides the reachability
//! utilities the crawler analysis uses.

use crate::graph::{PageId, WebGraph};

/// Strongly connected components via Tarjan's algorithm (iterative — web
//  graphs are deep enough to overflow a recursive stack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sccs {
    /// Component id per page (components are numbered in reverse
    /// topological order: edges go from higher component ids to lower).
    pub component_of: Vec<u32>,
    /// Number of components.
    pub n_components: usize,
}

/// Computes the strongly connected components of the internal link graph.
#[must_use]
pub fn tarjan_scc(g: &WebGraph) -> Sccs {
    let n = g.n_pages();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component_of = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut n_components = 0u32;

    // Explicit DFS state machine: (node, next-child-offset).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            let vi = v as usize;
            if *child == 0 {
                index[vi] = next_index;
                lowlink[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let links = g.out_links(v);
            if *child < links.len() {
                let w = links[*child];
                *child += 1;
                let wi = w as usize;
                if index[wi] == UNSET {
                    call.push((w, 0));
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            } else {
                // v is finished.
                if lowlink[vi] == index[vi] {
                    // Root of a component: pop it.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component_of[w as usize] = n_components;
                        if w == v {
                            break;
                        }
                    }
                    n_components += 1;
                }
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    let pi = p as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
            }
        }
    }
    Sccs { component_of, n_components: n_components as usize }
}

/// A rank sink: a strongly connected component that rank enters but never
/// leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankSink {
    /// Pages of the sink component.
    pub pages: Vec<PageId>,
    /// Whether the sink also lacks external out-links (a *closed* sink: in
    /// the open-system model rank parked here only drains via `1 − α`
    /// decay, never via links).
    pub closed: bool,
}

/// Finds all rank sinks: SCCs with no internal edges leaving the component.
/// With `closed_only`, only sinks without external out-links are returned —
/// those are the pathological ones for closed-system PageRank (§2's "rank
/// sink" that the `E` term exists to fix).
#[must_use]
pub fn rank_sinks(g: &WebGraph, closed_only: bool) -> Vec<RankSink> {
    let sccs = tarjan_scc(g);
    let mut escapes = vec![false; sccs.n_components];
    for (u, v) in g.links() {
        let cu = sccs.component_of[u as usize];
        let cv = sccs.component_of[v as usize];
        if cu != cv {
            escapes[cu as usize] = true;
        }
    }
    let mut members: Vec<Vec<PageId>> = vec![Vec::new(); sccs.n_components];
    let mut has_external = vec![false; sccs.n_components];
    for p in 0..g.n_pages() as u32 {
        let c = sccs.component_of[p as usize] as usize;
        members[c].push(p);
        if g.external_out_degree(p) > 0 {
            has_external[c] = true;
        }
    }
    members
        .into_iter()
        .enumerate()
        .filter(|(c, _)| !escapes[*c])
        .map(|(c, pages)| RankSink { pages, closed: !has_external[c] })
        .filter(|s| !closed_only || s.closed)
        .collect()
}

/// Pages reachable from `seeds` along internal links (BFS). The crawler's
/// reachable set; also useful to find orphaned regions.
#[must_use]
pub fn reachable_from(g: &WebGraph, seeds: &[PageId]) -> Vec<bool> {
    let mut seen = vec![false; g.n_pages()];
    let mut queue: std::collections::VecDeque<PageId> = seeds
        .iter()
        .copied()
        .filter(|&p| {
            let fresh = !seen[p as usize];
            seen[p as usize] = true;
            fresh
        })
        .collect();
    while let Some(u) = queue.pop_front() {
        for &v in g.out_links(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// BFS distance (in links, following edges *forward*) from the seed set;
/// `u32::MAX` for unreachable pages. Rank perturbations propagate along
/// links, so this is the natural distance for locality analysis.
#[must_use]
pub fn bfs_distance(g: &WebGraph, seeds: &[PageId]) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n_pages()];
    let mut queue = std::collections::VecDeque::new();
    for &p in seeds {
        if dist[p as usize] == u32::MAX {
            dist[p as usize] = 0;
            queue.push_back(p);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        for &v in g.out_links(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = d + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::toy;

    #[test]
    fn cycle_is_one_component() {
        let g = toy::cycle(6);
        let s = tarjan_scc(&g);
        assert_eq!(s.n_components, 1);
        assert!(s.component_of.iter().all(|&c| c == s.component_of[0]));
    }

    #[test]
    fn chain_is_all_singletons_topologically_ordered() {
        let g = toy::chain(5);
        let s = tarjan_scc(&g);
        assert_eq!(s.n_components, 5);
        // Edges u -> u+1 must go from higher to lower component id
        // (reverse topological numbering).
        for (u, v) in g.links() {
            assert!(
                s.component_of[u as usize] > s.component_of[v as usize],
                "edge {u}->{v} violates component order"
            );
        }
    }

    #[test]
    fn two_cliques_with_bidirectional_bridge_merge() {
        let g = toy::two_cliques(3);
        let s = tarjan_scc(&g);
        // Bridge in both directions ⇒ everything is one SCC.
        assert_eq!(s.n_components, 1);
    }

    #[test]
    fn detects_the_classic_rank_sink() {
        // Page 0 -> {1, 2} which link only to each other: {1, 2} is a
        // closed rank sink, {0} escapes.
        let mut b = GraphBuilder::new();
        let s = b.add_site("a.edu");
        let p0 = b.add_page(s);
        let p1 = b.add_page(s);
        let p2 = b.add_page(s);
        b.add_link(p0, p1);
        b.add_link(p1, p2);
        b.add_link(p2, p1);
        let g = b.build();
        let sinks = rank_sinks(&g, false);
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].pages, vec![p1, p2]);
        assert!(sinks[0].closed);
        // With an external link out of p2 the sink is no longer closed.
        let mut b = GraphBuilder::new();
        let s = b.add_site("a.edu");
        let q0 = b.add_page(s);
        let q1 = b.add_page(s);
        let q2 = b.add_page(s);
        b.add_link(q0, q1);
        b.add_link(q1, q2);
        b.add_link(q2, q1);
        b.add_external_links(q2, 1);
        let g = b.build();
        let open_sinks = rank_sinks(&g, true);
        assert!(open_sinks.is_empty());
        let all_sinks = rank_sinks(&g, false);
        assert_eq!(all_sinks.len(), 1);
        assert!(!all_sinks[0].closed);
    }

    #[test]
    fn dangling_page_is_a_trivial_sink() {
        let g = toy::chain(3); // page 2 dangles
        let sinks = rank_sinks(&g, true);
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].pages, vec![2]);
    }

    #[test]
    fn cycle_with_no_escape_is_a_sink_star_is_not() {
        assert_eq!(rank_sinks(&toy::cycle(5), false).len(), 1);
        // The star's hub and spokes form one SCC covering the whole graph —
        // a "sink" only in the trivial whole-graph sense.
        let sinks = rank_sinks(&toy::star(5), false);
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].pages.len(), 5);
    }

    #[test]
    fn reachability_from_seeds() {
        let g = toy::chain(5);
        let r = reachable_from(&g, &[2]);
        assert_eq!(r, vec![false, false, true, true, true]);
        let r = reachable_from(&g, &[0]);
        assert!(r.iter().all(|&x| x));
        let r = reachable_from(&g, &[]);
        assert!(r.iter().all(|&x| !x));
    }

    #[test]
    fn bfs_distance_on_chain() {
        let g = toy::chain(5);
        assert_eq!(bfs_distance(&g, &[1]), vec![u32::MAX, 0, 1, 2, 3]);
        assert_eq!(bfs_distance(&g, &[]), vec![u32::MAX; 5]);
        assert_eq!(bfs_distance(&g, &[0, 3])[3], 0);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // The iterative Tarjan must survive a 100k-deep path.
        let n = 100_000;
        let mut b = GraphBuilder::with_capacity(n, n);
        let s = b.add_site("deep.edu");
        let pages: Vec<_> = (0..n).map(|_| b.add_page(s)).collect();
        for i in 0..n - 1 {
            b.add_link(pages[i], pages[i + 1]);
        }
        let g = b.build();
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.n_components, n);
    }
}
