//! The URL model.
//!
//! The paper's bandwidth analysis (§4.5) assumes an average URL size of
//! 40 bytes, citing Cho & Garcia-Molina \[16\], and link-exchange records of
//! `<url_from, url_to, score>` ≈ 100 bytes. Rather than hard-coding those
//! constants into the transport layer, we synthesize *actual* URL strings
//! deterministically from page/site ids with an average length tuned to
//! ≈ 40 bytes, and let the wire codec measure real encoded sizes. The
//! analytic model (`dpr-model`) still uses the paper's constants for the
//! closed-form tables.

use crate::graph::PageId;

/// Directory components used to synthesize paths; chosen so the average full
/// URL lands near 40 bytes.
const DIRS: &[&str] =
    &["", "~grad", "people", "research", "courses", "pub", "docs", "lab", "dept/cs", "news"];

/// Page-name stems.
const STEMS: &[&str] = &["index", "page", "paper", "note", "home", "pub", "item", "post"];

/// Synthesizes a deterministic host name for site `s`, e.g.
/// `www.cs-0042.edu`.
#[must_use]
pub fn site_host(s: u32) -> String {
    format!("www.cs-{s:04}.edu")
}

/// Synthesizes the full URL of page `u` hosted on `host`.
///
/// The mapping is pure: the same `(host, u)` always yields the same URL, so
/// URLs never need to be stored.
#[must_use]
pub fn page_url(host: &str, u: PageId) -> String {
    // Mix the page id so consecutive ids don't all share a directory.
    let h = splitmix64(u64::from(u));
    let dir = DIRS[(h % DIRS.len() as u64) as usize];
    let stem = STEMS[((h >> 8) % STEMS.len() as u64) as usize];
    if dir.is_empty() {
        format!("http://{host}/{stem}{u}.html")
    } else {
        format!("http://{host}/{dir}/{stem}{u}.html")
    }
}

/// SplitMix64 — tiny, high-quality 64-bit mixer (public domain algorithm);
/// used wherever the repository needs a stateless deterministic hash.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stateless string hash (FNV-1a 64-bit) for URL/site hashing in the
/// partitioning strategies. Stable across runs and platforms — a requirement
/// for §4.1's "same page maps to the same ranker on re-crawl" property
/// (`std`'s `DefaultHasher` is seeded per-process and would break it).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_host_format() {
        assert_eq!(site_host(42), "www.cs-0042.edu");
        assert_eq!(site_host(0), "www.cs-0000.edu");
    }

    #[test]
    fn urls_deterministic() {
        assert_eq!(page_url("www.cs-0001.edu", 7), page_url("www.cs-0001.edu", 7));
        assert_ne!(page_url("www.cs-0001.edu", 7), page_url("www.cs-0001.edu", 8));
    }

    #[test]
    fn average_url_length_near_40_bytes() {
        let host = site_host(50);
        let total: usize = (0..10_000u32).map(|u| page_url(&host, u).len()).sum();
        let avg = total as f64 / 10_000.0;
        assert!(
            (30.0..=50.0).contains(&avg),
            "average URL length {avg} outside the 30..50 byte window around the paper's 40"
        );
    }

    #[test]
    fn splitmix_is_bijective_sample() {
        // Spot-check injectivity on a small range.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn fnv1a_stable_values() {
        // Golden values: must never change across versions, or partition
        // stability across crawls is silently broken.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
