//! Plain-text serialization of [`WebGraph`]s.
//!
//! Format (line oriented, `#` comments allowed):
//!
//! ```text
//! dpr-graph v1
//! sites <n_sites>
//! site <id> <host>
//! pages <n_pages>
//! page <id> <site_id> <ext_out>
//! links <n_links>
//! <from> <to>
//! ```
//!
//! The format is intentionally simple and diff-friendly: experiment inputs
//! can be inspected, edited, and version-controlled.

use std::io::{self, BufRead, Write};

use crate::builder::GraphBuilder;
use crate::graph::WebGraph;

/// Errors produced while parsing the text format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file, with a line number and message.
    Format {
        /// 1-based line number of the offending line (0 = end of file).
        line: usize,
        /// What was expected or found.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Format { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Writes `g` in the v1 text format.
pub fn write_graph<W: Write>(g: &WebGraph, mut w: W) -> io::Result<()> {
    writeln!(w, "dpr-graph v1")?;
    writeln!(w, "sites {}", g.n_sites())?;
    for s in 0..g.n_sites() as u32 {
        writeln!(w, "site {s} {}", g.site_name(s))?;
    }
    writeln!(w, "pages {}", g.n_pages())?;
    for p in 0..g.n_pages() as u32 {
        writeln!(w, "page {p} {} {}", g.site(p), g.external_out_degree(p))?;
    }
    writeln!(w, "links {}", g.n_internal_links())?;
    for (u, v) in g.links() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Reads a graph in the v1 text format.
pub fn read_graph<R: BufRead>(r: R) -> Result<WebGraph, ParseError> {
    let mut lines = r.lines().enumerate().map(|(i, l)| (i + 1, l)).filter(|(_, l)| match l {
        Ok(s) => !s.trim().is_empty() && !s.trim_start().starts_with('#'),
        Err(_) => true,
    });

    let mut next = |what: &str| -> Result<(usize, String), ParseError> {
        match lines.next() {
            Some((n, Ok(l))) => Ok((n, l)),
            Some((_, Err(e))) => Err(e.into()),
            None => Err(ParseError::Format { line: 0, message: format!("missing {what}") }),
        }
    };

    let (n, header) = next("header")?;
    if header.trim() != "dpr-graph v1" {
        return Err(ParseError::Format { line: n, message: format!("bad header {header:?}") });
    }

    let parse_count = |line: usize, text: &str, key: &str| -> Result<usize, ParseError> {
        let mut it = text.split_whitespace();
        match (it.next(), it.next().map(str::parse::<usize>)) {
            (Some(k), Some(Ok(v))) if k == key => Ok(v),
            _ => Err(ParseError::Format {
                line,
                message: format!("expected `{key} <count>`, got {text:?}"),
            }),
        }
    };

    let mut b = GraphBuilder::new();

    let (n, l) = next("sites")?;
    let n_sites = parse_count(n, &l, "sites")?;
    for _ in 0..n_sites {
        let (n, l) = next("site line")?;
        let mut it = l.split_whitespace();
        let (kw, id, host) = (it.next(), it.next(), it.next());
        match (kw, id.map(str::parse::<u32>), host) {
            (Some("site"), Some(Ok(id)), Some(host)) => {
                let got = b.add_site(host.to_string());
                if got != id {
                    return Err(ParseError::Format {
                        line: n,
                        message: format!("non-sequential site id {id}, expected {got}"),
                    });
                }
            }
            _ => {
                return Err(ParseError::Format { line: n, message: format!("bad site line {l:?}") })
            }
        }
    }

    let (n, l) = next("pages")?;
    let n_pages = parse_count(n, &l, "pages")?;
    for _ in 0..n_pages {
        let (n, l) = next("page line")?;
        let mut it = l.split_whitespace();
        match (
            it.next(),
            it.next().map(str::parse::<u32>),
            it.next().map(str::parse::<u32>),
            it.next().map(str::parse::<u32>),
        ) {
            (Some("page"), Some(Ok(id)), Some(Ok(site)), Some(Ok(ext))) => {
                let got = b.add_page(site);
                if got != id {
                    return Err(ParseError::Format {
                        line: n,
                        message: format!("non-sequential page id {id}, expected {got}"),
                    });
                }
                b.add_external_links(id, ext);
            }
            _ => {
                return Err(ParseError::Format { line: n, message: format!("bad page line {l:?}") })
            }
        }
    }

    let (n, l) = next("links")?;
    let n_links = parse_count(n, &l, "links")?;
    for _ in 0..n_links {
        let (n, l) = next("link line")?;
        let mut it = l.split_whitespace();
        match (it.next().map(str::parse::<u32>), it.next().map(str::parse::<u32>)) {
            (Some(Ok(u)), Some(Ok(v))) => b.add_link(u, v),
            _ => {
                return Err(ParseError::Format { line: n, message: format!("bad link line {l:?}") })
            }
        }
    }

    Ok(b.build())
}

/// Writes `g` to a file path.
pub fn save(g: &WebGraph, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_graph(g, io::BufWriter::new(f))
}

/// Reads a graph from a file path.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<WebGraph, ParseError> {
    let f = std::fs::File::open(path)?;
    read_graph(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random, toy};

    fn roundtrip(g: &WebGraph) -> WebGraph {
        let mut buf = Vec::new();
        write_graph(g, &mut buf).unwrap();
        read_graph(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_toy() {
        let g = toy::two_cliques(4);
        assert_eq!(roundtrip(&g), g);
    }

    #[test]
    fn roundtrip_leaky() {
        let g = toy::leaky_cycle(7, 3);
        assert_eq!(roundtrip(&g), g);
    }

    #[test]
    fn roundtrip_random() {
        let g = random::erdos_renyi(300, 7, 4.5, 11);
        assert_eq!(roundtrip(&g), g);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = toy::cycle(3);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let noisy = format!("# a comment\n\n{}\n# trailing\n", text);
        assert_eq!(read_graph(noisy.as_bytes()).unwrap(), g);
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_graph("not-a-graph\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Format { .. }));
    }

    #[test]
    fn truncated_file_rejected() {
        let g = toy::cycle(3);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_graph(buf.as_slice()).is_err());
    }
}
