//! Serialization of [`WebGraph`]s: a diff-friendly text format and a compact
//! binary snapshot format for large graphs.
//!
//! Text format (line oriented, `#` comments allowed):
//!
//! ```text
//! dpr-graph v1
//! sites <n_sites>
//! site <id> <host>
//! pages <n_pages>
//! page <id> <site_id> <ext_out>
//! links <n_links>
//! <from> <to>
//! ```
//!
//! The text format is intentionally simple: experiment inputs can be
//! inspected, edited, and version-controlled. It does not scale — a 10M-page
//! graph is ~1 GB of decimal digits and parses link-by-link through a
//! [`GraphBuilder`], holding the edge list twice (builder triplets + CSR).
//!
//! The binary snapshot format ([`SnapshotWriter`], [`read_snapshot`]) fixes
//! both problems:
//!
//! ```text
//! magic   b"DPRG1\n"
//! varint  n_sites, then per site: varint name_len + UTF-8 bytes
//! varint  n_pages
//! u64 LE  n_links          (backpatched on finish, so rows can stream)
//! per page (ascending id): varint site, varint ext_out, varint deg,
//!                          deg delta-encoded varints of the sorted
//!                          destination list (prev resets to 0 per page)
//! ```
//!
//! All varints are LEB128. Delta-encoding the sorted adjacency rows brings
//! the on-disk cost to ~1–2 bytes per link on site-local graphs, and the
//! loader streams rows straight into the final CSR arrays — the edge list is
//! materialized exactly once.

use std::io::{self, BufRead, Read, Seek, SeekFrom, Write};

use crate::builder::GraphBuilder;
use crate::delta::{DeltaOp, GraphDelta};
use crate::graph::WebGraph;

/// Errors produced while parsing the text format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file, with a line number and message.
    Format {
        /// 1-based line number of the offending line (0 = end of file).
        line: usize,
        /// What was expected or found.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Format { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Writes `g` in the v1 text format.
pub fn write_graph<W: Write>(g: &WebGraph, mut w: W) -> io::Result<()> {
    writeln!(w, "dpr-graph v1")?;
    writeln!(w, "sites {}", g.n_sites())?;
    for s in 0..g.n_sites() as u32 {
        writeln!(w, "site {s} {}", g.site_name(s))?;
    }
    writeln!(w, "pages {}", g.n_pages())?;
    for p in 0..g.n_pages() as u32 {
        writeln!(w, "page {p} {} {}", g.site(p), g.external_out_degree(p))?;
    }
    writeln!(w, "links {}", g.n_internal_links())?;
    for (u, v) in g.links() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Reads a graph in the v1 text format.
pub fn read_graph<R: BufRead>(r: R) -> Result<WebGraph, ParseError> {
    let mut lines = r.lines().enumerate().map(|(i, l)| (i + 1, l)).filter(|(_, l)| match l {
        Ok(s) => !s.trim().is_empty() && !s.trim_start().starts_with('#'),
        Err(_) => true,
    });

    let mut next = |what: &str| -> Result<(usize, String), ParseError> {
        match lines.next() {
            Some((n, Ok(l))) => Ok((n, l)),
            Some((_, Err(e))) => Err(e.into()),
            None => Err(ParseError::Format { line: 0, message: format!("missing {what}") }),
        }
    };

    let (n, header) = next("header")?;
    if header.trim() != "dpr-graph v1" {
        return Err(ParseError::Format { line: n, message: format!("bad header {header:?}") });
    }

    let parse_count = |line: usize, text: &str, key: &str| -> Result<usize, ParseError> {
        let mut it = text.split_whitespace();
        match (it.next(), it.next().map(str::parse::<usize>)) {
            (Some(k), Some(Ok(v))) if k == key => Ok(v),
            _ => Err(ParseError::Format {
                line,
                message: format!("expected `{key} <count>`, got {text:?}"),
            }),
        }
    };

    let mut b = GraphBuilder::new();

    let (n, l) = next("sites")?;
    let n_sites = parse_count(n, &l, "sites")?;
    for _ in 0..n_sites {
        let (n, l) = next("site line")?;
        let mut it = l.split_whitespace();
        let (kw, id, host) = (it.next(), it.next(), it.next());
        match (kw, id.map(str::parse::<u32>), host) {
            (Some("site"), Some(Ok(id)), Some(host)) => {
                let got = b.add_site(host.to_string());
                if got != id {
                    return Err(ParseError::Format {
                        line: n,
                        message: format!("non-sequential site id {id}, expected {got}"),
                    });
                }
            }
            _ => {
                return Err(ParseError::Format { line: n, message: format!("bad site line {l:?}") })
            }
        }
    }

    let (n, l) = next("pages")?;
    let n_pages = parse_count(n, &l, "pages")?;
    for _ in 0..n_pages {
        let (n, l) = next("page line")?;
        let mut it = l.split_whitespace();
        match (
            it.next(),
            it.next().map(str::parse::<u32>),
            it.next().map(str::parse::<u32>),
            it.next().map(str::parse::<u32>),
        ) {
            (Some("page"), Some(Ok(id)), Some(Ok(site)), Some(Ok(ext))) => {
                let got = b.add_page(site);
                if got != id {
                    return Err(ParseError::Format {
                        line: n,
                        message: format!("non-sequential page id {id}, expected {got}"),
                    });
                }
                b.add_external_links(id, ext);
            }
            _ => {
                return Err(ParseError::Format { line: n, message: format!("bad page line {l:?}") })
            }
        }
    }

    let (n, l) = next("links")?;
    let n_links = parse_count(n, &l, "links")?;
    for _ in 0..n_links {
        let (n, l) = next("link line")?;
        let mut it = l.split_whitespace();
        match (it.next().map(str::parse::<u32>), it.next().map(str::parse::<u32>)) {
            (Some(Ok(u)), Some(Ok(v))) => b.add_link(u, v),
            _ => {
                return Err(ParseError::Format { line: n, message: format!("bad link line {l:?}") })
            }
        }
    }

    Ok(b.build())
}

/// Writes `g` to a file path.
pub fn save(g: &WebGraph, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_graph(g, io::BufWriter::new(f))
}

/// Reads a graph from a file path.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<WebGraph, ParseError> {
    let f = std::fs::File::open(path)?;
    read_graph(io::BufReader::new(f))
}

// ---------------------------------------------------------------------------
// Binary snapshot format.
// ---------------------------------------------------------------------------

/// Magic bytes opening every binary snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 6] = b"DPRG1\n";

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(invalid("varint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(invalid("varint too long"));
        }
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Streaming writer for the binary snapshot format.
///
/// Rows must be supplied for every page in ascending id order via
/// [`SnapshotWriter::page`]; [`SnapshotWriter::finish`] backpatches the link
/// count into the header (hence the `Seek` bound). The writer never buffers
/// the adjacency — a generator can stream a 10M-page graph straight to disk
/// without materializing its edge list.
#[derive(Debug)]
pub struct SnapshotWriter<W: Write + Seek> {
    w: W,
    n_sites: u64,
    n_pages: u64,
    pages_written: u64,
    n_links: u64,
    links_at: u64,
}

impl<W: Write + Seek> SnapshotWriter<W> {
    /// Writes the header (site table + page count) and positions the stream
    /// at the first page row.
    ///
    /// # Errors
    /// Propagates I/O failures from the underlying writer.
    pub fn new(mut w: W, site_names: &[String], n_pages: usize) -> io::Result<Self> {
        w.write_all(SNAPSHOT_MAGIC)?;
        write_varint(&mut w, site_names.len() as u64)?;
        for name in site_names {
            write_varint(&mut w, name.len() as u64)?;
            w.write_all(name.as_bytes())?;
        }
        write_varint(&mut w, n_pages as u64)?;
        let links_at = w.stream_position()?;
        w.write_all(&0u64.to_le_bytes())?; // n_links placeholder
        Ok(Self {
            w,
            n_sites: site_names.len() as u64,
            n_pages: n_pages as u64,
            pages_written: 0,
            n_links: 0,
            links_at,
        })
    }

    /// Appends the row of the next page: its site, external out-link count,
    /// and **sorted** internal destination list.
    ///
    /// # Errors
    /// Propagates I/O failures from the underlying writer.
    ///
    /// # Panics
    /// If called more than `n_pages` times, if `site` is out of range, or if
    /// `dsts` is not sorted ascending (duplicates are allowed).
    pub fn page(&mut self, site: u32, ext_out: u32, dsts: &[u32]) -> io::Result<()> {
        assert!(self.pages_written < self.n_pages, "more page rows than declared");
        assert!(u64::from(site) < self.n_sites, "site {site} out of range");
        write_varint(&mut self.w, u64::from(site))?;
        write_varint(&mut self.w, u64::from(ext_out))?;
        write_varint(&mut self.w, dsts.len() as u64)?;
        let mut prev = 0u32;
        for &v in dsts {
            assert!(v >= prev, "destinations must be sorted");
            write_varint(&mut self.w, u64::from(v - prev))?;
            prev = v;
        }
        self.pages_written += 1;
        self.n_links += dsts.len() as u64;
        Ok(())
    }

    /// Backpatches the link count and returns the underlying writer, whose
    /// position is restored to the end of the snapshot.
    ///
    /// # Errors
    /// Propagates I/O failures from the underlying writer.
    ///
    /// # Panics
    /// If fewer than `n_pages` rows were written.
    pub fn finish(mut self) -> io::Result<W> {
        assert_eq!(self.pages_written, self.n_pages, "missing page rows");
        let end = self.w.stream_position()?;
        self.w.seek(SeekFrom::Start(self.links_at))?;
        self.w.write_all(&self.n_links.to_le_bytes())?;
        self.w.seek(SeekFrom::Start(end))?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Writes `g` as a binary snapshot.
///
/// # Errors
/// Propagates I/O failures from the underlying writer.
pub fn write_snapshot<W: Write + Seek>(g: &WebGraph, w: W) -> io::Result<()> {
    let names: Vec<String> = (0..g.n_sites() as u32).map(|s| g.site_name(s).to_string()).collect();
    let mut sw = SnapshotWriter::new(w, &names, g.n_pages())?;
    for p in 0..g.n_pages() as u32 {
        sw.page(g.site(p), g.external_out_degree(p), g.out_links(p))?;
    }
    sw.finish()?;
    Ok(())
}

/// Reads a binary snapshot, streaming page rows directly into the final CSR
/// arrays (the adjacency is materialized exactly once).
///
/// # Errors
/// Returns [`io::ErrorKind::InvalidData`] on malformed input, and propagates
/// underlying I/O failures (including [`io::ErrorKind::UnexpectedEof`] on
/// truncation).
pub fn read_snapshot<R: BufRead>(mut r: R) -> io::Result<WebGraph> {
    read_snapshot_body(&mut r)
}

fn read_snapshot_body<R: BufRead>(r: &mut R) -> io::Result<WebGraph> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != SNAPSHOT_MAGIC {
        return Err(invalid("bad snapshot magic"));
    }
    let n_sites = read_varint(r)?;
    if n_sites > u64::from(u32::MAX) {
        return Err(invalid("site count exceeds u32"));
    }
    let mut site_names = Vec::with_capacity(n_sites as usize);
    for _ in 0..n_sites {
        let len = read_varint(r)? as usize;
        if len > 1 << 16 {
            return Err(invalid("site name too long"));
        }
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        site_names.push(String::from_utf8(buf).map_err(|_| invalid("site name is not UTF-8"))?);
    }
    let n_pages = read_varint(r)?;
    if n_pages > u64::from(u32::MAX) {
        return Err(invalid("page count exceeds u32"));
    }
    let n_pages = n_pages as usize;
    let mut links_buf = [0u8; 8];
    r.read_exact(&mut links_buf)?;
    let n_links = u64::from_le_bytes(links_buf);

    let mut out_ptr = Vec::with_capacity(n_pages + 1);
    out_ptr.push(0u64);
    let mut out_dst = Vec::with_capacity(usize::try_from(n_links).unwrap_or(0));
    let mut ext_out = Vec::with_capacity(n_pages);
    let mut site_of = Vec::with_capacity(n_pages);

    for p in 0..n_pages {
        let site = read_varint(r)?;
        if site >= n_sites {
            return Err(invalid(format!("page {p}: site {site} out of range")));
        }
        let ext = read_varint(r)?;
        if ext > u64::from(u32::MAX) {
            return Err(invalid(format!("page {p}: external degree exceeds u32")));
        }
        let deg = read_varint(r)?;
        let mut prev = 0u64;
        for _ in 0..deg {
            prev += read_varint(r)?;
            if prev >= n_pages as u64 {
                return Err(invalid(format!("page {p}: destination {prev} out of range")));
            }
            out_dst.push(prev as u32);
        }
        out_ptr.push(out_dst.len() as u64);
        ext_out.push(ext as u32);
        site_of.push(site as u32);
    }
    if out_dst.len() as u64 != n_links {
        return Err(invalid(format!(
            "link count mismatch: header says {n_links}, rows carry {}",
            out_dst.len()
        )));
    }
    Ok(WebGraph::from_parts(out_ptr, out_dst, ext_out, site_of, site_names))
}

/// Magic prefix of one delta record appended after a snapshot's page rows
/// (`"DPRD1\n"`). A snapshot file may carry any number of delta records;
/// [`read_snapshot`] ignores them (backward compatible), and
/// [`read_snapshot_with_deltas`] parses them.
pub const DELTA_MAGIC: &[u8; 6] = b"DPRD1\n";

// Op tags of the delta-record wire format.
const OP_ADD_LINK: u8 = 0;
const OP_REMOVE_LINK: u8 = 1;
const OP_SET_EXTERNAL: u8 = 2;
const OP_SET_LINKS: u8 = 3;
const OP_INSERT_PAGE: u8 = 4;
const OP_DELETE_PAGE: u8 = 5;
const OP_SPLIT_SITE: u8 = 6;

fn write_sorted_ids<W: Write>(w: &mut W, ids: &[u32]) -> io::Result<()> {
    // Canonical form: ascending, delta-encoded — the same encoding page
    // rows use.
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    write_varint(w, sorted.len() as u64)?;
    let mut prev = 0u32;
    for v in sorted {
        write_varint(w, u64::from(v - prev))?;
        prev = v;
    }
    Ok(())
}

fn read_sorted_ids<R: Read>(r: &mut R) -> io::Result<Vec<u32>> {
    let n = read_varint(r)?;
    if n > u64::from(u32::MAX) {
        return Err(invalid("delta id list exceeds u32 length"));
    }
    let mut ids = Vec::with_capacity(n as usize);
    let mut prev = 0u64;
    for _ in 0..n {
        prev += read_varint(r)?;
        if prev > u64::from(u32::MAX) {
            return Err(invalid("delta id exceeds u32"));
        }
        ids.push(prev as u32);
    }
    Ok(ids)
}

fn read_u32_varint<R: Read>(r: &mut R, what: &str) -> io::Result<u32> {
    let v = read_varint(r)?;
    u32::try_from(v).map_err(|_| invalid(format!("{what} exceeds u32")))
}

/// Appends one delta record (`DPRD1` magic + ops) to `w`.
///
/// Destination lists are written in canonical sorted order, so a delta
/// read back compares equal op for op up to row ordering (applying either
/// produces the identical graph).
///
/// # Errors
/// Propagates I/O failures from the underlying writer.
pub fn write_delta<W: Write>(d: &GraphDelta, w: &mut W) -> io::Result<()> {
    w.write_all(DELTA_MAGIC)?;
    write_varint(w, d.ops.len() as u64)?;
    for op in &d.ops {
        match op {
            DeltaOp::AddLink { from, to } => {
                w.write_all(&[OP_ADD_LINK])?;
                write_varint(w, u64::from(*from))?;
                write_varint(w, u64::from(*to))?;
            }
            DeltaOp::RemoveLink { from, to } => {
                w.write_all(&[OP_REMOVE_LINK])?;
                write_varint(w, u64::from(*from))?;
                write_varint(w, u64::from(*to))?;
            }
            DeltaOp::SetExternal { page, ext_out } => {
                w.write_all(&[OP_SET_EXTERNAL])?;
                write_varint(w, u64::from(*page))?;
                write_varint(w, u64::from(*ext_out))?;
            }
            DeltaOp::SetLinks { page, ext_out, links } => {
                w.write_all(&[OP_SET_LINKS])?;
                write_varint(w, u64::from(*page))?;
                write_varint(w, u64::from(*ext_out))?;
                write_sorted_ids(w, links)?;
            }
            DeltaOp::InsertPage { site, ext_out, links } => {
                w.write_all(&[OP_INSERT_PAGE])?;
                write_varint(w, u64::from(*site))?;
                write_varint(w, u64::from(*ext_out))?;
                write_sorted_ids(w, links)?;
            }
            DeltaOp::DeletePage { page } => {
                w.write_all(&[OP_DELETE_PAGE])?;
                write_varint(w, u64::from(*page))?;
            }
            DeltaOp::SplitSite { new_site, pages } => {
                w.write_all(&[OP_SPLIT_SITE])?;
                write_varint(w, new_site.len() as u64)?;
                w.write_all(new_site.as_bytes())?;
                write_sorted_ids(w, pages)?;
            }
        }
    }
    Ok(())
}

/// Reads one delta record (including its `DPRD1` magic) from `r`.
///
/// # Errors
/// Returns [`io::ErrorKind::InvalidData`] on malformed input, and
/// propagates underlying I/O failures.
pub fn read_delta<R: Read>(r: &mut R) -> io::Result<GraphDelta> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != DELTA_MAGIC {
        return Err(invalid("bad delta magic"));
    }
    read_delta_body(r)
}

fn read_delta_body<R: Read>(r: &mut R) -> io::Result<GraphDelta> {
    let n_ops = read_varint(r)?;
    if n_ops > u64::from(u32::MAX) {
        return Err(invalid("delta op count exceeds u32"));
    }
    let mut ops = Vec::with_capacity(n_ops as usize);
    for _ in 0..n_ops {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        ops.push(match tag[0] {
            OP_ADD_LINK => DeltaOp::AddLink {
                from: read_u32_varint(r, "link source")?,
                to: read_u32_varint(r, "link target")?,
            },
            OP_REMOVE_LINK => DeltaOp::RemoveLink {
                from: read_u32_varint(r, "link source")?,
                to: read_u32_varint(r, "link target")?,
            },
            OP_SET_EXTERNAL => DeltaOp::SetExternal {
                page: read_u32_varint(r, "page id")?,
                ext_out: read_u32_varint(r, "external degree")?,
            },
            OP_SET_LINKS => DeltaOp::SetLinks {
                page: read_u32_varint(r, "page id")?,
                ext_out: read_u32_varint(r, "external degree")?,
                links: read_sorted_ids(r)?,
            },
            OP_INSERT_PAGE => DeltaOp::InsertPage {
                site: read_u32_varint(r, "site id")?,
                ext_out: read_u32_varint(r, "external degree")?,
                links: read_sorted_ids(r)?,
            },
            OP_DELETE_PAGE => DeltaOp::DeletePage { page: read_u32_varint(r, "page id")? },
            OP_SPLIT_SITE => {
                let len = read_varint(r)? as usize;
                if len > 1 << 16 {
                    return Err(invalid("site name too long"));
                }
                let mut buf = vec![0u8; len];
                r.read_exact(&mut buf)?;
                let new_site =
                    String::from_utf8(buf).map_err(|_| invalid("site name is not UTF-8"))?;
                DeltaOp::SplitSite { new_site, pages: read_sorted_ids(r)? }
            }
            other => return Err(invalid(format!("unknown delta op tag {other}"))),
        });
    }
    Ok(GraphDelta { ops })
}

/// The number of bytes [`write_delta`] puts on the wire for `d` — the
/// honest size of a crawl delta shipped to a page ranker.
#[must_use]
pub fn delta_wire_bytes(d: &GraphDelta) -> u64 {
    let mut buf = Vec::new();
    write_delta(d, &mut buf).expect("Vec<u8> writes are infallible");
    buf.len() as u64
}

/// Reads a binary snapshot plus every `DPRD1` delta record appended after
/// its page rows (in file order). A snapshot with no trailing records
/// yields an empty delta list.
///
/// # Errors
/// Returns [`io::ErrorKind::InvalidData`] on malformed input — including
/// trailing bytes that are not a well-formed delta record — and propagates
/// underlying I/O failures.
pub fn read_snapshot_with_deltas<R: BufRead>(mut r: R) -> io::Result<(WebGraph, Vec<GraphDelta>)> {
    let g = read_snapshot_body(&mut r)?;
    let mut deltas = Vec::new();
    loop {
        if r.fill_buf()?.is_empty() {
            return Ok((g, deltas));
        }
        deltas.push(read_delta(&mut r)?);
    }
}

/// Writes `g` as a binary snapshot at `path`.
///
/// # Errors
/// Propagates I/O failures.
pub fn save_snapshot(g: &WebGraph, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_snapshot(g, io::BufWriter::new(f))
}

/// Reads a binary snapshot from `path`.
///
/// # Errors
/// Propagates I/O failures and malformed-snapshot errors from
/// [`read_snapshot`].
pub fn load_snapshot(path: impl AsRef<std::path::Path>) -> io::Result<WebGraph> {
    let f = std::fs::File::open(path)?;
    read_snapshot(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random, toy};

    fn roundtrip(g: &WebGraph) -> WebGraph {
        let mut buf = Vec::new();
        write_graph(g, &mut buf).unwrap();
        read_graph(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_toy() {
        let g = toy::two_cliques(4);
        assert_eq!(roundtrip(&g), g);
    }

    #[test]
    fn roundtrip_leaky() {
        let g = toy::leaky_cycle(7, 3);
        assert_eq!(roundtrip(&g), g);
    }

    #[test]
    fn roundtrip_random() {
        let g = random::erdos_renyi(300, 7, 4.5, 11);
        assert_eq!(roundtrip(&g), g);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = toy::cycle(3);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let noisy = format!("# a comment\n\n{}\n# trailing\n", text);
        assert_eq!(read_graph(noisy.as_bytes()).unwrap(), g);
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_graph("not-a-graph\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Format { .. }));
    }

    #[test]
    fn truncated_file_rejected() {
        let g = toy::cycle(3);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_graph(buf.as_slice()).is_err());
    }

    fn snapshot_roundtrip(g: &WebGraph) -> WebGraph {
        let mut cur = io::Cursor::new(Vec::new());
        write_snapshot(g, &mut cur).unwrap();
        read_snapshot(cur.into_inner().as_slice()).unwrap()
    }

    #[test]
    fn snapshot_roundtrip_toy() {
        let g = toy::two_cliques(4);
        assert_eq!(snapshot_roundtrip(&g), g);
    }

    #[test]
    fn snapshot_roundtrip_random() {
        let g = random::erdos_renyi(300, 7, 4.5, 11);
        assert_eq!(snapshot_roundtrip(&g), g);
    }

    #[test]
    fn snapshot_roundtrip_empty() {
        let g = GraphBuilder::new().build();
        assert_eq!(snapshot_roundtrip(&g), g);
    }

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn snapshot_is_compact() {
        let g = random::erdos_renyi(2_000, 4, 6.0, 7);
        let mut cur = io::Cursor::new(Vec::new());
        write_snapshot(&g, &mut cur).unwrap();
        let bytes = cur.into_inner().len();
        let per_link = bytes as f64 / g.n_internal_links() as f64;
        assert!(per_link < 3.0, "snapshot costs {per_link:.2} bytes/link");
    }

    #[test]
    fn snapshot_bad_magic_rejected() {
        let err = read_snapshot(&b"NOPE!\nxxxx"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn snapshot_truncation_rejected() {
        let g = toy::two_cliques(4);
        let mut cur = io::Cursor::new(Vec::new());
        write_snapshot(&g, &mut cur).unwrap();
        let mut buf = cur.into_inner();
        buf.truncate(buf.len() - 2);
        assert!(read_snapshot(buf.as_slice()).is_err());
    }

    #[test]
    fn snapshot_out_of_range_destination_rejected() {
        // One site ("a", name len 1), one page whose single destination
        // delta-decodes to page id 7 — out of range for a 1-page graph.
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        buf.extend_from_slice(&[1, 1, b'a', 1]); // sites, name, n_pages
        buf.extend_from_slice(&1u64.to_le_bytes()); // n_links
        buf.extend_from_slice(&[0, 0, 1, 7]); // site, ext, deg, delta
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn snapshot_link_count_mismatch_rejected() {
        let g = toy::cycle(3);
        let mut cur = io::Cursor::new(Vec::new());
        write_snapshot(&g, &mut cur).unwrap();
        let mut buf = cur.into_inner();
        // Corrupt the backpatched n_links field (right after the header:
        // magic + sites varint + "a.edu" site entry + pages varint).
        let links_at = buf.len() - 3 * 4 - 8; // 3 page rows of 4 bytes each
        buf[links_at] ^= 1;
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    #[should_panic(expected = "destinations must be sorted")]
    fn snapshot_writer_rejects_unsorted_rows() {
        let mut cur = io::Cursor::new(Vec::new());
        {
            let mut w = SnapshotWriter::new(&mut cur, &["a".to_string()], 1).unwrap();
            w.page(0, 0, &[0, 0, 0]).unwrap(); // fine: duplicates allowed
        }
        let mut cur = io::Cursor::new(Vec::new());
        let mut w = SnapshotWriter::new(&mut cur, &["a".to_string()], 2).unwrap();
        w.page(0, 0, &[1, 0]).unwrap();
    }

    fn every_op_delta() -> GraphDelta {
        GraphDelta::new(vec![
            DeltaOp::AddLink { from: 0, to: 2 },
            DeltaOp::RemoveLink { from: 1, to: 0 },
            DeltaOp::SetExternal { page: 2, ext_out: 9 },
            DeltaOp::SetLinks { page: 3, ext_out: 1, links: vec![0, 1, 1, 4] },
            DeltaOp::InsertPage { site: 0, ext_out: 0, links: vec![2, 3] },
            DeltaOp::DeletePage { page: 5 },
            DeltaOp::SplitSite { new_site: "split.example.edu".to_string(), pages: vec![1, 4] },
        ])
    }

    #[test]
    fn delta_record_roundtrip_covers_every_op() {
        let d = every_op_delta();
        let mut buf = Vec::new();
        write_delta(&d, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, delta_wire_bytes(&d));
        assert_eq!(read_delta(&mut buf.as_slice()).unwrap(), d);
    }

    #[test]
    fn read_snapshot_ignores_trailing_delta_records() {
        // Backward compatibility: a pre-delta reader must load the base
        // graph of a snapshot file that carries delta records.
        let g = toy::two_cliques(4);
        let mut cur = io::Cursor::new(Vec::new());
        write_snapshot(&g, &mut cur).unwrap();
        let mut buf = cur.into_inner();
        write_delta(&GraphDelta::new(vec![DeltaOp::DeletePage { page: 0 }]), &mut buf).unwrap();
        assert_eq!(read_snapshot(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn read_snapshot_with_deltas_parses_records_in_order() {
        let g = toy::cycle(5);
        let d1 = GraphDelta::new(vec![DeltaOp::AddLink { from: 0, to: 2 }]);
        let d2 = GraphDelta::new(vec![DeltaOp::DeletePage { page: 3 }]);
        let mut cur = io::Cursor::new(Vec::new());
        write_snapshot(&g, &mut cur).unwrap();
        let mut buf = cur.into_inner();
        write_delta(&d1, &mut buf).unwrap();
        write_delta(&d2, &mut buf).unwrap();
        let (base, deltas) = read_snapshot_with_deltas(buf.as_slice()).unwrap();
        assert_eq!(base, g);
        assert_eq!(deltas, vec![d1, d2]);
    }

    #[test]
    fn read_snapshot_with_deltas_empty_tail_yields_no_records() {
        let g = toy::cycle(3);
        let mut cur = io::Cursor::new(Vec::new());
        write_snapshot(&g, &mut cur).unwrap();
        let (base, deltas) = read_snapshot_with_deltas(cur.into_inner().as_slice()).unwrap();
        assert_eq!(base, g);
        assert!(deltas.is_empty());
    }

    #[test]
    fn read_snapshot_with_deltas_rejects_garbage_tail() {
        let g = toy::cycle(3);
        let mut cur = io::Cursor::new(Vec::new());
        write_snapshot(&g, &mut cur).unwrap();
        let mut buf = cur.into_inner();
        buf.extend_from_slice(b"JUNK!\n");
        let err = read_snapshot_with_deltas(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn delta_unknown_op_tag_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(DELTA_MAGIC);
        buf.extend_from_slice(&[1, 99]); // one op, bogus tag
        let err = read_delta(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn delta_encoding_canonicalizes_unsorted_lists() {
        let d =
            GraphDelta::new(vec![DeltaOp::SetLinks { page: 0, ext_out: 0, links: vec![3, 1, 2] }]);
        let mut buf = Vec::new();
        write_delta(&d, &mut buf).unwrap();
        let back = read_delta(&mut buf.as_slice()).unwrap();
        assert_eq!(back.ops, vec![DeltaOp::SetLinks { page: 0, ext_out: 0, links: vec![1, 2, 3] }]);
    }
}
