//! Incremental construction of [`WebGraph`]s.

use crate::graph::{PageId, SiteId, WebGraph};

/// Mutable builder accumulating sites, pages and links in any order.
///
/// Links may be added before their destination pages exist only if the
/// destination id has already been allocated; `build` validates all ids.
/// Duplicate links are kept (a page can link to the same target twice, which
/// counts twice in `d(u)` — consistent with how crawlers count anchors).
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    site_names: Vec<String>,
    site_of: Vec<SiteId>,
    links: Vec<(PageId, PageId)>,
    ext_out: Vec<u32>,
}

impl GraphBuilder {
    /// Empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with reserved capacity.
    #[must_use]
    pub fn with_capacity(pages: usize, links: usize) -> Self {
        Self {
            site_names: Vec::new(),
            site_of: Vec::with_capacity(pages),
            links: Vec::with_capacity(links),
            ext_out: Vec::with_capacity(pages),
        }
    }

    /// Registers a site and returns its id.
    pub fn add_site(&mut self, name: impl Into<String>) -> SiteId {
        self.site_names.push(name.into());
        (self.site_names.len() - 1) as SiteId
    }

    /// Registers a page on `site` and returns its id.
    ///
    /// # Panics
    /// If `site` was not returned by [`Self::add_site`].
    pub fn add_page(&mut self, site: SiteId) -> PageId {
        assert!((site as usize) < self.site_names.len(), "unknown site {site}");
        self.site_of.push(site);
        self.ext_out.push(0);
        (self.site_of.len() - 1) as PageId
    }

    /// Adds an internal hyperlink `from → to`.
    ///
    /// # Panics
    /// If either page id has not been allocated yet.
    pub fn add_link(&mut self, from: PageId, to: PageId) {
        assert!((from as usize) < self.site_of.len(), "unknown page {from}");
        assert!((to as usize) < self.site_of.len(), "unknown page {to}");
        self.links.push((from, to));
    }

    /// Records `count` out-links of `from` whose destinations were never
    /// crawled. They increase `d(from)` but carry rank out of the system.
    pub fn add_external_links(&mut self, from: PageId, count: u32) {
        assert!((from as usize) < self.site_of.len(), "unknown page {from}");
        self.ext_out[from as usize] += count;
    }

    /// Number of pages added so far.
    #[must_use]
    pub fn n_pages(&self) -> usize {
        self.site_of.len()
    }

    /// Number of internal links added so far.
    #[must_use]
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Finalizes into an immutable [`WebGraph`] (counting-sorts the links by
    /// source to form CSR adjacency).
    #[must_use]
    pub fn build(self) -> WebGraph {
        let n = self.site_of.len();
        let mut out_ptr = vec![0u64; n + 1];
        for &(u, _) in &self.links {
            out_ptr[u as usize + 1] += 1;
        }
        for u in 0..n {
            out_ptr[u + 1] += out_ptr[u];
        }
        let mut cursor = out_ptr.clone();
        let mut out_dst = vec![0 as PageId; self.links.len()];
        for &(u, v) in &self.links {
            let slot = cursor[u as usize] as usize;
            out_dst[slot] = v;
            cursor[u as usize] += 1;
        }
        // Keep each page's destination list sorted for determinism and
        // cache-friendly scans downstream.
        for u in 0..n {
            let lo = out_ptr[u] as usize;
            let hi = out_ptr[u + 1] as usize;
            out_dst[lo..hi].sort_unstable();
        }
        WebGraph::from_parts(out_ptr, out_dst, self.ext_out, self.site_of, self.site_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.n_pages(), 0);
        assert_eq!(g.n_sites(), 0);
        assert_eq!(g.n_internal_links(), 0);
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new();
        let s = b.add_site("a.edu");
        let p: Vec<_> = (0..5).map(|_| b.add_page(s)).collect();
        b.add_link(p[0], p[4]);
        b.add_link(p[0], p[1]);
        b.add_link(p[0], p[3]);
        let g = b.build();
        assert_eq!(g.out_links(p[0]), &[p[1], p[3], p[4]]);
    }

    #[test]
    fn duplicate_links_are_kept() {
        let mut b = GraphBuilder::new();
        let s = b.add_site("a.edu");
        let p0 = b.add_page(s);
        let p1 = b.add_page(s);
        b.add_link(p0, p1);
        b.add_link(p0, p1);
        let g = b.build();
        assert_eq!(g.out_degree(p0), 2);
    }

    #[test]
    #[should_panic(expected = "unknown page")]
    fn link_to_unallocated_page_panics() {
        let mut b = GraphBuilder::new();
        let s = b.add_site("a.edu");
        let p0 = b.add_page(s);
        b.add_link(p0, 99);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn page_on_unknown_site_panics() {
        let mut b = GraphBuilder::new();
        b.add_page(3);
    }
}
