//! Web link graphs for distributed page ranking.
//!
//! The paper's experiments run over a crawl of ~1M pages from 100 `.edu`
//! sites with 15M hyperlinks, of which only 7M stay inside the crawled set
//! (the rest point at pages the crawler never fetched). This crate models
//! exactly that world:
//!
//! * [`WebGraph`] — an immutable CSR adjacency structure where every page
//!   belongs to a *site* and may carry **external** out-links (links whose
//!   destination is outside the crawled set — the source of the paper's
//!   "rank leakage", Fig 7's average rank ≈ 0.3),
//! * [`GraphBuilder`] — incremental construction,
//! * [`generators`] — deterministic toy graphs, Erdős–Rényi, a
//!   copy-model/preferential-attachment generator, and
//!   [`generators::edu_domain`], the configurable synthesizer that stands in
//!   for the no-longer-distributed Google programming-contest dataset,
//! * [`urls`] — the URL model (avg ≈ 40-byte URLs, per Cho & Garcia-Molina
//!   \[16\]) used for byte-accounting in the transport layer,
//! * [`io`] — a plain-text edge-list format with site structure,
//! * [`refresh`] — crawl-refresh simulation (pages re-crawled and re-divided,
//!   the scenario that makes random partitioning unstable in §4.1).

//!
//! # Example
//!
//! ```
//! use dpr_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let site = b.add_site("www.cs-0001.edu");
//! let home = b.add_page(site);
//! let paper = b.add_page(site);
//! b.add_link(home, paper);
//! b.add_external_links(paper, 2); // links leaving the crawl
//! let g = b.build();
//!
//! assert_eq!(g.out_degree(paper), 2);           // d(u) counts external links
//! assert_eq!(g.internal_out_degree(paper), 0);
//! assert!(g.url_of(home).starts_with("http://www.cs-0001.edu/"));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod delta;
pub mod generators;
pub mod graph;
pub mod io;
pub mod refresh;
pub mod stats;
pub mod urls;

pub use builder::GraphBuilder;
pub use delta::{DeltaOp, DeltaReport, GraphDelta};
pub use graph::{PageId, SiteId, WebGraph};
pub use stats::GraphStats;
