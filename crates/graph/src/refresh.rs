//! Crawl-refresh simulation.
//!
//! §4.1: "As crawler(s) may revisit pages in order to detect changes and
//! refresh the downloaded collection, one page may participate in dividing
//! more than one time. The random dividing strategy doesn't fulfill this
//! need for taking the risk of sending a page to different page rankers on
//! different times."
//!
//! [`recrawl`] produces a new [`WebGraph`] in which a fraction of pages have
//! changed their out-links (and some new pages appeared), while page
//! *identity* — the URL — is preserved. Partition strategies are then
//! evaluated on whether a surviving page keeps its ranker assignment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{PageId, WebGraph};

/// What changed between two crawls (page ids refer to the *new* graph; the
/// first `old.n_pages()` ids are carried over 1:1 from the old crawl).
#[derive(Debug, Clone, PartialEq)]
pub struct RecrawlReport {
    /// Pages whose out-link set changed.
    pub changed_pages: Vec<PageId>,
    /// Ids of pages added by the new crawl (all ≥ `old.n_pages()`).
    pub new_pages: Vec<PageId>,
    /// Pages the re-crawl found gone (404s): tombstoned in place — id slot
    /// kept, out-row cleared, every in-link to them dropped. Empty for
    /// [`recrawl`]; populated by [`recrawl_with_deletions`].
    pub deleted_pages: Vec<PageId>,
}

/// Re-crawls `old`: each page's link set is regenerated with probability
/// `change_prob`, and `growth_frac · n_pages` new pages are appended to
/// random existing sites. Page ids (and therefore URLs) of surviving pages
/// are unchanged.
#[must_use]
pub fn recrawl(
    old: &WebGraph,
    change_prob: f64,
    growth_frac: f64,
    seed: u64,
) -> (WebGraph, RecrawlReport) {
    recrawl_with_deletions(old, change_prob, growth_frac, 0.0, seed)
}

/// [`recrawl`] with page deletions: each surviving page is additionally
/// found gone (404) with probability `delete_prob`. Deleted pages are
/// *tombstoned*, never renumbered: the id slot (and URL) stays, the page's
/// own out-links and external count are cleared, and **every in-link to it
/// is dropped from the linker's row** — a page whose only out-link pointed
/// at a tombstone ends genuinely dangling (`d(u) = 0`), so its
/// `column_scale` entry is exactly `0.0` rather than a phantom division.
///
/// # Panics
/// If `change_prob` or `delete_prob` is outside `[0, 1]`, or
/// `growth_frac < 0`.
#[must_use]
pub fn recrawl_with_deletions(
    old: &WebGraph,
    change_prob: f64,
    growth_frac: f64,
    delete_prob: f64,
    seed: u64,
) -> (WebGraph, RecrawlReport) {
    assert!((0.0..=1.0).contains(&change_prob));
    assert!((0.0..=1.0).contains(&delete_prob));
    assert!(growth_frac >= 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_old = old.n_pages();
    let n_new = (n_old as f64 * growth_frac).round() as usize;
    let n_total = n_old + n_new;

    let mut b = GraphBuilder::with_capacity(n_total, old.n_internal_links());
    for s in 0..old.n_sites() as u32 {
        b.add_site(old.site_name(s).to_string());
    }
    for p in 0..n_old as u32 {
        let id = b.add_page(old.site(p));
        debug_assert_eq!(id, p);
    }
    let mut new_pages = Vec::with_capacity(n_new);
    for _ in 0..n_new {
        let site = rng.gen_range(0..old.n_sites()) as u32;
        new_pages.push(b.add_page(site));
    }

    // Deletions are drawn first so regenerated and new rows never link to
    // a tombstone (and carried-over rows are filtered against them).
    let mut deleted_pages = Vec::new();
    if delete_prob > 0.0 {
        for p in 0..n_old as u32 {
            if rng.gen_bool(delete_prob) {
                deleted_pages.push(p);
            }
        }
    }
    let dead: std::collections::BTreeSet<PageId> = deleted_pages.iter().copied().collect();
    let alive_target = |rng: &mut SmallRng, p: u32| -> Option<u32> {
        if n_total - dead.len() < 2 {
            return None; // no possible non-self, non-tombstone target
        }
        loop {
            let v = rng.gen_range(0..n_total as u32);
            if v != p && !dead.contains(&v) {
                return Some(v);
            }
        }
    };

    let mut changed_pages = Vec::new();
    for p in 0..n_old as u32 {
        if dead.contains(&p) {
            continue; // tombstone: no out-links, no external count
        }
        if rng.gen_bool(change_prob) {
            changed_pages.push(p);
            // Regenerate: same total degree, fresh random internal targets.
            let d = old.out_degree(p);
            let internal = old.internal_out_degree(p);
            let mut external = d - internal;
            for _ in 0..internal {
                match alive_target(&mut rng, p) {
                    Some(v) => b.add_link(p, v),
                    // No possible target: the link now points outside the
                    // crawl (total degree is preserved).
                    None => external += 1,
                }
            }
            b.add_external_links(p, external);
        } else {
            let before = b.n_links();
            for &v in old.out_links(p) {
                if !dead.contains(&v) {
                    b.add_link(p, v);
                }
            }
            if b.n_links() - before < old.out_links(p).len() {
                // In-links to tombstones were dropped: the row — and the
                // page's out-degree — changed even though the page itself
                // was not re-crawled.
                changed_pages.push(p);
            }
            b.add_external_links(p, old.external_out_degree(p));
        }
    }
    // New pages link mostly within their own graph neighbourhood.
    for &p in &new_pages {
        for _ in 0..5 {
            if let Some(v) = alive_target(&mut rng, p) {
                b.add_link(p, v);
            }
        }
    }

    (b.build(), RecrawlReport { changed_pages, new_pages, deleted_pages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::toy;

    #[test]
    fn identity_recrawl_preserves_graph() {
        let g = toy::two_cliques(4);
        let (g2, report) = recrawl(&g, 0.0, 0.0, 1);
        assert_eq!(g2, g);
        assert!(report.changed_pages.is_empty());
        assert!(report.new_pages.is_empty());
    }

    #[test]
    fn growth_appends_pages() {
        let g = toy::cycle(10);
        let (g2, report) = recrawl(&g, 0.0, 0.5, 2);
        assert_eq!(g2.n_pages(), 15);
        assert_eq!(report.new_pages, vec![10, 11, 12, 13, 14]);
        // Old pages keep sites and URLs.
        for p in 0..10u32 {
            assert_eq!(g2.site(p), g.site(p));
            assert_eq!(g2.url_of(p), g.url_of(p));
        }
    }

    #[test]
    fn change_preserves_total_degree() {
        let g = toy::leaky_cycle(20, 2);
        let (g2, report) = recrawl(&g, 1.0, 0.0, 3);
        assert_eq!(report.changed_pages.len(), 20);
        for p in 0..20u32 {
            assert_eq!(g2.out_degree(p), g.out_degree(p), "degree of page {p}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = toy::cycle(30);
        assert_eq!(recrawl(&g, 0.3, 0.1, 7), recrawl(&g, 0.3, 0.1, 7));
    }

    #[test]
    fn recrawl_without_deletions_matches_legacy_recrawl() {
        let g = toy::cycle(30);
        assert_eq!(recrawl(&g, 0.3, 0.1, 7), recrawl_with_deletions(&g, 0.3, 0.1, 0.0, 7));
    }

    #[test]
    fn deleting_an_only_target_leaves_the_linker_dangling() {
        // a → b and nothing else: when the re-crawl finds b gone, a must
        // end with d(a) = 0 exactly — not a phantom link into a tombstone.
        let mut b = GraphBuilder::new();
        let s = b.add_site("a.edu");
        let pa = b.add_page(s);
        let pb = b.add_page(s);
        b.add_link(pa, pb);
        let g = b.build();
        // delete_prob = 1.0 tombstones every page; the structural contract
        // below is what matters.
        let (g2, report) = recrawl_with_deletions(&g, 0.0, 0.0, 1.0, 5);
        assert_eq!(report.deleted_pages, vec![pa, pb]);
        assert_eq!(g2.n_pages(), 2, "tombstones keep the id space dense");
        assert_eq!(g2.out_degree(pa), 0, "the in-link to the tombstone is gone");
        assert_eq!(g2.url_of(pa), g.url_of(pa));
        assert!(g2.dangling_pages().contains(&pa));
    }

    #[test]
    fn deletions_never_leave_links_to_tombstones() {
        let g = toy::two_cliques(8);
        let (g2, report) = recrawl_with_deletions(&g, 0.5, 0.2, 0.3, 11);
        let dead: std::collections::BTreeSet<_> = report.deleted_pages.iter().copied().collect();
        for p in 0..g2.n_pages() as u32 {
            if dead.contains(&p) {
                assert_eq!(g2.out_degree(p), 0, "tombstone {p} kept out-links");
            }
            for &v in g2.out_links(p) {
                assert!(!dead.contains(&v), "page {p} still links to tombstone {v}");
            }
        }
    }
}
