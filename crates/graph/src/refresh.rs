//! Crawl-refresh simulation.
//!
//! §4.1: "As crawler(s) may revisit pages in order to detect changes and
//! refresh the downloaded collection, one page may participate in dividing
//! more than one time. The random dividing strategy doesn't fulfill this
//! need for taking the risk of sending a page to different page rankers on
//! different times."
//!
//! [`recrawl`] produces a new [`WebGraph`] in which a fraction of pages have
//! changed their out-links (and some new pages appeared), while page
//! *identity* — the URL — is preserved. Partition strategies are then
//! evaluated on whether a surviving page keeps its ranker assignment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{PageId, WebGraph};

/// What changed between two crawls (page ids refer to the *new* graph; the
/// first `old.n_pages()` ids are carried over 1:1 from the old crawl).
#[derive(Debug, Clone, PartialEq)]
pub struct RecrawlReport {
    /// Pages whose out-link set changed.
    pub changed_pages: Vec<PageId>,
    /// Ids of pages added by the new crawl (all ≥ `old.n_pages()`).
    pub new_pages: Vec<PageId>,
}

/// Re-crawls `old`: each page's link set is regenerated with probability
/// `change_prob`, and `growth_frac · n_pages` new pages are appended to
/// random existing sites. Page ids (and therefore URLs) of surviving pages
/// are unchanged.
#[must_use]
pub fn recrawl(
    old: &WebGraph,
    change_prob: f64,
    growth_frac: f64,
    seed: u64,
) -> (WebGraph, RecrawlReport) {
    assert!((0.0..=1.0).contains(&change_prob));
    assert!(growth_frac >= 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_old = old.n_pages();
    let n_new = (n_old as f64 * growth_frac).round() as usize;
    let n_total = n_old + n_new;

    let mut b = GraphBuilder::with_capacity(n_total, old.n_internal_links());
    for s in 0..old.n_sites() as u32 {
        b.add_site(old.site_name(s).to_string());
    }
    for p in 0..n_old as u32 {
        let id = b.add_page(old.site(p));
        debug_assert_eq!(id, p);
    }
    let mut new_pages = Vec::with_capacity(n_new);
    for _ in 0..n_new {
        let site = rng.gen_range(0..old.n_sites()) as u32;
        new_pages.push(b.add_page(site));
    }

    let mut changed_pages = Vec::new();
    for p in 0..n_old as u32 {
        if rng.gen_bool(change_prob) {
            changed_pages.push(p);
            // Regenerate: same total degree, fresh random internal targets.
            let d = old.out_degree(p);
            let internal = old.internal_out_degree(p);
            let mut external = d - internal;
            for _ in 0..internal {
                if n_total < 2 {
                    // No possible non-self target: the link now points
                    // outside the crawl (total degree is preserved).
                    external += 1;
                    continue;
                }
                let mut v = rng.gen_range(0..n_total as u32);
                while v == p {
                    v = rng.gen_range(0..n_total as u32);
                }
                b.add_link(p, v);
            }
            b.add_external_links(p, external);
        } else {
            for &v in old.out_links(p) {
                b.add_link(p, v);
            }
            b.add_external_links(p, old.external_out_degree(p));
        }
    }
    // New pages link mostly within their own graph neighbourhood.
    if n_total >= 2 {
        for &p in &new_pages {
            for _ in 0..5 {
                let mut v = rng.gen_range(0..n_total as u32);
                while v == p {
                    v = rng.gen_range(0..n_total as u32);
                }
                b.add_link(p, v);
            }
        }
    }

    (b.build(), RecrawlReport { changed_pages, new_pages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::toy;

    #[test]
    fn identity_recrawl_preserves_graph() {
        let g = toy::two_cliques(4);
        let (g2, report) = recrawl(&g, 0.0, 0.0, 1);
        assert_eq!(g2, g);
        assert!(report.changed_pages.is_empty());
        assert!(report.new_pages.is_empty());
    }

    #[test]
    fn growth_appends_pages() {
        let g = toy::cycle(10);
        let (g2, report) = recrawl(&g, 0.0, 0.5, 2);
        assert_eq!(g2.n_pages(), 15);
        assert_eq!(report.new_pages, vec![10, 11, 12, 13, 14]);
        // Old pages keep sites and URLs.
        for p in 0..10u32 {
            assert_eq!(g2.site(p), g.site(p));
            assert_eq!(g2.url_of(p), g.url_of(p));
        }
    }

    #[test]
    fn change_preserves_total_degree() {
        let g = toy::leaky_cycle(20, 2);
        let (g2, report) = recrawl(&g, 1.0, 0.0, 3);
        assert_eq!(report.changed_pages.len(), 20);
        for p in 0..20u32 {
            assert_eq!(g2.out_degree(p), g.out_degree(p), "degree of page {p}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = toy::cycle(30);
        assert_eq!(recrawl(&g, 0.3, 0.1, 7), recrawl(&g, 0.3, 0.1, 7));
    }
}
