//! Summary statistics over a [`WebGraph`].

use crate::graph::WebGraph;

/// A one-shot statistical summary of a link graph, matching the properties
/// the paper reports for its dataset (page/site/link counts, leak fraction,
/// intra-site fraction).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Crawled pages.
    pub n_pages: usize,
    /// Sites.
    pub n_sites: usize,
    /// Links with both endpoints crawled.
    pub n_internal_links: usize,
    /// Links leaving the crawled set.
    pub n_external_links: u64,
    /// `internal / (internal + external)` — the paper's 7M/15M ≈ 0.467.
    pub internal_fraction: f64,
    /// Of internal links, fraction staying on the source's site.
    pub intra_site_fraction: f64,
    /// Mean total out-degree `d(u)`.
    pub mean_out_degree: f64,
    /// Pages with `d(u) = 0`.
    pub n_dangling: usize,
    /// Largest internal in-degree.
    pub max_in_degree: u32,
    /// Largest / smallest site size (skew indicator).
    pub max_site_size: u32,
    /// Smallest site size.
    pub min_site_size: u32,
}

impl GraphStats {
    /// Computes all statistics in O(pages + links).
    #[must_use]
    pub fn compute(g: &WebGraph) -> Self {
        let n_pages = g.n_pages();
        let n_internal = g.n_internal_links();
        let n_external = g.n_external_links();
        let total = n_internal as u64 + n_external;
        let in_deg = g.in_degrees();
        let site_sizes: Vec<u32> = (0..g.n_sites() as u32).map(|s| g.site_size(s)).collect();
        Self {
            n_pages,
            n_sites: g.n_sites(),
            n_internal_links: n_internal,
            n_external_links: n_external,
            internal_fraction: if total == 0 { 0.0 } else { n_internal as f64 / total as f64 },
            intra_site_fraction: g.intra_site_fraction(),
            mean_out_degree: if n_pages == 0 { 0.0 } else { total as f64 / n_pages as f64 },
            n_dangling: g.dangling_pages().len(),
            max_in_degree: in_deg.iter().copied().max().unwrap_or(0),
            max_site_size: site_sizes.iter().copied().max().unwrap_or(0),
            min_site_size: site_sizes.iter().copied().min().unwrap_or(0),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "pages:              {}", self.n_pages)?;
        writeln!(f, "sites:              {}", self.n_sites)?;
        writeln!(f, "internal links:     {}", self.n_internal_links)?;
        writeln!(f, "external links:     {}", self.n_external_links)?;
        writeln!(f, "internal fraction:  {:.3}", self.internal_fraction)?;
        writeln!(f, "intra-site frac:    {:.3}", self.intra_site_fraction)?;
        writeln!(f, "mean out-degree:    {:.2}", self.mean_out_degree)?;
        writeln!(f, "dangling pages:     {}", self.n_dangling)?;
        writeln!(f, "max in-degree:      {}", self.max_in_degree)?;
        write!(f, "site sizes:         {}..{}", self.min_site_size, self.max_site_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::toy;

    #[test]
    fn stats_on_cycle() {
        let s = GraphStats::compute(&toy::cycle(10));
        assert_eq!(s.n_pages, 10);
        assert_eq!(s.n_internal_links, 10);
        assert_eq!(s.n_external_links, 0);
        assert_eq!(s.internal_fraction, 1.0);
        assert_eq!(s.mean_out_degree, 1.0);
        assert_eq!(s.n_dangling, 0);
        assert_eq!(s.max_in_degree, 1);
    }

    #[test]
    fn stats_on_leaky_cycle() {
        let s = GraphStats::compute(&toy::leaky_cycle(10, 2));
        assert_eq!(s.n_external_links, 20);
        assert!((s.internal_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.mean_out_degree, 3.0);
    }

    #[test]
    fn display_is_complete() {
        let s = GraphStats::compute(&toy::star(5));
        let text = s.to_string();
        for key in ["pages:", "sites:", "internal links:", "dangling", "site sizes:"] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
