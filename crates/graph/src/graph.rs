//! The immutable [`WebGraph`] structure.

use crate::urls;

/// Index of a crawled page (dense, `0..n_pages`).
pub type PageId = u32;

/// Index of a web site (dense, `0..n_sites`). Sites are the unit the paper
/// recommends partitioning by (§4.1): ~90% of a page's links stay inside its
/// own site, so splitting at site granularity minimizes cut edges.
pub type SiteId = u32;

/// An immutable web link graph over a *crawled* page set.
///
/// The crawled set is an **open system**: pages link both to other crawled
/// pages (internal links, stored in CSR adjacency) and to pages never
/// crawled (external links, stored only as per-page counts — their
/// destinations are unknown, but they still contribute to the out-degree
/// `d(u)` that divides a page's rank in formula 2.1/3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct WebGraph {
    /// `out_ptr[u]..out_ptr[u+1]` indexes `out_dst` for page `u`.
    out_ptr: Vec<u64>,
    /// Destination pages of internal links.
    out_dst: Vec<PageId>,
    /// Number of out-links per page whose destination is outside the crawl.
    ext_out: Vec<u32>,
    /// Site of each page.
    site_of: Vec<SiteId>,
    /// Number of pages per site (derived, kept for cheap queries).
    site_sizes: Vec<u32>,
    /// Site host names (e.g. `www.cs-0042.edu`).
    site_names: Vec<String>,
}

impl WebGraph {
    pub(crate) fn from_parts(
        out_ptr: Vec<u64>,
        out_dst: Vec<PageId>,
        ext_out: Vec<u32>,
        site_of: Vec<SiteId>,
        site_names: Vec<String>,
    ) -> Self {
        let n = site_of.len();
        assert_eq!(out_ptr.len(), n + 1);
        assert_eq!(ext_out.len(), n);
        assert_eq!(*out_ptr.last().unwrap_or(&0) as usize, out_dst.len());
        let mut site_sizes = vec![0u32; site_names.len()];
        for &s in &site_of {
            site_sizes[s as usize] += 1;
        }
        Self { out_ptr, out_dst, ext_out, site_of, site_sizes, site_names }
    }

    /// Number of crawled pages.
    #[must_use]
    pub fn n_pages(&self) -> usize {
        self.site_of.len()
    }

    /// Number of sites.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.site_names.len()
    }

    /// Number of internal links (both endpoints crawled).
    #[must_use]
    pub fn n_internal_links(&self) -> usize {
        self.out_dst.len()
    }

    /// Number of links pointing outside the crawled set.
    #[must_use]
    pub fn n_external_links(&self) -> u64 {
        self.ext_out.iter().map(|&c| u64::from(c)).sum()
    }

    /// Total out-links (internal + external) — the denominator universe of
    /// `d(u)` summed over pages.
    #[must_use]
    pub fn n_total_links(&self) -> u64 {
        self.n_internal_links() as u64 + self.n_external_links()
    }

    /// Internal out-links of page `u`.
    #[must_use]
    pub fn out_links(&self, u: PageId) -> &[PageId] {
        let lo = self.out_ptr[u as usize] as usize;
        let hi = self.out_ptr[u as usize + 1] as usize;
        &self.out_dst[lo..hi]
    }

    /// Internal out-degree of `u`.
    #[must_use]
    pub fn internal_out_degree(&self, u: PageId) -> u32 {
        (self.out_ptr[u as usize + 1] - self.out_ptr[u as usize]) as u32
    }

    /// External out-link count of `u`.
    #[must_use]
    pub fn external_out_degree(&self, u: PageId) -> u32 {
        self.ext_out[u as usize]
    }

    /// The paper's `d(u)`: total out-degree including links that leave the
    /// crawled set. A page with `d(u) = 0` is *dangling* and transmits no
    /// rank in the open-system model.
    #[must_use]
    pub fn out_degree(&self, u: PageId) -> u32 {
        self.internal_out_degree(u) + self.ext_out[u as usize]
    }

    /// Site of page `u`.
    #[must_use]
    pub fn site(&self, u: PageId) -> SiteId {
        self.site_of[u as usize]
    }

    /// Host name of a site.
    #[must_use]
    pub fn site_name(&self, s: SiteId) -> &str {
        &self.site_names[s as usize]
    }

    /// Pages on a site (count only; page lists can be derived by scanning).
    #[must_use]
    pub fn site_size(&self, s: SiteId) -> u32 {
        self.site_sizes[s as usize]
    }

    /// The synthesized URL of a page (host from its site, deterministic path
    /// from the page id). Average length ≈ 40 bytes, matching the constant
    /// the paper takes from \[16\] for bandwidth accounting.
    #[must_use]
    pub fn url_of(&self, u: PageId) -> String {
        urls::page_url(self.site_name(self.site_of[u as usize]), u)
    }

    /// Pages with `d(u) = 0` (no out-links at all).
    #[must_use]
    pub fn dangling_pages(&self) -> Vec<PageId> {
        (0..self.n_pages() as u32).filter(|&u| self.out_degree(u) == 0).collect()
    }

    /// In-degree of every page (internal links only), computed by one scan.
    #[must_use]
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n_pages()];
        for &v in &self.out_dst {
            deg[v as usize] += 1;
        }
        deg
    }

    /// Fraction of internal links that stay within their source page's site.
    /// Cho & Garcia-Molina \[16\] report ≈ 0.9 for real crawls; the paper's
    /// §4.1 partitioning argument rests on this number.
    #[must_use]
    pub fn intra_site_fraction(&self) -> f64 {
        if self.out_dst.is_empty() {
            return 0.0;
        }
        let mut intra = 0u64;
        for u in 0..self.n_pages() as u32 {
            let su = self.site(u);
            intra += self.out_links(u).iter().filter(|&&v| self.site(v) == su).count() as u64;
        }
        intra as f64 / self.out_dst.len() as f64
    }

    /// Iterates all internal links as `(from, to)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (PageId, PageId)> + '_ {
        (0..self.n_pages() as u32).flat_map(move |u| self.out_links(u).iter().map(move |&v| (u, v)))
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn basic_accessors() {
        let mut b = GraphBuilder::new();
        let s0 = b.add_site("a.edu");
        let s1 = b.add_site("b.edu");
        let p0 = b.add_page(s0);
        let p1 = b.add_page(s0);
        let p2 = b.add_page(s1);
        b.add_link(p0, p1);
        b.add_link(p0, p2);
        b.add_link(p1, p0);
        b.add_external_links(p2, 3);
        let g = b.build();

        assert_eq!(g.n_pages(), 3);
        assert_eq!(g.n_sites(), 2);
        assert_eq!(g.n_internal_links(), 3);
        assert_eq!(g.n_external_links(), 3);
        assert_eq!(g.n_total_links(), 6);
        assert_eq!(g.out_degree(p0), 2);
        assert_eq!(g.out_degree(p2), 3);
        assert_eq!(g.internal_out_degree(p2), 0);
        assert_eq!(g.site(p2), s1);
        assert_eq!(g.site_size(s0), 2);
        assert_eq!(g.out_links(p0), &[p1, p2]);
        assert!(g.dangling_pages().is_empty());
    }

    #[test]
    fn dangling_detection() {
        let mut b = GraphBuilder::new();
        let s = b.add_site("a.edu");
        let p0 = b.add_page(s);
        let p1 = b.add_page(s);
        b.add_link(p0, p1);
        let g = b.build();
        assert_eq!(g.dangling_pages(), vec![p1]);
    }

    #[test]
    fn in_degrees_and_links_iterator() {
        let mut b = GraphBuilder::new();
        let s = b.add_site("a.edu");
        let p: Vec<_> = (0..4).map(|_| b.add_page(s)).collect();
        b.add_link(p[0], p[3]);
        b.add_link(p[1], p[3]);
        b.add_link(p[2], p[3]);
        b.add_link(p[3], p[0]);
        let g = b.build();
        assert_eq!(g.in_degrees(), vec![1, 0, 0, 3]);
        assert_eq!(g.links().count(), 4);
    }

    #[test]
    fn intra_site_fraction() {
        let mut b = GraphBuilder::new();
        let s0 = b.add_site("a.edu");
        let s1 = b.add_site("b.edu");
        let a0 = b.add_page(s0);
        let a1 = b.add_page(s0);
        let b0 = b.add_page(s1);
        b.add_link(a0, a1); // intra
        b.add_link(a1, a0); // intra
        b.add_link(a0, b0); // inter
        b.add_link(b0, a0); // inter
        let g = b.build();
        assert!((g.intra_site_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn urls_are_deterministic_and_sized() {
        let mut b = GraphBuilder::new();
        let s = b.add_site("www.cs-0001.edu");
        let p = b.add_page(s);
        let g = b.build();
        let u1 = g.url_of(p);
        let u2 = g.url_of(p);
        assert_eq!(u1, u2);
        assert!(u1.starts_with("http://www.cs-0001.edu/"));
    }
}
