//! Synthetic link-graph generators.
//!
//! * [`toy`] — tiny deterministic graphs for unit tests and doc examples,
//! * [`random`] — Erdős–Rényi and copy-model (power-law) generators,
//! * [`edu`] — the site-structured generator standing in for the Google
//!   programming-contest dataset the paper evaluates on.

pub mod edu;
pub mod random;
pub mod toy;

pub use edu::{
    edu_domain, edu_domain_to_snapshot, edu_domain_to_snapshot_path, stream_graph, EduDomainConfig,
    PageRowSink, SnapshotSink,
};
pub use random::{copy_model, erdos_renyi};
