//! The edu-domain dataset synthesizer.
//!
//! The paper evaluates on the Google programming-contest dataset: "a
//! selection of HTML web pages from 100 different sites in the edu domain
//! ... nearly 1M pages with overall 15M links", of which "only 7M of the
//! whole 15M links point to pages in the dataset". That dataset is no longer
//! distributed, so this module synthesizes a graph matching every property
//! the paper's conclusions rest on:
//!
//! * 100 sites with skewed (Zipf) size distribution,
//! * a mean total out-degree of 15 links/page,
//! * ≈ 7/15 of links staying inside the crawled set (the rest leak rank out
//!   of the open system — this is what makes the converged average rank land
//!   near 0.3 in Fig 7),
//! * ≈ 90% of internal links staying within the source page's own site
//!   (Cho & Garcia-Molina \[16\]; the §4.1 partitioning argument),
//! * heavy-tailed in-degrees via the copy model.

use std::io::{self, Seek, Write};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Poisson};

use crate::builder::GraphBuilder;
use crate::graph::WebGraph;
use crate::io::SnapshotWriter;
use crate::urls;

/// Parameters of the edu-domain synthesizer.
#[derive(Debug, Clone, Copy)]
pub struct EduDomainConfig {
    /// Number of sites (paper: 100).
    pub n_sites: usize,
    /// Number of crawled pages (paper: ~1M; default scaled to 100k so the
    /// full experiment suite runs on a laptop in minutes).
    pub n_pages: usize,
    /// Mean total out-degree, internal + external (paper: 15).
    pub mean_out_degree: f64,
    /// Fraction of links whose destination is inside the crawled set
    /// (paper: 7M / 15M ≈ 0.467).
    pub internal_fraction: f64,
    /// Of the internal links, the fraction staying on the source page's own
    /// site (\[16\]: ≈ 0.9).
    pub intra_site_fraction: f64,
    /// Copy-model probability for destination choice (higher ⇒ heavier
    /// in-degree tail).
    pub copy_prob: f64,
    /// Zipf exponent for site sizes (0 ⇒ uniform sites).
    pub zipf_exponent: f64,
    /// RNG seed; the generator is fully deterministic per seed.
    pub seed: u64,
}

impl Default for EduDomainConfig {
    fn default() -> Self {
        Self {
            n_sites: 100,
            n_pages: 100_000,
            mean_out_degree: 15.0,
            internal_fraction: 7.0 / 15.0,
            intra_site_fraction: 0.9,
            copy_prob: 0.7,
            zipf_exponent: 0.8,
            seed: 0x0DD5_EED5,
        }
    }
}

impl EduDomainConfig {
    /// The paper's full scale: 1M pages, ~15M links, 100 sites.
    #[must_use]
    pub fn paper_full() -> Self {
        Self { n_pages: 1_000_000, ..Self::default() }
    }

    /// A small configuration for fast tests (5k pages, 20 sites).
    #[must_use]
    pub fn small() -> Self {
        Self { n_pages: 5_000, n_sites: 20, ..Self::default() }
    }
}

/// Receives generated page rows, one per page in ascending id order.
///
/// The generator itself never materializes the edge list: each page's
/// destinations are handed over row by row, and the sink decides whether to
/// accumulate them in memory ([`edu_domain`]) or stream them to disk
/// ([`edu_domain_to_snapshot`]).
pub trait PageRowSink {
    /// Called once before any rows with the site host names and the number
    /// of pages on each site (pages occupy contiguous id blocks in site
    /// order, so this fixes every page's site up front).
    ///
    /// # Errors
    /// Sinks backed by I/O may fail.
    fn sites(&mut self, names: &[String], sizes: &[usize]) -> io::Result<()>;
    /// One page row: its site, external out-link count, and **sorted**
    /// internal destination list.
    ///
    /// # Errors
    /// Sinks backed by I/O may fail.
    fn page(&mut self, site: u32, ext_out: u32, dsts: &[u32]) -> io::Result<()>;
}

/// In-memory sink accumulating rows into a [`GraphBuilder`].
struct BuilderSink {
    b: GraphBuilder,
    next_page: u32,
}

impl PageRowSink for BuilderSink {
    fn sites(&mut self, names: &[String], sizes: &[usize]) -> io::Result<()> {
        // Pre-register every page so rows may link forward to pages whose
        // rows have not been emitted yet.
        for (name, &sz) in names.iter().zip(sizes) {
            let site = self.b.add_site(name.clone());
            for _ in 0..sz {
                self.b.add_page(site);
            }
        }
        Ok(())
    }

    fn page(&mut self, site: u32, ext_out: u32, dsts: &[u32]) -> io::Result<()> {
        let p = self.next_page;
        self.next_page += 1;
        let _ = site; // fixed already by the pre-registration in `sites`
        if ext_out > 0 {
            self.b.add_external_links(p, ext_out);
        }
        for &v in dsts {
            self.b.add_link(p, v);
        }
        Ok(())
    }
}

/// Streaming sink writing rows straight to a binary snapshot.
pub struct SnapshotSink<W: Write + Seek> {
    w: Option<SnapshotWriter<W>>,
    raw: Option<W>,
    n_pages: usize,
}

impl<W: Write + Seek> SnapshotSink<W> {
    /// A sink that will write a snapshot of `n_pages` pages to `w`.
    pub fn new(w: W, n_pages: usize) -> Self {
        Self { w: None, raw: Some(w), n_pages }
    }

    /// Backpatches the link count and returns the underlying writer.
    ///
    /// # Errors
    /// Propagates I/O failures from the underlying writer.
    ///
    /// # Panics
    /// If fewer rows than `n_pages` were streamed, or `sites` never ran.
    pub fn finish(self) -> io::Result<W> {
        self.w.expect("sites emitted").finish()
    }
}

impl<W: Write + Seek> PageRowSink for SnapshotSink<W> {
    fn sites(&mut self, names: &[String], _sizes: &[usize]) -> io::Result<()> {
        let raw = self.raw.take().expect("sites called once");
        self.w = Some(SnapshotWriter::new(raw, names, self.n_pages)?);
        Ok(())
    }

    fn page(&mut self, site: u32, ext_out: u32, dsts: &[u32]) -> io::Result<()> {
        self.w.as_mut().expect("sites before pages").page(site, ext_out, dsts)
    }
}

/// Generates the synthetic edu-domain graph described by `cfg`.
///
/// Pages of a site occupy a contiguous id block (crawls are typically
/// site-ordered); destination choice uses per-site and global copy lists so
/// both intra-site and cross-site in-degrees are heavy-tailed.
///
/// # Panics
/// On degenerate configurations (`n_pages < n_sites`, fractions outside
/// `[0, 1]`).
#[must_use]
pub fn edu_domain(cfg: &EduDomainConfig) -> WebGraph {
    let mut sink = BuilderSink {
        b: GraphBuilder::with_capacity(
            cfg.n_pages,
            (cfg.n_pages as f64 * cfg.mean_out_degree * cfg.internal_fraction) as usize,
        ),
        next_page: 0,
    };
    generate_rows(cfg, &mut sink).expect("in-memory sink cannot fail");
    sink.b.build()
}

/// Generates the edu-domain graph and streams it directly to a binary
/// snapshot, never materializing the edge list in memory (only the copy
/// lists driving destination choice are kept). Loading the snapshot with
/// [`crate::io::read_snapshot`] yields a graph equal to
/// [`edu_domain`]`(cfg)` — the row stream is identical.
///
/// # Errors
/// Propagates I/O failures from the underlying writer.
///
/// # Panics
/// On degenerate configurations, as [`edu_domain`].
pub fn edu_domain_to_snapshot<W: Write + Seek>(cfg: &EduDomainConfig, w: W) -> io::Result<()> {
    let mut sink = SnapshotSink::new(w, cfg.n_pages);
    generate_rows(cfg, &mut sink)?;
    sink.finish()?;
    Ok(())
}

/// Streams an *existing* graph's rows through a [`PageRowSink`] — the same
/// row path the generators use, so a mutated graph (e.g. after a
/// [`crate::GraphDelta`]) can be re-snapshotted by any sink.
///
/// Sinks that rely on the contiguous-site-block contract of
/// [`PageRowSink::sites`] (such as the builder sink) require `g` to keep
/// pages of a site in one ascending block; [`SnapshotSink`] takes the site
/// of each page from its row and works for any graph.
///
/// # Errors
/// Propagates sink failures.
pub fn stream_graph<S: PageRowSink>(g: &WebGraph, sink: &mut S) -> io::Result<()> {
    let names: Vec<String> = (0..g.n_sites() as u32).map(|s| g.site_name(s).to_string()).collect();
    let sizes: Vec<usize> = (0..g.n_sites() as u32).map(|s| g.site_size(s) as usize).collect();
    sink.sites(&names, &sizes)?;
    for p in 0..g.n_pages() as u32 {
        sink.page(g.site(p), g.external_out_degree(p), g.out_links(p))?;
    }
    Ok(())
}

/// Generates the edu-domain graph as a binary snapshot file at `path`.
///
/// # Errors
/// Propagates I/O failures.
pub fn edu_domain_to_snapshot_path(
    cfg: &EduDomainConfig,
    path: impl AsRef<std::path::Path>,
) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    edu_domain_to_snapshot(cfg, io::BufWriter::new(f))
}

/// The generator core: emits one row per page into `sink`. RNG consumption
/// is independent of the sink, so every sink observes the same rows for a
/// given seed.
fn generate_rows<S: PageRowSink>(cfg: &EduDomainConfig, sink: &mut S) -> io::Result<()> {
    assert!(cfg.n_sites >= 1);
    assert!(cfg.n_pages >= cfg.n_sites, "need at least one page per site");
    assert!((0.0..=1.0).contains(&cfg.internal_fraction));
    assert!((0.0..=1.0).contains(&cfg.intra_site_fraction));
    assert!((0.0..=1.0).contains(&cfg.copy_prob));
    assert!(cfg.mean_out_degree > 0.0);

    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // --- Site sizes: Zipf weights, every site gets >= 1 page. -------------
    let weights: Vec<f64> =
        (1..=cfg.n_sites).map(|r| 1.0 / (r as f64).powf(cfg.zipf_exponent)).collect();
    let wsum: f64 = weights.iter().sum();
    let spare = cfg.n_pages - cfg.n_sites;
    let mut sizes: Vec<usize> =
        weights.iter().map(|w| 1 + ((w / wsum) * spare as f64).floor() as usize).collect();
    // Distribute the rounding remainder to the largest sites.
    let mut assigned: usize = sizes.iter().sum();
    let mut i = 0;
    while assigned < cfg.n_pages {
        sizes[i % cfg.n_sites] += 1;
        assigned += 1;
        i += 1;
    }

    // --- Pages: contiguous block per site. --------------------------------
    let names: Vec<String> = (0..cfg.n_sites as u32).map(urls::site_host).collect();
    sink.sites(&names, &sizes)?;
    let mut site_range = Vec::with_capacity(cfg.n_sites); // (first_page, size)
    let mut next = 0u32;
    for &sz in &sizes {
        site_range.push((next, sz as u32));
        next += sz as u32;
    }
    debug_assert_eq!(next as usize, cfg.n_pages);

    // --- Links. ------------------------------------------------------------
    let poisson = Poisson::new(cfg.mean_out_degree).expect("positive mean");
    // Copy lists: destinations of already-created links.
    let mut global_dests: Vec<u32> = Vec::new();
    let mut site_dests: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_sites];
    let mut row: Vec<u32> = Vec::new();

    for (s, &(first, sz)) in site_range.iter().enumerate() {
        for p in first..first + sz {
            let d = poisson.sample(&mut rng) as usize;
            row.clear();
            let mut ext = 0u32;
            for _ in 0..d {
                if !rng.gen_bool(cfg.internal_fraction) {
                    ext += 1;
                    continue;
                }
                let v = if rng.gen_bool(cfg.intra_site_fraction) {
                    // Intra-site destination.
                    let pool = &site_dests[s];
                    if !pool.is_empty() && rng.gen_bool(cfg.copy_prob) {
                        pool[rng.gen_range(0..pool.len())]
                    } else {
                        first + rng.gen_range(0..sz)
                    }
                } else {
                    // Cross-site (but still crawled) destination.
                    if !global_dests.is_empty() && rng.gen_bool(cfg.copy_prob) {
                        global_dests[rng.gen_range(0..global_dests.len())]
                    } else {
                        rng.gen_range(0..cfg.n_pages as u32)
                    }
                };
                if v == p {
                    // Treat would-be self links as external, preserving d(u).
                    ext += 1;
                    continue;
                }
                row.push(v);
                global_dests.push(v);
                let vs = site_of_page(&site_range, v);
                site_dests[vs].push(v);
            }
            // Snapshot rows carry sorted destination lists; the builder path
            // would sort them at `build()` time anyway.
            row.sort_unstable();
            sink.page(s as u32, ext, &row)?;
        }
    }
    Ok(())
}

/// Binary-search the contiguous site blocks for the site of page `v`.
fn site_of_page(ranges: &[(u32, u32)], v: u32) -> usize {
    match ranges.binary_search_by(|&(first, _)| first.cmp(&v)) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> EduDomainConfig {
        EduDomainConfig { n_pages: 20_000, n_sites: 50, ..EduDomainConfig::default() }
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = edu_domain(&test_cfg());
        let g2 = edu_domain(&test_cfg());
        assert_eq!(g1, g2);
    }

    #[test]
    fn matches_paper_link_budget() {
        let g = edu_domain(&test_cfg());
        let total = g.n_total_links() as f64;
        let per_page = total / g.n_pages() as f64;
        assert!(
            (13.0..=17.0).contains(&per_page),
            "mean out-degree {per_page} not near the paper's 15"
        );
        let internal_frac = g.n_internal_links() as f64 / total;
        assert!(
            (0.42..=0.52).contains(&internal_frac),
            "internal fraction {internal_frac} not near 7/15"
        );
    }

    #[test]
    fn intra_site_fraction_near_90_percent() {
        let g = edu_domain(&test_cfg());
        let f = g.intra_site_fraction();
        assert!((0.85..=0.95).contains(&f), "intra-site fraction {f}");
    }

    #[test]
    fn site_sizes_are_skewed() {
        let g = edu_domain(&test_cfg());
        let largest = (0..g.n_sites() as u32).map(|s| g.site_size(s)).max().unwrap();
        let smallest = (0..g.n_sites() as u32).map(|s| g.site_size(s)).min().unwrap();
        assert!(smallest >= 1);
        assert!(largest > 5 * smallest, "Zipf skew missing: {largest} vs {smallest}");
    }

    #[test]
    fn in_degree_heavy_tailed() {
        let g = edu_domain(&test_cfg());
        let deg = g.in_degrees();
        let mean = deg.iter().map(|&d| f64::from(d)).sum::<f64>() / deg.len() as f64;
        let max = f64::from(*deg.iter().max().unwrap());
        assert!(max > 10.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn no_self_links() {
        let g = edu_domain(&EduDomainConfig::small());
        assert!(g.links().all(|(u, v)| u != v));
    }

    #[test]
    fn streamed_snapshot_equals_in_memory_generation() {
        let cfg = EduDomainConfig::small();
        let mut cur = io::Cursor::new(Vec::new());
        edu_domain_to_snapshot(&cfg, &mut cur).unwrap();
        let streamed = crate::io::read_snapshot(cur.into_inner().as_slice()).unwrap();
        assert_eq!(streamed, edu_domain(&cfg));
    }

    #[test]
    fn site_lookup_helper() {
        let ranges = [(0, 10), (10, 5), (15, 100)];
        assert_eq!(site_of_page(&ranges, 0), 0);
        assert_eq!(site_of_page(&ranges, 9), 0);
        assert_eq!(site_of_page(&ranges, 10), 1);
        assert_eq!(site_of_page(&ranges, 14), 1);
        assert_eq!(site_of_page(&ranges, 15), 2);
        assert_eq!(site_of_page(&ranges, 114), 2);
    }
}
