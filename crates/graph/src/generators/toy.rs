//! Small deterministic graphs used throughout the test suites.

use crate::builder::GraphBuilder;
use crate::graph::WebGraph;
use crate::urls;

/// A directed cycle `0 → 1 → … → n−1 → 0` on a single site.
///
/// Every page has in/out degree 1, so the PageRank fixed point is uniform —
/// a convenient analytic ground truth.
#[must_use]
pub fn cycle(n: usize) -> WebGraph {
    let mut b = GraphBuilder::with_capacity(n, n);
    let s = b.add_site(urls::site_host(0));
    let pages: Vec<_> = (0..n).map(|_| b.add_page(s)).collect();
    for i in 0..n {
        b.add_link(pages[i], pages[(i + 1) % n]);
    }
    b.build()
}

/// A chain `0 → 1 → … → n−1` (the last page is dangling).
#[must_use]
pub fn chain(n: usize) -> WebGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    let s = b.add_site(urls::site_host(0));
    let pages: Vec<_> = (0..n).map(|_| b.add_page(s)).collect();
    for i in 0..n.saturating_sub(1) {
        b.add_link(pages[i], pages[i + 1]);
    }
    b.build()
}

/// A star: pages `1..n` all link to page `0`, and page `0` links back to all
/// of them. Page 0's rank dominates.
#[must_use]
pub fn star(n: usize) -> WebGraph {
    assert!(n >= 2, "star needs at least a hub and one spoke");
    let mut b = GraphBuilder::with_capacity(n, 2 * (n - 1));
    let s = b.add_site(urls::site_host(0));
    let pages: Vec<_> = (0..n).map(|_| b.add_page(s)).collect();
    for i in 1..n {
        b.add_link(pages[i], pages[0]);
        b.add_link(pages[0], pages[i]);
    }
    b.build()
}

/// The complete directed graph on `n` pages (no self loops), single site.
#[must_use]
pub fn complete(n: usize) -> WebGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1));
    let s = b.add_site(urls::site_host(0));
    let pages: Vec<_> = (0..n).map(|_| b.add_page(s)).collect();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_link(pages[i], pages[j]);
            }
        }
    }
    b.build()
}

/// Two complete cliques of `k` pages on two different sites, joined by a
/// single bridge link in each direction. The minimal graph with non-trivial
/// site structure: hash-by-site partitioning cuts exactly 2 links.
#[must_use]
pub fn two_cliques(k: usize) -> WebGraph {
    assert!(k >= 2);
    let mut b = GraphBuilder::new();
    let s0 = b.add_site(urls::site_host(0));
    let s1 = b.add_site(urls::site_host(1));
    let a: Vec<_> = (0..k).map(|_| b.add_page(s0)).collect();
    let c: Vec<_> = (0..k).map(|_| b.add_page(s1)).collect();
    for grp in [&a, &c] {
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    b.add_link(grp[i], grp[j]);
                }
            }
        }
    }
    b.add_link(a[0], c[0]);
    b.add_link(c[0], a[0]);
    b.build()
}

/// A graph whose pages leak rank: each of `n` pages on one site links to the
/// next page *and* carries `ext` external links. Used to exercise the
/// open-system behaviour (average rank < E).
#[must_use]
pub fn leaky_cycle(n: usize, ext: u32) -> WebGraph {
    let mut b = GraphBuilder::with_capacity(n, n);
    let s = b.add_site(urls::site_host(0));
    let pages: Vec<_> = (0..n).map(|_| b.add_page(s)).collect();
    for i in 0..n {
        b.add_link(pages[i], pages[(i + 1) % n]);
        b.add_external_links(pages[i], ext);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.n_pages(), 5);
        assert_eq!(g.n_internal_links(), 5);
        assert!(g.dangling_pages().is_empty());
        assert_eq!(g.out_links(3), &[4]);
        assert_eq!(g.out_links(4), &[0]);
    }

    #[test]
    fn chain_has_dangling_tail() {
        let g = chain(4);
        assert_eq!(g.n_internal_links(), 3);
        assert_eq!(g.dangling_pages(), vec![3]);
    }

    #[test]
    fn star_shape() {
        let g = star(4);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.in_degrees()[0], 3);
    }

    #[test]
    fn complete_shape() {
        let g = complete(4);
        assert_eq!(g.n_internal_links(), 12);
        assert!(g.links().all(|(u, v)| u != v));
    }

    #[test]
    fn two_cliques_cut() {
        let g = two_cliques(3);
        assert_eq!(g.n_sites(), 2);
        assert_eq!(g.n_internal_links(), 2 * 6 + 2);
        let inter = g.links().filter(|&(u, v)| g.site(u) != g.site(v)).count();
        assert_eq!(inter, 2);
    }

    #[test]
    fn leaky_cycle_leaks() {
        let g = leaky_cycle(4, 2);
        assert_eq!(g.n_external_links(), 8);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.internal_out_degree(0), 1);
    }
}
