//! Random-graph generators: Erdős–Rényi and the copy model.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::WebGraph;
use crate::urls;

/// G(n, m)-style Erdős–Rényi digraph: `n` pages spread round-robin over
/// `n_sites` sites, `m ≈ n·avg_out` uniformly random links (self-loops
/// excluded). In-degrees are binomial — *not* web-like — so this generator
/// is mainly a null model against the copy model and edu generator.
#[must_use]
pub fn erdos_renyi(n: usize, n_sites: usize, avg_out: f64, seed: u64) -> WebGraph {
    assert!(n >= 2, "need at least two pages");
    assert!(n_sites >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = (n as f64 * avg_out).round() as usize;
    let mut b = GraphBuilder::with_capacity(n, m);
    let sites: Vec<_> = (0..n_sites).map(|s| b.add_site(urls::site_host(s as u32))).collect();
    let pages: Vec<_> = (0..n).map(|i| b.add_page(sites[i % n_sites])).collect();
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        while v == u {
            v = rng.gen_range(0..n);
        }
        b.add_link(pages[u], pages[v]);
    }
    b.build()
}

/// The *copy model* (Kleinberg et al.): each new page emits `out_degree`
/// links; with probability `copy_prob` a link copies the destination of a
/// random existing link (preferential attachment ⇒ power-law in-degree),
/// otherwise it picks a uniform destination. Produces the heavy-tailed
/// in-degree distribution PageRank behaviour actually depends on.
#[must_use]
pub fn copy_model(
    n: usize,
    n_sites: usize,
    out_degree: usize,
    copy_prob: f64,
    seed: u64,
) -> WebGraph {
    assert!(n >= 2);
    assert!(n_sites >= 1);
    assert!((0.0..=1.0).contains(&copy_prob));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * out_degree);
    let sites: Vec<_> = (0..n_sites).map(|s| b.add_site(urls::site_host(s as u32))).collect();
    let pages: Vec<_> = (0..n).map(|i| b.add_page(sites[i % n_sites])).collect();

    // Running list of link destinations for O(1) "copy a random link".
    let mut dests: Vec<u32> = Vec::with_capacity(n * out_degree);
    // Seed edge so the copy list is never empty.
    b.add_link(pages[0], pages[1]);
    dests.push(pages[1]);

    for i in 1..n {
        for _ in 0..out_degree {
            let v = if rng.gen_bool(copy_prob) {
                dests[rng.gen_range(0..dests.len())]
            } else {
                pages[rng.gen_range(0..n)]
            };
            if v != pages[i] {
                b.add_link(pages[i], v);
                dests.push(v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_deterministic_per_seed() {
        let g1 = erdos_renyi(100, 5, 4.0, 42);
        let g2 = erdos_renyi(100, 5, 4.0, 42);
        assert_eq!(g1, g2);
        let g3 = erdos_renyi(100, 5, 4.0, 43);
        assert_ne!(g1, g3);
    }

    #[test]
    fn erdos_renyi_link_count() {
        let g = erdos_renyi(200, 4, 5.0, 1);
        assert_eq!(g.n_internal_links(), 1000);
        assert!(g.links().all(|(u, v)| u != v));
    }

    #[test]
    fn copy_model_has_heavy_tail() {
        let g = copy_model(2_000, 10, 8, 0.8, 7);
        let deg = g.in_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().map(|&d| f64::from(d)).sum::<f64>() / deg.len() as f64;
        // A power-law-ish tail: max in-degree far above the mean; a binomial
        // distribution would put max within ~5x of the mean at this size.
        assert!(
            f64::from(max) > 10.0 * mean,
            "max in-degree {max} not heavy-tailed vs mean {mean}"
        );
    }

    #[test]
    fn copy_model_deterministic() {
        assert_eq!(copy_model(500, 5, 6, 0.7, 9), copy_model(500, 5, 6, 0.7, 9));
    }
}
