//! Crawl deltas: first-class edits to an immutable [`WebGraph`].
//!
//! The paper freezes the link structure before ranking starts; a crawl
//! refresh therefore means a cold restart of the whole run. [`GraphDelta`]
//! makes the "live web" case expressible instead: a small, ordered batch of
//! structural edits (link add/remove, whole-row replacement, page insert or
//! delete, site split) that can be
//!
//! * applied to a graph ([`GraphDelta::apply`]), producing the mutated
//!   crawl plus a [`DeltaReport`] of exactly which surviving pages changed
//!   their out-row — the set a ranker must re-solve,
//! * diffed out of two crawls ([`GraphDelta::diff`]) or streamed from a
//!   [`recrawl`](crate::refresh) ([`GraphDelta::from_recrawl`]),
//! * serialized as a `DPRD1` record appended to the `DPRG1` binary
//!   snapshot (see [`io`](crate::io)),
//! * generated synthetically ([`GraphDelta::link_churn`]) for benchmarks.
//!
//! # Deletion semantics: tombstones
//!
//! Page ids are dense and stable — they back URLs, partition assignments
//! and rank-store lookups — so [`DeltaOp::DeletePage`] never renumbers.
//! The deleted page keeps its id slot but becomes a *tombstone*: its
//! out-row and external count are cleared, and **every in-link pointing at
//! it is removed from the linker's row**. A page whose only out-link
//! pointed at the tombstone therefore ends with `d(u) = 0` — genuinely
//! dangling, with a `column_scale` entry of exactly `0.0` (the PR 8
//! contract) — rather than keeping a phantom link into a rank black hole.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{PageId, SiteId, WebGraph};
use crate::refresh::RecrawlReport;

/// One structural edit. Ops are applied in order; later ops see the
/// effects of earlier ones (an inserted page may be linked, then deleted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Add one internal link `from → to` (duplicates are legal and count
    /// twice in `d(from)`, like the builder).
    AddLink {
        /// Source page.
        from: PageId,
        /// Destination page.
        to: PageId,
    },
    /// Remove one instance of the internal link `from → to`.
    RemoveLink {
        /// Source page.
        from: PageId,
        /// Destination page.
        to: PageId,
    },
    /// Replace a page's external out-link count (the links that leave the
    /// crawled set but still divide its rank).
    SetExternal {
        /// The page.
        page: PageId,
        /// New external out-link count.
        ext_out: u32,
    },
    /// Replace a page's whole out-row — the natural unit a re-crawled page
    /// produces.
    SetLinks {
        /// The page.
        page: PageId,
        /// New external out-link count.
        ext_out: u32,
        /// New internal destinations (any order; stored sorted).
        links: Vec<PageId>,
    },
    /// Append a freshly crawled page; it receives the next dense id.
    InsertPage {
        /// Site of the new page (must already exist).
        site: SiteId,
        /// External out-link count.
        ext_out: u32,
        /// Internal destinations (must already exist; any order).
        links: Vec<PageId>,
    },
    /// Tombstone a page: clear its out-row, drop every in-link to it, keep
    /// its id slot (see the module docs).
    DeletePage {
        /// The page to tombstone.
        page: PageId,
    },
    /// Move pages onto a freshly registered site (a host split). Pure
    /// metadata: ranks don't depend on site membership, but partitioning
    /// and URLs of the moved pages do — a running ranker keeps its pinned
    /// partition until the next full run.
    SplitSite {
        /// Host name of the new site.
        new_site: String,
        /// Pages moving to it.
        pages: Vec<PageId>,
    },
}

/// An ordered batch of [`DeltaOp`]s — one crawl refresh's worth of edits.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphDelta {
    /// The edits, applied in order.
    pub ops: Vec<DeltaOp>,
}

/// What [`GraphDelta::apply_report`] changed, in terms a ranker can act
/// on. All ids refer to the *new* graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaReport {
    /// Surviving pages whose out-row or out-degree changed (sorted): the
    /// exact set whose matrix column / efferent weights must be rebuilt.
    /// Includes pages that merely lost an in-link *target* to a deletion.
    pub touched_pages: Vec<PageId>,
    /// The subset of [`DeltaReport::touched_pages`] whose internal out-row
    /// is byte-identical to the old graph — only the external out-degree
    /// changed (sorted). A group all of whose dirty pages are here keeps
    /// its matrix structure and may rescale in place instead of
    /// rebuilding.
    pub ext_only_pages: Vec<PageId>,
    /// Ids of inserted pages (sorted, all `≥` the old page count).
    pub inserted: Vec<PageId>,
    /// Pages tombstoned by this delta (sorted).
    pub deleted: Vec<PageId>,
}

impl DeltaReport {
    /// True when the delta changed nothing at all.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.touched_pages.is_empty() && self.inserted.is_empty() && self.deleted.is_empty()
    }
}

impl GraphDelta {
    /// A delta carrying `ops`.
    #[must_use]
    pub fn new(ops: Vec<DeltaOp>) -> Self {
        Self { ops }
    }

    /// The empty delta (applies as the identity).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when the delta carries no ops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the delta to `g`, returning the mutated graph.
    ///
    /// # Panics
    /// On an invalid op (unknown page/site, removing an absent link,
    /// editing a tombstone).
    #[must_use]
    pub fn apply(&self, g: &WebGraph) -> WebGraph {
        self.apply_report(g).0
    }

    /// Applies the delta and reports exactly what changed.
    ///
    /// Cost is one pass over the ops plus one pass over the graph's rows
    /// (the row scan both filters in-links to tombstones and detects which
    /// rows actually differ), independent of how the ops are batched.
    ///
    /// # Panics
    /// On an invalid op — see [`GraphDelta::apply`].
    #[must_use]
    pub fn apply_report(&self, g: &WebGraph) -> (WebGraph, DeltaReport) {
        let n_old = g.n_pages() as u32;
        // Rows cloned on first touch; untouched rows stream straight from
        // the old CSR at assembly time.
        let mut edited: BTreeMap<PageId, Vec<PageId>> = BTreeMap::new();
        let mut ext_edit: BTreeMap<PageId, u32> = BTreeMap::new();
        let mut deleted: BTreeSet<PageId> = BTreeSet::new();
        // Inserted pages: (site, ext_out, sorted links); id = n_old + index.
        let mut inserted: Vec<(SiteId, u32, Vec<PageId>)> = Vec::new();
        let mut site_names: Vec<String> =
            (0..g.n_sites() as u32).map(|s| g.site_name(s).to_string()).collect();
        let mut site_edit: BTreeMap<PageId, SiteId> = BTreeMap::new();

        for op in &self.ops {
            let n_total = n_old + inserted.len() as u32;
            let alive = |p: PageId, deleted: &BTreeSet<PageId>| {
                assert!(p < n_total, "delta references unknown page {p} (have {n_total})");
                assert!(!deleted.contains(&p), "delta edits tombstoned page {p}");
            };
            // Clone-on-write access to a page's out-row.
            macro_rules! row_mut {
                ($p:expr) => {{
                    let p: PageId = $p;
                    if p < n_old {
                        edited.entry(p).or_insert_with(|| g.out_links(p).to_vec())
                    } else {
                        &mut inserted[(p - n_old) as usize].2
                    }
                }};
            }
            match op {
                DeltaOp::AddLink { from, to } => {
                    alive(*from, &deleted);
                    alive(*to, &deleted);
                    let row = row_mut!(*from);
                    let at = row.partition_point(|&v| v <= *to);
                    row.insert(at, *to);
                }
                DeltaOp::RemoveLink { from, to } => {
                    alive(*from, &deleted);
                    let row = row_mut!(*from);
                    let at = row
                        .iter()
                        .position(|v| v == to)
                        .unwrap_or_else(|| panic!("delta removes absent link {from} → {to}"));
                    row.remove(at);
                }
                DeltaOp::SetExternal { page, ext_out } => {
                    alive(*page, &deleted);
                    if *page < n_old {
                        ext_edit.insert(*page, *ext_out);
                    } else {
                        inserted[(*page - n_old) as usize].1 = *ext_out;
                    }
                }
                DeltaOp::SetLinks { page, ext_out, links } => {
                    alive(*page, &deleted);
                    let mut row = links.clone();
                    row.sort_unstable();
                    for &v in &row {
                        alive(v, &deleted);
                    }
                    *row_mut!(*page) = row;
                    if *page < n_old {
                        ext_edit.insert(*page, *ext_out);
                    } else {
                        inserted[(*page - n_old) as usize].1 = *ext_out;
                    }
                }
                DeltaOp::InsertPage { site, ext_out, links } => {
                    assert!(
                        (*site as usize) < site_names.len(),
                        "delta inserts page on unknown site {site}"
                    );
                    let mut row = links.clone();
                    row.sort_unstable();
                    for &v in &row {
                        alive(v, &deleted);
                        assert_ne!(v, n_total, "delta inserts page linking to itself");
                    }
                    inserted.push((*site, *ext_out, row));
                }
                DeltaOp::DeletePage { page } => {
                    alive(*page, &deleted);
                    deleted.insert(*page);
                    // The tombstone keeps its slot but loses its row; in-
                    // links are filtered in the assembly pass below.
                    if *page < n_old {
                        edited.insert(*page, Vec::new());
                        ext_edit.insert(*page, 0);
                    } else {
                        let e = &mut inserted[(*page - n_old) as usize];
                        e.1 = 0;
                        e.2.clear();
                    }
                }
                DeltaOp::SplitSite { new_site, pages } => {
                    let sid = site_names.len() as SiteId;
                    site_names.push(new_site.clone());
                    for &p in pages {
                        alive(p, &deleted);
                        site_edit.insert(p, sid);
                    }
                }
            }
        }

        // Assembly: stream every row (edited or original), filtering links
        // whose target was tombstoned, and record which surviving rows
        // actually differ from the old graph.
        let n_total = n_old as usize + inserted.len();
        let mut out_ptr: Vec<u64> = Vec::with_capacity(n_total + 1);
        out_ptr.push(0);
        let mut out_dst: Vec<PageId> = Vec::with_capacity(g.n_internal_links());
        let mut ext_out: Vec<u32> = Vec::with_capacity(n_total);
        let mut site_of: Vec<SiteId> = Vec::with_capacity(n_total);
        let mut touched: Vec<PageId> = Vec::new();
        let mut ext_only: Vec<PageId> = Vec::new();
        for p in 0..n_old {
            let start = out_dst.len();
            let row: &[PageId] = match edited.get(&p) {
                Some(r) => r,
                None => g.out_links(p),
            };
            if deleted.is_empty() {
                out_dst.extend_from_slice(row);
            } else {
                out_dst.extend(row.iter().copied().filter(|v| !deleted.contains(v)));
            }
            out_ptr.push(out_dst.len() as u64);
            let e = ext_edit.get(&p).copied().unwrap_or_else(|| g.external_out_degree(p));
            ext_out.push(e);
            site_of.push(site_edit.get(&p).copied().unwrap_or_else(|| g.site(p)));
            if !deleted.contains(&p) {
                let row_changed = out_dst[start..] != *g.out_links(p);
                if row_changed || e != g.external_out_degree(p) {
                    touched.push(p);
                    if !row_changed {
                        ext_only.push(p);
                    }
                }
            }
        }
        for (i, (site, e, row)) in inserted.iter().enumerate() {
            let p = n_old + i as u32;
            out_dst.extend(row.iter().copied().filter(|v| !deleted.contains(v)));
            out_ptr.push(out_dst.len() as u64);
            ext_out.push(*e);
            site_of.push(site_edit.get(&p).copied().unwrap_or(*site));
        }
        let g2 = WebGraph::from_parts(out_ptr, out_dst, ext_out, site_of, site_names);
        let report = DeltaReport {
            touched_pages: touched,
            ext_only_pages: ext_only,
            inserted: (n_old..n_old + inserted.len() as u32)
                .filter(|p| !deleted.contains(p))
                .collect(),
            deleted: deleted.into_iter().collect(),
        };
        (g2, report)
    }

    /// The delta turning `old` into `new`, assuming `new` preserves the
    /// first `old.n_pages()` ids (the [`recrawl`](crate::refresh::recrawl)
    /// contract): changed rows become [`DeltaOp::SetLinks`], appended pages
    /// become [`DeltaOp::InsertPage`].
    ///
    /// # Panics
    /// If `new` has fewer pages than `old` or drops one of `old`'s sites
    /// (deletions are tombstones, never renumberings).
    #[must_use]
    pub fn diff(old: &WebGraph, new: &WebGraph) -> Self {
        assert!(new.n_pages() >= old.n_pages(), "diff target renumbers pages");
        assert!(new.n_sites() >= old.n_sites(), "diff target drops sites");
        for s in 0..old.n_sites() as u32 {
            assert_eq!(old.site_name(s), new.site_name(s), "diff target renames site {s}");
        }
        let mut ops = Vec::new();
        // Insert all appended pages bare first, then fill rows: changed or
        // fresh rows may reference appended ids in any order, and a row may
        // only reference pages that already exist.
        for p in old.n_pages() as u32..new.n_pages() as u32 {
            ops.push(DeltaOp::InsertPage { site: new.site(p), ext_out: 0, links: Vec::new() });
        }
        for p in 0..old.n_pages() as u32 {
            assert_eq!(old.site(p), new.site(p), "diff target re-sites page {p}");
            if old.out_links(p) != new.out_links(p)
                || old.external_out_degree(p) != new.external_out_degree(p)
            {
                ops.push(DeltaOp::SetLinks {
                    page: p,
                    ext_out: new.external_out_degree(p),
                    links: new.out_links(p).to_vec(),
                });
            }
        }
        for p in old.n_pages() as u32..new.n_pages() as u32 {
            if !new.out_links(p).is_empty() || new.external_out_degree(p) > 0 {
                ops.push(DeltaOp::SetLinks {
                    page: p,
                    ext_out: new.external_out_degree(p),
                    links: new.out_links(p).to_vec(),
                });
            }
        }
        Self { ops }
    }

    /// Streams a [`recrawl`](crate::refresh::recrawl) outcome as a delta:
    /// the report pins which rows changed, so only those are diffed.
    ///
    /// # Panics
    /// If `report` does not describe `old → new` (id contract violated).
    #[must_use]
    pub fn from_recrawl(old: &WebGraph, new: &WebGraph, report: &RecrawlReport) -> Self {
        let mut ops = Vec::new();
        // Bare inserts first, then deletions, then rows — changed or fresh
        // rows may reference appended ids in any order (see
        // [`GraphDelta::diff`]), and no row may reference a tombstone.
        for &p in &report.new_pages {
            assert!(p as usize >= old.n_pages(), "recrawl new page {p} overlaps the old id space");
            ops.push(DeltaOp::InsertPage { site: new.site(p), ext_out: 0, links: Vec::new() });
        }
        for &p in &report.deleted_pages {
            ops.push(DeltaOp::DeletePage { page: p });
        }
        let deleted: BTreeSet<PageId> = report.deleted_pages.iter().copied().collect();
        for &p in &report.changed_pages {
            if deleted.contains(&p) {
                continue;
            }
            ops.push(DeltaOp::SetLinks {
                page: p,
                ext_out: new.external_out_degree(p),
                links: new.out_links(p).to_vec(),
            });
        }
        for &p in &report.new_pages {
            if !new.out_links(p).is_empty() || new.external_out_degree(p) > 0 {
                ops.push(DeltaOp::SetLinks {
                    page: p,
                    ext_out: new.external_out_degree(p),
                    links: new.out_links(p).to_vec(),
                });
            }
        }
        Self { ops }
    }

    /// A synthetic link-churn delta: `frac` of `g`'s internal links (at
    /// least one, if any exist) are re-pointed at fresh random targets.
    /// Every rewire is a `RemoveLink` + `AddLink` pair on the same source,
    /// so out-degrees — and therefore `column_scale` — are preserved while
    /// the row structure changes. Deterministic per `(frac, seed)`.
    ///
    /// # Panics
    /// If `frac` is outside `[0, 1]`.
    #[must_use]
    pub fn link_churn(g: &WebGraph, frac: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "churn fraction must be in [0, 1], got {frac}");
        let m = g.n_internal_links();
        if m == 0 || frac == 0.0 || g.n_pages() < 2 {
            return Self::empty();
        }
        let n_churn = ((m as f64 * frac).round() as usize).clamp(1, m);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Sample distinct link positions (global indices into the CSR edge
        // array) — a sorted sample keeps the source lookup a single sweep.
        let mut picks: BTreeSet<usize> = BTreeSet::new();
        while picks.len() < n_churn {
            picks.insert(rng.gen_range(0..m));
        }
        let n = g.n_pages() as u32;
        let mut ops = Vec::with_capacity(2 * n_churn);
        let mut edge = 0usize;
        let mut picks = picks.into_iter().peekable();
        'outer: for u in 0..n {
            let row = g.out_links(u);
            let next = edge + row.len();
            while let Some(&idx) = picks.peek() {
                if idx >= next {
                    break;
                }
                picks.next();
                let old_to = row[idx - edge];
                let mut v = rng.gen_range(0..n);
                while v == u {
                    v = rng.gen_range(0..n);
                }
                ops.push(DeltaOp::RemoveLink { from: u, to: old_to });
                ops.push(DeltaOp::AddLink { from: u, to: v });
                if picks.peek().is_none() {
                    break 'outer;
                }
            }
            edge = next;
        }
        Self { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::toy;
    use crate::refresh::recrawl_with_deletions;
    use crate::GraphBuilder;

    fn chain3() -> WebGraph {
        // a → b → c, plus c's external link.
        let mut b = GraphBuilder::new();
        let s = b.add_site("a.edu");
        let pa = b.add_page(s);
        let pb = b.add_page(s);
        let pc = b.add_page(s);
        b.add_link(pa, pb);
        b.add_link(pb, pc);
        b.add_external_links(pc, 1);
        b.build()
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = toy::two_cliques(4);
        let (g2, report) = GraphDelta::empty().apply_report(&g);
        assert_eq!(g2, g);
        assert!(report.is_noop());
    }

    #[test]
    fn add_and_remove_links() {
        let g = chain3();
        let d = GraphDelta::new(vec![
            DeltaOp::AddLink { from: 0, to: 2 },
            DeltaOp::RemoveLink { from: 1, to: 2 },
        ]);
        let (g2, report) = d.apply_report(&g);
        assert_eq!(g2.out_links(0), &[1, 2]);
        assert_eq!(g2.out_links(1), &[] as &[u32]);
        assert_eq!(report.touched_pages, vec![0, 1]);
        assert!(report.deleted.is_empty());
    }

    #[test]
    fn delete_filters_in_links_and_dangles_sources() {
        let g = chain3();
        let (g2, report) = GraphDelta::new(vec![DeltaOp::DeletePage { page: 1 }]).apply_report(&g);
        // Page 0's only out-link pointed at the tombstone: it is dangling
        // now, not linking into a black hole.
        assert_eq!(g2.n_pages(), 3, "tombstones keep the id space dense");
        assert_eq!(g2.out_degree(0), 0);
        assert_eq!(g2.out_links(1), &[] as &[u32]);
        assert_eq!(g2.out_degree(2), 1, "external links of survivors are untouched");
        assert_eq!(report.deleted, vec![1]);
        assert_eq!(report.touched_pages, vec![0], "the linker's row changed, page 2's did not");
        assert_eq!(g2.url_of(0), g.url_of(0), "ids and urls survive");
    }

    #[test]
    fn insert_then_link_then_delete() {
        let g = chain3();
        let d = GraphDelta::new(vec![
            DeltaOp::InsertPage { site: 0, ext_out: 2, links: vec![0, 2] },
            DeltaOp::AddLink { from: 0, to: 3 },
            DeltaOp::DeletePage { page: 3 },
        ]);
        let (g2, report) = d.apply_report(&g);
        assert_eq!(g2.n_pages(), 4);
        assert_eq!(g2.out_degree(3), 0, "inserted page was tombstoned again");
        assert_eq!(g2.out_links(0), &[1], "link to the tombstone was filtered");
        assert!(report.inserted.is_empty(), "a page deleted in the same delta never surfaces");
        assert_eq!(report.deleted, vec![3]);
        // Page 0 gained a link and lost it to the filter — net unchanged.
        assert!(report.touched_pages.is_empty());
    }

    #[test]
    fn set_links_replaces_whole_row() {
        let g = chain3();
        let d = GraphDelta::new(vec![DeltaOp::SetLinks { page: 2, ext_out: 0, links: vec![0, 1] }]);
        let (g2, report) = d.apply_report(&g);
        assert_eq!(g2.out_links(2), &[0, 1]);
        assert_eq!(g2.external_out_degree(2), 0);
        assert_eq!(report.touched_pages, vec![2]);
    }

    #[test]
    fn split_site_moves_metadata_only() {
        let g = chain3();
        let d =
            GraphDelta::new(vec![DeltaOp::SplitSite { new_site: "b.edu".into(), pages: vec![2] }]);
        let (g2, report) = d.apply_report(&g);
        assert_eq!(g2.n_sites(), 2);
        assert_eq!(g2.site(2), 1);
        assert_eq!(g2.site_name(1), "b.edu");
        assert!(report.is_noop(), "a site split changes no out-row");
    }

    #[test]
    fn diff_round_trips_recrawl() {
        let g = toy::cycle(30);
        let (g2, report) = recrawl_with_deletions(&g, 0.3, 0.1, 0.1, 7);
        let d = GraphDelta::diff(&g, &g2);
        assert_eq!(d.apply(&g), g2);
        let d2 = GraphDelta::from_recrawl(&g, &g2, &report);
        assert_eq!(d2.apply(&g), g2);
    }

    #[test]
    fn link_churn_preserves_degrees() {
        let g = toy::two_cliques(6);
        let d = GraphDelta::link_churn(&g, 0.25, 42);
        assert!(!d.is_empty());
        let (g2, report) = d.apply_report(&g);
        for p in 0..g.n_pages() as u32 {
            assert_eq!(g2.out_degree(p), g.out_degree(p), "degree of page {p}");
        }
        assert!(!report.touched_pages.is_empty());
        assert_eq!(GraphDelta::link_churn(&g, 0.25, 42), d, "deterministic per seed");
    }

    #[test]
    #[should_panic(expected = "absent link")]
    fn removing_absent_link_panics() {
        let g = chain3();
        let _ = GraphDelta::new(vec![DeltaOp::RemoveLink { from: 0, to: 2 }]).apply(&g);
    }

    #[test]
    #[should_panic(expected = "tombstoned page")]
    fn editing_tombstone_panics() {
        let g = chain3();
        let _ = GraphDelta::new(vec![
            DeltaOp::DeletePage { page: 1 },
            DeltaOp::AddLink { from: 1, to: 2 },
        ])
        .apply(&g);
    }
}
