//! **EQ4** — direct vs. indirect transmission (§4.4, formulas 4.1–4.4):
//! measures messages and bytes per exchange iteration on a simulated Pastry
//! overlay across a sweep of N, and compares with the paper's closed forms.
//!
//! Expected shape: direct wins on messages only below the small-N crossover
//! (`N < g/(h+1)`); indirect is O(gN) vs direct's O((h+1)N²) above it;
//! indirect pays ~h× the payload bytes.
//!
//! Usage: `transmission [--max-n N] [--updates-per-pair U] [--overlay pastry|chord|can]`

use dpr_bench::BenchArgs;
use dpr_overlay::id::key_from_u64;
use dpr_overlay::{avg_route_hops, CanNetwork, ChordNetwork, Overlay, PastryNetwork};
use dpr_transport::codec::PaperSizeModel;
use dpr_transport::{analytic, direct, indirect, Batch, Outgoing, RankUpdate};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: usize,
    hops: f64,
    mean_neighbors: f64,
    direct_msgs: u64,
    indirect_msgs: u64,
    direct_bytes: u64,
    indirect_bytes: u64,
    s_dt_analytic: f64,
    s_it_analytic: f64,
}

/// All-to-all exchange traffic: every node sends `updates` records to every
/// group key (the worst case §4.4 reasons about: "each group potentially
/// has links pointing to nearly all other groups").
fn all_to_all(n: usize, updates: usize) -> Vec<Outgoing> {
    (0..n)
        .map(|s| Outgoing {
            sender: s,
            batches: (0..n as u64)
                .map(|gid| Batch {
                    dest_key: key_from_u64(gid),
                    updates: (0..updates)
                        .map(|u| RankUpdate {
                            from_page: (s * updates + u) as u32,
                            to_page: gid as u32,
                            score: 0.1,
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect()
}

fn main() {
    let args = BenchArgs::from_env("transmission");
    let max_n = args.get("max-n", 400usize);
    let updates = args.get("updates-per-pair", 3usize);
    let overlay_kind = args.raw("overlay").unwrap_or("pastry").to_string();

    let ns: Vec<usize> =
        [5usize, 10, 25, 50, 100, 200, 400, 800].into_iter().filter(|&n| n <= max_n).collect();

    let mut rows = Vec::new();
    for &n in &ns {
        let net: Box<dyn Overlay> = match overlay_kind.as_str() {
            "chord" => Box::new(ChordNetwork::with_nodes(n, 0xFEED ^ n as u64)),
            "can" => Box::new(CanNetwork::with_nodes(n, 2, 0xFEED ^ n as u64)),
            _ => Box::new(PastryNetwork::with_nodes(n, 0xFEED ^ n as u64)),
        };
        let net = net.as_ref();
        let traffic = all_to_all(n, updates);
        let d = direct::simulate(net, &traffic, &PaperSizeModel);
        let i = indirect::simulate(net, &traffic, &PaperSizeModel).stats;
        assert_eq!(
            d.delivered_updates, i.delivered_updates,
            "both schemes must deliver all updates"
        );
        let hops = avg_route_hops(net, 1_000.min(n * 20), 1).mean;
        let g = net.mean_neighbors();
        rows.push(Row {
            n,
            hops,
            mean_neighbors: g,
            direct_msgs: d.messages,
            indirect_msgs: i.messages,
            direct_bytes: d.bytes,
            indirect_bytes: i.bytes,
            s_dt_analytic: analytic::s_direct(hops, n as f64),
            s_it_analytic: analytic::s_indirect(g, n as f64),
        });
        eprintln!(
            "[transmission] N={n:>4}: direct {} msgs / indirect {} msgs",
            d.messages, i.messages
        );
    }

    println!("\nDirect vs indirect transmission ({overlay_kind} overlay, all-to-all exchange, {updates} updates/pair)\n");
    println!(
        "{:>5} {:>6} {:>6} | {:>12} {:>12} {:>8} | {:>12} {:>12} | {:>12} {:>12}",
        "N",
        "h",
        "g",
        "direct msgs",
        "(h+1)N^2",
        "ratio",
        "indir msgs",
        "gN",
        "direct MB",
        "indir MB"
    );
    for r in &rows {
        println!(
            "{:>5} {:>6.2} {:>6.1} | {:>12} {:>12.0} {:>8.2} | {:>12} {:>12.0} | {:>12.2} {:>12.2}",
            r.n,
            r.hops,
            r.mean_neighbors,
            r.direct_msgs,
            r.s_dt_analytic,
            r.direct_msgs as f64 / r.s_dt_analytic,
            r.indirect_msgs,
            r.s_it_analytic,
            r.direct_bytes as f64 / 1e6,
            r.indirect_bytes as f64 / 1e6,
        );
    }

    let cross = rows.iter().find(|r| r.indirect_msgs < r.direct_msgs).map(|r| r.n);
    println!(
        "\nMessage crossover: indirect sends fewer messages from N = {:?} onward \
         (paper: \"Direct transmission seems better only for small N\").",
        cross
    );
    let last = rows.last().unwrap();
    println!(
        "At N = {}: indirect uses {:.1}x fewer messages but {:.1}x more bytes (the h-hop forwarding cost).",
        last.n,
        last.direct_msgs as f64 / last.indirect_msgs as f64,
        last.indirect_bytes as f64 / last.direct_bytes.max(1) as f64,
    );

    if let Err(e) = args.emit(&rows) {
        eprintln!("[transmission] JSON write failed: {e}");
    }
}
