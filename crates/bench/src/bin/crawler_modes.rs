//! **CRAWL-MODES** — the parallel-crawler substrate (\[16\], the paper's
//! source for intra-site locality and site-hash responsibility): coverage,
//! overlap and communication for the firewall / cross-over / exchange
//! coordination modes, as the number of crawling agents grows.
//!
//! Usage: `crawler_modes [--web-pages N] [--sites S] [--max-agents A]`

use dpr_bench::BenchArgs;
use dpr_crawl::crawler::parallel_crawl;
use dpr_crawl::{crawl_to_graph, CrawlBudget, HiddenWeb, HiddenWebConfig, Mode};
use dpr_graph::GraphStats;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mode: String,
    agents: usize,
    pages_fetched: usize,
    coverage_pct: f64,
    overlap: u64,
    urls_exchanged: u64,
    exchanged_per_page: f64,
}

fn main() {
    let args = BenchArgs::from_env("crawler_modes");
    let web_pages = args.get("web-pages", 100_000u64);
    let sites = args.get("sites", 100usize);
    let max_agents = args.get("max-agents", 16usize);

    let web = HiddenWeb::new(HiddenWebConfig {
        total_pages: web_pages,
        n_sites: sites,
        ..HiddenWebConfig::default()
    });
    eprintln!("[crawl] hidden web: {web_pages} pages, {sites} sites");

    let budget = CrawlBudget { max_pages: usize::MAX };
    let mut rows = Vec::new();
    for agents in [1usize, 2, 4, 8, 16] {
        if agents > max_agents {
            break;
        }
        for (name, mode) in [
            ("firewall", Mode::Firewall),
            ("crossover", Mode::CrossOver),
            ("exchange", Mode::Exchange),
        ] {
            let res = parallel_crawl(&web, agents, mode, budget);
            rows.push(Row {
                mode: name.to_string(),
                agents,
                pages_fetched: res.fetched.len(),
                coverage_pct: res.outcome.coverage * 100.0,
                overlap: res.outcome.overlap,
                urls_exchanged: res.outcome.urls_exchanged,
                exchanged_per_page: res.outcome.urls_exchanged as f64
                    / res.fetched.len().max(1) as f64,
            });
        }
        eprintln!("[crawl] finished {agents}-agent sweep");
    }

    println!("\nParallel crawler modes ([16]) on a {web_pages}-page hidden web\n");
    println!(
        "{:>7} {:<10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "agents", "mode", "fetched", "coverage", "overlap", "exchanged", "per page"
    );
    for r in &rows {
        println!(
            "{:>7} {:<10} {:>10} {:>9.1}% {:>10} {:>12} {:>10.2}",
            r.agents,
            r.mode,
            r.pages_fetched,
            r.coverage_pct,
            r.overlap,
            r.urls_exchanged,
            r.exchanged_per_page
        );
    }

    // Show the dataset the ranking pipeline would receive from the best
    // mode at the largest scale.
    let res = parallel_crawl(&web, max_agents.min(16), Mode::Exchange, budget);
    let g = crawl_to_graph(&web, &res.fetched);
    println!("\nExchange-mode dataset fed to the rankers:\n{}", GraphStats::compute(&g));
    println!(
        "\n(~1 exchanged URL per page — [16]'s locality statistic — is what keeps §4.1's \
         site partitioning cheap.)"
    );

    if let Err(e) = args.emit(&rows) {
        eprintln!("[crawl] JSON write failed: {e}");
    }
}
