//! **BOTTLENECK** — §4.5's per-node bandwidth constraint, *measured*: each
//! ranker's uplink serializes its outgoing rank exchange at `B` bytes per
//! virtual-time unit, so an undersized uplink queues messages and delays
//! convergence. Sweeps `B` and reports time-to-1%-error — the dynamic
//! counterpart of Table 1's bottleneck column, plus the overlay comparison
//! (Pastry vs Chord vs CAN) at a fixed B.
//!
//! Usage: `bottleneck [--pages N] [--k K] [--t-end T]`

use dpr_bench::BenchArgs;
use dpr_core::{try_run_over_network, NetRunConfig, OverlayKind, Transmission};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_partition::Strategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bottleneck_bytes_per_time: Option<f64>,
    time_to_1pct: Option<f64>,
    final_rel_err: f64,
    megabytes: f64,
}

#[derive(Serialize)]
struct OverlayRow {
    overlay: String,
    time_to_1pct: Option<f64>,
    data_messages: u64,
    megabytes: f64,
}

fn main() {
    let args = BenchArgs::from_env("bottleneck");
    let pages = args.get("pages", 10_000usize);
    let k = args.get("k", 64usize);
    let t_end = args.get("t-end", 400.0f64);
    let seed = args.get("seed", 5u64);

    eprintln!("[bottleneck] generating edu-domain graph: {pages} pages");
    let g =
        edu_domain(&EduDomainConfig { n_pages: pages, n_sites: 50, ..EduDomainConfig::default() });
    let base = NetRunConfig {
        k,
        n_nodes: k,
        strategy: Strategy::HashBySite,
        t_end,
        seed,
        ..NetRunConfig::default()
    };

    // --- Sweep B. ----------------------------------------------------------
    let mut rows = Vec::new();
    for b in [None, Some(1e6), Some(2e5), Some(1e5), Some(5e4), Some(2e4)] {
        let res =
            try_run_over_network(&g, NetRunConfig { bottleneck_bytes_per_time: b, ..base.clone() })
                .expect("bench config uses supported churn");
        eprintln!(
            "[bottleneck] B = {b:?}: 1% at t = {:?}, final {:.4}%",
            res.rel_err.first_time_below(0.01),
            res.final_rel_err * 100.0
        );
        rows.push(Row {
            bottleneck_bytes_per_time: b,
            time_to_1pct: res.rel_err.first_time_below(0.01),
            final_rel_err: res.final_rel_err,
            megabytes: res.counters.bytes as f64 / 1e6,
        });
    }

    println!("\nPer-node uplink bandwidth vs convergence (K = {k}, indirect transmission)\n");
    println!("{:>14} {:>12} {:>14} {:>10}", "B (bytes/t)", "t @ 1% err", "final err %", "MB moved");
    for r in &rows {
        println!(
            "{:>14} {:>12} {:>14.4} {:>10.1}",
            r.bottleneck_bytes_per_time.map_or("unlimited".into(), |b| format!("{b:.0}")),
            r.time_to_1pct.map_or("-".into(), |t| format!("{t:.0}")),
            r.final_rel_err * 100.0,
            r.megabytes
        );
    }

    // --- Overlay comparison at unlimited B. ---------------------------------
    let mut orows = Vec::new();
    for (name, overlay) in [
        ("pastry", OverlayKind::Pastry),
        ("chord", OverlayKind::Chord),
        ("can-d2", OverlayKind::Can { d: 2 }),
    ] {
        let res = try_run_over_network(
            &g,
            NetRunConfig { overlay, transmission: Transmission::Indirect, ..base.clone() },
        )
        .expect("bench config uses supported churn");
        orows.push(OverlayRow {
            overlay: name.to_string(),
            time_to_1pct: res.rel_err.first_time_below(0.01),
            data_messages: res.counters.data_messages,
            megabytes: res.counters.bytes as f64 / 1e6,
        });
    }
    println!("\nOverlay comparison (same workload, indirect transmission)\n");
    println!("{:<8} {:>12} {:>12} {:>10}", "overlay", "t @ 1% err", "messages", "MB moved");
    for r in &orows {
        println!(
            "{:<8} {:>12} {:>12} {:>10.1}",
            r.overlay,
            r.time_to_1pct.map_or("-".into(), |t| format!("{t:.0}")),
            r.data_messages,
            r.megabytes
        );
    }
    println!("\n(Longer CAN/Chord routes mean more forwarded bytes for the same exchange — the reason §4.5 assumes Pastry.)");

    if let Err(e) = args.emit(&(rows, orows)) {
        eprintln!("[bottleneck] JSON write failed: {e}");
    }
}
