//! **SPMV** — bandwidth-lean kernel benchmark for the link-matrix
//! matrix–vector product, the inner loop of every solve in the system.
//!
//! Every stored value of a pull-orientation PageRank matrix is `α/d(u)` —
//! a function of the *column* — so the implicit layout drops the 8-byte
//! value stream entirely and pre-scales the input once per multiply. This
//! benchmark measures what that buys on real edu-domain graphs:
//!
//! 1. **Layout grid**: `{explicit, implicit (u64 ptr), implicit-u32,
//!    implicit-unrolled}` × worker counts × graph sizes, reporting rows/sec,
//!    effective matrix-stream GB/s, and bytes/nnz. Every plain-kernel cell
//!    is asserted bit-identical to the sequential explicit reference
//!    in-run (the unrolled cell uses a different fold order and is only
//!    asserted self-consistent across worker counts).
//! 2. **10M-page storage round-trip** (full mode): the 10M-page synthetic
//!    graph is *streamed* to the binary snapshot format (edge list never
//!    materialized by the generator), loaded back, checked equal to the
//!    in-memory generation, and pushed through a short whole-system netrun
//!    solve — the end-to-end proof that 10M pages fit the pipeline.
//!
//! Usage: `spmv [--pages-list 100000,1000000,10000000] [--workers 1,2,4,8]
//!         [--alpha A] [--reps R] [--quick] [--no-10m] [--out PATH]`
//!
//! `--quick` shrinks the grid to 100k pages for CI smoke (bit-identity
//! still asserted); the full run asserts the ≥ 1.3× single-threaded
//! rows/sec headline of implicit-u32 over explicit at 1M pages. `--out`
//! writes the JSON payload (used to commit `BENCH_spmv.json`).

use std::time::Instant;

use dpr_bench::BenchArgs;
use dpr_core::{NetRunConfig, OverlayKind};
use dpr_graph::generators::edu::{edu_domain, edu_domain_to_snapshot_path, EduDomainConfig};
use dpr_graph::WebGraph;
use dpr_linalg::{column_scale, Csr, CsrImplicit, Pool, SpMatVec};
use dpr_partition::Strategy;
use serde::Serialize;

/// Builds the pull-orientation rank-transmission matrix of `g`: entry
/// `(v, u) = α/d(u)` for every internal link `u → v`, as the implicit
/// layout (the explicit twin is materialized from it, so both share entry
/// order and are bit-identical by construction).
fn build_implicit(g: &WebGraph, alpha: f64) -> CsrImplicit {
    let n = g.n_pages();
    let mut row_ptr = vec![0u64; n + 1];
    for (_, v) in g.links() {
        row_ptr[v as usize + 1] += 1;
    }
    for i in 0..n {
        row_ptr[i + 1] += row_ptr[i];
    }
    let mut cursor = row_ptr.clone();
    let mut col_idx = vec![0u32; row_ptr[n] as usize];
    for (u, v) in g.links() {
        let slot = cursor[v as usize] as usize;
        col_idx[slot] = u;
        cursor[v as usize] += 1;
    }
    for r in 0..n {
        col_idx[row_ptr[r] as usize..row_ptr[r + 1] as usize].sort_unstable();
    }
    let degrees: Vec<u32> = (0..n as u32).map(|u| g.out_degree(u)).collect();
    let scale = column_scale(alpha, &degrees);
    CsrImplicit::from_raw_parts(n, n, row_ptr, col_idx, scale)
}

/// One matrix layout under test.
enum Layout {
    Explicit(Csr),
    Implicit(CsrImplicit),
}

impl Layout {
    fn heap_bytes(&self) -> usize {
        match self {
            Layout::Explicit(m) => m.heap_bytes(),
            Layout::Implicit(m) => m.heap_bytes(),
        }
    }

    fn mul(&self, x: &[f64], y: &mut [f64], ws: &mut Vec<f64>, pool: &Pool) {
        match self {
            Layout::Explicit(m) => m.mul_into(x, y, ws, pool),
            Layout::Implicit(m) => m.mul_into(x, y, ws, pool),
        }
    }
}

#[derive(Serialize)]
struct GridRow {
    pages: usize,
    nnz: usize,
    layout: String,
    workers: usize,
    iters: usize,
    secs: f64,
    rows_per_sec: f64,
    /// Matrix-stream traffic per second: `heap_bytes × iters / secs` — the
    /// bandwidth the layout actually pulls for its index/value arrays.
    matrix_gbytes_per_sec: f64,
    bytes_per_nnz: f64,
    row_ptr_narrow: bool,
    bit_identical_to_reference: bool,
}

#[derive(Serialize)]
struct TenMRow {
    pages: usize,
    internal_links: usize,
    snapshot_bytes: u64,
    snapshot_bytes_per_link: f64,
    generate_stream_secs: f64,
    load_secs: f64,
    roundtrip_equal: bool,
    netrun_secs: f64,
    netrun_final_rel_err: f64,
}

#[derive(Serialize)]
struct Payload {
    quick: bool,
    alpha: f64,
    workers: Vec<usize>,
    grid: Vec<GridRow>,
    /// rows/sec of implicit-u32 over explicit, single-threaded, at the
    /// largest in-memory grid size (1M pages in the full run) — the
    /// headline the full run asserts ≥ 1.3×.
    headline_speedup: f64,
    headline_pages: usize,
    ten_m: Option<TenMRow>,
}

/// Deterministic non-trivial input vector.
fn seed_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 / (1.0 + (i % 97) as f64)).collect()
}

/// Runs `iters` ping-pong multiplies and returns (secs, final bits).
fn run_cell(m: &Layout, iters: usize, pool: &Pool) -> (f64, Vec<u64>) {
    let n = match m {
        Layout::Explicit(c) => c.n_rows(),
        Layout::Implicit(c) => c.n_rows(),
    };
    let mut x = seed_vector(n);
    let mut y = vec![0.0; n];
    let mut ws = Vec::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        m.mul(&x, &mut y, &mut ws, pool);
        std::mem::swap(&mut x, &mut y);
    }
    let secs = t0.elapsed().as_secs_f64();
    (secs, x.iter().map(|v| v.to_bits()).collect())
}

fn main() {
    let args = BenchArgs::from_env("spmv");
    let quick = args.flag("quick");
    let alpha = args.get("alpha", 0.85f64);
    let default_pages = if quick { "100000" } else { "100000,1000000,10000000" };
    let pages_list: Vec<usize> = args.list("pages-list", default_pages);
    let workers: Vec<usize> = args.list("workers", "1,2,4,8");
    let reps = args.get("reps", if quick { 1 } else { 2usize });

    let mut grid: Vec<GridRow> = Vec::new();
    let mut headline_speedup = 0.0f64;
    let mut headline_pages = 0usize;

    for &pages in &pages_list {
        let sites = 100;
        eprintln!("[spmv] generating {pages}-page edu graph");
        let g = edu_domain(&EduDomainConfig {
            n_pages: pages,
            n_sites: sites,
            ..EduDomainConfig::default()
        });
        let implicit = build_implicit(&g, alpha);
        let nnz = implicit.nnz();
        // Iteration count sized so every cell streams a comparable volume.
        let iters = (600_000_000 / nnz.max(1)).clamp(4, 40);
        let layouts: Vec<(&str, Layout)> = vec![
            ("explicit", Layout::Explicit(implicit.to_explicit())),
            ("implicit", Layout::Implicit(implicit.clone().with_wide_row_ptr())),
            ("implicit-u32", Layout::Implicit(implicit.clone())),
            ("implicit-unrolled", Layout::Implicit(implicit.clone().with_unrolled(true))),
        ];
        drop(implicit);

        // Sequential explicit reference bits for the in-run identity check.
        let pool_seq = Pool::sequential();
        let (_, reference_bits) = run_cell(&layouts[0].1, iters, &pool_seq);
        let (_, unrolled_reference_bits) = run_cell(&layouts[3].1, iters, &pool_seq);

        let mut single_threaded: Vec<(String, f64)> = Vec::new();
        for (name, layout) in &layouts {
            for &w in &workers {
                let pool = if w <= 1 { Pool::sequential() } else { Pool::with_workers(w) };
                let mut best = f64::INFINITY;
                let mut bits = Vec::new();
                for _ in 0..reps.max(1) {
                    let (secs, b) = run_cell(layout, iters, &pool);
                    if secs < best {
                        best = secs;
                    }
                    bits = b;
                }
                let expected = if *name == "implicit-unrolled" {
                    &unrolled_reference_bits
                } else {
                    &reference_bits
                };
                let identical = &bits == expected;
                assert!(
                    identical,
                    "{name} at {w} workers diverged from its reference on {pages} pages"
                );
                let narrow = match layout {
                    Layout::Implicit(m) => m.row_ptr_is_narrow(),
                    Layout::Explicit(_) => false,
                };
                let rows_per_sec = (g.n_pages() * iters) as f64 / best;
                let row = GridRow {
                    pages,
                    nnz,
                    layout: (*name).to_string(),
                    workers: w,
                    iters,
                    secs: best,
                    rows_per_sec,
                    matrix_gbytes_per_sec: (layout.heap_bytes() * iters) as f64 / best / 1e9,
                    bytes_per_nnz: layout.heap_bytes() as f64 / nnz.max(1) as f64,
                    row_ptr_narrow: narrow,
                    bit_identical_to_reference: identical,
                };
                eprintln!(
                    "[spmv] {pages:>9} pages {name:>18} w{w}: {:.3}s, {:.1}M rows/s, \
                     {:.2} GB/s, {:.1} B/nnz",
                    row.secs,
                    row.rows_per_sec / 1e6,
                    row.matrix_gbytes_per_sec,
                    row.bytes_per_nnz
                );
                if w == 1 {
                    single_threaded.push(((*name).to_string(), rows_per_sec));
                }
                grid.push(row);
            }
        }
        let rate = |name: &str| {
            single_threaded
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, r)| *r)
                .expect("layout measured")
        };
        let speedup = rate("implicit-u32") / rate("explicit");
        eprintln!("[spmv] {pages} pages: implicit-u32 vs explicit single-threaded {speedup:.2}x");
        if pages >= headline_pages {
            headline_pages = pages.min(1_000_000);
            if pages == 1_000_000 || headline_speedup == 0.0 {
                headline_speedup = speedup;
            }
        }
        // The implicit layout must stream ≤ 8 bytes/nnz (acceptance
        // criterion): col_idx is exactly 4 B/nnz, and row_ptr + scale
        // amortize under 4 B/nnz on any graph with mean degree > 2.
        let u32_row = grid
            .iter()
            .rfind(|r| r.pages == pages && r.layout == "implicit-u32")
            .expect("just pushed");
        assert!(
            u32_row.bytes_per_nnz <= 8.0,
            "implicit-u32 streams {:.2} bytes/nnz > 8 on {pages} pages",
            u32_row.bytes_per_nnz
        );
    }

    if !quick {
        assert!(
            headline_speedup >= 1.3,
            "regression: implicit-u32 vs explicit single-threaded at {headline_pages} pages \
             is {headline_speedup:.2}x < 1.3x"
        );
    }

    // 10M-page storage round-trip + netrun solve (full mode only).
    let ten_m = if quick || args.flag("no-10m") {
        None
    } else {
        let pages = 10_000_000;
        let cfg = EduDomainConfig { n_pages: pages, n_sites: 100, ..EduDomainConfig::default() };
        let dir = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
        std::fs::create_dir_all(format!("{dir}/experiments")).expect("create experiments dir");
        let path = format!("{dir}/experiments/edu_10m.dprg");
        eprintln!("[spmv] streaming {pages}-page graph to {path}");
        let t0 = Instant::now();
        edu_domain_to_snapshot_path(&cfg, &path).expect("stream snapshot");
        let generate_stream_secs = t0.elapsed().as_secs_f64();
        let snapshot_bytes = std::fs::metadata(&path).expect("snapshot written").len();
        let t0 = Instant::now();
        let g = dpr_graph::io::load_snapshot(&path).expect("load snapshot");
        let load_secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "[spmv] 10M snapshot: {:.1} MB ({:.2} B/link), streamed in {:.1}s, loaded in {:.1}s",
            snapshot_bytes as f64 / 1e6,
            snapshot_bytes as f64 / g.n_internal_links() as f64,
            generate_stream_secs,
            load_secs
        );
        let roundtrip_equal = g == edu_domain(&cfg);
        assert!(roundtrip_equal, "streamed snapshot must equal in-memory generation");
        let cfg = NetRunConfig {
            k: 100,
            n_nodes: 128,
            overlay: OverlayKind::Pastry,
            strategy: Strategy::HashBySite,
            t_end: 6.0,
            sample_every: 3.0,
            ..NetRunConfig::default()
        };
        let t0 = Instant::now();
        let res = dpr_core::try_run_over_network(&g, cfg).expect("no churn scheduled");
        let netrun_secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "[spmv] 10M netrun solve: {netrun_secs:.1}s, final rel err {:.4}%",
            res.final_rel_err * 100.0
        );
        let row = TenMRow {
            pages,
            internal_links: g.n_internal_links(),
            snapshot_bytes,
            snapshot_bytes_per_link: snapshot_bytes as f64 / g.n_internal_links() as f64,
            generate_stream_secs,
            load_secs,
            roundtrip_equal,
            netrun_secs,
            netrun_final_rel_err: res.final_rel_err,
        };
        std::fs::remove_file(&path).ok();
        Some(row)
    };

    println!(
        "{:>9}  {:>18}  {:>3}  {:>12}  {:>9}  {:>8}",
        "pages", "layout", "w", "rows/s", "GB/s", "B/nnz"
    );
    for r in &grid {
        println!(
            "{:>9}  {:>18}  {:>3}  {:>12.0}  {:>9.2}  {:>8.1}",
            r.pages, r.layout, r.workers, r.rows_per_sec, r.matrix_gbytes_per_sec, r.bytes_per_nnz
        );
    }
    println!(
        "implicit-u32 vs explicit single-threaded at {headline_pages} pages: \
         {headline_speedup:.2}x rows/sec"
    );
    if let Some(t) = &ten_m {
        println!(
            "10M-page round-trip: {:.1} MB snapshot ({:.2} B/link), stream {:.1}s, \
             load {:.1}s, netrun {:.1}s",
            t.snapshot_bytes as f64 / 1e6,
            t.snapshot_bytes_per_link,
            t.generate_stream_secs,
            t.load_secs,
            t.netrun_secs
        );
    }

    let payload = Payload { quick, alpha, workers, grid, headline_speedup, headline_pages, ten_m };
    args.emit(&payload).expect("write experiment json");
}
