//! **NETRUN_HOTPATH** — message-path microbenchmark for the §4.4/§4.5
//! transmission hot path: route caching, update coalescing, and the
//! allocation-light transport. Runs the full network simulation in four
//! modes and reports throughput, bytes on wire, route-cache behavior, and
//! an allocations-per-delivery proxy:
//!
//! * `direct-baseline`   — per-part lookups and sends, no cache (pre-PR)
//! * `direct-fast`       — per-owner batching + route cache
//! * `indirect-baseline` — per-hop forwarding, no merge, no cache
//! * `indirect-fast`     — §4.4 hop coalescing + route cache
//!
//! Steady-state cache behavior is isolated by running each cached mode
//! twice — to `t_end/2` and to `t_end` — and diffing the (deterministic)
//! counters, so warm-up misses don't dilute the steady hit rate.
//!
//! Usage: `netrun_hotpath [--pages N] [--sites S] [--groups K] [--nodes M]
//!         [--t-end T] [--quick] [--out PATH]`
//!
//! `--quick` shrinks the workload for CI smoke testing and asserts the
//! steady-state route-cache hit rate is nonzero in every cached mode.
//! `--out` additionally writes the JSON payload to the given path (used to
//! commit `BENCH_netrun.json` at the repo root).

use std::time::Instant;

use dpr_bench::BenchArgs;
use dpr_core::{try_run_over_network, NetRunConfig, Transmission};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::WebGraph;
use dpr_partition::Strategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mode: String,
    transmission: String,
    coalesce: bool,
    route_cache: bool,
    /// Wall-clock seconds for the full run.
    wall_secs: f64,
    /// Simulator deliveries per wall-clock second — the throughput the
    /// allocation-light hot path is meant to raise.
    deliveries_per_sec: f64,
    data_messages: u64,
    lookup_messages: u64,
    acks: u64,
    bytes_on_wire: u64,
    coalesced_parts: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
    /// Whole-run hit rate (warm-up included).
    cache_hit_rate: f64,
    /// Hit rate over the second half of the run only.
    steady_hit_rate: f64,
    /// Fresh route computations (each allocates a route vector) per data
    /// message — the proxy for allocations on the delivery path. The
    /// uncached modes price every lookup as an allocation; the cached
    /// modes only the misses.
    route_allocs_per_msg: f64,
    final_rel_err: f64,
}

#[derive(Serialize)]
struct Payload {
    pages: usize,
    sites: usize,
    groups: usize,
    nodes: usize,
    t_end: f64,
    quick: bool,
    rows: Vec<Row>,
    /// Headline acceptance numbers: bytes on wire of each optimized mode
    /// relative to the pre-PR `direct-baseline`.
    bytes_reduction_direct_fast: f64,
    bytes_reduction_indirect_fast: f64,
}

fn run_mode(
    name: &str,
    g: &WebGraph,
    base: &NetRunConfig,
    transmission: Transmission,
    coalesce: bool,
    route_cache: bool,
) -> Row {
    let cfg = NetRunConfig { transmission, coalesce, route_cache, ..base.clone() };
    // Deterministic prefix run to t_end/2: its counters are exactly the
    // full run's first half, so the diff isolates steady-state behavior.
    let half = try_run_over_network(g, NetRunConfig { t_end: cfg.t_end / 2.0, ..cfg.clone() })
        .expect("bench schedules no churn");
    let t0 = Instant::now();
    let full = try_run_over_network(g, cfg).expect("bench schedules no churn");
    let wall = t0.elapsed().as_secs_f64();

    let steady = full.route_cache.delta(&half.route_cache);
    let lookups = full.route_cache.hits + full.route_cache.misses;
    let row = Row {
        mode: name.to_string(),
        transmission: format!("{transmission:?}"),
        coalesce,
        route_cache,
        wall_secs: wall,
        deliveries_per_sec: full.sim_stats.deliveries as f64 / wall.max(1e-9),
        data_messages: full.counters.data_messages,
        lookup_messages: full.counters.lookup_messages,
        acks: full.counters.acks,
        bytes_on_wire: full.counters.bytes,
        coalesced_parts: full.counters.coalesced_parts,
        cache_hits: full.route_cache.hits,
        cache_misses: full.route_cache.misses,
        cache_invalidations: full.route_cache.invalidations,
        cache_hit_rate: full.route_cache.hit_rate(),
        steady_hit_rate: steady.hit_rate(),
        route_allocs_per_msg: full.route_cache.misses as f64
            / (full.counters.data_messages.max(1)) as f64,
        final_rel_err: full.final_rel_err,
    };
    assert!(row.final_rel_err < 1e-3, "{name}: run must converge (rel err {})", row.final_rel_err);
    eprintln!(
        "[netrun_hotpath] {name:>17}: {:.3}s, {} data msgs, {} bytes, \
         hit rate {:.1}% (steady {:.1}%), {} parts coalesced",
        row.wall_secs,
        row.data_messages,
        row.bytes_on_wire,
        100.0 * row.cache_hit_rate,
        100.0 * row.steady_hit_rate,
        row.coalesced_parts,
    );
    debug_assert!(lookups > 0);
    row
}

fn main() {
    let args = BenchArgs::from_env("netrun_hotpath");
    let quick = args.flag("quick");
    let pages = args.get("pages", if quick { 800 } else { 2_000usize });
    let sites = args.get("sites", if quick { 10 } else { 20usize });
    // Many small groups: the regime §4.5 prices, where per-part headers
    // and lookups are a large share of the wire and coalescing pays most.
    let groups = args.get("groups", if quick { 64 } else { 128usize });
    let nodes = args.get("nodes", 16usize);
    let t_end = args.get("t-end", if quick { 60.0 } else { 200.0f64 });

    eprintln!(
        "[netrun_hotpath] edu-domain graph: {pages} pages, {sites} sites; \
         {groups} groups on {nodes} overlay nodes, t_end {t_end}"
    );
    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });
    let base = NetRunConfig {
        k: groups,
        n_nodes: nodes,
        strategy: Strategy::HashByUrl,
        t_end,
        ..NetRunConfig::default()
    };

    let rows = vec![
        run_mode("direct-baseline", &g, &base, Transmission::Direct, false, false),
        run_mode("direct-fast", &g, &base, Transmission::Direct, true, true),
        run_mode("indirect-baseline", &g, &base, Transmission::Indirect, false, false),
        run_mode("indirect-fast", &g, &base, Transmission::Indirect, true, true),
    ];

    let baseline_bytes = rows[0].bytes_on_wire as f64;
    let reduction = |r: &Row| 1.0 - r.bytes_on_wire as f64 / baseline_bytes;
    let payload = Payload {
        pages,
        sites,
        groups,
        nodes,
        t_end,
        quick,
        bytes_reduction_direct_fast: reduction(&rows[1]),
        bytes_reduction_indirect_fast: reduction(&rows[3]),
        rows,
    };

    println!(
        "{:>17}  {:>10}  {:>12}  {:>9}  {:>8}  {:>8}",
        "mode", "data msgs", "bytes", "hit rate", "steady", "allocs/msg"
    );
    for r in &payload.rows {
        println!(
            "{:>17}  {:>10}  {:>12}  {:>8.1}%  {:>7.1}%  {:>9.3}",
            r.mode,
            r.data_messages,
            r.bytes_on_wire,
            100.0 * r.cache_hit_rate,
            100.0 * r.steady_hit_rate,
            r.route_allocs_per_msg
        );
    }
    println!(
        "bytes vs direct-baseline: direct-fast −{:.1}%, indirect-fast −{:.1}%",
        100.0 * payload.bytes_reduction_direct_fast,
        100.0 * payload.bytes_reduction_indirect_fast,
    );

    // CI smoke contract: the cached modes must actually be hitting once
    // warm — a zero steady-state hit rate means the cache is being flushed
    // or bypassed on the hot path.
    for r in &payload.rows {
        if r.route_cache {
            assert!(
                r.steady_hit_rate > 0.0,
                "{}: steady-state route-cache hit rate is zero",
                r.mode
            );
        }
    }

    args.emit(&payload).expect("write experiment json");
}
