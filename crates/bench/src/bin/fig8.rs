//! **FIG8** — "Comparison between different page ranking algorithms":
//! outer iterations needed to reach relative error ≤ 0.01% as the number of
//! page rankers sweeps over {2, 10, 100, 1000, 10000}, for DPR1, DPR2 and
//! the centralized baseline CPR (paper Fig 8; p = 1, T1 = T2 = 15).
//!
//! Expected shape (paper): DPR1 needs the fewest iterations — fewer even
//! than CPR — DPR2 the most, and K has little effect on any of them.
//!
//! Usage: `fig8 [--pages N] [--sites S] [--t-end T] [--threshold E] [--max-k K] [--full]`

use dpr_bench::BenchArgs;
use dpr_core::centralized::open_pagerank_iterations_to;
use dpr_core::{run_distributed, DistributedRunConfig, DprVariant, RankConfig};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_partition::Strategy;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Row {
    k: usize,
    dpr1_iters: Option<f64>,
    dpr2_iters: Option<f64>,
    cpr_iters: usize,
}

fn main() {
    let args = BenchArgs::from_env("fig8");
    let full = args.flag("full");
    let pages = args.get("pages", if full { 1_000_000 } else { 50_000 });
    let sites = args.get("sites", 100usize);
    let t_end = args.get("t-end", 3_000.0f64);
    let threshold = args.get("threshold", 1e-4f64); // 0.01%
    let max_k = args.get("max-k", 10_000usize);
    let seed = args.get("seed", 3u64);
    // Exponential think times make a single run's iteration count noisy;
    // average a few independent schedules like any asynchronous measurement.
    let trials = args.get("trials", 3u64);

    eprintln!("[fig8] generating edu-domain graph: {pages} pages, {sites} sites");
    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });

    let rank = RankConfig::default();
    let cpr_iters = open_pagerank_iterations_to(&g, &rank, threshold);
    eprintln!(
        "[fig8] CPR needs {cpr_iters} iterations to reach {:.4}% relative error",
        threshold * 100.0
    );

    let ks: Vec<usize> =
        [2usize, 10, 100, 1_000, 10_000].into_iter().filter(|&k| k <= max_k).collect();
    let mut rows = Vec::new();
    for &k in &ks {
        let mut iters = [None, None];
        for (i, variant) in [DprVariant::Dpr1, DprVariant::Dpr2].into_iter().enumerate() {
            let mut sum = 0.0;
            let mut ok = 0u64;
            for trial in 0..trials {
                let res = run_distributed(
                    &g,
                    DistributedRunConfig {
                        k,
                        variant,
                        // The paper's recommended strategy; with 100 sites
                        // the number of *active* rankers saturates at the
                        // site count, which is exactly why K barely matters.
                        strategy: Strategy::HashBySite,
                        t1: 15.0,
                        t2: 15.0,
                        send_success_prob: 1.0,
                        seed: seed.wrapping_add(trial * 0x9E37),
                        t_end,
                        // Fine sampling: iteration counts are read at the
                        // first sample past the threshold crossing, so
                        // coarse samples inflate them.
                        sample_every: 1.0,
                        threshold_rel_err: threshold,
                        rank: rank.clone(),
                        ..DistributedRunConfig::default()
                    },
                );
                if let Some(v) = res.mean_outer_iters_at_threshold {
                    sum += v;
                    ok += 1;
                }
            }
            iters[i] = (ok > 0).then(|| sum / ok as f64);
            eprintln!(
                "[fig8] K={k:>6} {variant:?}: {:?} outer iters (mean of {ok} trials)",
                iters[i]
            );
        }
        rows.push(Fig8Row { k, dpr1_iters: iters[0], dpr2_iters: iters[1], cpr_iters });
    }

    println!(
        "\nFig 8 — iterations to reach {:.2}% relative error (p=1, T1=T2=15)\n",
        threshold * 100.0
    );
    println!("{:>10} {:>12} {:>12} {:>12}", "K", "DPR1", "DPR2", "CPR");
    for r in &rows {
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            r.k,
            r.dpr1_iters.map_or("n/a".into(), |v| format!("{v:.1}")),
            r.dpr2_iters.map_or("n/a".into(), |v| format!("{v:.1}")),
            r.cpr_iters
        );
    }
    println!("\nShape checks (paper's conclusions):");
    let dpr1_max = rows.iter().filter_map(|r| r.dpr1_iters).fold(0.0, f64::max);
    let dpr2_min = rows.iter().filter_map(|r| r.dpr2_iters).fold(f64::INFINITY, f64::min);
    println!("  DPR1 converges more quickly than DPR2:      {}", dpr1_max < dpr2_min);
    println!("  DPR1 needs fewer iterations than CPR:       {}", dpr1_max < cpr_iters as f64);
    let dpr1s: Vec<f64> = rows.iter().filter_map(|r| r.dpr1_iters).collect();
    let spread = dpr1s.iter().fold(0.0_f64, |a, &b| a.max(b))
        / dpr1s.iter().fold(f64::INFINITY, |a, &b| a.min(b)).max(1e-9);
    println!("  K has little effect (DPR1 max/min ratio):   {spread:.2}");

    if let Err(e) = args.emit(&rows) {
        eprintln!("[fig8] JSON write failed: {e}");
    }
}
