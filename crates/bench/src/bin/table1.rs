//! **TAB1** — Table 1 of the paper: the minimal time interval between
//! iterations and the minimal per-node bottleneck bandwidth for 1 000,
//! 10 000 and 100 000 page rankers ranking 3 billion pages, under the §4.5
//! bisection-bandwidth constraint.
//!
//! Usage: `table1 [--pages W] [--record-bytes L] [--bisection-mb C]`
//! (defaults are the paper's constants). Also cross-checks the Pastry hop
//! constants against a measured overlay at 1 000 nodes.

use dpr_bench::BenchArgs;
use dpr_model::{pastry_hops, render_table1, CapacityModel};
use dpr_overlay::{avg_route_hops, PastryNetwork};

fn main() {
    let args = BenchArgs::from_env("table1");
    let model = CapacityModel {
        total_pages: args.get("pages", 3.0e9),
        link_record_bytes: args.get("record-bytes", 100.0),
        usable_bisection_bytes_per_sec: args.get("bisection-mb", 100.0) * 1e6,
    };

    let rows: Vec<_> = [1_000u64, 10_000, 100_000].iter().map(|&n| model.row(n)).collect();

    println!("Table 1 — minimal iteration interval and bottleneck bandwidth");
    println!(
        "  (W = {:.1e} pages, l = {} B, usable bisection = {:.0} MB/s)\n",
        model.total_pages,
        model.link_record_bytes,
        model.usable_bisection_bytes_per_sec / 1e6
    );
    println!("{}", render_table1(&rows));

    println!("Paper reference row:        1,000: 7500s/100KB/s   10,000: 10500s/10KB/s   100,000: 12000s/1KB/s");
    println!(
        "\nConclusion check: at 1000 rankers one iteration takes ≥ {:.1} hours (paper: \"at least 2 hours\").",
        rows[0].min_iteration_interval_secs / 3600.0
    );

    // Cross-check h against a real simulated overlay at the scale we can
    // afford to build here.
    eprintln!("[table1] measuring Pastry hops at 1000 nodes …");
    let net = PastryNetwork::with_nodes(1_000, 0xBEE);
    let measured = avg_route_hops(&net, 2_000, 1).mean;
    println!(
        "\nMeasured Pastry hops at 1000 nodes: {measured:.2} (paper constant {:.1})",
        pastry_hops(1_000)
    );

    if let Err(e) = args.emit(&rows) {
        eprintln!("[table1] JSON write failed: {e}");
    }
}
