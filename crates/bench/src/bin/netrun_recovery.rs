//! **NETRUN_RECOVERY** — crash-survivable ranking: re-convergence time
//! after a mid-run permanent crash, versus the replication factor.
//!
//! One group-hosting node (the owner of group 0, found with
//! `group_owners` — no probe run) is crashed permanently at `--crash-at`:
//! it departs the overlay, the engine drops its traffic, and its ranking
//! state dies with it. The grid then compares `--replicas 0` (the
//! baseline: oracle cold migration, ranks restart from zero) against
//! `--replicas K > 0` (the replication protocol: owners ship §4.5-priced
//! checkpoints every `checkpoint_every`, the surviving replica suspects
//! the owner after `suspect_after` missed intervals and re-hosts the
//! orphaned groups warm from its newest snapshot).
//!
//! The headline series is **post-crash sample windows until the relative
//! error is back below tolerance**: warm takeover pays the detection
//! timeout but restarts near the fixed point, the cold baseline re-hosts
//! instantly but re-converges geometrically from zero. DPR2 (one power
//! step per think) is the default regime — DPR1's unbounded inner solve
//! hides the restart cost as soon as the afferent state is rebuilt
//! (`--dpr1` records that, too). Every run is replayed at each worker
//! count in `--workers` and must reproduce the reference **bit for bit**,
//! so the recovery path is covered by the same determinism gate as the
//! healthy path; every row's top-10 pages are compared against an
//! undisturbed run (same fixed point, not just a small error).
//!
//! Usage: `netrun_recovery [--replicas 0,1,2,3] [--workers 1,2,4]
//!         [--pages N] [--groups K] [--nodes N] [--crash-at T]
//!         [--t-end T] [--checkpoint-every T] [--suspect-after N]
//!         [--dpr1] [--quick] [--out PATH]`
//!
//! `--quick` shrinks to a CI-sized scale with `--workers 1,2`, still
//! asserting warm-beats-cold and bit-identity. `--out` writes the JSON
//! payload (used to commit `BENCH_recovery.json` at the repo root).

use dpr_bench::BenchArgs;
use dpr_core::{group_owners, try_run_over_network, DprVariant, NetRunConfig, NetRunResult};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::WebGraph;
use dpr_partition::Strategy;
use dpr_sim::FaultPlan;
use serde::Serialize;

#[derive(Serialize)]
struct ReplicaRow {
    replicas: usize,
    final_rel_err: f64,
    /// Max relative error observed after the crash.
    spike: f64,
    /// First time the error is back below tolerance after the crash.
    reconverged_at: Option<f64>,
    /// The headline: post-crash sample windows until back below tolerance.
    windows_to_reconverge: Option<u64>,
    checkpoints_sent: u64,
    checkpoint_bytes: u64,
    takeovers_warm: u64,
    takeovers_cold: u64,
    /// Bytes on the wire for the whole run (checkpoint overhead included).
    total_bytes: u64,
    /// Top-10 pages match the undisturbed run exactly.
    top10_matches_healthy: bool,
    /// Rank bits and engine stats matched at every worker count.
    bit_identical_across_workers: bool,
}

#[derive(Serialize)]
struct Payload {
    quick: bool,
    variant: String,
    pages: usize,
    groups: usize,
    nodes: usize,
    victim: usize,
    crash_at: f64,
    t_end: f64,
    sample_every: f64,
    tol: f64,
    checkpoint_every: f64,
    suspect_after: u32,
    workers: Vec<usize>,
    healthy_final_rel_err: f64,
    grid: Vec<ReplicaRow>,
}

fn run(g: &WebGraph, cfg: NetRunConfig) -> NetRunResult {
    try_run_over_network(g, cfg).expect("recovery configs are validated")
}

fn rank_bits(r: &NetRunResult) -> Vec<u64> {
    r.final_ranks.iter().map(|x| x.to_bits()).collect()
}

fn top10(ranks: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..ranks.len()).collect();
    idx.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]).then(a.cmp(&b)));
    idx.truncate(10);
    idx
}

fn main() {
    let args = BenchArgs::from_env("netrun_recovery");
    let quick = args.flag("quick");
    let replicas: Vec<usize> = args.list("replicas", "0,1,2,3");
    let workers: Vec<usize> = args.list("workers", if quick { "1,2" } else { "1,2,4" });
    assert_eq!(workers.first(), Some(&1), "the grid needs the sequential reference first");
    let pages = args.get("pages", if quick { 2_000 } else { 20_000usize });
    let sites = args.get("sites", if quick { 20 } else { 50usize });
    let k = args.get("groups", if quick { 24 } else { 64usize });
    let nodes = args.get("nodes", k);
    let crash_at = args.get("crash-at", if quick { 150.0 } else { 300.0f64 });
    let t_end = args.get("t-end", if quick { 400.0 } else { 800.0f64 });
    let sample_every = args.get("sample-every", 2.0f64);
    // 1e-5 (tighter than the paper's 0.1% reporting threshold) is where
    // the warm-start advantage is unambiguous: a cold restart decays the
    // initial-mass error geometrically through the whole range, while a
    // warm takeover re-enters within checkpoint staleness of the fixed
    // point and skips most of the descent.
    let tol = args.get("tol", 1e-5f64);
    let checkpoint_every = args.get("checkpoint-every", 4.0f64);
    let suspect_after = args.get("suspect-after", 2u32);
    let variant = if args.flag("dpr1") { DprVariant::Dpr1 } else { DprVariant::Dpr2 };

    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });
    let base = NetRunConfig {
        k,
        n_nodes: nodes,
        strategy: Strategy::HashByUrl,
        variant,
        t_end,
        sample_every,
        checkpoint_every,
        suspect_after,
        ..NetRunConfig::default()
    };
    let victim = group_owners(&base)[0];
    eprintln!(
        "[netrun_recovery] {pages} pages, {k} groups on {nodes} nodes, {variant:?}, \
         crash node {victim} at t = {crash_at}, replicas {replicas:?}, workers {workers:?}"
    );

    let healthy = run(&g, base.clone());
    assert!(healthy.final_rel_err < tol, "healthy run must converge: {}", healthy.final_rel_err);
    let healthy_top = top10(&healthy.final_ranks);

    let crashed = |replication: usize, engine_workers: usize| {
        run(
            &g,
            NetRunConfig {
                replication,
                engine_workers,
                departures: vec![(crash_at, victim)],
                faults: Some(
                    FaultPlan::new().with_latency(0.01).with_permanent_crash(victim, crash_at),
                ),
                ..base.clone()
            },
        )
    };

    let mut grid: Vec<ReplicaRow> = Vec::new();
    for &r in &replicas {
        let reference = crashed(r, workers[0]);
        // The determinism gate: the recovery path (checkpoints, timeout
        // detection, takeover) replays bit for bit at every worker count.
        for &w in &workers[1..] {
            let par = crashed(r, w);
            assert_eq!(
                rank_bits(&par),
                rank_bits(&reference),
                "rank bits diverged at {w} workers with {r} replicas"
            );
            assert_eq!(par.counters, reference.counters, "counters diverged at {w} workers");
            assert_eq!(par.sim_stats, reference.sim_stats, "engine stats diverged at {w} workers");
        }
        let after: Vec<(f64, f64)> =
            reference.rel_err.points().iter().copied().filter(|&(t, _)| t > crash_at).collect();
        let spike = after.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        let reconverged_at = after.iter().find(|&&(_, v)| v < tol).map(|&(t, _)| t);
        let windows = reconverged_at.map(|t| ((t - crash_at) / sample_every).round() as u64);
        let c = reference.counters;
        if r == 0 {
            assert_eq!(c.checkpoints_sent, 0, "replication 0 must stay the exact baseline");
            assert_eq!(c.takeovers_warm + c.takeovers_cold, 0);
        } else {
            assert!(c.checkpoints_sent > 0, "{r} replicas must ship checkpoints");
            assert!(c.takeovers_warm > 0, "orphaned groups must come back warm");
            assert_eq!(c.takeovers_cold, 0, "checkpoints had ample time to arrive");
        }
        let row = ReplicaRow {
            replicas: r,
            final_rel_err: reference.final_rel_err,
            spike,
            reconverged_at,
            windows_to_reconverge: windows,
            checkpoints_sent: c.checkpoints_sent,
            checkpoint_bytes: c.checkpoint_bytes,
            takeovers_warm: c.takeovers_warm,
            takeovers_cold: c.takeovers_cold,
            total_bytes: c.bytes,
            top10_matches_healthy: top10(&reference.final_ranks) == healthy_top,
            bit_identical_across_workers: true,
        };
        assert!(row.final_rel_err < tol, "{r} replicas: rel err {}", row.final_rel_err);
        assert!(row.top10_matches_healthy, "{r} replicas: top pages diverged from healthy run");
        eprintln!(
            "[netrun_recovery] {r} replicas: spike {:.2e}, back below {tol:.0e} in {:?} windows, \
             {} checkpoints ({:.2} MB), {} warm / {} cold takeovers",
            row.spike,
            row.windows_to_reconverge,
            row.checkpoints_sent,
            row.checkpoint_bytes as f64 / 1e6,
            row.takeovers_warm,
            row.takeovers_cold
        );
        grid.push(row);
    }

    // The acceptance gate: under per-think step budgets (DPR2), warm
    // takeover must need measurably fewer post-crash windows than the
    // cold replication-0 restart, for every replicated row.
    if matches!(variant, DprVariant::Dpr2) {
        let cold = grid.iter().find(|r| r.replicas == 0).and_then(|r| r.windows_to_reconverge);
        if let Some(cold_w) = cold {
            for row in grid.iter().filter(|r| r.replicas > 0) {
                let warm_w = row.windows_to_reconverge.expect("replicated run re-converges");
                assert!(
                    warm_w < cold_w,
                    "{} replicas: warm {warm_w} windows must beat cold {cold_w}",
                    row.replicas
                );
            }
        }
    }

    println!(
        "{:>8}  {:>10}  {:>8}  {:>11}  {:>12}  {:>9}  {:>9}",
        "replicas", "spike", "windows", "checkpoints", "ckpt MB", "warm", "cold"
    );
    for r in &grid {
        println!(
            "{:>8}  {:>10.2e}  {:>8}  {:>11}  {:>12.2}  {:>9}  {:>9}",
            r.replicas,
            r.spike,
            r.windows_to_reconverge.map_or_else(|| "-".into(), |w| w.to_string()),
            r.checkpoints_sent,
            r.checkpoint_bytes as f64 / 1e6,
            r.takeovers_warm,
            r.takeovers_cold
        );
    }

    let payload = Payload {
        quick,
        variant: format!("{variant:?}"),
        pages,
        groups: k,
        nodes,
        victim,
        crash_at,
        t_end,
        sample_every,
        tol,
        checkpoint_every,
        suspect_after,
        workers,
        healthy_final_rel_err: healthy.final_rel_err,
        grid,
    };
    args.emit(&payload).expect("write experiment json");
}
