//! **INCREMENTAL** — delta-driven warm re-solve vs cold restart, over a
//! link-churn grid on the million-page graph.
//!
//! The live-web question the paper defers: a crawl delta lands on a
//! converged ranking system. The incremental pipeline patches the dirtied
//! groups in place (rescale or rebuild), warm-starts their solvers from
//! the previous fixed point, and leaves every untouched group in the
//! stall short-circuit; the cold baseline restarts the whole netrun from
//! zero on the mutated graph. Both strategies simulate exactly the same
//! total virtual time with the same sampling cadence, so the comparison
//! is strategy-vs-strategy, not schedule-vs-schedule:
//!
//! * **warm** — one run on the original graph with the delta arriving at
//!   `--delta-at`: converge, patch, re-converge (engine time is reported
//!   minus the measurement-only centralized reference recompute);
//! * **cold** — the undisturbed pre-delta segment (`t < delta_at` on the
//!   original graph) plus a from-scratch run on the mutated graph for the
//!   remaining `t_end - delta_at`.
//!
//! Headline series: **post-delta sample windows until the relative error
//! is back below tolerance** and **engine seconds**, versus churn level
//! (0.01% – 10% of internal links rewired), plus the delta shipment bytes
//! against the full-snapshot bytes a cold restart would have to ship.
//! Every warm run is replayed at each worker count in `--workers` and
//! must reproduce the sequential reference bit for bit; the warm fixed
//! point is compared against the from-scratch solve on the mutated graph
//! (same top pages, same fixed point to the centralized-reference
//! tolerance — the two histories stall on ulp-separated fixed points, so
//! bit equality across them is *measured* and reported, never assumed).
//!
//! Usage: `netrun_incremental [--churn 0.0001,0.001,0.01,0.1] [--workers 1,2,4]
//!         [--pages N] [--sites S] [--groups K] [--nodes M]
//!         [--delta-at T] [--t-end T] [--tol E] [--quick] [--out PATH]`
//!
//! `--quick` shrinks to a CI-sized scale with `--workers 1,2`, still
//! asserting warm-beats-cold and worker bit-identity. `--out` writes the
//! JSON payload (used to commit `BENCH_incremental.json`).
//!
//! The grid partitions with `HashByUrl` — the *adversarial-coupling*
//! strategy, where every group touches every other and a cold restart
//! pays the full cross-group settling cost each time. Under `HashBySite`
//! the site-local inner solves do nearly all the work in one think and a
//! cold restart converges in a handful of windows even at 1M pages, so
//! the warm-vs-cold window margin there is a wash at low churn (measured,
//! see EXPERIMENTS.md) — the incremental pipeline's payoff is the work
//! and bytes it *doesn't* redo, which the engine-seconds and
//! delta-vs-snapshot byte columns capture under either strategy.

use dpr_bench::BenchArgs;
use dpr_core::netrun::try_run_over_network_with_store;
use dpr_core::{try_run_over_network, NetRunConfig, NetRunResult, RankStore};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::io::delta_wire_bytes;
use dpr_graph::{GraphDelta, WebGraph};
use dpr_partition::Strategy;
use serde::Serialize;

#[derive(Serialize)]
struct ChurnRow {
    churn: f64,
    links_rewired: usize,
    /// Wire bytes of the delta shipment (per dirty owner).
    delta_bytes_each: u64,
    /// Total delta bytes charged across all dirty owners.
    delta_bytes_total: u64,
    delta_shipments: u64,
    /// Groups dirtied by the delta (owners that warm-restarted).
    dirty_owners: u64,
    /// Post-delta spike of the warm run's relative error.
    warm_spike: f64,
    /// The headline: post-delta sample windows until back below tol.
    warm_windows: u64,
    /// From-scratch sample windows until below tol on the mutated graph.
    cold_windows: u64,
    /// Warm engine seconds (reference recompute excluded).
    warm_engine_secs: f64,
    /// Cold engine seconds: pre-delta segment + from-scratch restart.
    cold_engine_secs: f64,
    warm_final_rel_err: f64,
    cold_final_rel_err: f64,
    /// Warm and cold top-10 pages agree exactly.
    top10_matches_cold: bool,
    /// Measured (not asserted): every rank bit of the warm fixed point
    /// equals the from-scratch fixed point's.
    bits_match_cold: bool,
    /// Largest relative rank gap between the two fixed points.
    max_rel_gap_vs_cold: f64,
    /// Rank bits and counters matched at every worker count.
    bit_identical_across_workers: bool,
}

#[derive(Serialize)]
struct Payload {
    quick: bool,
    pages: usize,
    sites: usize,
    groups: usize,
    nodes: usize,
    delta_at: f64,
    t_end: f64,
    sample_every: f64,
    tol: f64,
    workers: Vec<usize>,
    internal_links: usize,
    /// What a cold restart ships instead of a delta: the full snapshot.
    snapshot_bytes: u64,
    grid: Vec<ChurnRow>,
}

fn run(g: &WebGraph, cfg: NetRunConfig) -> NetRunResult {
    try_run_over_network(g, cfg).expect("incremental configs are validated")
}

/// Wire size of the full DPRG1 snapshot — what a cold restart ships
/// instead of the delta.
fn full_snapshot_bytes(g: &WebGraph) -> u64 {
    let mut cur = std::io::Cursor::new(Vec::new());
    dpr_graph::io::write_snapshot(g, &mut cur).expect("in-memory snapshot");
    cur.into_inner().len() as u64
}

fn rank_bits(r: &[f64]) -> Vec<u64> {
    r.iter().map(|x| x.to_bits()).collect()
}

fn top10(ranks: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..ranks.len()).collect();
    idx.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]).then(a.cmp(&b)));
    idx.truncate(10);
    idx
}

fn windows_until(points: &[(f64, f64)], after: f64, tol: f64, sample: f64) -> Option<u64> {
    points
        .iter()
        .find(|&&(t, v)| t > after && v < tol)
        .map(|&(t, _)| ((t - after) / sample).round() as u64)
}

fn main() {
    let args = BenchArgs::from_env("incremental");
    let quick = args.flag("quick");
    let churn: Vec<f64> =
        args.list("churn", if quick { "0.001,0.01" } else { "0.0001,0.001,0.01,0.1" });
    let workers: Vec<usize> = args.list("workers", if quick { "1,2" } else { "1,2,4" });
    assert_eq!(workers.first(), Some(&1), "the grid needs the sequential reference first");
    let pages = args.get("pages", if quick { 2_000 } else { 1_000_000usize });
    let sites = args.get("sites", if quick { 20 } else { 100usize });
    let k = args.get("groups", if quick { 24 } else { 100usize });
    let nodes = args.get("nodes", if quick { 24 } else { 256usize });
    let delta_at = args.get("delta-at", if quick { 150.0 } else { 300.0f64 });
    let t_end = args.get("t-end", if quick { 400.0 } else { 800.0f64 });
    let sample_every = args.get("sample-every", 2.0f64);
    let tol = args.get("tol", 1e-5f64);

    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });
    let internal_links = g.n_internal_links();
    let snapshot_bytes = full_snapshot_bytes(&g);
    let base = NetRunConfig {
        k,
        n_nodes: nodes,
        strategy: Strategy::HashByUrl,
        t_end,
        sample_every,
        ..NetRunConfig::default()
    };
    eprintln!(
        "[incremental] {pages} pages ({internal_links} internal links), {k} groups on \
         {nodes} nodes, delta at t = {delta_at}, churn {churn:?}, workers {workers:?}"
    );

    // The shared pre-delta segment of the cold strategy: the undisturbed
    // system up to the moment the crawl delta arrives. One run serves
    // every churn level — the delta hasn't happened yet.
    let pre = run(&g, NetRunConfig { t_end: delta_at, ..base.clone() });
    assert!(pre.final_rel_err < tol, "must converge before the delta: {}", pre.final_rel_err);
    eprintln!(
        "[incremental] pre-delta segment: converged to {:.2e} in {:.2}s engine time",
        pre.final_rel_err, pre.engine_secs
    );

    let mut grid: Vec<ChurnRow> = Vec::new();
    for &c in &churn {
        let delta = GraphDelta::link_churn(&g, c, 42);
        let links_rewired = delta.ops.len() / 2;
        let wire = delta_wire_bytes(&delta) + base.header_bytes;
        let mutated = delta.apply(&g);

        // Warm: the incremental pipeline — one run, delta mid-flight, with
        // a serving store attached (epoch handoff is part of the protocol
        // under test; publishes read state only, so the run's bits are
        // unaffected).
        let warm_cfg = NetRunConfig { deltas: vec![(delta_at, delta)], ..base.clone() };
        let store = RankStore::new(10);
        let warm = try_run_over_network_with_store(&g, warm_cfg.clone(), Some(&store))
            .expect("incremental configs are validated");
        let view = store.view();
        let store_bits_ok =
            warm.final_ranks.iter().enumerate().all(|(p, &r)| {
                view.lookup(p as u32).map(|l| l.rank.to_bits()) == Some(r.to_bits())
            });
        assert!(store_bits_ok, "churn {c}: the served view must match the final fixed point");
        // Cold: restart from zero on the mutated graph for the remaining
        // virtual time.
        let cold = run(&mutated, NetRunConfig { t_end: t_end - delta_at, ..base.clone() });

        // The determinism gate: the delta path (shipment, patching, warm
        // restart) replays bit for bit at every worker count.
        for &w in &workers[1..] {
            let par = run(&g, NetRunConfig { engine_workers: w, ..warm_cfg.clone() });
            assert_eq!(
                rank_bits(&par.final_ranks),
                rank_bits(&warm.final_ranks),
                "churn {c}: rank bits diverged at {w} workers"
            );
            assert_eq!(par.counters, warm.counters, "churn {c}: counters diverged at {w} workers");
            assert_eq!(par.sim_stats, warm.sim_stats, "churn {c}: engine stats diverged");
        }

        let after: Vec<(f64, f64)> =
            warm.rel_err.points().iter().copied().filter(|&(t, _)| t > delta_at).collect();
        let warm_spike = after.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        let warm_windows = windows_until(warm.rel_err.points(), delta_at, tol, sample_every)
            .expect("warm run re-converges");
        let cold_windows = windows_until(cold.rel_err.points(), 0.0, tol, sample_every)
            .expect("cold restart converges");
        let warm_engine = warm.engine_secs - warm.delta_ref_secs;
        let cold_engine = pre.engine_secs + cold.engine_secs;

        // Same fixed point: both histories end fully stalled on the
        // mutated graph. Bit equality across the two *histories* is
        // measured, never assumed (each stalls on its own ulp-scale fixed
        // point of the float iteration).
        let gap = warm
            .final_ranks
            .iter()
            .zip(&cold.final_ranks)
            .map(|(&a, &b)| if b == 0.0 { a.abs() } else { ((a - b) / b).abs() })
            .fold(0.0f64, f64::max);
        let row = ChurnRow {
            churn: c,
            links_rewired,
            delta_bytes_each: wire,
            delta_bytes_total: warm.counters.delta_bytes,
            delta_shipments: warm.counters.delta_messages,
            dirty_owners: warm.counters.delta_messages,
            warm_spike,
            warm_windows,
            cold_windows,
            warm_engine_secs: warm_engine,
            cold_engine_secs: cold_engine,
            warm_final_rel_err: warm.final_rel_err,
            cold_final_rel_err: cold.final_rel_err,
            top10_matches_cold: top10(&warm.final_ranks) == top10(&cold.final_ranks),
            bits_match_cold: rank_bits(&warm.final_ranks) == rank_bits(&cold.final_ranks),
            max_rel_gap_vs_cold: gap,
            bit_identical_across_workers: true,
        };
        // The acceptance gates, per churn level.
        assert!(row.warm_final_rel_err < tol, "churn {c}: warm rel err {}", row.warm_final_rel_err);
        assert!(row.cold_final_rel_err < tol, "churn {c}: cold rel err {}", row.cold_final_rel_err);
        assert!(row.delta_shipments > 0, "churn {c}: the delta must ship to dirty owners");
        assert!(
            row.warm_windows < row.cold_windows,
            "churn {c}: warm {} windows must beat cold {}",
            row.warm_windows,
            row.cold_windows
        );
        if !quick {
            // Sub-second quick runs are scheduling-noise-dominated; the
            // engine-time margin is asserted at the full benchmark scale.
            assert!(
                row.warm_engine_secs < row.cold_engine_secs,
                "churn {c}: warm {:.3}s engine must beat cold {:.3}s",
                row.warm_engine_secs,
                row.cold_engine_secs
            );
        }
        assert!(
            row.top10_matches_cold,
            "churn {c}: warm fixed point must agree with the from-scratch solve"
        );
        // Empirically the two histories stall within ~1 ulp of each other
        // (`bits_match_cold` records whether they landed on the very same
        // bits); 1e-12 is orders of magnitude tighter than tol and pins
        // "same fixed point" without asserting cross-history bit luck.
        assert!(
            row.max_rel_gap_vs_cold < 1e-12,
            "churn {c}: warm and cold fixed points must coincide, gap {}",
            row.max_rel_gap_vs_cold
        );
        eprintln!(
            "[incremental] churn {c}: {} links, {} shipments × {} B (vs {} B snapshot), \
             warm {} windows / {:.2}s vs cold {} windows / {:.2}s, bits_match={} gap {:.1e}",
            row.links_rewired,
            row.delta_shipments,
            row.delta_bytes_each,
            snapshot_bytes,
            row.warm_windows,
            row.warm_engine_secs,
            row.cold_windows,
            row.cold_engine_secs,
            row.bits_match_cold,
            row.max_rel_gap_vs_cold
        );
        grid.push(row);
    }

    println!(
        "{:>8}  {:>9}  {:>10}  {:>12}  {:>12}  {:>10}  {:>10}  {:>10}",
        "churn", "links", "delta B", "warm wins", "cold wins", "warm s", "cold s", "bits"
    );
    for r in &grid {
        println!(
            "{:>8}  {:>9}  {:>10}  {:>12}  {:>12}  {:>10.2}  {:>10.2}  {:>10}",
            r.churn,
            r.links_rewired,
            r.delta_bytes_each,
            r.warm_windows,
            r.cold_windows,
            r.warm_engine_secs,
            r.cold_engine_secs,
            r.bits_match_cold
        );
    }

    let payload = Payload {
        quick,
        pages,
        sites,
        groups: k,
        nodes,
        delta_at,
        t_end,
        sample_every,
        tol,
        workers,
        internal_links,
        snapshot_bytes,
        grid,
    };
    args.emit(&payload).expect("write experiment json");
}
