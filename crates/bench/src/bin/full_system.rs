//! **FULL-SYSTEM** — the whole stack at once: DPR1 ranking an edu crawl
//! while its `Y` exchange is routed through a live Pastry overlay, under
//! both §4.4 transmission schemes. Reports convergence *and* network cost
//! side by side — the trade the paper's analysis predicts (indirect: fewer,
//! neighbor-bound messages; direct: fewer forwarded bytes but O(N²)
//! messages plus lookups).
//!
//! Usage: `full_system [--pages N] [--sites S] [--k K] [--nodes N] [--t-end T]`

use dpr_bench::BenchArgs;
use dpr_core::{try_run_over_network, NetRunConfig, Transmission};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_partition::Strategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    transmission: String,
    final_rel_err: f64,
    time_to_1pct: Option<f64>,
    data_messages: u64,
    lookup_messages: u64,
    megabytes: f64,
    mean_route_hops: f64,
}

fn main() {
    let args = BenchArgs::from_env("full_system");
    let pages = args.get("pages", 20_000usize);
    let sites = args.get("sites", 100usize);
    let k = args.get("k", 100usize);
    let n_nodes = args.get("nodes", 100usize);
    let t_end = args.get("t-end", 120.0f64);
    let seed = args.get("seed", 17u64);

    eprintln!("[full_system] generating edu-domain graph: {pages} pages, {sites} sites");
    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });

    let mut rows = Vec::new();
    for (name, t) in [("direct", Transmission::Direct), ("indirect", Transmission::Indirect)] {
        eprintln!("[full_system] running {name} transmission over {n_nodes}-node Pastry …");
        let res = try_run_over_network(
            &g,
            NetRunConfig {
                k,
                n_nodes,
                transmission: t,
                strategy: Strategy::HashBySite,
                t_end,
                seed,
                ..NetRunConfig::default()
            },
        )
        .expect("bench config uses supported churn");
        rows.push(Row {
            transmission: name.to_string(),
            final_rel_err: res.final_rel_err,
            time_to_1pct: res.rel_err.first_time_below(0.01),
            data_messages: res.counters.data_messages,
            lookup_messages: res.counters.lookup_messages,
            megabytes: res.counters.bytes as f64 / 1e6,
            mean_route_hops: res.mean_route_hops,
        });
    }

    println!("\nFull system: DPR1 over a {n_nodes}-node Pastry overlay (K = {k})\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "scheme", "rel err %", "t @ 1%", "data msgs", "lookups", "MB", "h"
    );
    for r in &rows {
        println!(
            "{:<10} {:>12.4} {:>12} {:>12} {:>12} {:>10.1} {:>8.2}",
            r.transmission,
            r.final_rel_err * 100.0,
            r.time_to_1pct.map_or("-".into(), |t| format!("{t:.0}")),
            r.data_messages,
            r.lookup_messages,
            r.megabytes,
            r.mean_route_hops
        );
    }
    let d = &rows[0];
    let i = &rows[1];
    println!(
        "\nindirect uses {:.1}x fewer messages ({} vs {}) at {:.1}x the bytes — the §4.4 trade, live.",
        (d.data_messages + d.lookup_messages) as f64 / i.data_messages.max(1) as f64,
        i.data_messages,
        d.data_messages + d.lookup_messages,
        i.megabytes / d.megabytes.max(1e-9),
    );

    if let Err(e) = args.emit(&rows) {
        eprintln!("[full_system] JSON write failed: {e}");
    }
}
