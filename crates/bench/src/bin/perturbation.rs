//! **PERTURBATION** — how far does a localized graph change travel?
//!
//! The paper's dynamic-graph story (§4.3) and the incremental-ranking use
//! case rest on an empirical property: PageRank perturbations decay
//! geometrically with link distance (each hop multiplies the disturbance
//! by at most α divided across out-links). This experiment rewires the
//! out-links of a single site, re-solves, and bins |ΔR| by BFS distance
//! from the changed pages — showing why warm restarts after a small
//! re-crawl converge so quickly.
//!
//! Usage: `perturbation [--pages N] [--sites S] [--site SID]`

use dpr_bench::BenchArgs;
use dpr_core::{open_pagerank, RankConfig};
use dpr_graph::analysis::bfs_distance;
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::{GraphBuilder, WebGraph};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    distance: u32,
    pages: usize,
    mean_abs_delta: f64,
    max_abs_delta: f64,
}

/// Rebuilds `g` with the out-links of every page on `site` rewired to
/// deterministic new targets (same degrees).
fn rewire_site(g: &WebGraph, site: u32) -> WebGraph {
    let mut b = GraphBuilder::with_capacity(g.n_pages(), g.n_internal_links());
    for s in 0..g.n_sites() as u32 {
        b.add_site(g.site_name(s).to_string());
    }
    for p in 0..g.n_pages() as u32 {
        b.add_page(g.site(p));
    }
    let n = g.n_pages() as u64;
    for p in 0..g.n_pages() as u32 {
        if g.site(p) == site {
            for (i, _) in g.out_links(p).iter().enumerate() {
                let mut v = (dpr_graph::urls::splitmix64(u64::from(p) * 131 + i as u64) % n) as u32;
                if v == p {
                    v = (v + 1) % g.n_pages() as u32;
                }
                b.add_link(p, v);
            }
            b.add_external_links(p, g.external_out_degree(p));
        } else {
            for &v in g.out_links(p) {
                b.add_link(p, v);
            }
            b.add_external_links(p, g.external_out_degree(p));
        }
    }
    b.build()
}

fn main() {
    let args = BenchArgs::from_env("perturbation");
    let pages = args.get("pages", 50_000usize);
    let sites = args.get("sites", 100usize);
    let site = args.get("site", 5u32);

    eprintln!("[perturbation] generating edu-domain graph: {pages} pages");
    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });
    let cfg = RankConfig { epsilon: 1e-12, ..RankConfig::default() };
    let before = open_pagerank(&g, &cfg).ranks;

    let g2 = rewire_site(&g, site);
    let after = open_pagerank(&g2, &cfg).ranks;

    // Distance from the changed pages (seeds = the rewired site, measured
    // on the *new* graph where the perturbation propagates).
    let seeds: Vec<u32> = (0..g.n_pages() as u32).filter(|&p| g.site(p) == site).collect();
    eprintln!("[perturbation] rewired site {site}: {} pages", seeds.len());
    let dist = bfs_distance(&g2, &seeds);

    let max_d = 8u32;
    let mut rows: Vec<Row> = Vec::new();
    for d in 0..=max_d {
        let idx: Vec<usize> = (0..g.n_pages())
            .filter(|&i| dist[i] == d || (d == max_d && dist[i] != u32::MAX && dist[i] >= max_d))
            .collect();
        if idx.is_empty() {
            continue;
        }
        let deltas: Vec<f64> = idx.iter().map(|&i| (after[i] - before[i]).abs()).collect();
        rows.push(Row {
            distance: d,
            pages: idx.len(),
            mean_abs_delta: deltas.iter().sum::<f64>() / deltas.len() as f64,
            max_abs_delta: deltas.iter().fold(0.0f64, |a, &b| a.max(b)),
        });
    }

    println!("\nRank perturbation vs link distance from a rewired site\n");
    println!("{:>9} {:>10} {:>16} {:>16}", "distance", "pages", "mean |dR|", "max |dR|");
    for r in &rows {
        println!(
            "{:>9} {:>10} {:>16.3e} {:>16.3e}",
            if r.distance == max_d { format!("{}+", r.distance) } else { r.distance.to_string() },
            r.pages,
            r.mean_abs_delta,
            r.max_abs_delta
        );
    }
    let near = rows.first().map_or(0.0, |r| r.mean_abs_delta);
    let far = rows.last().map_or(0.0, |r| r.mean_abs_delta);
    println!(
        "\nDecay: mean |dR| falls {:.0}x from the changed pages to distance {max_d}+ — the locality \
         that makes incremental / warm-started re-ranking after small re-crawls cheap (§4.3).",
        near / far.max(1e-300)
    );

    if let Err(e) = args.emit(&rows) {
        eprintln!("[perturbation] JSON write failed: {e}");
    }
}
