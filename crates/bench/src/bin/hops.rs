//! **HOPS** — measures the average lookup hop count of the simulated
//! overlays across network sizes, validating the `h` constants §4.5 plugs
//! into Table 1 (Pastry ≈ 2.5 hops at 1 000 nodes, 3.5 at 10 000, 4.0 at
//! 100 000) and contrasting with Chord's ½·log₂N.
//!
//! Usage: `hops [--max-n N] [--samples S]`

use dpr_bench::BenchArgs;
use dpr_model::pastry_hops;
use dpr_overlay::{avg_route_hops, CanNetwork, ChordNetwork, PastryNetwork};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: usize,
    pastry_mean: f64,
    pastry_max: usize,
    chord_mean: f64,
    chord_max: usize,
    /// CAN (d=2) mean hops; omitted at scales where the O(N²) neighbor
    /// construction is unreasonable.
    can_mean: Option<f64>,
    paper_h: f64,
    mean_neighbors_pastry: f64,
}

fn main() {
    let args = BenchArgs::from_env("hops");
    let max_n = args.get("max-n", 100_000usize);
    let samples = args.get("samples", 2_000usize);

    let ns: Vec<usize> =
        [100usize, 1_000, 10_000, 100_000].into_iter().filter(|&n| n <= max_n).collect();

    let mut rows = Vec::new();
    for &n in &ns {
        eprintln!("[hops] building overlays with {n} nodes …");
        let pastry = PastryNetwork::with_nodes(n, 0xCAFE ^ n as u64);
        let chord = ChordNetwork::with_nodes(n, 0xF00D ^ n as u64);
        let ps = avg_route_hops(&pastry, samples, 1);
        let cs = avg_route_hops(&chord, samples, 2);
        let can_mean = (n <= 4_096).then(|| {
            let can = CanNetwork::with_nodes(n, 2, 0xCA0 ^ n as u64);
            avg_route_hops(&can, samples, 3).mean
        });
        let g = {
            use dpr_overlay::Overlay;
            pastry.mean_neighbors()
        };
        eprintln!(
            "[hops]   pastry {:.2} (max {}), chord {:.2} (max {})",
            ps.mean, ps.max, cs.mean, cs.max
        );
        rows.push(Row {
            n,
            pastry_mean: ps.mean,
            pastry_max: ps.max,
            chord_mean: cs.mean,
            chord_max: cs.max,
            can_mean,
            paper_h: pastry_hops(n as u64),
            mean_neighbors_pastry: g,
        });
    }

    println!("\nAverage lookup hops (the `h` of §4.5)\n");
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "N", "Pastry mean", "max", "Chord mean", "max", "CAN d=2", "paper h", "Pastry g"
    );
    for r in &rows {
        println!(
            "{:>8} {:>12.2} {:>10} {:>12.2} {:>10} {:>10} {:>10.2} {:>12.1}",
            r.n,
            r.pastry_mean,
            r.pastry_max,
            r.chord_mean,
            r.chord_max,
            r.can_mean.map_or("-".to_string(), |v| format!("{v:.2}")),
            r.paper_h,
            r.mean_neighbors_pastry
        );
    }
    println!("\n(The paper quotes 2.5 / 3.5 / 4.0 Pastry hops at 1k / 10k / 100k nodes.)");

    // Proximity neighbor selection: same hop counts, shorter physical
    // routes (the Pastry locality property).
    let n = 1_000.min(max_n.max(2));
    let pns = PastryNetwork::with_nodes_and_proximity(n, 0xDADA);
    // Rebuild the same network's tables without proximity awareness
    // (strip + rebuild + re-attach; see the PNS unit tests for rationale).
    let oblivious = {
        let mut tmp = pns.clone();
        let loc = tmp.strip_locations_for_benchmark();
        tmp.repair();
        tmp.restore_locations_for_benchmark(loc);
        tmp
    };
    let d_pns = pns.mean_route_distance(samples, 9);
    let d_plain = oblivious.mean_route_distance(samples, 9);
    println!(
        "\nProximity neighbor selection at N = {n}: mean route distance {d_pns:.3} vs {d_plain:.3} \
         oblivious ({:.0}% shorter at equal hop count).",
        100.0 * (1.0 - d_pns / d_plain)
    );

    if let Err(e) = args.emit(&rows) {
        eprintln!("[hops] JSON write failed: {e}");
    }
}
