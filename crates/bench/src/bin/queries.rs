//! **QUERIES** — load test for the epoch-versioned [`RankStore`] serving
//! path: converge a ranker fleet on an edu-domain crawl, publish per-slice
//! epoch snapshots, then hammer the store from multiple reader threads
//! while a background publisher keeps swapping epochs underneath them.
//!
//! The run has three phases:
//!
//! 1. **Converge + publish** — one `RankerNode` per group runs DPR1 under
//!    the simulator; after every time slice the fleet's group vectors are
//!    published, so the store sees a realistic stream of epoch bumps.
//! 2. **Verify** (the smoke gate) — the store's top-k, candidate top-k,
//!    point lookups and site aggregates are asserted **bit-identical** to
//!    scatter-gather queries against the live rankers at the same epoch.
//! 3. **Load** — for each reader count the workers of a
//!    [`dpr_linalg::pool::Pool`] issue a fixed mix of queries (70% point
//!    lookups, 20% top-k, 8% candidate top-k, 2% site aggregates), each
//!    timed into a per-worker [`LatencyHistogram`], while a publisher
//!    thread alternates the store between a mid-run and the converged
//!    epoch — so the recorded throughput includes concurrent publication.
//!
//! `host_threads` is recorded next to the timings: on a 1-core host all
//! reader counts share one core, so multi-reader rows certify the
//! lock-free read path under contention, not scaling (same caveat as
//! `BENCH_parallel.json`).
//!
//! Usage: `queries [--pages N] [--groups K] [--readers 1,2,4]
//!         [--queries N] [--t-end T] [--topk-cap K] [--quick] [--out PATH]`
//!
//! `--quick` shrinks the graph and query count for CI smoke testing,
//! still asserting bit-identity. `--out` writes the JSON payload (used to
//! commit `BENCH_queries.json` at the repo root).

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpr_bench::BenchArgs;
use dpr_core::dpr::assemble_global;
use dpr_core::group::GroupContext;
use dpr_core::metrics::LatencyHistogram;
use dpr_core::store::GroupRanks;
use dpr_core::{
    distributed_top_k, site_totals, DprVariant, GroupPublish, Hit, RankConfig, RankStore,
    RankerNode,
};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::PageId;
use dpr_linalg::pool::{Pool, SharedSlice};
use dpr_partition::{Partition, Strategy};
use dpr_sim::{SimConfig, Simulation};
use serde::Serialize;

#[derive(Serialize)]
struct ReaderRow {
    readers: usize,
    total_queries: u64,
    wall_secs: f64,
    queries_per_sec: f64,
    /// Quantiles are log2-bucket upper bounds (the top one clamps to the
    /// exact maximum), nanoseconds per query.
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    /// Per-bucket query counts; bucket `i` holds latencies in
    /// `[2^(i-1), 2^i)` ns, trimmed at the last non-zero bucket.
    histogram: Vec<u64>,
    /// Epoch swaps the background publisher landed during this row.
    publisher_publishes: u64,
}

#[derive(Serialize)]
struct VerifyBlock {
    /// Store answers matched live scatter-gather queries bit for bit.
    bit_identical: bool,
    store_version: u64,
    publishes: u64,
    group_updates: u64,
    skipped_updates: u64,
}

#[derive(Serialize)]
struct Payload {
    /// `available_parallelism()` of the recording host. When 1, the
    /// multi-reader rows measure the read path under contention on a
    /// single core, not parallel speedup.
    host_threads: usize,
    quick: bool,
    pages: usize,
    sites: usize,
    groups: usize,
    topk_cap: usize,
    t_end: f64,
    converge_secs: f64,
    /// Query mix, percent: point lookup / top-k / candidate top-k /
    /// site aggregates.
    mix: [u32; 4],
    verify: VerifyBlock,
    readers: Vec<usize>,
    grid: Vec<ReaderRow>,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Owned handles to one whole-store state (every group's snapshot), kept
/// alive by the `Arc`s so the publisher can republish it later.
fn snapshot_state(store: &RankStore, groups: usize) -> Vec<Arc<GroupRanks>> {
    let v = store.view();
    (0..groups as u32).filter_map(|gid| v.group(gid).cloned()).collect()
}

fn assert_hits_bits_equal(a: &[Hit], b: &[Hit], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.page, y.page, "{what}: page order diverged");
        assert_eq!(x.rank.to_bits(), y.rank.to_bits(), "{what}: rank bits differ on {}", x.page);
    }
}

fn main() {
    let args = BenchArgs::from_env("queries");
    let quick = args.flag("quick");
    let pages = args.get("pages", if quick { 20_000 } else { 100_000usize });
    let sites = args.get("sites", if quick { 50 } else { 100usize });
    let groups = args.get("groups", if quick { 32 } else { 64usize });
    let readers: Vec<usize> = args.list("readers", if quick { "1,2" } else { "1,2,4" });
    let total_queries = args.get("queries", if quick { 40_000 } else { 1_000_000u64 });
    let t_end = args.get("t-end", 120.0f64);
    let topk_cap = args.get("topk-cap", 128usize);
    let host_threads = Pool::host_threads();
    const MIX: [u32; 4] = [70, 20, 8, 2];

    eprintln!(
        "[queries] host_threads {host_threads}, {pages} pages / {groups} groups, \
         readers {readers:?}, {total_queries} queries per row{}",
        if host_threads == 1 { " (1-core host: rows contend on one core)" } else { "" }
    );

    // Phase 1: converge a ranker fleet, publishing after every slice so
    // the store sees the same epoch stream `netrun` would feed it.
    let g = edu_domain(&EduDomainConfig { n_pages: pages, n_sites: sites, ..Default::default() });
    let site_of: Vec<u32> = (0..g.n_pages() as u32).map(|p| g.site(p)).collect();
    let part = Partition::build(&g, &Strategy::HashBySite, groups, 0);
    let nodes: Vec<RankerNode> = GroupContext::build_all(&g, &part, &RankConfig::default())
        .into_iter()
        .map(|c| RankerNode::new(c, DprVariant::Dpr1, 1.0))
        .collect();
    let mut sim = Simulation::new(nodes, SimConfig { seed: 7, ..SimConfig::default() });
    let store = Arc::new(RankStore::new(topk_cap).with_sites(site_of.clone(), g.n_sites()));

    let t0 = Instant::now();
    const SLICES: u32 = 12;
    let mut mid_state: Vec<Arc<GroupRanks>> = Vec::new();
    for s in 1..=SLICES {
        sim.run_until(t_end * f64::from(s) / f64::from(SLICES));
        store.publish_rankers(sim.actors());
        if s == 2 {
            // An early, visibly-unconverged epoch the load-phase
            // publisher will alternate with the converged one.
            mid_state = snapshot_state(&store, groups);
        }
    }
    let converge_secs = t0.elapsed().as_secs_f64();
    let final_state = snapshot_state(&store, groups);
    eprintln!(
        "[queries] converged in {converge_secs:.2}s, store at version {}",
        store.view().version()
    );

    // Phase 2 (the smoke gate): every query family must be bit-identical
    // to scatter-gather over the live rankers at this epoch.
    let v = store.view();
    let nodes = sim.actors();
    assert_hits_bits_equal(&v.top_k(100), &distributed_top_k(nodes, 100, None), "global top-k");
    let cands: Vec<PageId> = (0..200u32).chain([7, 7, 13]).collect();
    assert_hits_bits_equal(
        &v.top_k_candidates(20, &cands),
        &distributed_top_k(nodes, 20, Some(&cands)),
        "candidate top-k",
    );
    let global = assemble_global(nodes, g.n_pages());
    let mut seed = 0xC0FFEEu64;
    for p in (0..64).map(|_| (splitmix64(&mut seed) % pages as u64) as u32) {
        let l = v.lookup(p).expect("every page is owned");
        assert_eq!(l.rank.to_bits(), global[p as usize].to_bits(), "point lookup page {p}");
    }
    let live_sites = site_totals(nodes, &site_of, g.n_sites());
    let stored = v.site_totals().expect("store built with site info");
    assert_eq!(stored.len(), live_sites.len());
    for (s, (a, b)) in stored.iter().zip(&live_sites).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "site {s} aggregate bits differ");
    }
    let stats = store.stats();
    let verify = VerifyBlock {
        bit_identical: true,
        store_version: v.version(),
        publishes: stats.publishes,
        group_updates: stats.group_updates,
        skipped_updates: stats.skipped_updates,
    };
    drop(v);
    eprintln!("[queries] verify: store bit-identical to live rankers ({stats:?})");

    // Phase 3: the load grid. Per reader count, workers split the query
    // budget and time each call into a private histogram while a
    // publisher thread alternates the store between the mid-run and
    // converged epochs — reads race real epoch swaps, as in serving.
    let mut grid: Vec<ReaderRow> = Vec::new();
    let mut epoch = t_end.ceil() as u64 + 1;
    for &r in &readers {
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let (mid, fin) = (mid_state.clone(), final_state.clone());
            let mut publishes = 0u64;
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    epoch += 1;
                    let state = if epoch.is_multiple_of(2) { &mid } else { &fin };
                    store.publish(state.iter().map(|gr| GroupPublish {
                        group: gr.group(),
                        epoch,
                        pages: gr.pages(),
                        ranks: gr.ranks(),
                    }));
                    publishes += 1;
                    // Paced: swapping whole epochs every publish forces a
                    // full index rebuild, so back off enough that the
                    // readers, not the publisher, own the core(s).
                    std::thread::sleep(Duration::from_millis(5));
                }
                (publishes, epoch)
            })
        };

        let mut hists: Vec<LatencyHistogram> = (0..r).map(|_| LatencyHistogram::new()).collect();
        let shared = SharedSlice::new(&mut hists);
        let pool = Pool::with_workers(r);
        let store_ref = &store;
        let n_pages = pages as u64;
        let row_t0 = Instant::now();
        pool.broadcast(|w| {
            let quota = total_queries / r as u64 + u64::from((w as u64) < total_queries % r as u64);
            // SAFETY: each worker writes only its own histogram slot.
            let hist = &mut unsafe { shared.slice_mut(w, 1) }[0];
            let mut rng = 0x9E37_0000_0000_0000u64 ^ ((w as u64) << 32) ^ r as u64;
            let mut acc = 0u64; // fold answers so the queries can't be elided
            for _ in 0..quota {
                let draw = splitmix64(&mut rng);
                let page = (draw >> 32) % n_pages;
                let q0 = Instant::now();
                match draw % 100 {
                    x if x < u64::from(MIX[0]) => {
                        acc ^= store_ref.lookup(page as u32).expect("owned page").rank.to_bits();
                    }
                    x if x < u64::from(MIX[0] + MIX[1]) => {
                        let top = store_ref.top_k(10);
                        acc ^= top.last().map_or(0, |h| h.rank.to_bits());
                    }
                    x if x < u64::from(MIX[0] + MIX[1] + MIX[2]) => {
                        let base = page as u32;
                        let c: Vec<PageId> = (0..8u32)
                            .map(|i| (base + i * 977) % n_pages as u32)
                            .chain([base]) // a duplicate, to keep dedup hot
                            .collect();
                        let top = store_ref.top_k_candidates(5, &c);
                        acc ^= top.first().map_or(0, |h| h.rank.to_bits());
                    }
                    _ => {
                        let view = store_ref.view();
                        let totals = view.site_totals().expect("sites configured");
                        acc ^= totals[page as usize % totals.len()].to_bits();
                    }
                }
                hist.record(q0.elapsed().as_nanos() as u64);
            }
            black_box(acc);
        });
        let wall = row_t0.elapsed().as_secs_f64();

        stop.store(true, Ordering::Relaxed);
        let (publisher_publishes, next_epoch) = publisher.join().expect("publisher panicked");
        epoch = next_epoch;

        let mut merged = LatencyHistogram::new();
        for h in &hists {
            merged.merge(h);
        }
        assert_eq!(merged.count(), total_queries, "workers dropped queries");
        let row = ReaderRow {
            readers: r,
            total_queries,
            wall_secs: wall,
            queries_per_sec: total_queries as f64 / wall.max(1e-9),
            p50_ns: merged.quantile_upper_ns(0.50),
            p90_ns: merged.quantile_upper_ns(0.90),
            p99_ns: merged.quantile_upper_ns(0.99),
            max_ns: merged.max_ns(),
            histogram: merged.counts(),
            publisher_publishes,
        };
        eprintln!(
            "[queries] {r} readers: {:.0} queries/s ({:.3}s), p50 ≤ {}ns, p99 ≤ {}ns, \
             {} epoch swaps mid-flight",
            row.queries_per_sec, row.wall_secs, row.p50_ns, row.p99_ns, row.publisher_publishes
        );
        grid.push(row);
    }

    println!(
        "{:>7}  {:>10}  {:>9}  {:>12}  {:>9}  {:>9}  {:>9}",
        "readers", "queries", "wall(s)", "queries/s", "p50(ns)", "p99(ns)", "swaps"
    );
    for row in &grid {
        println!(
            "{:>7}  {:>10}  {:>9.3}  {:>12.0}  {:>9}  {:>9}  {:>9}",
            row.readers,
            row.total_queries,
            row.wall_secs,
            row.queries_per_sec,
            row.p50_ns,
            row.p99_ns,
            row.publisher_publishes
        );
    }
    if host_threads == 1 {
        println!("host_threads = 1: all reader counts share one core; rows certify the");
        println!("read path under contention and concurrent publication, not scaling");
    }

    // Throughput gates: the full run must clear the issue's 100k
    // queries/sec bar on the 100k-page graph; --quick keeps a lighter
    // floor so CI still catches a serving-path collapse.
    let best = grid.iter().map(|r| r.queries_per_sec).fold(0.0f64, f64::max);
    let floor = if quick { 10_000.0 } else { 100_000.0 };
    assert!(best >= floor, "best throughput {best:.0} queries/s is under the {floor:.0} floor");

    let payload = Payload {
        host_threads,
        quick,
        pages,
        sites,
        groups,
        topk_cap,
        t_end,
        converge_secs,
        mix: MIX,
        verify,
        readers,
        grid,
    };
    args.emit(&payload).expect("write experiment json");
}
