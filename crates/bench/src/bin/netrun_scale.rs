//! **NETRUN_SCALE** — whole-system scale benchmark for the event engine
//! and the think-step hot path: the slab-backed scheduler, the dirty-row
//! external-contribution cache, and the allocation-hoisted solve buffers.
//!
//! Two sections:
//!
//! 1. **Speedup grid** (the regression harness): the 100k-page reference
//!    config runs under all four engine combinations — `{BinaryHeap, Slab}`
//!    × `{full-rebuild, dirty-row cache}` — with bit-identical results by
//!    construction (same `(time, seq)` dequeue order, same row sums). The
//!    `speedup` headline is events/sec of the fast engine over the legacy
//!    `heap-baseline`, and the full (non-`--quick`) run asserts it ≥ 2×.
//! 2. **Scale sweep**: the fast engine alone on growing workloads up to
//!    one million pages on ≥256 overlay nodes, recording events/sec,
//!    sends/sec, and the scheduler's arena high-water mark (its
//!    peak-memory proxy: slots are recycled through a free list, so
//!    `arena_slots` is exactly the peak number of simultaneously pending
//!    events, never the push count).
//!
//! Usage: `netrun_scale [--pages N] [--sites S] [--groups K] [--nodes M]
//!         [--t-end T] [--sample-every T] [--sweep-t-end T] [--reps R]
//!         [--dpr2] [--quick] [--no-sweep] [--out PATH]`
//!
//! `--quick` shrinks the grid for CI smoke testing; it still asserts
//! bit-identical ranks across engines, steady-state arena recycling
//! (pushes ≫ arena slots), and that the fast engine is not slower than
//! the legacy one. `--out` writes the JSON payload to the given path
//! (used to commit `BENCH_scale.json` at the repo root).

use std::time::Instant;

use dpr_bench::BenchArgs;
use dpr_core::{try_run_over_network, DprVariant, NetRunConfig, NetRunResult};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::WebGraph;
use dpr_partition::Strategy;
use dpr_sim::SchedulerKind;
use serde::Serialize;

#[derive(Serialize)]
struct EngineRow {
    mode: String,
    scheduler: String,
    ext_cache: bool,
    wall_secs: f64,
    /// Wall-clock seconds inside the event loop only (setup — graph
    /// partitioning, the centralized reference solve, context assembly —
    /// is identical work across modes and excluded).
    engine_secs: f64,
    /// Engine events (wakes + message deliveries) per engine second —
    /// identical event counts across modes, so the ratio is pure speed.
    events_per_sec: f64,
    sends_per_sec: f64,
    wakes: u64,
    deliveries: u64,
    sends_attempted: u64,
    /// Scheduler arena high-water mark: peak simultaneously pending events.
    arena_slots: usize,
    peak_queue_len: usize,
    /// Total events ever scheduled; `pushes / arena_slots` is the slot
    /// recycling factor.
    pushes: u64,
    rows_recomputed: u64,
    payload_clones: u64,
    final_rel_err: f64,
}

#[derive(Serialize)]
struct SweepRow {
    pages: usize,
    sites: usize,
    groups: usize,
    nodes: usize,
    t_end: f64,
    wall_secs: f64,
    engine_secs: f64,
    events_per_sec: f64,
    sends_per_sec: f64,
    arena_slots: usize,
    peak_queue_len: usize,
    pushes: u64,
    final_rel_err: f64,
}

#[derive(Serialize)]
struct Payload {
    pages: usize,
    sites: usize,
    groups: usize,
    nodes: usize,
    t_end: f64,
    quick: bool,
    variant: String,
    grid: Vec<EngineRow>,
    /// events/sec of slab+cache over heap+full-rebuild on the reference
    /// config — the regression harness headline.
    speedup_events_per_sec: f64,
    sweep: Vec<SweepRow>,
}

fn timed_run(g: &WebGraph, cfg: NetRunConfig) -> (NetRunResult, f64) {
    let t0 = Instant::now();
    let res = try_run_over_network(g, cfg).expect("scale configs schedule no churn");
    (res, t0.elapsed().as_secs_f64())
}

fn engine_row(name: &str, cfg: &NetRunConfig, res: NetRunResult, wall: f64) -> EngineRow {
    let events = res.sim_stats.wakes + res.sim_stats.deliveries;
    let engine = res.engine_secs.max(1e-9);
    let row = EngineRow {
        mode: name.to_string(),
        scheduler: format!("{:?}", cfg.scheduler),
        ext_cache: cfg.ext_cache,
        wall_secs: wall,
        engine_secs: res.engine_secs,
        events_per_sec: events as f64 / engine,
        sends_per_sec: res.sim_stats.sends_attempted as f64 / engine,
        wakes: res.sim_stats.wakes,
        deliveries: res.sim_stats.deliveries,
        sends_attempted: res.sim_stats.sends_attempted,
        arena_slots: res.sched_stats.arena_slots,
        peak_queue_len: res.sched_stats.peak_queue_len,
        pushes: res.sched_stats.pushes,
        rows_recomputed: res.counters.rows_recomputed,
        payload_clones: res.counters.payload_clones,
        final_rel_err: res.final_rel_err,
    };
    eprintln!(
        "[netrun_scale] {name:>14}: {:.3}s engine ({:.3}s total), {:.0} events/s, \
         {:.0} sends/s, rows {}",
        row.engine_secs, row.wall_secs, row.events_per_sec, row.sends_per_sec, row.rows_recomputed
    );
    row
}

fn rank_bits(r: &NetRunResult) -> Vec<u64> {
    r.final_ranks.iter().map(|x| x.to_bits()).collect()
}

fn main() {
    let args = BenchArgs::from_env("netrun_scale");
    let quick = args.flag("quick");
    let pages = args.get("pages", if quick { 50_000 } else { 100_000usize });
    let sites = args.get("sites", if quick { 50 } else { 100usize });
    let groups = args.get("groups", if quick { 50 } else { 100usize });
    let nodes = args.get("nodes", if quick { 128 } else { 256usize });
    let t_end = args.get("t-end", if quick { 600.0 } else { 2400.0f64 });
    let sample_every = args.get("sample-every", if quick { 50.0 } else { 200.0f64 });
    // The sweep is about throughput at scale, not the speedup tail, so it
    // gets a shorter horizon than the reference grid.
    let sweep_t_end = args.get("sweep-t-end", 600.0f64);
    let reps = args.get("reps", if quick { 2 } else { 3usize });
    // DPR1 (solve-to-convergence per wake, the paper's primary algorithm)
    // is the reference variant; --dpr2 switches to the one-iteration
    // variant, which shifts the think/transport balance toward transport.
    let variant = if args.flag("dpr2") { DprVariant::Dpr2 } else { DprVariant::Dpr1 };

    eprintln!(
        "[netrun_scale] reference config: {pages} pages, {sites} sites, \
         {groups} groups on {nodes} nodes, t_end {t_end}, {variant:?}"
    );
    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });
    let base = NetRunConfig {
        k: groups,
        n_nodes: nodes,
        strategy: Strategy::HashBySite,
        variant,
        t_end,
        sample_every,
        ..NetRunConfig::default()
    };

    // Speedup grid: the legacy engine (BinaryHeap events, full X rebuild
    // and allocating solve every think step) against each optimization
    // alone and both together.
    let modes: [(&str, SchedulerKind, bool); 4] = [
        ("heap-baseline", SchedulerKind::BinaryHeap, false),
        ("slab-only", SchedulerKind::Slab, false),
        ("cache-only", SchedulerKind::BinaryHeap, true),
        ("slab+cache", SchedulerKind::Slab, true),
    ];
    // Reps are interleaved across modes (A B C D, A B C D, ...) rather than
    // run back-to-back per mode: wall-clock drift on a busy host tends to be
    // sustained for seconds at a time, so interleaving exposes every mode to
    // the same weather and best-of-reps compares like with like. Runs are
    // deterministic, so reps differ only in timing.
    let mut best: Vec<Option<(NetRunResult, f64)>> = (0..modes.len()).map(|_| None).collect();
    for _ in 0..reps.max(1) {
        for (slot, &(_, scheduler, ext_cache)) in best.iter_mut().zip(modes.iter()) {
            let (res, wall) = timed_run(&g, NetRunConfig { scheduler, ext_cache, ..base.clone() });
            if slot.as_ref().is_none_or(|(b, _)| res.engine_secs < b.engine_secs) {
                *slot = Some((res, wall));
            }
        }
    }
    let grid: Vec<EngineRow> = modes
        .iter()
        .zip(best)
        .map(|(&(name, scheduler, ext_cache), slot)| {
            let (res, wall) = slot.expect("one rep ran");
            engine_row(name, &NetRunConfig { scheduler, ext_cache, ..base.clone() }, res, wall)
        })
        .collect();

    // Bit-identity across the grid is the precondition for calling the
    // events/sec ratio a speedup: re-run the two corner modes and compare
    // ranks directly (cheaper than holding all four results alive).
    {
        let (slow, _) = timed_run(
            &g,
            NetRunConfig { scheduler: SchedulerKind::BinaryHeap, ext_cache: false, ..base.clone() },
        );
        let (fast, _) = timed_run(
            &g,
            NetRunConfig { scheduler: SchedulerKind::Slab, ext_cache: true, ..base.clone() },
        );
        assert_eq!(rank_bits(&slow), rank_bits(&fast), "engines must agree bit-for-bit");
        assert_eq!(slow.sim_stats, fast.sim_stats, "engines must replay the same schedule");
    }

    let baseline = &grid[0];
    let fast = &grid[3];
    assert_eq!(
        baseline.wakes + baseline.deliveries,
        fast.wakes + fast.deliveries,
        "event counts must match for the rate ratio to be a speedup"
    );
    let speedup = fast.events_per_sec / baseline.events_per_sec;
    eprintln!("[netrun_scale] events/sec speedup over heap-baseline: {speedup:.2}x");

    // Arena recycling: slots must be reused through the free list, not
    // grown per event — the whole point of the slab arena.
    assert_eq!(fast.arena_slots, fast.peak_queue_len, "arena must track the queue peak exactly");
    assert!(
        fast.pushes > 10 * fast.arena_slots as u64,
        "steady state must recycle slots: {} pushes but {} arena slots",
        fast.pushes,
        fast.arena_slots
    );
    if quick {
        assert!(speedup > 1.0, "fast engine slower than legacy: {speedup:.2}x");
    } else {
        assert!(speedup >= 2.0, "regression: events/sec speedup {speedup:.2}x < 2x");
    }

    // Scale sweep on the fast engine only: pages × nodes up to the paper's
    // million-page crawl on a 256-node overlay.
    let sweep_cfgs: &[(usize, usize, usize, usize)] = if quick {
        &[(50_000, 50, 50, 128)]
    } else if args.flag("no-sweep") {
        &[]
    } else {
        &[
            (100_000, 100, 100, 64),
            (100_000, 100, 100, 256),
            (300_000, 100, 100, 256),
            (1_000_000, 100, 100, 256),
        ]
    };
    let mut sweep = Vec::new();
    for &(p, s, k, m) in sweep_cfgs {
        let sg = if p == pages && s == sites {
            None
        } else {
            Some(edu_domain(&EduDomainConfig {
                n_pages: p,
                n_sites: s,
                ..EduDomainConfig::default()
            }))
        };
        let cfg = NetRunConfig { k, n_nodes: m, t_end: sweep_t_end, ..base.clone() };
        let (res, wall) = timed_run(sg.as_ref().unwrap_or(&g), cfg);
        let events = res.sim_stats.wakes + res.sim_stats.deliveries;
        let engine = res.engine_secs.max(1e-9);
        let row = SweepRow {
            pages: p,
            sites: s,
            groups: k,
            nodes: m,
            t_end: sweep_t_end,
            wall_secs: wall,
            engine_secs: res.engine_secs,
            events_per_sec: events as f64 / engine,
            sends_per_sec: res.sim_stats.sends_attempted as f64 / engine,
            arena_slots: res.sched_stats.arena_slots,
            peak_queue_len: res.sched_stats.peak_queue_len,
            pushes: res.sched_stats.pushes,
            final_rel_err: res.final_rel_err,
        };
        eprintln!(
            "[netrun_scale] sweep {p} pages / {m} nodes: {:.3}s, {:.0} events/s, \
             arena {} slots for {} pushes",
            row.wall_secs, row.events_per_sec, row.arena_slots, row.pushes
        );
        sweep.push(row);
    }

    println!(
        "{:>14}  {:>9}  {:>12}  {:>12}  {:>10}  {:>12}",
        "mode", "wall(s)", "events/s", "sends/s", "arena", "rows"
    );
    for r in &grid {
        println!(
            "{:>14}  {:>9.3}  {:>12.0}  {:>12.0}  {:>10}  {:>12}",
            r.mode,
            r.wall_secs,
            r.events_per_sec,
            r.sends_per_sec,
            r.arena_slots,
            r.rows_recomputed
        );
    }
    println!("events/sec speedup over heap-baseline: {speedup:.2}x");
    for r in &sweep {
        println!(
            "sweep {:>9} pages / {:>3} nodes: {:>7.3}s  {:>12.0} events/s  arena {} slots",
            r.pages, r.nodes, r.wall_secs, r.events_per_sec, r.arena_slots
        );
    }

    let payload = Payload {
        pages,
        sites,
        groups,
        nodes,
        t_end,
        quick,
        variant: format!("{variant:?}"),
        grid,
        speedup_events_per_sec: speedup,
        sweep,
    };
    args.emit(&payload).expect("write experiment json");
}
