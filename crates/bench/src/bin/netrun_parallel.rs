//! **NETRUN_PARALLEL** — the deterministic parallel engine benchmark:
//! same-window node solves fanned out over the worker pool, committed in
//! canonical `(time, seq)` order.
//!
//! For every page scale in the grid the sequential engine
//! (`engine_workers = 1`) sets the reference, then each parallel worker
//! count runs the *identical* config and must reproduce the reference
//! **bit for bit** — rank bits and engine stats are asserted in-run, so a
//! recorded speedup is a speedup of the same computation, not of a
//! divergent one. Rows record events/sec, the engine-time speedup over
//! sequential, and the batch counters (`batches`, `max_batch`,
//! `singleton_batches`) that show how much same-window parallelism the
//! workload actually exposes.
//!
//! `host_threads` is recorded next to the timings: on a 1-core host every
//! pool degenerates to sequential execution, so speedup ≈ 1× **by
//! construction** and the numbers certify determinism, not scaling (the
//! same caveat applies to the solver-level `BENCH_parallel.json`).
//!
//! Usage: `netrun_parallel [--workers 1,2,4,8] [--t-end T]
//!         [--sample-every T] [--latency L] [--reps R] [--dpr2] [--quick]
//!         [--out PATH]`
//!
//! `--quick` runs one small scale for CI smoke testing, still asserting
//! bit-identity across every worker count. `--out` writes the JSON payload
//! (used to commit `BENCH_parallel_netrun.json` at the repo root).

use std::time::Instant;

use dpr_bench::BenchArgs;
use dpr_core::{try_run_over_network, DprVariant, NetRunConfig, NetRunResult};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::WebGraph;
use dpr_linalg::pool::Pool;
use dpr_partition::Strategy;
use dpr_sim::FaultPlan;
use serde::Serialize;

#[derive(Serialize)]
struct WorkerRow {
    pages: usize,
    groups: usize,
    nodes: usize,
    workers: usize,
    wall_secs: f64,
    engine_secs: f64,
    events_per_sec: f64,
    /// Sequential engine seconds over this row's engine seconds at the
    /// same scale (1.0 for the reference row itself).
    speedup_vs_sequential: f64,
    /// Wake batches the lookahead window extracted (0 when sequential).
    batches: u64,
    max_batch: usize,
    singleton_batches: u64,
    /// Deliveries committed through a held batch instead of breaking
    /// extraction (the amortized-scan engine; 0 when sequential).
    held_deliveries: u64,
    wakes: u64,
    deliveries: u64,
    /// Rank bits and `SimStats` matched the sequential reference exactly.
    bit_identical: bool,
    final_rel_err: f64,
}

#[derive(Serialize)]
struct Payload {
    /// `available_parallelism()` of the recording host. When 1, every
    /// speedup below is ≈ 1× by construction (pools degenerate to
    /// sequential) and this file certifies determinism, not scaling.
    host_threads: usize,
    quick: bool,
    variant: String,
    t_end: f64,
    latency: f64,
    workers: Vec<usize>,
    grid: Vec<WorkerRow>,
}

fn timed_run(g: &WebGraph, cfg: NetRunConfig) -> (NetRunResult, f64) {
    let t0 = Instant::now();
    let res = try_run_over_network(g, cfg).expect("parallel configs schedule no churn");
    (res, t0.elapsed().as_secs_f64())
}

fn rank_bits(r: &NetRunResult) -> Vec<u64> {
    r.final_ranks.iter().map(|x| x.to_bits()).collect()
}

fn main() {
    let args = BenchArgs::from_env("netrun_parallel");
    let quick = args.flag("quick");
    let workers: Vec<usize> = args.list("workers", if quick { "1,2,4" } else { "1,2,4,8" });
    assert_eq!(workers.first(), Some(&1), "the grid needs the sequential reference first");
    let t_end = args.get("t-end", if quick { 300.0 } else { 1200.0f64 });
    let sample_every = args.get("sample-every", if quick { 50.0 } else { 200.0f64 });
    // Base engine latency: also the batch lookahead window, so it bounds
    // how many same-window wakes one batch can hold.
    let latency = args.get("latency", 0.01f64);
    let reps = args.get("reps", if quick { 1 } else { 3usize });
    let variant = if args.flag("dpr2") { DprVariant::Dpr2 } else { DprVariant::Dpr1 };
    let host_threads = Pool::host_threads();

    // (pages, sites, groups, nodes): the issue's speedup grid — 100k and
    // 1M pages; --quick shrinks to one CI-sized scale.
    let scales: &[(usize, usize, usize, usize)] = if quick {
        &[(50_000, 50, 50, 128)]
    } else {
        &[(100_000, 100, 100, 256), (1_000_000, 100, 100, 256)]
    };

    eprintln!(
        "[netrun_parallel] host_threads {host_threads}, workers {workers:?}, \
         t_end {t_end}, {variant:?}{}",
        if host_threads == 1 { " (1-core host: speedup ≈ 1x by construction)" } else { "" }
    );

    let mut grid: Vec<WorkerRow> = Vec::new();
    for &(pages, sites, k, nodes) in scales {
        let g = edu_domain(&EduDomainConfig {
            n_pages: pages,
            n_sites: sites,
            ..EduDomainConfig::default()
        });
        let base = NetRunConfig {
            k,
            n_nodes: nodes,
            strategy: Strategy::HashBySite,
            variant,
            t_end,
            sample_every,
            faults: Some(FaultPlan::new().with_latency(latency)),
            ..NetRunConfig::default()
        };
        // Interleave reps across worker counts (1 2 4 8, 1 2 4 8, ...) so
        // sustained host-load weather hits every mode equally; runs are
        // deterministic, reps differ only in timing. Keep the best
        // (lowest engine time) per worker count.
        let mut best: Vec<Option<(NetRunResult, f64)>> = workers.iter().map(|_| None).collect();
        for _ in 0..reps.max(1) {
            for (slot, &w) in best.iter_mut().zip(&workers) {
                let (res, wall) = timed_run(&g, NetRunConfig { engine_workers: w, ..base.clone() });
                if slot.as_ref().is_none_or(|(b, _)| res.engine_secs < b.engine_secs) {
                    *slot = Some((res, wall));
                }
            }
        }
        let runs: Vec<(NetRunResult, f64)> = best.into_iter().map(|s| s.expect("ran")).collect();
        let (reference, _) = &runs[0];
        let ref_bits = rank_bits(reference);
        let ref_secs = reference.engine_secs.max(1e-9);
        for (&w, (res, wall)) in workers.iter().zip(&runs) {
            // The acceptance gate: every parallel run reproduces the
            // sequential engine bit for bit before its timing counts.
            assert_eq!(rank_bits(res), ref_bits, "{w}-worker rank bits diverged at {pages} pages");
            assert_eq!(
                res.sim_stats, reference.sim_stats,
                "{w}-worker engine stats diverged at {pages} pages"
            );
            let events = res.sim_stats.wakes + res.sim_stats.deliveries;
            let engine = res.engine_secs.max(1e-9);
            let row = WorkerRow {
                pages,
                groups: k,
                nodes,
                workers: w,
                wall_secs: *wall,
                engine_secs: res.engine_secs,
                events_per_sec: events as f64 / engine,
                speedup_vs_sequential: ref_secs / engine,
                batches: res.sched_stats.batches,
                max_batch: res.sched_stats.max_batch,
                singleton_batches: res.sched_stats.singleton_batches,
                held_deliveries: res.sched_stats.held_deliveries,
                wakes: res.sim_stats.wakes,
                deliveries: res.sim_stats.deliveries,
                bit_identical: true,
                final_rel_err: res.final_rel_err,
            };
            eprintln!(
                "[netrun_parallel] {pages} pages, {w} workers: {:.3}s engine, \
                 {:.0} events/s, {:.2}x vs sequential, {} batches (max {})",
                row.engine_secs,
                row.events_per_sec,
                row.speedup_vs_sequential,
                row.batches,
                row.max_batch
            );
            if w > 1 {
                assert!(row.batches > 0, "parallel engine never batched at {pages} pages");
                assert!(row.max_batch >= 2, "no same-window parallelism at {pages} pages");
            }
            grid.push(row);
        }
    }

    println!(
        "{:>9}  {:>7}  {:>9}  {:>12}  {:>8}  {:>10}  {:>9}",
        "pages", "workers", "engine(s)", "events/s", "speedup", "batches", "max batch"
    );
    for r in &grid {
        println!(
            "{:>9}  {:>7}  {:>9.3}  {:>12.0}  {:>7.2}x  {:>10}  {:>9}",
            r.pages,
            r.workers,
            r.engine_secs,
            r.events_per_sec,
            r.speedup_vs_sequential,
            r.batches,
            r.max_batch
        );
    }
    if host_threads == 1 {
        println!(
            "host_threads = 1: speedups ≈ 1x by construction; this run certifies bit-identity"
        );
    }

    let payload = Payload {
        host_threads,
        quick,
        variant: format!("{variant:?}"),
        t_end,
        latency,
        workers,
        grid,
    };
    args.emit(&payload).expect("write experiment json");
}
