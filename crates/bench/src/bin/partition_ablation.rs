//! **ABL-PARTITION** — the §4.1 partitioning ablation: cut links, balance
//! and communication fan-out for the three dividing strategies, plus the
//! re-crawl stability that rules the random strategy out.
//!
//! Expected shape: hash-by-site cuts ~10x fewer links than hash-by-URL or
//! random (because ~90% of links are intra-site), and only the hash
//! strategies keep a page on the same ranker across crawls.
//!
//! Usage: `partition_ablation [--pages N] [--sites S] [--k K]`

use dpr_bench::BenchArgs;
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::refresh::recrawl;
use dpr_partition::{Partition, PartitionMetrics, Strategy};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    strategy: String,
    cut_links: usize,
    cut_fraction: f64,
    balance: f64,
    non_empty_groups: usize,
    mean_out_partners: f64,
    recrawl_stability: f64,
}

fn main() {
    let args = BenchArgs::from_env("partition_ablation");
    let pages = args.get("pages", 100_000usize);
    let sites = args.get("sites", 100usize);
    let k = args.get("k", 64usize);

    eprintln!("[partition] generating edu-domain graph: {pages} pages, {sites} sites");
    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });
    eprintln!(
        "[partition] intra-site link fraction: {:.3} (paper's [16]: ~0.9)",
        g.intra_site_fraction()
    );
    // A second crawl of the same web: 20% of pages changed links, 5% growth.
    let (g2, _) = recrawl(&g, 0.2, 0.05, 99);

    let strategies = [Strategy::Random { seed: 11 }, Strategy::HashByUrl, Strategy::HashBySite];
    let mut rows = Vec::new();
    for s in strategies {
        let p = Partition::build(&g, &s, k, 0);
        let m = PartitionMetrics::compute(&g, &p);
        // Same strategy, next dividing event (epoch 1), on the re-crawl.
        let p2 = Partition::build(&g2, &s, k, 1);
        let stability = p.stability(&p2);
        rows.push(Row {
            strategy: s.name().to_string(),
            cut_links: m.cut_links,
            cut_fraction: m.cut_fraction,
            balance: m.balance,
            non_empty_groups: m.non_empty_groups,
            mean_out_partners: m.mean_out_partners,
            recrawl_stability: stability,
        });
    }

    println!("\n§4.1 partitioning ablation (K = {k}, {pages} pages, {sites} sites)\n");
    println!(
        "{:<14} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "strategy", "cut links", "cut %", "balance", "groups", "partners", "stability"
    );
    for r in &rows {
        println!(
            "{:<14} {:>10} {:>7.1}% {:>8.2} {:>8} {:>10.1} {:>9.1}%",
            r.strategy,
            r.cut_links,
            r.cut_fraction * 100.0,
            r.balance,
            r.non_empty_groups,
            r.mean_out_partners,
            r.recrawl_stability * 100.0
        );
    }
    let site = rows.iter().find(|r| r.strategy == "hash-by-site").unwrap();
    let url = rows.iter().find(|r| r.strategy == "hash-by-url").unwrap();
    println!(
        "\nhash-by-site cuts {:.1}x fewer links than hash-by-url and is {:.0}% re-crawl stable \
         (paper: \"divide at site-granularity ... can reduce communication overhead greatly\").",
        url.cut_fraction / site.cut_fraction.max(1e-12),
        site.recrawl_stability * 100.0
    );

    if let Err(e) = args.emit(&rows) {
        eprintln!("[partition] JSON write failed: {e}");
    }
}
