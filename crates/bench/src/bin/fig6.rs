//! **FIG6** — "Distributed PageRank converges to the ranks of centralized
//! PageRank": relative error `‖R − R*‖/‖R*‖` over time for three settings,
//! K = 1000 page rankers (paper Fig 6).
//!
//! Curves (paper parameters):
//!   A: p = 1.0, T1 = 0, T2 = 6
//!   B: p = 0.7, T1 = 0, T2 = 6
//!   C: p = 0.7, T1 = 0, T2 = 15
//!
//! Usage: `fig6 [--pages N] [--sites S] [--k K] [--t-end T] [--variant dpr1|dpr2] [--full]`
//! `--full` uses the paper's dataset scale (1M pages / 15M links).

use dpr_bench::{ascii_chart, series_payload, BenchArgs};
use dpr_core::{run_distributed, DistributedRunConfig, DprVariant};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_partition::Strategy;

fn main() {
    let args = BenchArgs::from_env("fig6");
    let full = args.flag("full");
    let pages = args.get("pages", if full { 1_000_000 } else { 50_000 });
    let sites = args.get("sites", 100usize);
    let k = args.get("k", 1_000usize);
    let t_end = args.get("t-end", 100.0f64);
    let variant = match args.raw("variant") {
        Some("dpr2") => DprVariant::Dpr2,
        _ => DprVariant::Dpr1,
    };
    let seed = args.get("seed", 42u64);

    eprintln!("[fig6] generating edu-domain graph: {pages} pages, {sites} sites");
    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });

    let settings = [
        ("A (p=1.0, T1=0, T2=6)", 1.0, 0.0, 6.0),
        ("B (p=0.7, T1=0, T2=6)", 0.7, 0.0, 6.0),
        ("C (p=0.7, T1=0, T2=15)", 0.7, 0.0, 15.0),
    ];

    let mut curves = Vec::new();
    for (name, p, t1, t2) in settings {
        eprintln!("[fig6] running {name} …");
        let res = run_distributed(
            &g,
            DistributedRunConfig {
                k,
                variant,
                strategy: Strategy::HashBySite,
                t1,
                t2,
                send_success_prob: p,
                seed,
                t_end,
                sample_every: 1.0,
                ..DistributedRunConfig::default()
            },
        );
        eprintln!(
            "[fig6]   final rel err {:.4}%  (threshold hit at t = {:?}, {} active rankers)",
            res.final_rel_err * 100.0,
            res.time_at_threshold,
            res.active_groups
        );
        curves.push((name, res));
    }

    println!("\nFig 6 — relative error (%) vs time, K = {k}, variant {variant:?}\n");
    let pct: Vec<(&str, dpr_sim::TimeSeries)> = curves
        .iter()
        .map(|(name, res)| {
            let mut s = dpr_sim::TimeSeries::new();
            for &(t, v) in res.rel_err.points() {
                s.push(t, v * 100.0);
            }
            (*name, s)
        })
        .collect();
    let refs: Vec<(&str, &dpr_sim::TimeSeries)> = pct.iter().map(|(n, s)| (*n, s)).collect();
    println!("{}", ascii_chart(&refs, 70, 16));

    println!("time    A-rel-err%   B-rel-err%   C-rel-err%");
    let grid_a = curves[0].1.rel_err.resample(1.0, t_end, 20);
    let grid_b = curves[1].1.rel_err.resample(1.0, t_end, 20);
    let grid_c = curves[2].1.rel_err.resample(1.0, t_end, 20);
    for i in 0..grid_a.len() {
        println!(
            "{:>5.1} {:>11.3} {:>12.3} {:>12.3}",
            grid_a[i].0,
            grid_a[i].1 * 100.0,
            grid_b[i].1 * 100.0,
            grid_c[i].1 * 100.0
        );
    }

    let payload = series_payload(&refs);
    if let Err(e) = args.emit(&payload) {
        eprintln!("[fig6] JSON write failed: {e}");
    }
}
