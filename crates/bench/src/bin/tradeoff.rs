//! **TRADEOFF** — §4.5's closing relationship: convergence time vs.
//! bandwidth consumed. The bisection-bandwidth constraint sets the minimal
//! interval `T` between exchange iterations; the distributed algorithm
//! needs a measured number of outer iterations to converge; total
//! convergence wall-clock is their product. Allowing page ranking a larger
//! share of the backbone shortens `T` linearly — this binary sweeps the
//! share and prints the resulting curve, including the effect of the two
//! §4.5 levers the paper names (compression; fewer iterations via DPR1's
//! inner convergence).
//!
//! Usage: `tradeoff [--pages N] [--sites S] [--rankers R] [--web-pages W]`

use dpr_bench::BenchArgs;
use dpr_core::{run_distributed, DistributedRunConfig, DprVariant};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_model::{pastry_hops, CapacityModel};
use dpr_partition::Strategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bisection_share_pct: f64,
    iteration_interval_hours: f64,
    dpr1_convergence_days: f64,
    dpr2_convergence_days: f64,
    compressed_dpr1_days: f64,
    bandwidth_gb_per_iteration: f64,
}

fn main() {
    let args = BenchArgs::from_env("tradeoff");
    let pages = args.get("pages", 20_000usize);
    let sites = args.get("sites", 100usize);
    let rankers = args.get("rankers", 1_000u64);
    let web_pages = args.get("web-pages", 3.0e9f64);

    // Measure outer iteration counts once on the simulated deployment.
    eprintln!("[tradeoff] measuring iteration counts on a {pages}-page dataset …");
    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });
    let iters = |variant| {
        run_distributed(
            &g,
            DistributedRunConfig {
                k: rankers as usize,
                variant,
                strategy: Strategy::HashBySite,
                t1: 15.0,
                t2: 15.0,
                t_end: 3_000.0,
                sample_every: 1.0,
                ..DistributedRunConfig::default()
            },
        )
        .mean_outer_iters_at_threshold
        .expect("convergence within the horizon")
    };
    let dpr1_iters = iters(DprVariant::Dpr1);
    let dpr2_iters = iters(DprVariant::Dpr2);
    eprintln!("[tradeoff] DPR1: {dpr1_iters:.1} iterations, DPR2: {dpr2_iters:.1}");

    let h = pastry_hops(rankers);
    let full_backbone_mb = 10_000.0; // 100 Gbit ≈ 10 GB/s, paper's 1999 backbone estimate
    let mut rows = Vec::new();
    for share_pct in [0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let model = CapacityModel {
            total_pages: web_pages,
            link_record_bytes: 100.0,
            usable_bisection_bytes_per_sec: full_backbone_mb * 1e6 * share_pct / 100.0,
        };
        let t = model.min_iteration_interval(h);
        let compressed = CapacityModel { link_record_bytes: 10.0, ..model };
        rows.push(Row {
            bisection_share_pct: share_pct,
            iteration_interval_hours: t / 3600.0,
            dpr1_convergence_days: dpr1_iters * t / 86_400.0,
            dpr2_convergence_days: dpr2_iters * t / 86_400.0,
            compressed_dpr1_days: dpr1_iters * compressed.min_iteration_interval(h) / 86_400.0,
            bandwidth_gb_per_iteration: model.bytes_per_iteration(h) / 1e9,
        });
    }

    println!(
        "\n§4.5 tradeoff: convergence time vs bandwidth (W = {web_pages:.1e} pages, N = {rankers} rankers, h = {h:.2})\n"
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>16} {:>12}",
        "share %", "T (hours)", "DPR1 (days)", "DPR2 (days)", "DPR1+compr (d)", "GB/iter"
    );
    for r in &rows {
        println!(
            "{:>8.1} {:>10.2} {:>12.1} {:>12.1} {:>16.2} {:>12.0}",
            r.bisection_share_pct,
            r.iteration_interval_hours,
            r.dpr1_convergence_days,
            r.dpr2_convergence_days,
            r.compressed_dpr1_days,
            r.bandwidth_gb_per_iteration
        );
    }
    println!(
        "\nAt the paper's 1% allowance, full convergence takes ~{:.0} days (DPR1); compression \
         ({}x smaller records) brings it to ~{:.1} days — why §7 names it first among future work.",
        rows[2].dpr1_convergence_days, 10, rows[2].compressed_dpr1_days
    );

    if let Err(e) = args.emit(&rows) {
        eprintln!("[tradeoff] JSON write failed: {e}");
    }
}
