//! **ABL-THRESH** — thresholded `Y` publication (the §4.5/§7
//! communication-reduction lever): sweeps the suppression threshold and
//! reports exchanged entries vs final accuracy. Entries whose score moved
//! less than the threshold since last published are not re-sent; receivers
//! merge instead of replace.
//!
//! Expected shape: traffic falls steeply with the threshold while the final
//! error stays pinned near the threshold's own magnitude — the Theorem 3.3
//! error bound absorbs the suppressed mass.
//!
//! Usage: `threshold_sweep [--pages N] [--k K] [--t-end T]`

use dpr_bench::BenchArgs;
use dpr_core::{run_distributed, DistributedRunConfig};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_partition::Strategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    threshold: f64,
    entries_sent: u64,
    entries_suppressed: u64,
    traffic_vs_baseline: f64,
    final_rel_err: f64,
}

fn main() {
    let args = BenchArgs::from_env("threshold_sweep");
    let pages = args.get("pages", 20_000usize);
    let k = args.get("k", 64usize);
    let t_end = args.get("t-end", 120.0f64);
    let seed = args.get("seed", 9u64);

    eprintln!("[threshold] generating edu-domain graph: {pages} pages");
    let g =
        edu_domain(&EduDomainConfig { n_pages: pages, n_sites: 64, ..EduDomainConfig::default() });

    let run = |threshold: f64| {
        run_distributed(
            &g,
            DistributedRunConfig {
                k,
                strategy: Strategy::HashBySite,
                t1: 0.5,
                t2: 3.0,
                seed,
                t_end,
                sample_every: 2.0,
                y_threshold: threshold,
                ..DistributedRunConfig::default()
            },
        )
    };

    let baseline = run(0.0);
    let base_sent = baseline.y_entries_sent.max(1);
    let mut rows = vec![Row {
        threshold: 0.0,
        entries_sent: baseline.y_entries_sent,
        entries_suppressed: 0,
        traffic_vs_baseline: 1.0,
        final_rel_err: baseline.final_rel_err,
    }];
    for threshold in [1e-9, 1e-7, 1e-5, 1e-3, 1e-2] {
        let res = run(threshold);
        rows.push(Row {
            threshold,
            entries_sent: res.y_entries_sent,
            entries_suppressed: res.y_entries_suppressed,
            traffic_vs_baseline: res.y_entries_sent as f64 / base_sent as f64,
            final_rel_err: res.final_rel_err,
        });
        eprintln!(
            "[threshold] {threshold:.0e}: {:.1}% of baseline traffic, final err {:.4}%",
            100.0 * res.y_entries_sent as f64 / base_sent as f64,
            res.final_rel_err * 100.0
        );
    }

    println!("\nThresholded Y publication (K = {k}, {pages} pages)\n");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>14}",
        "threshold", "entries sent", "suppressed", "traffic %", "final err %"
    );
    for r in &rows {
        println!(
            "{:>10.0e} {:>14} {:>14} {:>11.1}% {:>14.5}",
            r.threshold,
            r.entries_sent,
            r.entries_suppressed,
            r.traffic_vs_baseline * 100.0,
            r.final_rel_err * 100.0
        );
    }
    println!(
        "\nShape: traffic collapses with the threshold while the error tracks the threshold \
         magnitude — pick a threshold one order below the target accuracy for free savings."
    );

    if let Err(e) = args.emit(&rows) {
        eprintln!("[threshold] JSON write failed: {e}");
    }
}
