//! **PARALLEL** — threads-vs-speedup sweep for the worker-pool compute
//! runtime. Runs the open (centralized) PageRank solve on an edu-domain
//! graph once per worker count, checks every pooled run is bit-identical
//! to the sequential reference, and reports wall-clock speedups.
//!
//! The kernels' fixed chunk boundaries make the arithmetic independent of
//! the worker count, so "same ranks" here means `f64::to_bits` equality on
//! every page — the determinism contract the pool is built around.
//!
//! Usage: `parallel [--pages N] [--sites S] [--workers 1,2,4,8] [--reps R]
//!         [--out PATH]`
//!
//! `--out` additionally writes the JSON payload to the given path (used to
//! commit `BENCH_parallel.json` at the repo root).

use std::time::Instant;

use dpr_bench::BenchArgs;
use dpr_core::{open_pagerank_with_pool, RankConfig};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_linalg::Pool;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workers: usize,
    /// Best-of-`reps` wall-clock seconds for the full solve.
    secs_best: f64,
    /// Mean wall-clock seconds over the reps.
    secs_mean: f64,
    /// secs_best(sequential) / secs_best(this row).
    speedup: f64,
    /// Solver iterations (identical across rows by construction).
    iterations: usize,
    /// Whether every rank bit-matches the sequential reference.
    bit_identical: bool,
}

#[derive(Serialize)]
struct Payload {
    pages: usize,
    sites: usize,
    reps: usize,
    /// `std::thread::available_parallelism()` on the machine that produced
    /// these numbers. Speedup > 1 is only physically possible when this
    /// exceeds 1; on a single-core host every pool degrades to sequential
    /// execution and the sweep documents exactly that.
    host_threads: usize,
    rows: Vec<Row>,
}

fn main() {
    let args = BenchArgs::from_env("parallel");
    let pages = args.get("pages", 100_000usize);
    let sites = args.get("sites", 100usize);
    let reps = args.get("reps", 3usize);
    let worker_counts: Vec<usize> = args.list("workers", "1,2,4,8");
    assert!(!worker_counts.is_empty(), "--workers must list at least one count");

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    eprintln!(
        "[parallel] edu-domain graph: {pages} pages, {sites} sites; host threads: {host_threads}"
    );
    let g = edu_domain(&EduDomainConfig {
        n_pages: pages,
        n_sites: sites,
        ..EduDomainConfig::default()
    });
    let cfg = RankConfig::default();

    // Sequential reference: ranks + timing baseline.
    let (reference, seq_best, seq_mean) = {
        let mut times = Vec::new();
        let mut out = None;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let res = open_pagerank_with_pool(&g, &cfg, &Pool::sequential());
            times.push(t0.elapsed().as_secs_f64());
            out = Some(res);
        }
        let best = times.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        (out.expect("at least one rep"), best, mean)
    };
    eprintln!("[parallel] sequential: {seq_best:.3}s best, {} iterations", reference.iterations);

    let mut rows = vec![Row {
        workers: 0,
        secs_best: seq_best,
        secs_mean: seq_mean,
        speedup: 1.0,
        iterations: reference.iterations,
        bit_identical: true,
    }];

    for &w in &worker_counts {
        let pool = Pool::with_workers(w);
        let mut times = Vec::new();
        let mut last = None;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let res = open_pagerank_with_pool(&g, &cfg, &pool);
            times.push(t0.elapsed().as_secs_f64());
            last = Some(res);
        }
        let res = last.expect("at least one rep");
        let bit_identical = res.ranks.len() == reference.ranks.len()
            && res.ranks.iter().zip(&reference.ranks).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(bit_identical, "pooled solve with {w} workers diverged from sequential bits");
        let best = times.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        eprintln!(
            "[parallel] {w:>2} workers: {best:.3}s best, speedup {:.2}x, bit-identical: {bit_identical}",
            seq_best / best
        );
        rows.push(Row {
            workers: w,
            secs_best: best,
            secs_mean: mean,
            speedup: seq_best / best,
            iterations: res.iterations,
            bit_identical,
        });
    }

    println!("workers  best(s)  mean(s)  speedup  bit-identical");
    for r in &rows {
        let label = if r.workers == 0 { "seq".to_string() } else { r.workers.to_string() };
        println!(
            "{label:>7}  {:>7.3}  {:>7.3}  {:>6.2}x  {}",
            r.secs_best, r.secs_mean, r.speedup, r.bit_identical
        );
    }

    let payload = Payload { pages, sites, reps, host_threads, rows };
    args.emit(&payload).expect("write experiment json");
}
