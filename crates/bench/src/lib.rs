//! Shared plumbing for the experiment binaries: tiny CLI parsing, ASCII
//! figure rendering, and JSON result emission.
//!
//! Every binary regenerates one paper artifact (see DESIGN.md's experiment
//! index) and both prints a human-readable figure/table and writes the raw
//! series to `target/experiments/<name>.json` for EXPERIMENTS.md.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;

use dpr_sim::TimeSeries;
use serde::Serialize;

/// Parses `--key value` and bare `--flag` arguments. Unknown keys are the
/// caller's business; values win over flags on duplicate keys.
#[must_use]
pub fn parse_args(args: impl Iterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = match args.peek() {
                Some(v) if !v.starts_with("--") => args.next().unwrap(),
                _ => "true".to_string(),
            };
            out.insert(key.to_string(), value);
        }
    }
    out
}

/// Typed lookup with default.
#[must_use]
pub fn arg<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    args.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Whether a bare `--flag` was passed.
#[must_use]
pub fn flag(args: &HashMap<String, String>, key: &str) -> bool {
    args.get(key).map(String::as_str) == Some("true")
}

/// The parsed command line of one experiment binary: `--key value` pairs
/// and bare `--flag`s, with typed lookups and the shared JSON emission
/// path every binary used to hand-roll (`target/experiments/<name>.json`
/// plus an optional `--out PATH` copy for the committed `BENCH_*.json`
/// artifacts).
pub struct BenchArgs {
    name: &'static str,
    args: HashMap<String, String>,
}

impl BenchArgs {
    /// Parses `std::env::args()` for the binary named `name`; the name is
    /// reused as the default JSON artifact name and the log prefix.
    #[must_use]
    pub fn from_env(name: &'static str) -> Self {
        Self::from_iter(name, std::env::args().skip(1))
    }

    /// Parses an explicit argument list (for tests).
    #[must_use]
    pub fn from_iter(name: &'static str, args: impl Iterator<Item = String>) -> Self {
        Self { name, args: parse_args(args) }
    }

    /// Typed `--key value` lookup with default.
    #[must_use]
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        arg(&self.args, key, default)
    }

    /// Raw string lookup, `None` when the key is absent.
    #[must_use]
    pub fn raw(&self, key: &str) -> Option<&str> {
        self.args.get(key).map(String::as_str)
    }

    /// Whether a bare `--flag` was passed.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        flag(&self.args, key)
    }

    /// Comma-separated list lookup: `--key 1,2,4` parses to `[1, 2, 4]`;
    /// `default` (same syntax) is parsed when the key is absent.
    /// Unparsable items are skipped.
    #[must_use]
    pub fn list<T: std::str::FromStr>(&self, key: &str, default: &str) -> Vec<T> {
        self.raw(key).unwrap_or(default).split(',').filter_map(|v| v.trim().parse().ok()).collect()
    }

    /// Writes `payload` to `target/experiments/<name>.json` and, when
    /// `--out PATH` was given, to that path too. Returns the experiments
    /// path.
    pub fn emit<T: Serialize>(&self, payload: &T) -> std::io::Result<PathBuf> {
        let path = write_json(self.name, payload)?;
        eprintln!("[{}] wrote {}", self.name, path.display());
        if let Some(out) = self.args.get("out") {
            let text = serde_json::to_string_pretty(payload).expect("serializable payload");
            std::fs::write(out, text + "\n")?;
            eprintln!("[{}] wrote {out}", self.name);
        }
        Ok(path)
    }
}

/// Renders one or more labelled time series as an ASCII chart — the
/// terminal stand-in for the paper's figure panels. Values are mapped onto
/// `height` rows between the global min and max.
#[must_use]
pub fn ascii_chart(series: &[(&str, &TimeSeries)], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 3);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut t0, mut t1) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, s) in series {
        for &(t, v) in s.points() {
            lo = lo.min(v);
            hi = hi.max(v);
            t0 = t0.min(t);
            t1 = t1.max(t);
        }
    }
    if !lo.is_finite() || !hi.is_finite() || t1 <= t0 {
        return "(no data)\n".to_string();
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    let marks: &[u8] = b"ABCDEFGH";
    for (si, (_, s)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for (col, (_, v)) in s.resample(t0, t1, width).iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            let row = ((hi - v) / (hi - lo) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = mark;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:>10.4} |")
        } else if i == height - 1 {
            format!("{lo:>10.4} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.push_str(std::str::from_utf8(row).unwrap());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>12}t={t0:<10.1}{:>width$}\n",
        "",
        format!("t={t1:.1}"),
        width = width - 10
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", marks[si % marks.len()] as char, name));
    }
    out
}

/// Serializable (time, value) series for JSON emission.
#[derive(Serialize)]
struct JsonSeries<'a> {
    name: &'a str,
    points: Vec<(f64, f64)>,
}

/// Writes experiment output as JSON under `target/experiments/<name>.json`.
/// Returns the path written.
pub fn write_json<T: Serialize>(name: &str, payload: &T) -> std::io::Result<PathBuf> {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let text = serde_json::to_string_pretty(payload).expect("serializable payload");
    f.write_all(text.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

/// Converts labelled series into a serializable payload.
pub fn series_payload(series: &[(&str, &TimeSeries)]) -> serde_json::Value {
    let list: Vec<serde_json::Value> = series
        .iter()
        .map(|(name, s)| {
            serde_json::to_value(JsonSeries { name, points: s.points().to_vec() }).unwrap()
        })
        .collect();
    serde_json::Value::Array(list)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_of(s: &[&str]) -> HashMap<String, String> {
        parse_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parse_key_values_and_flags() {
        let a = args_of(&["--pages", "100", "--full", "--k", "8"]);
        assert_eq!(arg(&a, "pages", 0usize), 100);
        assert_eq!(arg(&a, "k", 0usize), 8);
        assert!(flag(&a, "full"));
        assert!(!flag(&a, "absent"));
        assert_eq!(arg(&a, "missing", 7i32), 7);
    }

    #[test]
    fn chart_renders_all_series_labels() {
        let mut s1 = TimeSeries::new();
        let mut s2 = TimeSeries::new();
        for i in 0..20 {
            s1.push(f64::from(i), f64::from(i));
            s2.push(f64::from(i), f64::from(20 - i));
        }
        let chart = ascii_chart(&[("up", &s1), ("down", &s2)], 40, 10);
        assert!(chart.contains("A = up"));
        assert!(chart.contains("B = down"));
        assert!(chart.lines().count() > 10);
    }

    #[test]
    fn chart_handles_empty_input() {
        let s = TimeSeries::new();
        assert_eq!(ascii_chart(&[("x", &s)], 40, 5), "(no data)\n");
    }

    #[test]
    fn bench_args_typed_lookups() {
        let a = BenchArgs::from_iter(
            "unit",
            ["--pages", "100", "--quick", "--workers", "1, 2,4"].iter().map(|s| s.to_string()),
        );
        assert_eq!(a.get("pages", 0usize), 100);
        assert_eq!(a.get("missing", 7i32), 7);
        assert!(a.flag("quick"));
        assert!(!a.flag("absent"));
        assert_eq!(a.raw("pages"), Some("100"));
        assert_eq!(a.raw("absent"), None);
        assert_eq!(a.list::<usize>("workers", "8"), vec![1, 2, 4]);
        assert_eq!(a.list::<usize>("threads", "8,16"), vec![8, 16]);
    }

    #[test]
    fn json_written_to_experiments_dir() {
        let path = write_json("unit-test-artifact", &serde_json::json!({"ok": true})).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ok\": true"));
        std::fs::remove_file(path).ok();
    }
}
