//! **ABL-COMPRESS bench** — the paper's future-work compression idea as an
//! ablation: encode/decode throughput of the delta+varint batch codec and
//! the achieved ratio against the 100-byte URL wire form, with and without
//! threshold filtering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpr_transport::compress::{baseline_size, decode_batch, encode_batch, CompressConfig};
use dpr_transport::RankUpdate;

/// A realistic exchange batch: clustered destinations (a few popular pages
/// receive most inter-group links) and small scores.
fn realistic_batch(n: usize) -> Vec<RankUpdate> {
    (0..n)
        .map(|i| RankUpdate {
            from_page: (i as u32).wrapping_mul(2654435761) % 100_000,
            to_page: ((i * i) as u32) % 2_000,
            score: 0.15 / ((i % 97) as f64 + 1.0),
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    for &n in &[1_000usize, 10_000] {
        let batch = realistic_batch(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
            b.iter(|| encode_batch(&batch, &CompressConfig::default()).len());
        });
        let encoded = encode_batch(&batch, &CompressConfig::default());
        group.bench_with_input(BenchmarkId::new("decode", n), &n, |b, _| {
            b.iter(|| decode_batch(&encoded).unwrap().len());
        });

        // Report + assert the ratios that make the ablation meaningful.
        let ratio = baseline_size(&batch) as f64 / encoded.len() as f64;
        assert!(ratio > 5.0, "compression ratio collapsed: {ratio}");
        let thresholded = encode_batch(&batch, &CompressConfig { threshold: 1e-2 });
        assert!(thresholded.len() <= encoded.len());
        eprintln!(
            "[compress] n={n}: {} B raw-URL -> {} B compressed ({ratio:.1}x), {} B with 1e-2 threshold",
            baseline_size(&batch),
            encoded.len(),
            thresholded.len()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
