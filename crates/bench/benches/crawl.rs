//! **CRAWL bench** — throughput of the crawling substrate: hidden-web
//! adjacency generation, single-crawler BFS, and the exchange-mode parallel
//! crawl (the configuration that feeds ranking datasets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpr_crawl::crawler::parallel_crawl;
use dpr_crawl::{crawl_bfs, CrawlBudget, HiddenWeb, HiddenWebConfig, Mode};

fn bench_crawl(c: &mut Criterion) {
    let web = HiddenWeb::new(HiddenWebConfig {
        total_pages: 50_000,
        n_sites: 50,
        ..HiddenWebConfig::default()
    });

    let mut group = c.benchmark_group("crawl");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("adjacency_generation", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in 0..10_000u64 {
                total += web.out_links(p).len();
            }
            total
        });
    });
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("bfs_10k_pages", |b| {
        b.iter(|| crawl_bfs(&web, CrawlBudget { max_pages: 10_000 }).fetched.len());
    });
    for agents in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("exchange_full", agents), &agents, |b, &agents| {
            b.iter(|| {
                parallel_crawl(&web, agents, Mode::Exchange, CrawlBudget { max_pages: usize::MAX })
                    .fetched
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crawl);
criterion_main!(benches);
