//! **HOPS bench** — routing throughput and construction cost of the two
//! overlays. The hop-count *values* come from the `hops` binary; this bench
//! watches lookup latency (simulated routing work per lookup) and network
//! build time, which bound experiment scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpr_overlay::id::key_from_u64;
use dpr_overlay::{ChordNetwork, Overlay, PastryNetwork};

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    for &n in &[1_000usize, 10_000] {
        let pastry = PastryNetwork::with_nodes(n, 1);
        let chord = ChordNetwork::with_nodes(n, 2);
        group.bench_with_input(BenchmarkId::new("pastry", n), &n, |b, _| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(1);
                pastry.route((k as usize * 31) % n, key_from_u64(k)).len()
            });
        });
        group.bench_with_input(BenchmarkId::new("chord", n), &n, |b, _| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(1);
                chord.route((k as usize * 31) % n, key_from_u64(k)).len()
            });
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("pastry", n), &n, |b, &n| {
            b.iter(|| PastryNetwork::with_nodes(n, 3).n_nodes());
        });
        group.bench_with_input(BenchmarkId::new("chord", n), &n, |b, &n| {
            b.iter(|| ChordNetwork::with_nodes(n, 4).n_nodes());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_route, bench_build);
criterion_main!(benches);
