//! Kernel benchmarks for centralized PageRank: SpMV (sequential vs
//! Rayon-parallel) and full CPR solves across graph scales. Establishes the
//! per-iteration cost that every distributed-ranking estimate builds on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpr_core::centralized::{open_pagerank, open_system_matrix};
use dpr_core::RankConfig;
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for &pages in &[10_000usize, 50_000] {
        let g = edu_domain(&EduDomainConfig { n_pages: pages, ..EduDomainConfig::default() });
        let a = open_system_matrix(&g, 0.85);
        let x = vec![1.0; pages];
        let mut y = vec![0.0; pages];
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("sequential", pages), &pages, |b, _| {
            b.iter(|| a.mul_vec(&x, &mut y));
        });
        group.bench_with_input(BenchmarkId::new("parallel", pages), &pages, |b, _| {
            b.iter(|| a.mul_vec_par(&x, &mut y));
        });
    }
    group.finish();
}

fn bench_cpr_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpr_solve");
    group.sample_size(10);
    for &pages in &[10_000usize, 50_000] {
        let g = edu_domain(&EduDomainConfig { n_pages: pages, ..EduDomainConfig::default() });
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, _| {
            b.iter(|| {
                let out = open_pagerank(&g, &RankConfig::default());
                assert!(out.converged);
                out.iterations
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv, bench_cpr_solve);
criterion_main!(benches);
