//! **THREADED bench** — real-parallel execution: wall-clock of ranking a
//! dataset with 1, 4 and 8 ranker threads (crossbeam channels, barrier
//! rounds). The speedup from thread parallelism is the "CPU and memory are
//! cheaper than communication" side of the paper's §1 premise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpr_core::{run_threaded, ThreadedRunConfig};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_partition::Strategy;

fn bench_threaded(c: &mut Criterion) {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 20_000, n_sites: 64, ..EduDomainConfig::default() });
    let mut group = c.benchmark_group("threaded");
    group.sample_size(10);
    for &k in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let res = run_threaded(
                    &g,
                    &ThreadedRunConfig {
                        k,
                        strategy: Strategy::HashByUrl,
                        quiescence_epsilon: 1e-6,
                        ..ThreadedRunConfig::default()
                    },
                );
                assert!(res.final_rel_err < 1e-4);
                res.rounds
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threaded);
criterion_main!(benches);
