//! **FIG8 bench** — cost of the Fig 8 sweep points: distributed runs as the
//! ranker count K grows, plus the CPR baseline solve. The iteration-count
//! figure itself comes from the `fig8` binary; here Criterion tracks how
//! simulation cost scales with K (actors, messages) at fixed graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpr_core::centralized::open_pagerank_iterations_to;
use dpr_core::{run_distributed, DistributedRunConfig, DprVariant, RankConfig};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_partition::Strategy;

fn bench_k_sweep(c: &mut Criterion) {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 5_000, n_sites: 50, ..EduDomainConfig::default() });
    let mut group = c.benchmark_group("fig8_k_sweep");
    group.sample_size(10);
    for &k in &[2usize, 10, 100, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                run_distributed(
                    &g,
                    DistributedRunConfig {
                        k,
                        variant: DprVariant::Dpr1,
                        strategy: Strategy::HashBySite,
                        t1: 15.0,
                        t2: 15.0,
                        t_end: 300.0,
                        sample_every: 15.0,
                        ..DistributedRunConfig::default()
                    },
                )
                .mean_outer_iters_at_threshold
            });
        });
    }
    group.finish();
}

fn bench_cpr_baseline(c: &mut Criterion) {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 5_000, n_sites: 50, ..EduDomainConfig::default() });
    c.bench_function("fig8_cpr_iterations", |b| {
        b.iter(|| open_pagerank_iterations_to(&g, &RankConfig::default(), 1e-4));
    });
}

criterion_group!(benches, bench_k_sweep, bench_cpr_baseline);
criterion_main!(benches);
