//! **ABL-ACCEL bench** — extrapolation acceleration (Kamvar et al. \[8\],
//! the paper's cited route to "reduce convergence time"): plain vs
//! Aitken-accelerated CPR on the edu graph, across damping factors. Higher
//! α ⇒ slower mixing ⇒ bigger wins for extrapolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpr_core::centralized::{open_pagerank, open_pagerank_accelerated, open_pagerank_gauss_seidel};
use dpr_core::RankConfig;
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_linalg::vec_ops::relative_error;

fn bench_acceleration(c: &mut Criterion) {
    let g = edu_domain(&EduDomainConfig { n_pages: 20_000, ..EduDomainConfig::default() });
    let mut group = c.benchmark_group("cpr_acceleration");
    group.sample_size(10);
    for &alpha in &[0.85f64, 0.95, 0.99] {
        let cfg = RankConfig { alpha, epsilon: 1e-10, max_iters: 100_000, ..RankConfig::default() };
        group.bench_with_input(BenchmarkId::new("plain", alpha), &cfg, |b, cfg| {
            b.iter(|| open_pagerank(&g, cfg).iterations);
        });
        group.bench_with_input(BenchmarkId::new("aitken", alpha), &cfg, |b, cfg| {
            b.iter(|| open_pagerank_accelerated(&g, cfg).iterations);
        });
        group.bench_with_input(BenchmarkId::new("gauss_seidel", alpha), &cfg, |b, cfg| {
            b.iter(|| open_pagerank_gauss_seidel(&g, cfg).iterations);
        });
        // Correctness + savings report alongside the timings.
        let plain = open_pagerank(&g, &cfg);
        let fast = open_pagerank_accelerated(&g, &cfg);
        let gs = open_pagerank_gauss_seidel(&g, &cfg);
        let err = relative_error(&fast.ranks, &plain.ranks);
        assert!(err < 1e-6, "acceleration changed the fixed point: {err}");
        assert!(relative_error(&gs.ranks, &plain.ranks) < 1e-6);
        eprintln!(
            "[accel] alpha={alpha}: jacobi {} iters, aitken {} ({:.2}x), gauss-seidel {} sweeps ({:.2}x)",
            plain.iterations,
            fast.iterations,
            plain.iterations as f64 / fast.iterations as f64,
            gs.iterations,
            plain.iterations as f64 / gs.iterations as f64
        );
    }
    group.finish();
}

criterion_group!(benches, bench_acceleration);
criterion_main!(benches);
