//! **EQ4 bench** — direct vs. indirect transmission cost on a simulated
//! Pastry overlay (formulas 4.1–4.4). Criterion measures the simulation
//! throughput; the asserts keep the scalability ordering honest on every
//! run (indirect must send fewer messages at these N).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpr_overlay::id::key_from_u64;
use dpr_overlay::PastryNetwork;
use dpr_transport::codec::PaperSizeModel;
use dpr_transport::{direct, indirect, Batch, Outgoing, RankUpdate};

fn all_to_all(n: usize) -> Vec<Outgoing> {
    (0..n)
        .map(|s| Outgoing {
            sender: s,
            batches: (0..n as u64)
                .map(|gid| Batch {
                    dest_key: key_from_u64(gid),
                    updates: vec![RankUpdate {
                        from_page: s as u32,
                        to_page: gid as u32,
                        score: 0.5,
                    }],
                })
                .collect(),
        })
        .collect()
}

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("transmission");
    group.sample_size(10);
    for &n in &[50usize, 150, 300] {
        let net = PastryNetwork::with_nodes(n, 7);
        let traffic = all_to_all(n);
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| direct::simulate(&net, &traffic, &PaperSizeModel).messages);
        });
        group.bench_with_input(BenchmarkId::new("indirect", n), &n, |b, _| {
            b.iter(|| indirect::simulate(&net, &traffic, &PaperSizeModel).stats.messages);
        });
        // Scalability ordering sanity (the §4.4 claim).
        let d = direct::simulate(&net, &traffic, &PaperSizeModel);
        let i = indirect::simulate(&net, &traffic, &PaperSizeModel).stats;
        assert!(i.messages < d.messages, "indirect must win on messages at N = {n}");
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
