//! **ABL-PARTITION bench** — cost and quality of the three §4.1 dividing
//! strategies. Criterion measures assignment + metric computation
//! throughput; the asserts pin the quality ordering (site-hash cuts fewest
//! links) on every run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_partition::{Partition, PartitionMetrics, Strategy};

fn bench_partition(c: &mut Criterion) {
    let g = edu_domain(&EduDomainConfig { n_pages: 50_000, ..EduDomainConfig::default() });
    let k = 64;
    let mut group = c.benchmark_group("partition_build");
    group.throughput(Throughput::Elements(g.n_pages() as u64));
    for s in [Strategy::Random { seed: 1 }, Strategy::HashByUrl, Strategy::HashBySite] {
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, s| {
            b.iter(|| Partition::build(&g, s, k, 0).group_sizes().len());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("partition_metrics");
    group.throughput(Throughput::Elements(g.n_internal_links() as u64));
    let parts: Vec<(Strategy, Partition)> =
        [Strategy::Random { seed: 1 }, Strategy::HashByUrl, Strategy::HashBySite]
            .into_iter()
            .map(|s| {
                let p = Partition::build(&g, &s, k, 0);
                (s, p)
            })
            .collect();
    for (s, p) in &parts {
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), p, |b, p| {
            b.iter(|| PartitionMetrics::compute(&g, p).cut_links);
        });
    }
    group.finish();

    // The §4.1 ordering must hold.
    let cut = |s: &Strategy| {
        let p = Partition::build(&g, s, k, 0);
        PartitionMetrics::compute(&g, &p).cut_fraction
    };
    let site = cut(&Strategy::HashBySite);
    let url = cut(&Strategy::HashByUrl);
    let random = cut(&Strategy::Random { seed: 1 });
    assert!(site < url && site < random, "site-hash must cut fewest links: {site} {url} {random}");
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
