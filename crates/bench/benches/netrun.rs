//! **FULL-SYSTEM bench** — whole-system runs with rank exchange routed
//! through the Pastry overlay (the `netrun` module): direct vs indirect
//! transmission while the ranks actually converge. Criterion measures the
//! simulation cost; the asserts keep the §4.4 message ordering honest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpr_core::{try_run_over_network, NetRunConfig, Transmission};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_partition::Strategy;

fn bench_full_system(c: &mut Criterion) {
    let g =
        edu_domain(&EduDomainConfig { n_pages: 3_000, n_sites: 30, ..EduDomainConfig::default() });
    let mut group = c.benchmark_group("full_system");
    group.sample_size(10);
    for (name, t) in [("direct", Transmission::Direct), ("indirect", Transmission::Indirect)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, &t| {
            b.iter(|| {
                let res = try_run_over_network(
                    &g,
                    NetRunConfig {
                        k: 48,
                        n_nodes: 48,
                        transmission: t,
                        strategy: Strategy::HashBySite,
                        t_end: 80.0,
                        ..NetRunConfig::default()
                    },
                )
                .expect("bench config uses supported churn");
                assert!(res.final_rel_err < 1e-2);
                res.counters.data_messages
            });
        });
    }
    group.finish();

    // Ordering check at matched convergence.
    let run = |t| {
        try_run_over_network(
            &g,
            NetRunConfig {
                k: 48,
                n_nodes: 48,
                transmission: t,
                t_end: 120.0,
                ..NetRunConfig::default()
            },
        )
        .expect("bench config uses supported churn")
    };
    let d = run(Transmission::Direct);
    let i = run(Transmission::Indirect);
    assert!(
        i.counters.data_messages < d.counters.data_messages + d.counters.lookup_messages,
        "indirect must use fewer total messages"
    );
    eprintln!(
        "[netrun] direct: {} data + {} lookup msgs; indirect: {} msgs ({} bytes vs {} bytes)",
        d.counters.data_messages,
        d.counters.lookup_messages,
        i.counters.data_messages,
        d.counters.bytes,
        i.counters.bytes
    );
}

criterion_group!(benches, bench_full_system);
criterion_main!(benches);
