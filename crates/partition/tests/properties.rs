//! Property tests for partitioning: assignment invariants, metric sanity,
//! and the §4.1 stability/locality contracts across random graphs and K.

use dpr_graph::generators::random;
use dpr_graph::refresh::recrawl;
use dpr_partition::{Partition, PartitionMetrics, Strategy as Dividing};
use proptest::prelude::*;

fn arb_strategy() -> impl Strategy<Value = Dividing> {
    prop_oneof![
        any::<u64>().prop_map(|seed| Dividing::Random { seed }),
        Just(Dividing::HashByUrl),
        Just(Dividing::HashBySite),
    ]
}

proptest! {
    #[test]
    fn every_page_assigned_in_range(
        n in 2usize..300,
        k in 1usize..40,
        s in arb_strategy(),
        seed in 0u64..100,
    ) {
        let g = random::erdos_renyi(n, 5, 3.0, seed);
        let p = Partition::build(&g, &s, k, 0);
        prop_assert_eq!(p.n_pages(), n);
        prop_assert!(p.assignment().iter().all(|&gp| (gp as usize) < k));
        prop_assert_eq!(p.group_sizes().iter().sum::<usize>(), n);
    }

    #[test]
    fn group_pages_is_a_partition(
        n in 2usize..200,
        k in 1usize..20,
        s in arb_strategy(),
        seed in 0u64..100,
    ) {
        let g = random::erdos_renyi(n, 4, 2.0, seed);
        let p = Partition::build(&g, &s, k, 0);
        let groups = p.group_pages();
        let mut seen = vec![false; n];
        for (gid, pages) in groups.iter().enumerate() {
            for &page in pages {
                prop_assert!(!seen[page as usize], "page {page} in two groups");
                seen[page as usize] = true;
                prop_assert_eq!(p.group_of(page), gid as u32);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn metrics_within_bounds(
        n in 2usize..200,
        k in 1usize..20,
        s in arb_strategy(),
        seed in 0u64..100,
    ) {
        let g = random::copy_model(n, 4, 4, 0.5, seed);
        let p = Partition::build(&g, &s, k, 0);
        let m = PartitionMetrics::compute(&g, &p);
        prop_assert!(m.cut_links <= g.n_internal_links());
        prop_assert!((0.0..=1.0).contains(&m.cut_fraction));
        prop_assert!(m.non_empty_groups <= k.min(n));
        prop_assert!(m.balance >= 1.0 - 1e-9 || n < k);
        prop_assert!(m.max_out_partners < k);
    }

    /// §4.1's key requirement: hash strategies assign a surviving page to
    /// the same ranker on *any* later dividing event, even after a
    /// re-crawl rewired its links.
    #[test]
    fn hash_strategies_survive_recrawls(
        n in 10usize..150,
        k in 2usize..16,
        change in 0.0f64..1.0,
        seed in 0u64..100,
        epoch in 1u64..1000,
    ) {
        let g = random::erdos_renyi(n, 5, 3.0, seed);
        let (g2, _) = recrawl(&g, change, 0.3, seed ^ 1);
        for s in [Dividing::HashByUrl, Dividing::HashBySite] {
            let p1 = Partition::build(&g, &s, k, 0);
            let p2 = Partition::build(&g2, &s, k, epoch);
            prop_assert_eq!(p1.stability(&p2), 1.0, "{} unstable", s.name());
        }
    }

    /// Site hashing never splits a site, for any graph and K.
    #[test]
    fn site_hash_never_splits_sites(
        n in 2usize..200,
        k in 1usize..32,
        seed in 0u64..100,
    ) {
        let g = random::erdos_renyi(n, 6, 2.0, seed);
        let p = Partition::build(&g, &Dividing::HashBySite, k, 0);
        let mut site_group = vec![None; g.n_sites()];
        for page in 0..n as u32 {
            let slot = &mut site_group[g.site(page) as usize];
            match slot {
                None => *slot = Some(p.group_of(page)),
                Some(prev) => prop_assert_eq!(*prev, p.group_of(page)),
            }
        }
    }

    /// Stability is symmetric and 1.0 against itself.
    #[test]
    fn stability_properties(
        n in 2usize..100,
        k in 1usize..10,
        seed in 0u64..50,
    ) {
        let g = random::erdos_renyi(n, 3, 2.0, seed);
        let a = Partition::build(&g, &Dividing::Random { seed }, k, 0);
        let b = Partition::build(&g, &Dividing::Random { seed }, k, 1);
        prop_assert_eq!(a.stability(&a), 1.0);
        prop_assert!((a.stability(&b) - b.stability(&a)).abs() < 1e-12);
    }
}
