//! Partition quality metrics.
//!
//! The paper's §4.1 argument is quantitative: "number of inner-site links
//! overcomes that of inter-site ones ... divide at site-granularity instead
//! of page-granularity can reduce communication overhead greatly". These
//! metrics let the claim be measured rather than asserted — the
//! `partition_ablation` experiment binary prints them for all three
//! strategies side by side.

use dpr_graph::WebGraph;

use crate::Partition;

/// Quality metrics of a partition with respect to a link graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMetrics {
    /// Internal links whose endpoints are in different groups — each one
    /// forces a rank transfer between two page rankers every iteration.
    pub cut_links: usize,
    /// `cut_links / n_internal_links`.
    pub cut_fraction: f64,
    /// Max group size divided by the ideal `n_pages / k` (1.0 = perfect).
    pub balance: f64,
    /// Number of groups that own at least one page.
    pub non_empty_groups: usize,
    /// Mean number of *distinct* destination groups a group sends rank to —
    /// the fan-out that drives the O(N²) message count of direct
    /// transmission (§4.4).
    pub mean_out_partners: f64,
    /// Largest per-group fan-out.
    pub max_out_partners: usize,
}

impl PartitionMetrics {
    /// Computes all metrics in O(pages + links).
    #[must_use]
    pub fn compute(g: &WebGraph, p: &Partition) -> Self {
        assert_eq!(g.n_pages(), p.n_pages(), "partition/graph size mismatch");
        let k = p.k();
        let mut cut = 0usize;
        // partner_marks[gp] holds the last source group that marked dest
        // `gp`; a dense "seen" trick to count distinct partners without a
        // per-group HashSet.
        let mut partners = vec![std::collections::HashSet::new(); k];
        for (u, v) in g.links() {
            let gu = p.group_of(u);
            let gv = p.group_of(v);
            if gu != gv {
                cut += 1;
                partners[gu as usize].insert(gv);
            }
        }
        let sizes = p.group_sizes();
        let n = g.n_pages();
        let max_size = sizes.iter().copied().max().unwrap_or(0);
        let ideal = n as f64 / k as f64;
        let out_counts: Vec<usize> = partners.iter().map(|s| s.len()).collect();
        Self {
            cut_links: cut,
            cut_fraction: if g.n_internal_links() == 0 {
                0.0
            } else {
                cut as f64 / g.n_internal_links() as f64
            },
            balance: if n == 0 { 1.0 } else { max_size as f64 / ideal },
            non_empty_groups: sizes.iter().filter(|&&s| s > 0).count(),
            mean_out_partners: if k == 0 {
                0.0
            } else {
                out_counts.iter().sum::<usize>() as f64 / k as f64
            },
            max_out_partners: out_counts.into_iter().max().unwrap_or(0),
        }
    }
}

impl std::fmt::Display for PartitionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cut {} ({:.1}%), balance {:.2}, {} non-empty groups, partners mean {:.1} max {}",
            self.cut_links,
            self.cut_fraction * 100.0,
            self.balance,
            self.non_empty_groups,
            self.mean_out_partners,
            self.max_out_partners
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use dpr_graph::generators::{edu, toy};

    #[test]
    fn two_cliques_site_partition_cuts_two() {
        let g = toy::two_cliques(4);
        // Force the two sites into different groups.
        let assignment = (0..g.n_pages() as u32).map(|p| g.site(p)).collect();
        let p = Partition::from_assignment(2, assignment);
        let m = PartitionMetrics::compute(&g, &p);
        assert_eq!(m.cut_links, 2);
        assert_eq!(m.non_empty_groups, 2);
        assert_eq!(m.max_out_partners, 1);
    }

    #[test]
    fn single_group_has_no_cut() {
        let g = toy::complete(5);
        let p = Partition::build(&g, &Strategy::HashBySite, 1, 0);
        let m = PartitionMetrics::compute(&g, &p);
        assert_eq!(m.cut_links, 0);
        assert_eq!(m.cut_fraction, 0.0);
        assert_eq!(m.mean_out_partners, 0.0);
    }

    #[test]
    fn site_partition_beats_url_partition_on_edu_graph() {
        let g = edu::edu_domain(&edu::EduDomainConfig::small());
        let k = 8;
        let by_site =
            PartitionMetrics::compute(&g, &Partition::build(&g, &Strategy::HashBySite, k, 0));
        let by_url =
            PartitionMetrics::compute(&g, &Partition::build(&g, &Strategy::HashByUrl, k, 0));
        let random = PartitionMetrics::compute(
            &g,
            &Partition::build(&g, &Strategy::Random { seed: 3 }, k, 0),
        );
        // The paper's §4.1 claim: site granularity cuts far fewer links.
        assert!(
            by_site.cut_fraction < 0.5 * by_url.cut_fraction,
            "site {} vs url {}",
            by_site.cut_fraction,
            by_url.cut_fraction
        );
        assert!(by_site.cut_fraction < 0.5 * random.cut_fraction);
        // Hash-by-URL cut fraction should approach (k-1)/k on intra-random
        // placement... at least it must be large.
        assert!(by_url.cut_fraction > 0.5);
    }

    #[test]
    fn balance_of_uniform_assignment() {
        let g = toy::cycle(100);
        let assignment = (0..100u32).map(|p| p % 4).collect();
        let p = Partition::from_assignment(4, assignment);
        let m = PartitionMetrics::compute(&g, &p);
        assert!((m.balance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders() {
        let g = toy::two_cliques(3);
        let p = Partition::build(&g, &Strategy::HashBySite, 2, 0);
        let m = PartitionMetrics::compute(&g, &p);
        assert!(m.to_string().contains("balance"));
    }
}
