//! The three dividing strategies of §4.1.

use dpr_graph::urls::{fnv1a, splitmix64};
use dpr_graph::{PageId, WebGraph};

use crate::GroupId;

/// How pages are divided among `K` page rankers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Fresh random assignment per dividing event. The assignment depends on
    /// the `crawl_epoch` passed to [`Strategy::assign`], modelling the §4.1
    /// hazard: a page re-divided after a re-crawl "risks being sent to
    /// different page rankers on different times".
    Random {
        /// Base seed; combined with the crawl epoch and page id.
        seed: u64,
    },
    /// Stable hash of the page's full URL. Deterministic across crawls, but
    /// scatters each site's pages over all rankers.
    HashByUrl,
    /// Stable hash of the page's site host name. Deterministic across
    /// crawls *and* keeps ~90% of links ranker-local — the paper's choice.
    HashBySite,
}

impl Strategy {
    /// Assigns page `p` of graph `g` to one of `k` groups at dividing event
    /// `crawl_epoch`.
    #[must_use]
    pub fn assign(&self, g: &WebGraph, p: PageId, k: usize, crawl_epoch: u64) -> GroupId {
        debug_assert!(k >= 1);
        let h = match self {
            Strategy::Random { seed } => {
                splitmix64(seed ^ crawl_epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(p))
            }
            Strategy::HashByUrl => fnv1a(g.url_of(p).as_bytes()),
            Strategy::HashBySite => fnv1a(g.site_name(g.site(p)).as_bytes()),
        };
        (h % k as u64) as GroupId
    }

    /// Human-readable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Random { .. } => "random",
            Strategy::HashByUrl => "hash-by-url",
            Strategy::HashBySite => "hash-by-site",
        }
    }

    /// Whether the strategy assigns a page independently of the dividing
    /// event — the §4.1 re-crawl requirement.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        !matches!(self, Strategy::Random { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::generators::{edu, toy};

    #[test]
    fn hash_strategies_stable_across_epochs() {
        let g = toy::two_cliques(4);
        for strategy in [Strategy::HashByUrl, Strategy::HashBySite] {
            for p in 0..g.n_pages() as u32 {
                assert_eq!(strategy.assign(&g, p, 7, 0), strategy.assign(&g, p, 7, 99));
            }
        }
    }

    #[test]
    fn random_strategy_unstable_across_epochs() {
        let g = edu::edu_domain(&edu::EduDomainConfig::small());
        let s = Strategy::Random { seed: 5 };
        let k = 16;
        let moved = (0..g.n_pages() as u32)
            .filter(|&p| s.assign(&g, p, k, 0) != s.assign(&g, p, k, 1))
            .count();
        // With k=16, ~15/16 of pages should move between epochs.
        let frac = moved as f64 / g.n_pages() as f64;
        assert!(frac > 0.8, "random strategy suspiciously stable: moved {frac}");
    }

    #[test]
    fn assignments_in_range() {
        let g = toy::star(9);
        for strategy in [Strategy::Random { seed: 1 }, Strategy::HashByUrl, Strategy::HashBySite] {
            for k in [1usize, 2, 5] {
                for p in 0..g.n_pages() as u32 {
                    assert!((strategy.assign(&g, p, k, 3) as usize) < k);
                }
            }
        }
    }

    #[test]
    fn site_strategy_groups_by_site() {
        let g = edu::edu_domain(&edu::EduDomainConfig::small());
        let s = Strategy::HashBySite;
        let mut site_group = vec![None; g.n_sites()];
        for p in 0..g.n_pages() as u32 {
            let gp = s.assign(&g, p, 8, 0);
            let slot = &mut site_group[g.site(p) as usize];
            match slot {
                None => *slot = Some(gp),
                Some(prev) => assert_eq!(*prev, gp, "site split across groups"),
            }
        }
    }

    #[test]
    fn url_strategy_spreads_sites() {
        let g = edu::edu_domain(&edu::EduDomainConfig::small());
        let s = Strategy::HashByUrl;
        // The largest site should hit more than one group at k=8.
        let big_site = (0..g.n_sites() as u32).max_by_key(|&st| g.site_size(st)).unwrap();
        let mut groups = std::collections::HashSet::new();
        for p in 0..g.n_pages() as u32 {
            if g.site(p) == big_site {
                groups.insert(s.assign(&g, p, 8, 0));
            }
        }
        assert!(groups.len() > 1, "hash-by-url failed to spread a large site");
    }

    #[test]
    fn names_and_stability_flags() {
        assert_eq!(Strategy::HashBySite.name(), "hash-by-site");
        assert!(Strategy::HashBySite.is_stable());
        assert!(Strategy::HashByUrl.is_stable());
        assert!(!Strategy::Random { seed: 0 }.is_stable());
    }
}
