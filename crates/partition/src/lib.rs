//! Page partitioning for distributed page ranking (§4.1 of the paper).
//!
//! Pages crawled by the crawler(s) are divided into `K` groups, one per
//! *page ranker*. The paper compares three strategies:
//!
//! * **random** — a fresh random assignment at every dividing event; cheap
//!   but *unstable*: a page re-crawled later may land on a different ranker,
//! * **hash by URL** — stable, but splits sites across rankers, cutting the
//!   ~90% intra-site links and maximizing communication,
//! * **hash by site** — stable *and* keeps each site's internal links local;
//!   the paper's recommendation.
//!
//! [`Partition`] materializes an assignment and computes the quality metrics
//! the recommendation is based on (cut links, balance, communication
//! partners), plus the stability comparison across crawls.

//!
//! # Example
//!
//! ```
//! use dpr_graph::generators::toy;
//! use dpr_partition::{Partition, PartitionMetrics, Strategy};
//!
//! let g = toy::two_cliques(4); // two sites, one bridge link each way
//! let p = Partition::build(&g, &Strategy::HashBySite, 8, 0);
//! let m = PartitionMetrics::compute(&g, &p);
//! // Site hashing never separates a site's pages, so only the two bridge
//! // links can possibly be cut.
//! assert!(m.cut_links <= 2);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod strategy;

pub use metrics::PartitionMetrics;
pub use strategy::Strategy;

use dpr_graph::{PageId, WebGraph};

/// A page-ranker group id (`0..k`).
pub type GroupId = u32;

/// A materialized assignment of every page to one of `k` groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    k: usize,
    group_of: Vec<GroupId>,
}

impl Partition {
    /// Assigns every page of `g` using `strategy` at dividing event
    /// `crawl_epoch` (the epoch only affects the random strategy — that is
    /// precisely its instability).
    #[must_use]
    pub fn build(g: &WebGraph, strategy: &Strategy, k: usize, crawl_epoch: u64) -> Self {
        assert!(k >= 1, "need at least one group");
        let group_of =
            (0..g.n_pages() as u32).map(|p| strategy.assign(g, p, k, crawl_epoch)).collect();
        Self { k, group_of }
    }

    /// Builds from an explicit assignment vector (for tests and custom
    /// strategies).
    ///
    /// # Panics
    /// If any group id is `>= k`.
    #[must_use]
    pub fn from_assignment(k: usize, group_of: Vec<GroupId>) -> Self {
        assert!(group_of.iter().all(|&gp| (gp as usize) < k), "group id out of range");
        Self { k, group_of }
    }

    /// Number of groups.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of assigned pages.
    #[must_use]
    pub fn n_pages(&self) -> usize {
        self.group_of.len()
    }

    /// The group of page `p`.
    #[must_use]
    pub fn group_of(&self, p: PageId) -> GroupId {
        self.group_of[p as usize]
    }

    /// The full assignment slice.
    #[must_use]
    pub fn assignment(&self) -> &[GroupId] {
        &self.group_of
    }

    /// Page count per group.
    #[must_use]
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &gp in &self.group_of {
            sizes[gp as usize] += 1;
        }
        sizes
    }

    /// The pages of every group, as `k` vectors (one scan).
    #[must_use]
    pub fn group_pages(&self) -> Vec<Vec<PageId>> {
        let mut out = vec![Vec::new(); self.k];
        for (p, &gp) in self.group_of.iter().enumerate() {
            out[gp as usize].push(p as PageId);
        }
        out
    }

    /// Fraction of pages assigned to the same group in `self` and `other`
    /// (pages beyond the shorter assignment are ignored). 1.0 = perfectly
    /// stable across the two dividing events.
    #[must_use]
    pub fn stability(&self, other: &Partition) -> f64 {
        let n = self.group_of.len().min(other.group_of.len());
        if n == 0 {
            return 1.0;
        }
        let same = self.group_of.iter().zip(&other.group_of).filter(|(a, b)| a == b).count();
        same as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpr_graph::generators::toy;

    #[test]
    fn build_assigns_all_pages() {
        let g = toy::two_cliques(4);
        let p = Partition::build(&g, &Strategy::HashBySite, 2, 0);
        assert_eq!(p.n_pages(), 8);
        assert_eq!(p.group_sizes().iter().sum::<usize>(), 8);
    }

    #[test]
    fn site_strategy_keeps_sites_together() {
        let g = toy::two_cliques(5);
        let p = Partition::build(&g, &Strategy::HashBySite, 4, 0);
        for page in 0..g.n_pages() as u32 {
            let peer = (0..g.n_pages() as u32).find(|&q| g.site(q) == g.site(page)).unwrap();
            assert_eq!(p.group_of(page), p.group_of(peer));
        }
    }

    #[test]
    fn group_pages_partition_the_page_set() {
        let g = toy::cycle(20);
        let p = Partition::build(&g, &Strategy::HashByUrl, 4, 0);
        let groups = p.group_pages();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
        for (gid, pages) in groups.iter().enumerate() {
            for &page in pages {
                assert_eq!(p.group_of(page), gid as u32);
            }
        }
    }

    #[test]
    fn stability_identity() {
        let g = toy::cycle(10);
        let p = Partition::build(&g, &Strategy::HashByUrl, 3, 0);
        assert_eq!(p.stability(&p), 1.0);
    }

    #[test]
    #[should_panic(expected = "group id out of range")]
    fn from_assignment_validates() {
        let _ = Partition::from_assignment(2, vec![0, 1, 2]);
    }

    #[test]
    fn single_group_partition() {
        let g = toy::star(5);
        let p = Partition::build(&g, &Strategy::Random { seed: 1 }, 1, 0);
        assert!(p.assignment().iter().all(|&gp| gp == 0));
    }
}
