//! Chord ring overlay (Stoica et al. \[14\]) — the baseline structured
//! overlay the paper cites alongside Pastry.
//!
//! Node ids live on a 64-bit ring. Each node keeps a successor pointer and a
//! finger table (`finger[i]` = first node clockwise from `id + 2^i`).
//! Lookups walk greedily: hop to the closest *preceding* finger of the key
//! until the key falls between the current node and its successor. Expected
//! hop count is `½·log₂ N`.

use crate::id::splitmix64;
use crate::{NodeIndex, Overlay};

/// A simulated Chord network. Membership shrinks via [`Self::depart`]
/// (handles stay stable; departed nodes leave the ring order).
#[derive(Debug, Clone)]
pub struct ChordNetwork {
    /// Node ids (append-order; `NodeIndex` = position).
    ids: Vec<u64>,
    /// Live handles sorted by id (the ring order).
    order: Vec<u32>,
    /// `rank[h]` = position of live handle `h` in `order` (stale for
    /// departed handles, which never route).
    rank: Vec<u32>,
    /// `fingers[h][i]` = handle of `successor(ids[h] + 2^i)`, deduplicated.
    fingers: Vec<Vec<u32>>,
    /// Number of successors each node tracks (Chord's successor list).
    n_successors: usize,
    /// Liveness per handle; departed nodes keep their slot.
    alive: Vec<bool>,
    /// Topology version for [`crate::RouteCache`] invalidation; bumped by
    /// every `depart`.
    generation: u64,
}

impl ChordNetwork {
    /// Builds a converged ring of `n` nodes with deterministic ids.
    #[must_use]
    pub fn with_nodes(n: usize, seed: u64) -> Self {
        let ids = (0..n as u64).map(|i| splitmix64(seed ^ (i.wrapping_mul(0x9E37)))).collect();
        Self::from_ids(ids)
    }

    /// Builds a converged ring from explicit ids.
    ///
    /// # Panics
    /// If `ids` is empty or contains duplicates.
    #[must_use]
    pub fn from_ids(ids: Vec<u64>) -> Self {
        assert!(!ids.is_empty(), "a ring needs at least one node");
        let n = ids.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&h| ids[h as usize]);
        assert!(
            order.windows(2).all(|w| ids[w[0] as usize] != ids[w[1] as usize]),
            "duplicate node ids"
        );
        let mut rank = vec![0u32; n];
        for (pos, &h) in order.iter().enumerate() {
            rank[h as usize] = pos as u32;
        }
        let mut net = Self {
            ids,
            order,
            rank,
            fingers: Vec::new(),
            n_successors: 4.min(n - 1).max(1),
            alive: vec![true; n],
            generation: 0,
        };
        net.rebuild_fingers();
        net
    }

    /// Recomputes every live node's finger table against the current ring
    /// order; departed nodes get an empty table.
    fn rebuild_fingers(&mut self) {
        let tables: Vec<Vec<u32>> = (0..self.ids.len())
            .map(|h| if self.alive[h] { self.build_fingers(h) } else { Vec::new() })
            .collect();
        self.fingers = tables;
    }

    /// `successor(ids[h] + 2^i)` for each finger index, deduplicated.
    fn build_fingers(&self, h: usize) -> Vec<u32> {
        let mut f = Vec::with_capacity(64);
        let base = self.ids[h];
        for i in 0..64u32 {
            let target = base.wrapping_add(1u64 << i);
            let s = self.successor_handle(target);
            if s != h as u32 && f.last() != Some(&s) {
                f.push(s);
            }
        }
        f.sort_unstable();
        f.dedup();
        f
    }

    /// Whether node `h` is still a member.
    #[must_use]
    pub fn is_alive(&self, h: NodeIndex) -> bool {
        self.alive[h]
    }

    /// Number of live nodes.
    #[must_use]
    pub fn n_alive(&self) -> usize {
        self.order.len()
    }

    /// Node departure (crash or voluntary leave). The node leaves the ring
    /// order immediately and every live node's successor list and finger
    /// table are repaired against the shrunken ring — the eventual outcome
    /// of Chord's stabilization protocol after the failure is detected.
    ///
    /// # Panics
    /// If `h` already departed or is the last live node.
    pub fn depart(&mut self, h: NodeIndex) {
        assert!(self.alive[h], "node {h} already departed");
        assert!(self.order.len() > 1, "cannot remove the last node");
        self.alive[h] = false;
        self.order.remove(self.rank[h] as usize);
        for (pos, &o) in self.order.iter().enumerate() {
            self.rank[o as usize] = pos as u32;
        }
        self.rebuild_fingers();
        self.generation += 1;
    }

    /// The ring id of node `h`.
    #[must_use]
    pub fn id_of(&self, h: NodeIndex) -> u64 {
        self.ids[h]
    }

    /// First node clockwise at or after `key` (with wraparound).
    fn successor_handle(&self, key: u64) -> u32 {
        let pos = self.order.partition_point(|&h| self.ids[h as usize] < key);
        self.order[pos % self.order.len()]
    }

    /// Successor of node `h` on the ring.
    fn ring_successor(&self, h: NodeIndex) -> u32 {
        debug_assert!(self.alive[h], "ring position of departed node {h}");
        let pos = self.rank[h] as usize;
        self.order[(pos + 1) % self.order.len()]
    }

    /// The node's successor handles (ring-clockwise neighbors), capped to
    /// the current live membership so shrunken rings don't repeat entries.
    /// Returned as an iterator: `next_hop` runs per forwarded message and
    /// must not allocate a successor vector each time.
    fn successors(&self, h: NodeIndex) -> impl Iterator<Item = u32> + '_ {
        debug_assert!(self.alive[h], "ring position of departed node {h}");
        let pos = self.rank[h] as usize;
        let k_max = self.n_successors.min(self.order.len().saturating_sub(1));
        (1..=k_max)
            .map(move |k| self.order[(pos + k) % self.order.len()])
            .filter(move |&s| s != h as u32)
    }

    /// Clockwise distance from `a` to `b` on the ring.
    fn clockwise(a: u64, b: u64) -> u64 {
        b.wrapping_sub(a)
    }

    /// Folds a 128-bit key to the 64-bit ring (top half, preserving
    /// uniformity).
    fn fold(key: u128) -> u64 {
        (key >> 64) as u64 ^ (key as u64)
    }
}

impl Overlay for ChordNetwork {
    fn n_nodes(&self) -> usize {
        self.ids.len()
    }

    fn node_key(&self, idx: NodeIndex) -> u128 {
        u128::from(self.ids[idx]) << 64
    }

    fn responsible(&self, key: u128) -> NodeIndex {
        self.successor_handle(Self::fold(key)) as NodeIndex
    }

    fn route(&self, src: NodeIndex, key: u128) -> Vec<NodeIndex> {
        let mut path = Vec::new();
        let mut cur = src;
        while let Some(nh) = self.next_hop(cur, key) {
            path.push(nh);
            cur = nh;
            debug_assert!(path.len() <= self.n_nodes(), "chord routing loop");
        }
        path
    }

    fn next_hop(&self, src: NodeIndex, key: u128) -> Option<NodeIndex> {
        let k = Self::fold(key);
        let resp = self.successor_handle(k) as NodeIndex;
        if resp == src {
            return None;
        }
        let succ = self.ring_successor(src);
        if succ as NodeIndex == resp {
            return Some(resp);
        }
        // Closest preceding finger: the finger maximizing clockwise
        // progress from us without overshooting the key.
        let my = self.ids[src];
        let key_dist = Self::clockwise(my, k);
        let mut best: Option<(u64, u32)> = None;
        for f in self.fingers[src].iter().copied().chain(self.successors(src)) {
            let d = Self::clockwise(my, self.ids[f as usize]);
            if d > 0 && d < key_dist && best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, f));
            }
        }
        match best {
            Some((_, f)) => Some(f as NodeIndex),
            // No finger precedes the key: the successor is the next step.
            None => Some(succ as NodeIndex),
        }
    }

    fn neighbors(&self, idx: NodeIndex) -> Vec<NodeIndex> {
        if !self.alive[idx] {
            return Vec::new();
        }
        let mut out: Vec<NodeIndex> = self.fingers[idx].iter().map(|&f| f as NodeIndex).collect();
        out.extend(self.successors(idx).map(|s| s as NodeIndex));
        out.sort_unstable();
        out.dedup();
        out.retain(|&h| h != idx);
        out
    }

    fn is_live(&self, idx: NodeIndex) -> bool {
        self.alive[idx]
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn replicas(&self, key: u128, k: usize) -> Vec<NodeIndex> {
        if k == 0 || self.order.len() <= 1 {
            return Vec::new();
        }
        // The successor list of the key's owner: when the owner departs,
        // `successor_handle` lands on the next clockwise node — replicas[0].
        let pos = {
            let folded = Self::fold(key);
            self.order.partition_point(|&h| self.ids[h as usize] < folded) % self.order.len()
        };
        let k = k.min(self.order.len() - 1);
        (1..=k).map(|i| self.order[(pos + i) % self.order.len()] as NodeIndex).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::key_from_u64;

    #[test]
    fn single_node_ring() {
        let net = ChordNetwork::with_nodes(1, 7);
        assert_eq!(net.responsible(key_from_u64(9)), 0);
        assert!(net.route(0, key_from_u64(9)).is_empty());
    }

    #[test]
    fn responsible_is_clockwise_successor() {
        let net = ChordNetwork::from_ids(vec![100, 200, 300]);
        // Keys fold as (hi ^ lo); craft raw keys directly.
        let key_at = |v: u64| u128::from(v) << 64;
        assert_eq!(net.id_of(net.responsible(key_at(150))), 200);
        assert_eq!(net.id_of(net.responsible(key_at(200))), 200);
        assert_eq!(net.id_of(net.responsible(key_at(301))), 100); // wraps
        assert_eq!(net.id_of(net.responsible(key_at(50))), 100);
    }

    #[test]
    fn routing_always_delivers() {
        let net = ChordNetwork::with_nodes(128, 3);
        for k in 0..300u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            for src in [0usize, 41, 127] {
                let path = net.route(src, key);
                assert_eq!(path.last().copied().unwrap_or(src), resp, "key {k} src {src}");
            }
        }
    }

    #[test]
    fn hops_scale_half_log2() {
        let net = ChordNetwork::with_nodes(1024, 5);
        let mut total = 0usize;
        let samples = 400;
        for k in 0..samples as u64 {
            total += net.route((k as usize * 13) % 1024, key_from_u64(k)).len();
        }
        let avg = total as f64 / samples as f64;
        // ½·log2(1024) = 5; allow a generous band.
        assert!((3.0..=7.5).contains(&avg), "chord avg hops {avg}");
    }

    #[test]
    fn next_hops_are_neighbors() {
        let net = ChordNetwork::with_nodes(100, 17);
        for src in 0..10 {
            let nbrs = net.neighbors(src);
            for k in 0..40u64 {
                if let Some(nh) = net.next_hop(src, key_from_u64(k)) {
                    assert!(nbrs.contains(&nh));
                }
            }
        }
    }

    #[test]
    fn finger_count_logarithmic() {
        let net = ChordNetwork::with_nodes(1024, 29);
        let g = net.mean_neighbors();
        // ~log2(1024) = 10 fingers + successors; well under O(N).
        assert!((6.0..=30.0).contains(&g), "chord mean neighbors {g}");
    }

    #[test]
    #[should_panic(expected = "duplicate node ids")]
    fn duplicate_ids_rejected() {
        let _ = ChordNetwork::from_ids(vec![5, 5]);
    }

    #[test]
    fn departures_repair_routing() {
        let mut net = ChordNetwork::with_nodes(64, 11);
        for h in [3usize, 17, 42, 63, 0] {
            net.depart(h);
        }
        assert_eq!(net.n_alive(), 59);
        // Routing still delivers every key, and never to or through a
        // departed node.
        for k in 0..200u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            assert!(net.is_alive(resp), "key {k} owned by departed node {resp}");
            for src in [1usize, 20, 40] {
                let path = net.route(src, key);
                assert!(path.iter().all(|&h| net.is_alive(h)), "key {k} routes via dead node");
                assert_eq!(path.last().copied().unwrap_or(src), resp, "key {k} src {src}");
            }
        }
    }

    #[test]
    fn ownership_moves_to_successor_on_departure() {
        let mut net = ChordNetwork::from_ids(vec![100, 200, 300]);
        let key_at = |v: u64| u128::from(v) << 64;
        assert_eq!(net.id_of(net.responsible(key_at(150))), 200);
        net.depart(net.responsible(key_at(150)));
        // The departed owner's keys fall to its clockwise successor.
        assert_eq!(net.id_of(net.responsible(key_at(150))), 300);
        assert_eq!(net.n_alive(), 2);
    }

    #[test]
    fn ring_of_two_survives_departure() {
        let mut net = ChordNetwork::from_ids(vec![10, 20]);
        net.depart(0);
        assert_eq!(net.responsible(u128::from(99u64) << 64), 1);
        assert!(net.route(1, u128::from(5u64) << 64).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot remove the last node")]
    fn last_node_cannot_depart() {
        let mut net = ChordNetwork::from_ids(vec![10, 20]);
        net.depart(0);
        net.depart(1);
    }

    #[test]
    fn replicas_are_the_successor_list() {
        let net = ChordNetwork::from_ids(vec![100, 200, 300, 400]);
        let key_at = |v: u64| u128::from(v) << 64;
        // Owner of 150 is id 200; successors clockwise are 300, 400, 100.
        let reps = net.replicas(key_at(150), 3);
        let ids: Vec<u64> = reps.iter().map(|&h| net.id_of(h)).collect();
        assert_eq!(ids, vec![300, 400, 100]);
        // Clamped: a 4-ring has at most 3 distinct replicas.
        assert_eq!(net.replicas(key_at(150), 10).len(), 3);
        assert!(net.replicas(key_at(150), 0).is_empty());
    }

    #[test]
    fn replica_succession_matches_departures() {
        let mut net = ChordNetwork::with_nodes(32, 9);
        let key = key_from_u64(5);
        let reps = net.replicas(key, 2);
        assert!(!reps.contains(&net.responsible(key)));
        net.depart(net.responsible(key));
        assert_eq!(net.responsible(key), reps[0]);
        net.depart(net.responsible(key));
        assert_eq!(net.responsible(key), reps[1]);
    }
}
