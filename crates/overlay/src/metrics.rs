//! Hop-count measurement over an overlay — produces the `h` constants the
//! paper's §4.5 capacity analysis depends on (2.5 hops at 1k Pastry nodes,
//! 3.5 at 10k, 4.0 at 100k).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::id::key_from_u64;
use crate::Overlay;

/// Distribution summary of routing hop counts.
#[derive(Debug, Clone, PartialEq)]
pub struct HopStats {
    /// Number of (source, key) lookups sampled.
    pub samples: usize,
    /// Mean hops — the paper's `h`.
    pub mean: f64,
    /// Maximum observed hops.
    pub max: usize,
    /// Histogram: `histogram[h]` = lookups that took exactly `h` hops.
    pub histogram: Vec<usize>,
}

/// Measures average lookup hop count over `samples` random (source, key)
/// pairs. Deterministic per seed.
#[must_use]
pub fn avg_route_hops<O: Overlay + ?Sized>(net: &O, samples: usize, seed: u64) -> HopStats {
    assert!(samples > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let live: Vec<usize> = (0..net.n_nodes()).filter(|&i| net.is_live(i)).collect();
    assert!(!live.is_empty(), "no live nodes to sample");
    let mut total = 0usize;
    let mut max = 0usize;
    let mut histogram: Vec<usize> = Vec::new();
    for _ in 0..samples {
        let src = live[rng.gen_range(0..live.len())];
        let key = key_from_u64(rng.gen());
        let hops = net.route(src, key).len();
        total += hops;
        max = max.max(hops);
        if histogram.len() <= hops {
            histogram.resize(hops + 1, 0);
        }
        histogram[hops] += 1;
    }
    HopStats { samples, mean: total as f64 / samples as f64, max, histogram }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChordNetwork, PastryNetwork};

    #[test]
    fn pastry_hops_match_paper_band_at_1000() {
        let net = PastryNetwork::with_nodes(1000, 1);
        let stats = avg_route_hops(&net, 1000, 2);
        // Paper: "For Pastry with 1000 nodes, the average number of hops is
        // about 2.5".
        assert!(
            (1.8..=3.2).contains(&stats.mean),
            "pastry h at 1000 nodes = {} (expected ≈ 2.5)",
            stats.mean
        );
    }

    #[test]
    fn histogram_sums_to_samples() {
        let net = ChordNetwork::with_nodes(64, 4);
        let stats = avg_route_hops(&net, 500, 9);
        assert_eq!(stats.histogram.iter().sum::<usize>(), 500);
        assert_eq!(stats.samples, 500);
        assert!(stats.max < 64);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = PastryNetwork::with_nodes(100, 8);
        assert_eq!(avg_route_hops(&net, 200, 3), avg_route_hops(&net, 200, 3));
    }

    #[test]
    fn hops_grow_with_network_size() {
        let small = PastryNetwork::with_nodes(50, 6);
        let large = PastryNetwork::with_nodes(2000, 6);
        let hs = avg_route_hops(&small, 400, 1).mean;
        let hl = avg_route_hops(&large, 400, 1).mean;
        assert!(hl > hs, "hops should grow with N: {hs} vs {hl}");
    }
}
